//! Length-prefixed stream framing, parameterized by prefix width.
//!
//! Two protocols in this workspace delimit messages on a byte stream with
//! a big-endian length prefix: DNS-over-TCP (RFC 1035 §4.2.2, 16-bit) and
//! the Observatory's sensor feed (32-bit, see the `feed` crate). The
//! incremental-reassembly logic — buffer arbitrary segmentation, pop
//! complete frames, stay aligned after bad content — is identical, so it
//! lives here once; [`crate::tcp`] and the feed build their own message
//! semantics on top.

use crate::{Result, WireError};

/// A length-prefix encoding: how many octets, and how to read/write them.
///
/// Implementations are zero-sized tags; the prefix is always unsigned
/// big-endian, as every length-prefixed network protocol uses.
pub trait LengthPrefix {
    /// Width of the prefix on the wire, in octets.
    const WIDTH: usize;
    /// Largest payload length the prefix can express.
    const MAX_LEN: usize;

    /// Decode a prefix from `buf` (caller guarantees `buf.len() >= WIDTH`).
    fn get(buf: &[u8]) -> usize;
    /// Append the encoded prefix for `len` (caller guarantees
    /// `len <= MAX_LEN`).
    fn put(len: usize, out: &mut Vec<u8>);
}

/// 16-bit big-endian length prefix (DNS-over-TCP).
#[derive(Debug, Clone, Copy, Default)]
pub struct U16Prefix;

impl LengthPrefix for U16Prefix {
    const WIDTH: usize = 2;
    const MAX_LEN: usize = u16::MAX as usize;

    fn get(buf: &[u8]) -> usize {
        u16::from_be_bytes([buf[0], buf[1]]) as usize
    }

    fn put(len: usize, out: &mut Vec<u8>) {
        out.extend_from_slice(&(len as u16).to_be_bytes());
    }
}

/// 32-bit big-endian length prefix (sensor feed frames).
#[derive(Debug, Clone, Copy, Default)]
pub struct U32Prefix;

impl LengthPrefix for U32Prefix {
    const WIDTH: usize = 4;
    const MAX_LEN: usize = u32::MAX as usize;

    fn get(buf: &[u8]) -> usize {
        u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize
    }

    fn put(len: usize, out: &mut Vec<u8>) {
        out.extend_from_slice(&(len as u32).to_be_bytes());
    }
}

/// Append `payload` to `out` with its length prefix.
///
/// Panics in debug builds if the payload exceeds the prefix's range or
/// the caller-chosen maximum is violated upstream; production callers
/// size their frames (DNS messages ≤64 KiB, feed batches bounded by the
/// batch size).
pub fn encode_frame_into<P: LengthPrefix>(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= P::MAX_LEN, "payload exceeds prefix range");
    P::put(payload.len(), out);
    out.extend_from_slice(payload);
}

/// Incremental reassembler for a length-prefixed byte stream.
///
/// Feed arbitrary chunks with [`Reassembler::push`]; complete frame
/// payloads come out of [`Reassembler::next_frame`]. The reassembler is
/// content-agnostic: zero-length frames are yielded as empty payloads and
/// it is the caller's protocol layer that decides whether those (or
/// unparseable payloads) are errors — the length prefix keeps the stream
/// aligned regardless.
#[derive(Debug)]
pub struct Reassembler<P: LengthPrefix> {
    buf: Vec<u8>,
    /// Frames yielded over the reassembler's lifetime.
    frames: u64,
    /// Largest acceptable payload; a declared length above this is an
    /// error (protects a 32-bit decoder from adversarial multi-gigabyte
    /// allocations).
    max_frame: usize,
    _prefix: std::marker::PhantomData<P>,
}

impl<P: LengthPrefix> Reassembler<P> {
    /// Fresh reassembler accepting payloads up to `max_frame` octets
    /// (clamped to the prefix's own range).
    pub fn new(max_frame: usize) -> Reassembler<P> {
        Reassembler {
            buf: Vec::new(),
            frames: 0,
            max_frame: max_frame.min(P::MAX_LEN),
            _prefix: std::marker::PhantomData,
        }
    }

    /// Append stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (incomplete frame).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Frames yielded over the reassembler's lifetime.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Try to pop the next complete frame payload.
    ///
    /// Returns `Ok(None)` when more bytes are needed. A declared length
    /// above the configured maximum yields [`WireError::FrameTooLarge`]
    /// without consuming anything — the stream cannot be realigned after
    /// an oversized (or corrupted) prefix, so the connection should be
    /// dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < P::WIDTH {
            return Ok(None);
        }
        let len = P::get(&self.buf);
        if len > self.max_frame {
            return Err(WireError::FrameTooLarge {
                len,
                max: self.max_frame,
            });
        }
        if self.buf.len() < P::WIDTH + len {
            return Ok(None);
        }
        let mut frame: Vec<u8> = self.buf.drain(..P::WIDTH + len).collect();
        frame.drain(..P::WIDTH);
        self.frames += 1;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed<P: LengthPrefix>(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            encode_frame_into::<P>(p, &mut out);
        }
        out
    }

    #[test]
    fn u32_roundtrip_any_segmentation() {
        let payloads: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; i * 37]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let stream = framed::<U32Prefix>(&refs);
        for chunk in [1usize, 3, 7, stream.len()] {
            let mut re = Reassembler::<U32Prefix>::new(1 << 20);
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                re.push(piece);
                while let Some(f) = re.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, payloads, "chunk size {chunk}");
            assert_eq!(re.buffered(), 0);
            assert_eq!(re.frames(), payloads.len() as u64);
        }
    }

    #[test]
    fn u16_matches_tcp_layout() {
        let mut out = Vec::new();
        encode_frame_into::<U16Prefix>(b"abc", &mut out);
        assert_eq!(out, [0, 3, b'a', b'b', b'c']);
    }

    #[test]
    fn zero_length_frames_are_yielded_empty() {
        let stream = framed::<U32Prefix>(&[b"", b"x"]);
        let mut re = Reassembler::<U32Prefix>::new(16);
        re.push(&stream);
        assert_eq!(re.next_frame().unwrap(), Some(Vec::new()));
        assert_eq!(re.next_frame().unwrap(), Some(b"x".to_vec()));
        assert_eq!(re.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut re = Reassembler::<U32Prefix>::new(8);
        re.push(&9u32.to_be_bytes());
        assert!(matches!(
            re.next_frame(),
            Err(WireError::FrameTooLarge { len: 9, max: 8 })
        ));
        // The error is sticky until the caller drops the stream: nothing
        // was consumed.
        assert!(re.next_frame().is_err());
    }
}
