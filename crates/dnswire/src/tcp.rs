//! DNS-over-TCP framing (RFC 1035 §4.2.2).
//!
//! The paper defers TCP/53 to future work (<3 % of DNS traffic); this
//! module implements that future work at the wire level so the platform
//! can ingest TCP streams: each message is preceded by a two-octet
//! big-endian length. [`encode_frame`] wraps one message;
//! [`FrameDecoder`] incrementally splits a byte stream back into
//! messages, tolerating arbitrary segmentation (the hard part of TCP
//! reassembly).

use crate::framing::{encode_frame_into, Reassembler, U16Prefix};
use crate::{Message, Result, WireError};

/// Maximum frame payload: the length prefix is 16 bits.
pub const MAX_FRAME: usize = u16::MAX as usize;

/// Serialize a message with its TCP length prefix.
pub fn encode_frame(msg: &Message) -> Result<Vec<u8>> {
    let body = msg.to_bytes()?;
    debug_assert!(body.len() <= MAX_FRAME, "to_bytes enforces the limit");
    let mut out = Vec::with_capacity(2 + body.len());
    encode_frame_into::<U16Prefix>(&body, &mut out);
    Ok(out)
}

/// Incremental decoder for a TCP byte stream carrying DNS frames.
///
/// Feed arbitrary chunks with [`FrameDecoder::push`]; complete messages
/// come out of [`FrameDecoder::next_message`]. Buffered bytes are bounded
/// by one frame (≤64 KiB + 2). Reassembly itself is the generic
/// [`Reassembler`]; this type adds the DNS policy: a frame must hold a
/// parseable message, and an empty frame is an error.
#[derive(Debug)]
pub struct FrameDecoder {
    frames: Reassembler<U16Prefix>,
    /// Frames successfully decoded so far.
    decoded: u64,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder {
            frames: Reassembler::new(MAX_FRAME),
            decoded: 0,
        }
    }
}

impl FrameDecoder {
    /// Fresh decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.frames.push(bytes);
    }

    /// Bytes currently buffered (incomplete frame).
    pub fn buffered(&self) -> usize {
        self.frames.buffered()
    }

    /// Frames decoded over the decoder's lifetime.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Try to decode the next complete message.
    ///
    /// Returns `Ok(None)` when more bytes are needed. A malformed frame
    /// body yields the parse error *and consumes the frame*, so the
    /// stream stays synchronized (the length prefix delimits frames
    /// regardless of their content).
    pub fn next_message(&mut self) -> Result<Option<Message>> {
        let Some(frame) = self.frames.next_frame()? else {
            return Ok(None);
        };
        if frame.is_empty() {
            // A zero-length frame can never hold a DNS header; the frame
            // is already consumed, so the stream stays aligned.
            return Err(WireError::Truncated {
                what: "empty TCP frame",
            });
        }
        let msg = Message::parse(&frame)?;
        self.decoded += 1;
        Ok(Some(msg))
    }

    /// Drain every complete, well-formed message currently buffered,
    /// skipping malformed frames.
    pub fn drain_messages(&mut self) -> Vec<Message> {
        let mut out = Vec::new();
        loop {
            match self.next_message() {
                Ok(Some(msg)) => out.push(msg),
                Ok(None) => return out,
                Err(_) => continue, // frame consumed, stream still aligned
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Name, RecordType};

    fn sample(id: u16) -> Message {
        Message::query(
            id,
            Name::from_ascii(&format!("host{id}.example.com")).unwrap(),
            RecordType::A,
        )
    }

    #[test]
    fn frame_roundtrip() {
        let msg = sample(7);
        let frame = encode_frame(&msg).unwrap();
        assert_eq!(
            u16::from_be_bytes([frame[0], frame[1]]) as usize,
            frame.len() - 2
        );
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert_eq!(dec.next_message().unwrap(), Some(msg));
        assert_eq!(dec.next_message().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_segmentation() {
        let msgs: Vec<Message> = (0..5).map(sample).collect();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m).unwrap());
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.push(&[b]);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(dec.decoded(), 5);
    }

    #[test]
    fn multiple_messages_in_one_chunk() {
        let msgs: Vec<Message> = (10..14).map(sample).collect();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m).unwrap());
        }
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        assert_eq!(dec.drain_messages(), msgs);
    }

    #[test]
    fn malformed_frame_keeps_stream_aligned() {
        let good = sample(1);
        let mut stream = Vec::new();
        // A garbage frame with a valid length prefix...
        stream.extend_from_slice(&5u16.to_be_bytes());
        stream.extend_from_slice(&[0xff; 5]);
        // ...followed by a good one.
        stream.extend_from_slice(&encode_frame(&good).unwrap());
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        assert!(dec.next_message().is_err());
        assert_eq!(dec.next_message().unwrap(), Some(good));
    }

    #[test]
    fn zero_length_frame_rejected_and_skipped() {
        let good = sample(2);
        let mut dec = FrameDecoder::new();
        dec.push(&0u16.to_be_bytes());
        dec.push(&encode_frame(&good).unwrap());
        assert!(dec.next_message().is_err());
        assert_eq!(dec.next_message().unwrap(), Some(good));
    }

    #[test]
    fn drain_skips_bad_frames() {
        let msgs: Vec<Message> = (20..23).map(sample).collect();
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(&msgs[0]).unwrap());
        stream.extend_from_slice(&3u16.to_be_bytes());
        stream.extend_from_slice(&[0xaa; 3]);
        stream.extend_from_slice(&encode_frame(&msgs[1]).unwrap());
        stream.extend_from_slice(&encode_frame(&msgs[2]).unwrap());
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        assert_eq!(dec.drain_messages(), msgs);
    }

    #[test]
    fn partial_header_waits() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0x00]);
        assert_eq!(dec.next_message().unwrap(), None);
        assert_eq!(dec.buffered(), 1);
    }
}
