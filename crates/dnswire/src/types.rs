//! Enumerations for record types, classes, opcodes and response codes.

use std::fmt;

/// DNS record / query type (RFC 1035 §3.2.2 and friends).
///
/// Only the types relevant to the measurement pipeline get named variants;
/// everything else round-trips through [`RecordType::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse DNS).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text strings.
    Txt,
    /// IPv6 host address.
    Aaaa,
    /// Service locator.
    Srv,
    /// EDNS0 pseudo record.
    Opt,
    /// Delegation signer (DNSSEC).
    Ds,
    /// DNSSEC signature.
    Rrsig,
    /// DNSKEY record (carried, not validated).
    Dnskey,
    /// NSEC authenticated denial record.
    Nsec,
    /// Query-only: all records.
    Any,
    /// Anything else, preserving the numeric code.
    Unknown(u16),
}

impl RecordType {
    /// Numeric type code on the wire.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Srv => 33,
            RecordType::Opt => 41,
            RecordType::Ds => 43,
            RecordType::Rrsig => 46,
            RecordType::Nsec => 47,
            RecordType::Dnskey => 48,
            RecordType::Any => 255,
            RecordType::Unknown(c) => c,
        }
    }

    /// Map a numeric code back to a variant.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            33 => RecordType::Srv,
            41 => RecordType::Opt,
            43 => RecordType::Ds,
            46 => RecordType::Rrsig,
            47 => RecordType::Nsec,
            48 => RecordType::Dnskey,
            255 => RecordType::Any,
            other => RecordType::Unknown(other),
        }
    }

    /// True for types that ask for (or carry) host addresses.
    pub fn is_address(self) -> bool {
        matches!(self, RecordType::A | RecordType::Aaaa)
    }

    /// Mnemonic used in presentation format, e.g. `"AAAA"`.
    pub fn mnemonic(self) -> String {
        match self.mnemonic_static() {
            Some(s) => s.into(),
            None => match self {
                RecordType::Unknown(c) => format!("TYPE{c}"),
                _ => unreachable!("every known type has a static mnemonic"),
            },
        }
    }

    /// Interned mnemonic for every known type; `None` only for
    /// [`RecordType::Unknown`]. Lets hot paths key on `&'static str`
    /// without allocating.
    pub fn mnemonic_static(self) -> Option<&'static str> {
        Some(match self {
            RecordType::A => "A",
            RecordType::Ns => "NS",
            RecordType::Cname => "CNAME",
            RecordType::Soa => "SOA",
            RecordType::Ptr => "PTR",
            RecordType::Mx => "MX",
            RecordType::Txt => "TXT",
            RecordType::Aaaa => "AAAA",
            RecordType::Srv => "SRV",
            RecordType::Opt => "OPT",
            RecordType::Ds => "DS",
            RecordType::Rrsig => "RRSIG",
            RecordType::Nsec => "NSEC",
            RecordType::Dnskey => "DNSKEY",
            RecordType::Any => "ANY",
            RecordType::Unknown(_) => return None,
        })
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// DNS class. In practice always `IN`; OPT abuses the field for UDP size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordClass {
    /// The Internet.
    In,
    /// CHAOS (used by `version.bind` style queries).
    Ch,
    /// Query-only: any class.
    Any,
    /// Anything else, preserving the numeric code.
    Unknown(u16),
}

impl RecordClass {
    /// Numeric class code on the wire.
    pub fn code(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Ch => 3,
            RecordClass::Any => 255,
            RecordClass::Unknown(c) => c,
        }
    }

    /// Map a numeric code back to a variant.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RecordClass::In,
            3 => RecordClass::Ch,
            255 => RecordClass::Any,
            other => RecordClass::Unknown(other),
        }
    }
}

impl fmt::Display for RecordClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordClass::In => f.write_str("IN"),
            RecordClass::Ch => f.write_str("CH"),
            RecordClass::Any => f.write_str("ANY"),
            RecordClass::Unknown(c) => write!(f, "CLASS{c}"),
        }
    }
}

/// Header opcode (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Opcode {
    /// Standard query.
    #[default]
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Zone change notification.
    Notify,
    /// Dynamic update.
    Update,
    /// Anything else, preserving the 4-bit code.
    Unknown(u8),
}

impl Opcode {
    /// 4-bit opcode value.
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(c) => c & 0x0f,
        }
    }

    /// Map a 4-bit value back to a variant.
    pub fn from_code(code: u8) -> Self {
        match code & 0x0f {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }
}

/// Response code (RFC 1035 §4.1.1, extended by EDNS0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Rcode {
    /// No error condition.
    #[default]
    NoError,
    /// The server could not interpret the query.
    FormErr,
    /// The server failed to complete the request.
    ServFail,
    /// The queried name does not exist.
    NxDomain,
    /// The server does not support the requested kind of query.
    NotImp,
    /// The server refuses to answer for policy reasons.
    Refused,
    /// Anything else (including extended RCODEs), preserving the code.
    Unknown(u16),
}

impl Rcode {
    /// Numeric RCODE; values above 15 require EDNS0 extended RCODE bits.
    pub fn code(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(c) => c,
        }
    }

    /// Map a numeric RCODE back to a variant.
    pub fn from_code(code: u16) -> Self {
        match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Unknown(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => f.write_str("NOERROR"),
            Rcode::FormErr => f.write_str("FORMERR"),
            Rcode::ServFail => f.write_str("SERVFAIL"),
            Rcode::NxDomain => f.write_str("NXDOMAIN"),
            Rcode::NotImp => f.write_str("NOTIMP"),
            Rcode::Refused => f.write_str("REFUSED"),
            Rcode::Unknown(c) => write!(f, "RCODE{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_type_roundtrip() {
        for code in 0u16..=300 {
            assert_eq!(RecordType::from_code(code).code(), code, "type {code}");
        }
    }

    #[test]
    fn record_class_roundtrip() {
        for code in 0u16..=300 {
            assert_eq!(RecordClass::from_code(code).code(), code, "class {code}");
        }
    }

    #[test]
    fn opcode_roundtrip() {
        for code in 0u8..=15 {
            assert_eq!(Opcode::from_code(code).code(), code, "opcode {code}");
        }
    }

    #[test]
    fn rcode_roundtrip() {
        for code in 0u16..=40 {
            assert_eq!(Rcode::from_code(code).code(), code, "rcode {code}");
        }
    }

    #[test]
    fn mnemonics() {
        assert_eq!(RecordType::Aaaa.to_string(), "AAAA");
        assert_eq!(RecordType::Unknown(999).to_string(), "TYPE999");
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(RecordClass::In.to_string(), "IN");
    }

    #[test]
    fn address_types() {
        assert!(RecordType::A.is_address());
        assert!(RecordType::Aaaa.is_address());
        assert!(!RecordType::Ns.is_address());
        assert!(!RecordType::Any.is_address());
    }
}
