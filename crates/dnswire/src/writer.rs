//! Serialization buffer with RFC 1035 name compression.

use crate::{Name, Result, WireError};
use std::collections::HashMap;

/// Compression pointers can only address the first 16 KiB − 1 of a message.
const MAX_POINTER_TARGET: usize = 0x3fff;

/// Growable output buffer that tracks previously written names so later
/// occurrences can be emitted as compression pointers.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
    /// Maps the lowercase wire form of a name suffix to the offset where it
    /// was first written.
    seen: HashMap<Vec<u8>, usize>,
}

impl WireWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before anything has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the serialized message.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one octet.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw octets.
    pub fn write_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrite a big-endian u16 at an absolute offset (used to patch
    /// RDLENGTH after the RDATA has been written).
    pub fn patch_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Append an RFC 1035 character-string.
    pub fn write_character_string(&mut self, s: &[u8]) -> Result<()> {
        if s.len() > 255 {
            return Err(WireError::StringTooLong(s.len()));
        }
        self.buf.push(s.len() as u8);
        self.buf.extend_from_slice(s);
        Ok(())
    }

    /// Append a name, compressing against previously written names.
    pub fn write_name(&mut self, name: &Name) -> Result<()> {
        self.write_name_inner(name, true)
    }

    /// Append a name without compression (required inside RRSIG RDATA,
    /// where compression is forbidden by RFC 4034 §3.1.7).
    pub fn write_name_uncompressed(&mut self, name: &Name) -> Result<()> {
        self.write_name_inner(name, false)
    }

    fn write_name_inner(&mut self, name: &Name, compress: bool) -> Result<()> {
        let wire = name.as_wire();
        let mut pos = 0usize;
        // Walk suffixes from the full name downwards; emit a pointer at the
        // first suffix we have already written.
        while wire[pos] != 0 {
            let suffix_key: Vec<u8> = wire[pos..].to_ascii_lowercase();
            if compress {
                if let Some(&target) = self.seen.get(&suffix_key) {
                    self.write_u16(0xc000 | target as u16);
                    return Ok(());
                }
            }
            let here = self.buf.len();
            if here <= MAX_POINTER_TARGET {
                self.seen.entry(suffix_key).or_insert(here);
            }
            let label_len = wire[pos] as usize;
            self.buf.extend_from_slice(&wire[pos..pos + 1 + label_len]);
            pos += 1 + label_len;
        }
        self.write_u8(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        let mut w = WireWriter::new();
        w.write_u8(1);
        w.write_u16(0x0203);
        w.write_u32(0x04050607);
        w.write_slice(&[8, 9]);
        assert_eq!(w.into_bytes(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn patch() {
        let mut w = WireWriter::new();
        w.write_u16(0);
        w.write_u8(0xaa);
        w.patch_u16(0, 0x1234);
        assert_eq!(w.into_bytes(), vec![0x12, 0x34, 0xaa]);
    }

    #[test]
    fn character_string_limits() {
        let mut w = WireWriter::new();
        w.write_character_string(b"hello").unwrap();
        assert!(w.write_character_string(&[0u8; 256]).is_err());
        assert_eq!(w.into_bytes(), vec![5, b'h', b'e', b'l', b'l', b'o']);
    }

    #[test]
    fn compression_reuses_suffixes() {
        let mut w = WireWriter::new();
        let a = Name::from_ascii("www.example.com").unwrap();
        let b = Name::from_ascii("mail.example.com").unwrap();
        w.write_name(&a).unwrap();
        let before = w.len();
        w.write_name(&b).unwrap();
        // "mail" (5 bytes) + pointer (2 bytes) = 7 bytes.
        assert_eq!(w.len() - before, 7);
        let bytes = w.into_bytes();
        // Re-parse both names to prove correctness.
        let (n1, next) = Name::parse(&bytes, 0).unwrap();
        let (n2, _) = Name::parse(&bytes, next).unwrap();
        assert_eq!(n1, a);
        assert_eq!(n2, b);
    }

    #[test]
    fn full_name_reuse_is_a_single_pointer() {
        let mut w = WireWriter::new();
        let a = Name::from_ascii("example.com").unwrap();
        w.write_name(&a).unwrap();
        let before = w.len();
        w.write_name(&a).unwrap();
        assert_eq!(w.len() - before, 2);
    }

    #[test]
    fn compression_is_case_insensitive() {
        let mut w = WireWriter::new();
        w.write_name(&Name::from_ascii("Example.COM").unwrap())
            .unwrap();
        let before = w.len();
        w.write_name(&Name::from_ascii("example.com").unwrap())
            .unwrap();
        assert_eq!(w.len() - before, 2);
    }

    #[test]
    fn uncompressed_writes_full_name() {
        let mut w = WireWriter::new();
        let a = Name::from_ascii("example.com").unwrap();
        w.write_name(&a).unwrap();
        let before = w.len();
        w.write_name_uncompressed(&a).unwrap();
        assert_eq!(w.len() - before, a.wire_len());
    }

    #[test]
    fn root_name() {
        let mut w = WireWriter::new();
        w.write_name(&Name::root()).unwrap();
        assert_eq!(w.into_bytes(), vec![0]);
    }
}
