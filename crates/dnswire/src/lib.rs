//! `dnswire` — DNS wire format and IP/UDP header codecs, from scratch.
//!
//! This crate implements the subset of the DNS protocol needed by a passive
//! DNS measurement platform in the spirit of smoltcp: simple, robust, and
//! extensively documented, with no `unsafe` and no complicated type tricks.
//!
//! # What is implemented
//!
//! * Domain names ([`Name`]): label storage, case-insensitive comparison and
//!   hashing, parsing with RFC 1035 compression pointers (loop- and
//!   bounds-safe), and building with compression.
//! * The 12-byte DNS header ([`Header`]) with all standard flags.
//! * Questions, resource records, and RDATA for the record types a resolver
//!   ↔ authoritative measurement pipeline encounters: A, AAAA, NS, CNAME,
//!   SOA, PTR, MX, TXT, SRV, DS, RRSIG, and OPT (EDNS0).
//! * Full messages ([`Message`]): parse from and serialize to wire bytes.
//! * EDNS0 ([`Edns`]): UDP payload size, extended RCODE, and the DO bit.
//! * IPv4, IPv6 and UDP header codecs ([`ip`]), plus hop-count inference
//!   from the received IP TTL ([`ip::infer_hops`]).
//!
//! # What is deliberately not implemented
//!
//! Name server logic, DNSSEC validation (we only *carry* RRSIG/DS
//! records, as the paper's pipeline does), and zone file parsing. TCP/53
//! *framing* — the paper's stated future work — is provided by [`tcp`];
//! socket handling stays with the caller.
//!
//! # Example
//!
//! ```
//! use dnswire::{Message, Name, RecordType, Rcode};
//!
//! let mut query = Message::query(0x1234, Name::from_ascii("www.example.com").unwrap(),
//!                                RecordType::A);
//! query.header.rd = true;
//! let wire = query.to_bytes().unwrap();
//! let parsed = Message::parse(&wire).unwrap();
//! assert_eq!(parsed.header.id, 0x1234);
//! assert_eq!(parsed.questions[0].qtype, RecordType::A);
//! assert_eq!(parsed.header.rcode, Rcode::NoError);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod framing;
mod header;
pub mod ip;
mod message;
mod name;
mod question;
mod rdata;
mod reader;
mod record;
pub mod tcp;
mod types;
mod writer;

pub use error::WireError;
pub use header::Header;
pub use message::{Edns, Message};
pub use name::{Label, Name, MAX_LABEL_LEN, MAX_NAME_LEN};
pub use question::Question;
pub use rdata::{Ds, Mx, RData, Rrsig, Soa, SvcRecord};
pub use reader::WireReader;
pub use record::{Record, Section};
pub use types::{Opcode, Rcode, RecordClass, RecordType};
pub use writer::WireWriter;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, WireError>;
