//! Domain names: storage, comparison, parsing and presentation format.
//!
//! A [`Name`] is stored in canonical wire form (a sequence of
//! length-prefixed labels terminated by the root's zero octet) with all
//! compression pointers already resolved. Comparisons and hashing are
//! ASCII-case-insensitive, as required by RFC 4343.

use crate::{Result, WireError};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Maximum length of a single label, in octets (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;

/// Maximum length of a complete name on the wire, in octets.
pub const MAX_NAME_LEN: usize = 255;

/// Maximum number of compression pointers we will chase in one name.
///
/// Since every pointer must point strictly backwards, a valid chain is
/// bounded by the message size; this limit just keeps adversarial inputs
/// from costing more than a trivial amount of work.
const MAX_POINTER_HOPS: usize = 127;

/// A single label of a domain name, borrowed from the name's storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label<'a>(&'a [u8]);

impl<'a> Label<'a> {
    /// Raw octets of the label (1..=63 bytes, never empty).
    pub fn as_bytes(&self) -> &'a [u8] {
        self.0
    }

    /// Label length in octets.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Labels are never empty; provided for clippy-idiomatic completeness.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Case-insensitive equality with an ASCII string.
    pub fn eq_ignore_case(&self, other: &[u8]) -> bool {
        self.0.eq_ignore_ascii_case(other)
    }
}

impl fmt::Display for Label<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in self.0 {
            match b {
                b'.' | b'\\' => write!(f, "\\{}", b as char)?,
                0x21..=0x7e => write!(f, "{}", b as char)?,
                other => write!(f, "\\{other:03}")?,
            }
        }
        Ok(())
    }
}

/// A fully-qualified domain name in uncompressed wire form.
///
/// The root name is a single zero octet. `Name` values are cheap to clone
/// (a `Vec<u8>` of at most 255 bytes) and hash/compare case-insensitively.
#[derive(Debug, Clone)]
pub struct Name {
    /// Wire form: `len label len label ... 0`.
    wire: Vec<u8>,
}

impl Name {
    /// The root name `.`.
    pub fn root() -> Self {
        Name { wire: vec![0] }
    }

    /// Build a name from presentation format, e.g. `"www.example.com"`.
    ///
    /// A trailing dot is accepted and ignored; the empty string and `"."`
    /// both denote the root. Escapes are not supported here — names in the
    /// measurement pipeline are machine-generated.
    pub fn from_ascii(s: &str) -> Result<Self> {
        if !s.is_ascii() {
            return Err(WireError::NotAscii);
        }
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut wire = Vec::with_capacity(s.len() + 2);
        for label in s.split('.') {
            if label.is_empty() {
                return Err(WireError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(label.len()));
            }
            wire.push(label.len() as u8);
            wire.extend_from_slice(label.as_bytes());
        }
        wire.push(0);
        if wire.len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire.len()));
        }
        Ok(Name { wire })
    }

    /// Build a name from raw labels (each 1..=63 arbitrary octets).
    pub fn from_labels<I, L>(labels: I) -> Result<Self>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut wire = Vec::new();
        for label in labels {
            let label = label.as_ref();
            if label.is_empty() {
                return Err(WireError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(label.len()));
            }
            wire.push(label.len() as u8);
            wire.extend_from_slice(label);
        }
        wire.push(0);
        if wire.len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire.len()));
        }
        Ok(Name { wire })
    }

    /// Parse a (possibly compressed) name out of `msg` starting at `pos`.
    ///
    /// Returns the name and the offset just past the name *in the original
    /// stream* (i.e. past the first pointer if the name was compressed).
    /// Pointers must point strictly backwards, which both matches how real
    /// encoders emit them and guarantees termination.
    pub fn parse(msg: &[u8], pos: usize) -> Result<(Self, usize)> {
        let mut wire = Vec::new();
        let mut cursor = pos;
        // Offset just past the name in the original stream; set when we
        // follow the first pointer.
        let mut end: Option<usize> = None;
        let mut hops = 0usize;
        // The lowest position we have jumped to so far; every pointer must
        // target something strictly below it, which prevents loops.
        let mut min_jump = pos;

        loop {
            let len = *msg
                .get(cursor)
                .ok_or(WireError::Truncated { what: "name label" })? as usize;
            match len {
                0 => {
                    wire.push(0);
                    if wire.len() > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(wire.len()));
                    }
                    let after = end.unwrap_or(cursor + 1);
                    return Ok((Name { wire }, after));
                }
                1..=MAX_LABEL_LEN => {
                    let label_end = cursor + 1 + len;
                    let label = msg
                        .get(cursor + 1..label_end)
                        .ok_or(WireError::Truncated { what: "name label" })?;
                    wire.push(len as u8);
                    wire.extend_from_slice(label);
                    if wire.len() + 1 > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(wire.len() + 1));
                    }
                    cursor = label_end;
                }
                _ if len & 0xc0 == 0xc0 => {
                    let lo = *msg.get(cursor + 1).ok_or(WireError::Truncated {
                        what: "compression pointer",
                    })? as usize;
                    let target = ((len & 0x3f) << 8) | lo;
                    if target >= min_jump {
                        return Err(WireError::BadPointer { at: cursor, target });
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer { at: cursor, target });
                    }
                    end.get_or_insert(cursor + 2);
                    min_jump = target;
                    cursor = target;
                }
                other => return Err(WireError::BadLabelType(other as u8)),
            }
        }
    }

    /// Uncompressed wire form, including the terminating zero octet.
    pub fn as_wire(&self) -> &[u8] {
        &self.wire
    }

    /// Length of the uncompressed wire form in octets.
    pub fn wire_len(&self) -> usize {
        self.wire.len()
    }

    /// True if this is the root name.
    pub fn is_root(&self) -> bool {
        self.wire.len() == 1
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// Iterate over the labels, leftmost (most specific) first.
    pub fn labels(&self) -> impl Iterator<Item = Label<'_>> {
        LabelIter {
            wire: &self.wire,
            pos: 0,
        }
    }

    /// The name with the leftmost label removed; `None` for the root.
    pub fn parent(&self) -> Option<Name> {
        if self.is_root() {
            return None;
        }
        let skip = 1 + self.wire[0] as usize;
        Some(Name {
            wire: self.wire[skip..].to_vec(),
        })
    }

    /// Keep only the rightmost `n` labels (n=0 gives the root).
    pub fn suffix(&self, n: usize) -> Name {
        let total = self.label_count();
        if n >= total {
            return self.clone();
        }
        let mut name = self.clone();
        for _ in 0..total - n {
            name = name.parent().expect("counted labels");
        }
        name
    }

    /// True if `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        let mine = self.wire_len();
        let theirs = other.wire_len();
        if theirs > mine {
            return false;
        }
        self.wire[mine - theirs..].eq_ignore_ascii_case(&other.wire)
    }

    /// Prepend a label, producing `label.self`.
    pub fn prepend(&self, label: &[u8]) -> Result<Name> {
        if label.is_empty() {
            return Err(WireError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(label.len()));
        }
        let mut wire = Vec::with_capacity(self.wire.len() + label.len() + 1);
        wire.push(label.len() as u8);
        wire.extend_from_slice(label);
        wire.extend_from_slice(&self.wire);
        if wire.len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire.len()));
        }
        Ok(Name { wire })
    }

    /// Canonical lowercase presentation form without the trailing dot
    /// (the root renders as `"."`).
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity(self.wire.len());
        self.write_ascii(&mut out).expect("fmt to String");
        out
    }

    /// Write the canonical lowercase presentation form into `out` without
    /// allocating; output is byte-identical to [`Name::to_ascii`].
    ///
    /// This is the hot-path form used by the pipeline's key extraction,
    /// where per-transaction `String` allocations are forbidden.
    pub fn write_ascii<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        if self.is_root() {
            return out.write_char('.');
        }
        for (i, label) in self.labels().enumerate() {
            if i > 0 {
                out.write_char('.')?;
            }
            // Same escaping as the `Label` Display impl, lowercased: the
            // escape sequences themselves contain no letters, so
            // per-character lowercasing matches lowercasing the rendered
            // string.
            for &b in label.as_bytes() {
                match b {
                    b'.' | b'\\' => {
                        out.write_char('\\')?;
                        out.write_char(b as char)?;
                    }
                    0x21..=0x7e => out.write_char(b.to_ascii_lowercase() as char)?,
                    other => write!(out, "\\{other:03}")?,
                }
            }
        }
        Ok(())
    }
}

struct LabelIter<'a> {
    wire: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = Label<'a>;

    fn next(&mut self) -> Option<Label<'a>> {
        let len = self.wire[self.pos] as usize;
        if len == 0 {
            return None;
        }
        let start = self.pos + 1;
        self.pos = start + len;
        Some(Label(&self.wire[start..start + len]))
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.wire.eq_ignore_ascii_case(&other.wire)
    }
}

impl Eq for Name {}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for &b in &self.wire {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.wire.iter().map(|b| b.to_ascii_lowercase());
        let b = other.wire.iter().map(|b| b.to_ascii_lowercase());
        a.cmp(b)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

impl std::str::FromStr for Name {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self> {
        Name::from_ascii(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_name() {
        let root = Name::root();
        assert!(root.is_root());
        assert_eq!(root.label_count(), 0);
        assert_eq!(root.to_ascii(), ".");
        assert_eq!(root.wire_len(), 1);
        assert_eq!(Name::from_ascii("").unwrap(), root);
        assert_eq!(Name::from_ascii(".").unwrap(), root);
    }

    #[test]
    fn presentation_roundtrip() {
        let n = Name::from_ascii("www.Example.COM").unwrap();
        assert_eq!(n.to_ascii(), "www.example.com");
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.wire_len(), 17);
    }

    #[test]
    fn trailing_dot_is_accepted() {
        assert_eq!(
            Name::from_ascii("example.com.").unwrap(),
            Name::from_ascii("example.com").unwrap()
        );
    }

    #[test]
    fn empty_label_rejected() {
        assert_eq!(Name::from_ascii("a..b").unwrap_err(), WireError::EmptyLabel);
    }

    #[test]
    fn long_label_rejected() {
        let label = "a".repeat(64);
        assert!(matches!(
            Name::from_ascii(&label).unwrap_err(),
            WireError::LabelTooLong(64)
        ));
        // 63 is fine.
        assert!(Name::from_ascii(&"a".repeat(63)).is_ok());
    }

    #[test]
    fn long_name_rejected() {
        // 4 * 63 + 4 + 1 = 257 > 255.
        let name = [
            "a".repeat(63),
            "b".repeat(63),
            "c".repeat(63),
            "d".repeat(63),
        ]
        .join(".");
        assert!(matches!(
            Name::from_ascii(&name).unwrap_err(),
            WireError::NameTooLong(_)
        ));
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        let a = Name::from_ascii("WWW.EXAMPLE.COM").unwrap();
        let b = Name::from_ascii("www.example.com").unwrap();
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn parent_and_suffix() {
        let n = Name::from_ascii("a.b.example.com").unwrap();
        assert_eq!(n.parent().unwrap().to_ascii(), "b.example.com");
        assert_eq!(n.suffix(2).to_ascii(), "example.com");
        assert_eq!(n.suffix(1).to_ascii(), "com");
        assert_eq!(n.suffix(0), Name::root());
        assert_eq!(n.suffix(9), n);
        assert_eq!(Name::root().parent(), None);
    }

    #[test]
    fn subdomain_check() {
        let com = Name::from_ascii("com").unwrap();
        let ex = Name::from_ascii("example.COM").unwrap();
        let www = Name::from_ascii("www.example.com").unwrap();
        assert!(www.is_subdomain_of(&ex));
        assert!(www.is_subdomain_of(&com));
        assert!(www.is_subdomain_of(&Name::root()));
        assert!(ex.is_subdomain_of(&ex));
        assert!(!ex.is_subdomain_of(&www));
        // "le.com" is not a parent of "example.com" despite the byte suffix.
        let le = Name::from_ascii("le.com").unwrap();
        assert!(!ex.is_subdomain_of(&le));
    }

    #[test]
    fn prepend_label() {
        let base = Name::from_ascii("example.com").unwrap();
        let www = base.prepend(b"www").unwrap();
        assert_eq!(www.to_ascii(), "www.example.com");
        assert!(base.prepend(b"").is_err());
    }

    #[test]
    fn parse_uncompressed() {
        let wire = b"\x03www\x07example\x03com\x00rest";
        let (name, off) = Name::parse(wire, 0).unwrap();
        assert_eq!(name.to_ascii(), "www.example.com");
        assert_eq!(off, 17);
    }

    #[test]
    fn parse_with_pointer() {
        // offset 0: "example.com", offset 13: "www" + ptr to 0.
        let mut msg = Vec::new();
        msg.extend_from_slice(b"\x07example\x03com\x00");
        let ptr_at = msg.len();
        msg.extend_from_slice(b"\x03www\xc0\x00");
        let (name, off) = Name::parse(&msg, ptr_at).unwrap();
        assert_eq!(name.to_ascii(), "www.example.com");
        assert_eq!(off, ptr_at + 6);
    }

    #[test]
    fn pointer_loop_rejected() {
        // Pointer to itself.
        let msg = b"\xc0\x00";
        assert!(matches!(
            Name::parse(msg, 0).unwrap_err(),
            WireError::BadPointer { .. }
        ));
        // Two pointers chasing each other: 0 -> 2 is forward, rejected.
        let msg = b"\xc0\x02\xc0\x00";
        assert!(Name::parse(msg, 0).is_err());
        // Backward chain that loops: parse at 2 jumps to 0, which would
        // need to jump forward again -> rejected by the strictly-backward
        // rule.
        let msg = b"\xc0\x02\xc0\x00";
        assert!(Name::parse(msg, 2).is_err());
    }

    #[test]
    fn truncated_inputs_rejected() {
        assert!(Name::parse(b"", 0).is_err());
        assert!(Name::parse(b"\x03ww", 0).is_err());
        assert!(Name::parse(b"\x03www", 0).is_err()); // missing terminator
        assert!(Name::parse(b"\xc0", 0).is_err()); // half a pointer
    }

    #[test]
    fn reserved_label_types_rejected() {
        assert!(matches!(
            Name::parse(b"\x40abc", 0).unwrap_err(),
            WireError::BadLabelType(0x40)
        ));
        assert!(matches!(
            Name::parse(b"\x80abc", 0).unwrap_err(),
            WireError::BadLabelType(0x80)
        ));
    }

    #[test]
    fn display_escapes_binary_labels() {
        let n = Name::from_labels([b"a.b" as &[u8], b"\x01\x02"]).unwrap();
        assert_eq!(n.to_ascii(), "a\\.b.\\001\\002");
    }

    #[test]
    fn ordering_is_case_insensitive() {
        let a = Name::from_ascii("ALPHA.example").unwrap();
        let b = Name::from_ascii("alpha.example").unwrap();
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }
}
