//! The question section entry (RFC 1035 §4.1.2).

use crate::{Name, RecordClass, RecordType, Result, WireReader, WireWriter};
use std::fmt;

/// A single question: what name, what type, what class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub qname: Name,
    /// Queried record type.
    pub qtype: RecordType,
    /// Queried class, virtually always `IN`.
    pub qclass: RecordClass,
}

impl Question {
    /// Convenience constructor for an `IN`-class question.
    pub fn new(qname: Name, qtype: RecordType) -> Self {
        Question {
            qname,
            qtype,
            qclass: RecordClass::In,
        }
    }

    pub(crate) fn parse(r: &mut WireReader<'_>) -> Result<Self> {
        let qname = r.read_name()?;
        let qtype = RecordType::from_code(r.read_u16("qtype")?);
        let qclass = RecordClass::from_code(r.read_u16("qclass")?);
        Ok(Question {
            qname,
            qtype,
            qclass,
        })
    }

    pub(crate) fn write(&self, w: &mut WireWriter) -> Result<()> {
        w.write_name(&self.qname)?;
        w.write_u16(self.qtype.code());
        w.write_u16(self.qclass.code());
        Ok(())
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.qname, self.qclass, self.qtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let q = Question::new(Name::from_ascii("example.com").unwrap(), RecordType::Aaaa);
        let mut w = WireWriter::new();
        q.write(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Question::parse(&mut r).unwrap(), q);
        assert!(r.is_empty());
    }

    #[test]
    fn display() {
        let q = Question::new(Name::from_ascii("a.b").unwrap(), RecordType::Mx);
        assert_eq!(q.to_string(), "a.b IN MX");
    }
}
