//! A bounds-checked cursor over a DNS message.

use crate::{Name, Result, WireError};

/// Sequential reader over a whole DNS message.
///
/// Name decompression needs access to the entire message, so the reader
/// keeps the full slice and an explicit position rather than shrinking a
/// sub-slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    msg: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Create a reader positioned at the start of `msg`.
    pub fn new(msg: &'a [u8]) -> Self {
        WireReader { msg, pos: 0 }
    }

    /// Current offset from the start of the message.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.msg.len() - self.pos
    }

    /// True once the whole message has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Move to an absolute offset (used to skip over opaque RDATA).
    pub fn seek(&mut self, pos: usize) -> Result<()> {
        if pos > self.msg.len() {
            return Err(WireError::Truncated {
                what: "seek target",
            });
        }
        self.pos = pos;
        Ok(())
    }

    /// Read one octet.
    pub fn read_u8(&mut self, what: &'static str) -> Result<u8> {
        let b = *self
            .msg
            .get(self.pos)
            .ok_or(WireError::Truncated { what })?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a big-endian u16.
    pub fn read_u16(&mut self, what: &'static str) -> Result<u16> {
        let bytes = self.read_slice(2, what)?;
        Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
    }

    /// Read a big-endian u32.
    pub fn read_u32(&mut self, what: &'static str) -> Result<u32> {
        let bytes = self.read_slice(4, what)?;
        Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Read `len` raw octets.
    pub fn read_slice(&mut self, len: usize, what: &'static str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(WireError::Truncated { what })?;
        let slice = self
            .msg
            .get(self.pos..end)
            .ok_or(WireError::Truncated { what })?;
        self.pos = end;
        Ok(slice)
    }

    /// Read a possibly-compressed name; the cursor advances past the name
    /// as it appears in the stream (i.e. past the first pointer).
    pub fn read_name(&mut self) -> Result<Name> {
        let (name, next) = Name::parse(self.msg, self.pos)?;
        self.pos = next;
        Ok(name)
    }

    /// Read an RFC 1035 character-string (one length octet + payload).
    pub fn read_character_string(&mut self) -> Result<&'a [u8]> {
        let len = self.read_u8("character-string length")? as usize;
        self.read_slice(len, "character-string")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reads() {
        let buf = [0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.read_u8("x").unwrap(), 0x12);
        assert_eq!(r.read_u16("x").unwrap(), 0x3456);
        assert_eq!(r.read_u32("x").unwrap(), 0x789abcde);
        assert!(r.is_empty());
        assert!(r.read_u8("x").is_err());
    }

    #[test]
    fn slice_and_seek() {
        let buf = [1, 2, 3, 4, 5];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.read_slice(2, "x").unwrap(), &[1, 2]);
        r.seek(4).unwrap();
        assert_eq!(r.read_u8("x").unwrap(), 5);
        assert!(r.seek(6).is_err());
        r.seek(5).unwrap(); // end is a valid position
        assert!(r.is_empty());
    }

    #[test]
    fn character_string() {
        let buf = [3, b'a', b'b', b'c', 0];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.read_character_string().unwrap(), b"abc");
        assert_eq!(r.read_character_string().unwrap(), b"");
        assert!(r.read_character_string().is_err());
    }

    #[test]
    fn name_read_advances_past_pointer() {
        let mut msg = Vec::from(&b"\x03com\x00"[..]);
        let start = msg.len();
        msg.extend_from_slice(b"\x07example\xc0\x00\xff");
        let mut r = WireReader::new(&msg);
        r.seek(start).unwrap();
        let name = r.read_name().unwrap();
        assert_eq!(name.to_ascii(), "example.com");
        assert_eq!(r.read_u8("tail").unwrap(), 0xff);
    }
}
