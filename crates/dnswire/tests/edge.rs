//! Edge-case tests for the wire format: size limits, deep compression,
//! EDNS corner cases, and adversarial inputs beyond what the property
//! tests randomly reach.

use dnswire::{ip, Edns, Message, Name, Question, RData, Rcode, Record, RecordType, WireError};
use std::net::Ipv4Addr;

#[test]
fn maximum_length_name_roundtrips() {
    // 3×63 + 61 + dots = 253 presentation chars → 255 wire bytes.
    let name = format!(
        "{}.{}.{}.{}",
        "a".repeat(63),
        "b".repeat(63),
        "c".repeat(63),
        "d".repeat(61)
    );
    let n = Name::from_ascii(&name).unwrap();
    assert_eq!(n.wire_len(), 255);
    let msg = Message::query(1, n.clone(), RecordType::A);
    let wire = msg.to_bytes().unwrap();
    let parsed = Message::parse(&wire).unwrap();
    assert_eq!(parsed.questions[0].qname, n);
    // One byte longer must fail.
    let too_long = format!(
        "{}.{}.{}.{}",
        "a".repeat(63),
        "b".repeat(63),
        "c".repeat(63),
        "d".repeat(62)
    );
    assert!(matches!(
        Name::from_ascii(&too_long).unwrap_err(),
        WireError::NameTooLong(_)
    ));
}

#[test]
fn deep_compression_chain_parses() {
    // Build a message by writing names that share ever-longer suffixes;
    // each new name points at the previous one: a chain dozens deep.
    let mut msg = Message::query(7, Name::from_ascii("l0.example").unwrap(), RecordType::A);
    msg.header.qr = true;
    let mut name = Name::from_ascii("example").unwrap();
    for i in 0..60 {
        name = name.prepend(format!("x{i}").as_bytes()).unwrap_or(name);
        if name.wire_len() > 200 {
            break;
        }
        msg.answers.push(Record::new(
            name.clone(),
            60,
            RData::A(Ipv4Addr::new(10, 0, 0, i as u8)),
        ));
    }
    assert!(msg.answers.len() > 40);
    let wire = msg.to_bytes().unwrap();
    let parsed = Message::parse(&wire).unwrap();
    assert_eq!(parsed.answers.len(), msg.answers.len());
    for (a, b) in parsed.answers.iter().zip(&msg.answers) {
        assert_eq!(a.name, b.name);
    }
}

#[test]
fn large_txt_message_near_64k() {
    let mut msg = Message::query(9, Name::from_ascii("big.test").unwrap(), RecordType::Txt);
    msg.header.qr = true;
    // 240 TXT records × ~268 B each ≈ 64.3 KiB, just under the limit.
    for i in 0..240 {
        msg.answers.push(Record::new(
            Name::from_ascii("big.test").unwrap(),
            60,
            RData::Txt(vec![vec![i as u8; 255]]),
        ));
    }
    let wire = msg.to_bytes().unwrap();
    assert!(wire.len() > 60_000 && wire.len() <= 65_535);
    let parsed = Message::parse(&wire).unwrap();
    assert_eq!(parsed.answers.len(), 240);
    // A handful more records must overflow the 16-bit length space.
    for _ in 0..5 {
        msg.answers.push(Record::new(
            Name::from_ascii("big.test").unwrap(),
            60,
            RData::Txt(vec![vec![0u8; 255]]),
        ));
    }
    assert!(matches!(
        msg.to_bytes().unwrap_err(),
        WireError::MessageTooLong(_)
    ));
}

#[test]
fn empty_question_section_roundtrips() {
    // Some real-world responses (REFUSED) carry zero questions.
    let msg = Message {
        header: dnswire::Header {
            id: 5,
            qr: true,
            rcode: Rcode::Refused,
            ..Default::default()
        },
        questions: vec![],
        answers: vec![],
        authorities: vec![],
        additionals: vec![],
        edns: None,
    };
    let wire = msg.to_bytes().unwrap();
    let parsed = Message::parse(&wire).unwrap();
    assert!(parsed.questions.is_empty());
    assert_eq!(parsed.rcode(), Rcode::Refused);
}

#[test]
fn multiple_questions_roundtrip() {
    let mut msg = Message::query(3, Name::from_ascii("a.test").unwrap(), RecordType::A);
    msg.questions.push(Question::new(
        Name::from_ascii("b.test").unwrap(),
        RecordType::Aaaa,
    ));
    let wire = msg.to_bytes().unwrap();
    let parsed = Message::parse(&wire).unwrap();
    assert_eq!(parsed.questions.len(), 2);
    assert_eq!(parsed.questions[1].qtype, RecordType::Aaaa);
}

#[test]
fn edns_with_options_payload() {
    let mut msg = Message::query(4, Name::from_ascii("opt.test").unwrap(), RecordType::A);
    msg.edns = Some(Edns {
        udp_payload_size: 4096,
        version: 0,
        dnssec_ok: false,
        // A cookie-like option: code 10, length 8.
        options: vec![0x00, 0x0a, 0x00, 0x08, 1, 2, 3, 4, 5, 6, 7, 8],
    });
    let wire = msg.to_bytes().unwrap();
    let parsed = Message::parse(&wire).unwrap();
    let edns = parsed.edns.unwrap();
    assert_eq!(edns.options.len(), 12);
    assert_eq!(edns.udp_payload_size, 4096);
}

#[test]
fn opt_record_is_never_in_additionals() {
    let mut msg = Message::query(6, Name::from_ascii("x.test").unwrap(), RecordType::A);
    msg.edns = Some(Edns::default());
    msg.additionals.push(Record::new(
        Name::from_ascii("glue.test").unwrap(),
        60,
        RData::A(Ipv4Addr::new(1, 1, 1, 1)),
    ));
    let wire = msg.to_bytes().unwrap();
    let parsed = Message::parse(&wire).unwrap();
    assert_eq!(parsed.additionals.len(), 1, "OPT is lifted out");
    assert!(parsed.edns.is_some());
    assert!(parsed
        .additionals
        .iter()
        .all(|r| r.rtype() != RecordType::Opt));
}

#[test]
fn truncation_bit_survives() {
    let mut msg = Message::query(8, Name::from_ascii("t.test").unwrap(), RecordType::Any);
    msg.header.qr = true;
    msg.header.tc = true;
    let wire = msg.to_bytes().unwrap();
    assert!(Message::parse(&wire).unwrap().header.tc);
}

#[test]
fn zero_ttl_and_max_ttl_records() {
    for ttl in [0u32, u32::MAX] {
        let mut msg = Message::query(2, Name::from_ascii("ttl.test").unwrap(), RecordType::A);
        msg.header.qr = true;
        msg.answers.push(Record::new(
            Name::from_ascii("ttl.test").unwrap(),
            ttl,
            RData::A(Ipv4Addr::new(9, 9, 9, 9)),
        ));
        let parsed = Message::parse(&msg.to_bytes().unwrap()).unwrap();
        assert_eq!(parsed.answers[0].ttl, ttl);
    }
}

#[test]
fn pointer_to_middle_of_name_is_valid() {
    // Pointer targets may land inside a previously written name
    // (pointing at a suffix), which our writer emits routinely; verify a
    // hand-built case parses.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"\x03www\x07example\x03com\x00"); // offset 0
    let suffix_at = 4; // "example.com" starts at offset 4
    bytes.extend_from_slice(b"\x04mail"); // second name at offset 17
    bytes.push(0xc0);
    bytes.push(suffix_at as u8);
    let (n, _) = Name::parse(&bytes, 17).unwrap();
    assert_eq!(n.to_ascii(), "mail.example.com");
}

#[test]
fn ipv6_hop_limit_roundtrip_through_packets() {
    let payload = Message::query(1, Name::from_ascii("v6.test").unwrap(), RecordType::Aaaa)
        .to_bytes()
        .unwrap();
    for hop_limit in [1u8, 64, 255] {
        let pkt = ip::build_udp_packet(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            1234,
            53,
            hop_limit,
            &payload,
        );
        let dg = ip::parse_udp_packet(&pkt).unwrap();
        assert_eq!(dg.ip.ttl, hop_limit);
    }
}

#[test]
fn header_counts_lie_high_is_rejected() {
    // Claim 10 answers but provide none: the parser must error cleanly.
    let msg = Message::query(1, Name::from_ascii("x.test").unwrap(), RecordType::A);
    let mut wire = msg.to_bytes().unwrap();
    wire[6] = 0;
    wire[7] = 10; // ANCOUNT = 10
    assert!(Message::parse(&wire).is_err());
}

#[test]
fn any_query_returns_both_families_when_dual_stacked() {
    // Exercise RecordType::Any end-to-end through simnet's server logic
    // via the public message types (document ANY semantics at the wire
    // level: both A and AAAA can share one ANSWER section).
    let mut msg = Message::query(1, Name::from_ascii("dual.test").unwrap(), RecordType::Any);
    msg.header.qr = true;
    msg.answers.push(Record::new(
        Name::from_ascii("dual.test").unwrap(),
        60,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    msg.answers.push(Record::new(
        Name::from_ascii("dual.test").unwrap(),
        60,
        RData::Aaaa("2001:db8::1".parse().unwrap()),
    ));
    let parsed = Message::parse(&msg.to_bytes().unwrap()).unwrap();
    let types: Vec<RecordType> = parsed.answers.iter().map(|r| r.rtype()).collect();
    assert!(types.contains(&RecordType::A) && types.contains(&RecordType::Aaaa));
}

// ---------------------------------------------------------------------
// Adversarial name decompression: raw byte constructions no well-formed
// encoder would emit. The parser must reject each with a clean error —
// never panic, never loop — because a collector decodes names from
// whatever the network hands it.
// ---------------------------------------------------------------------

#[test]
fn self_and_forward_pointers_are_rejected() {
    // A pointer to its own position would loop forever.
    assert!(matches!(
        Name::parse(&[0xc0, 0x00], 0).unwrap_err(),
        WireError::BadPointer { at: 0, target: 0 }
    ));
    // A forward pointer violates the strictly-backwards rule even when
    // its target holds a valid name.
    let msg = [0x01, b'a', 0xc0, 0x05, 0x01, b'b', 0x00];
    assert!(matches!(
        Name::parse(&msg, 2).unwrap_err(),
        WireError::BadPointer { at: 2, target: 5 }
    ));
}

#[test]
fn two_pointer_cycle_is_rejected() {
    // Offsets 0 and 2 point at each other; whichever end parsing starts
    // from, the second hop must fail the strictly-backwards check.
    let msg = [0xc0, 0x02, 0xc0, 0x00];
    assert!(matches!(
        Name::parse(&msg, 2).unwrap_err(),
        WireError::BadPointer { at: 0, target: 2 }
    ));
    assert!(matches!(
        Name::parse(&msg, 0).unwrap_err(),
        WireError::BadPointer { at: 0, target: 2 }
    ));
}

#[test]
fn pointer_and_label_past_end_are_rejected() {
    // The pointer's second octet is missing.
    assert!(matches!(
        Name::parse(&[0x01, b'a', 0xc0], 2).unwrap_err(),
        WireError::Truncated { .. }
    ));
    // A pointer aimed beyond the end of the message (necessarily forward,
    // so the backwards rule doubles as a bounds check).
    assert!(matches!(
        Name::parse(&[0x00, 0xc0, 0x07], 1).unwrap_err(),
        WireError::BadPointer { at: 1, target: 7 }
    ));
    // A label whose declared length runs past the buffer.
    assert!(matches!(
        Name::parse(&[0x05, b'a', b'b'], 0).unwrap_err(),
        WireError::Truncated { .. }
    ));
    // An empty buffer has no length octet at all.
    assert!(matches!(
        Name::parse(&[], 0).unwrap_err(),
        WireError::Truncated { .. }
    ));
}

#[test]
fn pointer_chain_depth_is_capped_at_127_hops() {
    // Root at offset 0, then pointer k at offset 2k−1 targeting the
    // previous pointer: parsing at pointer k chases exactly k hops. Every
    // hop is strictly backwards, so only the hop cap can stop a chain.
    let mut msg = vec![0x00];
    for k in 1..=128usize {
        let target = if k == 1 { 0 } else { 2 * k - 3 };
        msg.push(0xc0 | (target >> 8) as u8);
        msg.push((target & 0xff) as u8);
    }
    // 127 hops: allowed, resolves to the root.
    let (name, after) = Name::parse(&msg, 2 * 127 - 1).unwrap();
    assert!(name.is_root());
    assert_eq!(after, 2 * 127 - 1 + 2);
    // 128 hops: one past the cap, rejected.
    assert!(matches!(
        Name::parse(&msg, 2 * 128 - 1).unwrap_err(),
        WireError::BadPointer { .. }
    ));
}

#[test]
fn overlong_wire_name_errors_cleanly() {
    // Five 63-octet labels = 320 wire octets, past the 255 limit; the
    // parser must stop with NameTooLong, not build an oversized name.
    let mut msg = Vec::new();
    for _ in 0..5 {
        msg.push(63);
        msg.extend(std::iter::repeat_n(b'a', 63));
    }
    msg.push(0);
    assert!(matches!(
        Name::parse(&msg, 0).unwrap_err(),
        WireError::NameTooLong(_)
    ));
    // The reserved 0b01/0b10 length prefixes are rejected, not masked.
    assert!(matches!(
        Name::parse(&[0x40, 0x00], 0).unwrap_err(),
        WireError::BadLabelType(0x40)
    ));
    assert!(matches!(
        Name::parse(&[0x80, 0x00], 0).unwrap_err(),
        WireError::BadLabelType(0x80)
    ));
}

#[test]
fn name_parser_never_panics_or_loops_on_random_bytes() {
    // Deterministic splitmix64 fuzz: tens of thousands of random buffers,
    // biased toward pointer-dense garbage (high bits set). Every parse
    // must return — Ok or Err — in bounded time; looping or panicking
    // fails the test by construction.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut parses = 0u64;
    for case in 0..20_000u64 {
        let len = (next() % 64) as usize;
        let mut buf: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        if case % 3 == 0 {
            // Saturate with pointer-type octets to maximize chain chasing.
            for b in buf.iter_mut().step_by(2) {
                *b |= 0xc0;
            }
        }
        let pos = if len == 0 {
            0
        } else {
            (next() % len as u64) as usize
        };
        if let Ok((name, after)) = Name::parse(&buf, pos) {
            assert!(name.wire_len() <= 255);
            assert!(after <= buf.len());
            parses += 1;
        }
        // The same buffer must also be safe as a whole message.
        let _ = Message::parse(&buf);
    }
    // Sanity: the fuzz corpus is not all-rejects (short names do parse).
    assert!(parses > 0, "corpus never produced a parseable name");
}
