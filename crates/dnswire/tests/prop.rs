//! Property-based tests for the DNS wire format.
//!
//! Two families of properties:
//! 1. Round-trip: any message we can represent serializes and re-parses to
//!    an equal message.
//! 2. Robustness: the parser never panics and never reads out of bounds on
//!    arbitrary input bytes.

use dnswire::{
    ip, Edns, Header, Message, Mx, Name, Question, RData, Rcode, Record, RecordType, Soa, SvcRecord,
};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

/// A valid DNS label: 1..=63 octets. We generate printable ASCII plus a few
/// oddballs to exercise case-insensitivity and escaping.
fn arb_label() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            prop::char::range('a', 'z').prop_map(|c| c as u8),
            prop::char::range('A', 'Z').prop_map(|c| c as u8),
            prop::char::range('0', '9').prop_map(|c| c as u8),
            Just(b'-'),
            Just(b'_'),
        ],
        1..=20,
    )
}

fn arb_name() -> impl Strategy<Value = Name> {
    prop::collection::vec(arb_label(), 0..=6).prop_map(|labels| {
        if labels.is_empty() {
            Name::root()
        } else {
            Name::from_labels(labels).expect("labels are valid")
        }
    })
}

fn arb_rtype() -> impl Strategy<Value = RecordType> {
    prop_oneof![
        Just(RecordType::A),
        Just(RecordType::Aaaa),
        Just(RecordType::Ns),
        Just(RecordType::Cname),
        Just(RecordType::Ptr),
        Just(RecordType::Mx),
        Just(RecordType::Txt),
        Just(RecordType::Soa),
        Just(RecordType::Srv),
        Just(RecordType::Ds),
        (256u16..4096).prop_map(RecordType::from_code),
    ]
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx(Mx {
            preference,
            exchange
        })),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..=80), 1..=3)
            .prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<[u32; 5]>()).prop_map(|(mname, rname, v)| {
            RData::Soa(Soa {
                mname,
                rname,
                serial: v[0],
                refresh: v[1],
                retry: v[2],
                expire: v[3],
                minimum: v[4],
            })
        }),
        (any::<[u16; 3]>(), arb_name()).prop_map(|(v, target)| RData::Srv(SvcRecord {
            priority: v[0],
            weight: v[1],
            port: v[2],
            target
        })),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..=40)
        )
            .prop_map(
                |(key_tag, algorithm, digest_type, digest)| RData::Ds(dnswire::Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest
                })
            ),
        (4096u16..9999, prop::collection::vec(any::<u8>(), 0..=30))
            .prop_map(|(rtype, data)| { RData::Unknown { rtype, data } }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata())
        .prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
}

fn arb_header() -> impl Strategy<Value = Header> {
    (any::<u16>(), any::<[bool; 7]>(), 0u16..16).prop_map(|(id, f, rcode)| Header {
        id,
        qr: f[0],
        opcode: dnswire::Opcode::Query,
        aa: f[1],
        tc: f[2],
        rd: f[3],
        ra: f[4],
        ad: f[5],
        cd: f[6],
        rcode: Rcode::from_code(rcode),
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        arb_header(),
        prop::collection::vec((arb_name(), arb_rtype()), 0..=2),
        prop::collection::vec(arb_record(), 0..=4),
        prop::collection::vec(arb_record(), 0..=3),
        prop::collection::vec(arb_record(), 0..=3),
        prop::option::of((512u16..8192, any::<bool>())),
    )
        .prop_map(
            |(header, qs, answers, authorities, additionals, edns)| Message {
                header,
                questions: qs
                    .into_iter()
                    .map(|(qname, qtype)| Question::new(qname, qtype))
                    .collect(),
                answers,
                authorities,
                additionals,
                edns: edns.map(|(udp_payload_size, dnssec_ok)| Edns {
                    udp_payload_size,
                    version: 0,
                    dnssec_ok,
                    options: Vec::new(),
                }),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let wire = msg.to_bytes().expect("serializable");
        let parsed = Message::parse(&wire).expect("reparsable");
        prop_assert_eq!(parsed, msg);
    }

    #[test]
    fn name_roundtrip_via_presentation(name in arb_name()) {
        let text = name.to_ascii();
        let back = Name::from_ascii(&text).expect("presentation parses");
        prop_assert_eq!(back, name);
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..=512)) {
        // Must return (not panic, not hang); the result itself is free.
        let _ = Message::parse(&bytes);
    }

    #[test]
    fn name_parser_never_panics_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..=256),
        pos in 0usize..256,
    ) {
        let _ = Name::parse(&bytes, pos % (bytes.len() + 1));
    }

    #[test]
    fn mutated_valid_messages_never_panic(
        msg in arb_message(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..=8),
    ) {
        // Corrupt a valid message a few bytes at a time — the classic
        // fault-injection test for protocol parsers.
        let mut wire = msg.to_bytes().expect("serializable");
        for (idx, val) in flips {
            if wire.is_empty() { break; }
            let i = idx.index(wire.len());
            wire[i] ^= val;
        }
        let _ = Message::parse(&wire);
    }

    #[test]
    fn ip_udp_roundtrip_v4(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sport in 1u16..,
        ttl in 1u8..,
        payload in prop::collection::vec(any::<u8>(), 0..=512),
    ) {
        let src = Ipv4Addr::from(src);
        let dst = Ipv4Addr::from(dst);
        let pkt = ip::build_udp_packet(src.into(), dst.into(), sport, 53, ttl, &payload);
        let dg = ip::parse_udp_packet(&pkt).expect("self-built packet parses");
        prop_assert_eq!(dg.ip.src, std::net::IpAddr::V4(src));
        prop_assert_eq!(dg.ip.ttl, ttl);
        prop_assert_eq!(dg.udp.src_port, sport);
        prop_assert_eq!(&pkt[dg.payload_offset..dg.payload_offset + dg.payload_len], &payload[..]);
    }

    #[test]
    fn ip_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..=128)) {
        let _ = ip::parse_udp_packet(&bytes);
    }

    #[test]
    fn hop_inference_bounded(ttl in any::<u8>()) {
        if let Some(hops) = ip::infer_hops(ttl) {
            // Hops never exceed initial TTL and the received TTL is
            // consistent with some standard initial value.
            prop_assert!(hops < 255);
            let initial = ttl as u16 + hops as u16;
            prop_assert!([32u16, 64, 128, 255].contains(&initial));
        } else {
            prop_assert_eq!(ttl, 0);
        }
    }

    #[test]
    fn subdomain_relation_is_transitive(a in arb_name(), b in arb_name(), c in arb_name()) {
        if a.is_subdomain_of(&b) && b.is_subdomain_of(&c) {
            prop_assert!(a.is_subdomain_of(&c));
        }
    }

    #[test]
    fn suffix_is_subdomain_parent(name in arb_name(), n in 0usize..8) {
        let suffix = name.suffix(n);
        prop_assert!(name.is_subdomain_of(&suffix));
        prop_assert!(suffix.label_count() <= name.label_count());
    }
}
