//! `dnsobs` — the platform as a command-line tool.
//!
//! ```text
//! dnsobs simulate --duration 60 --out ./data     run the pipeline, write TSV files
//! dnsobs show ./data/srvip-60.tsv                pretty-print a TSV window
//! dnsobs top ./data/srvip-60.tsv --n 10          top rows of a window by hits
//! ```
//!
//! File names encode the dataset and the window start, like the paper's
//! storage layout (§2.4). A `10min` rollup is produced alongside the
//! minutely files when the run is long enough.

use dns_observatory::aggregate::{Aggregator, Level};
use dns_observatory::{tsv, Dataset, Observatory, ObservatoryConfig};
use simnet::{SimConfig, Simulation};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("simulate") => simulate(&args[1..]),
        Some("show") => show(&args[1..], usize::MAX),
        Some("top") => {
            let n = flag_value(&args[1..], "--n")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            show(&args[1..], n)
        }
        _ => {
            eprintln!(
                "usage:\n  dnsobs simulate [--duration SECS] [--window SECS] [--seed N] [--out DIR]\n  dnsobs show FILE.tsv\n  dnsobs top FILE.tsv [--n N]"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn simulate(args: &[String]) -> i32 {
    let duration: f64 = flag_value(args, "--duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let window: f64 = flag_value(args, "--window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(SimConfig::default().seed);
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or("./dnsobs-data"));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return 1;
    }

    let cfg = SimConfig {
        seed,
        ..SimConfig::small()
    };
    eprintln!(
        "simulating {duration}s of DNS traffic (seed {seed}), windows of {window}s -> {}",
        out.display()
    );
    let mut sim = Simulation::from_config(cfg);
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 10_000),
            (Dataset::Esld, 10_000),
            (Dataset::Qname, 10_000),
            (Dataset::Qtype, 64),
            (Dataset::Rcode, 16),
        ],
        window_secs: window,
        ..ObservatoryConfig::default()
    });
    sim.run(duration, &mut |tx| obs.ingest(tx));
    eprintln!("ingested {} transactions", obs.ingested());
    let store = obs.finish();

    // Minutely files + a coarse rollup ladder per dataset.
    let mut files = 0usize;
    for ds in [
        Dataset::SrvIp,
        Dataset::Esld,
        Dataset::Qname,
        Dataset::Qtype,
        Dataset::Rcode,
    ] {
        let mut agg = Aggregator::new(&[Level {
            name: "10win",
            fan_in: 10,
            retention: 1_000,
        }]);
        for w in store.dataset(ds) {
            let path = out.join(format!("{}-{:05}.tsv", ds.name(), w.start as u64));
            if write_dump(&path, w).is_err() {
                eprintln!("failed writing {}", path.display());
                return 1;
            }
            files += 1;
            agg.push((*w).clone());
        }
        for w in agg.completed(0) {
            let path = out.join(format!("{}-10win-{:05}.tsv", ds.name(), w.start as u64));
            if write_dump(&path, w).is_err() {
                return 1;
            }
            files += 1;
        }
    }
    eprintln!("wrote {files} TSV files to {}", out.display());
    0
}

fn write_dump(path: &Path, dump: &dns_observatory::WindowDump) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    tsv::write_window(&mut w, dump)
}

fn show(args: &[String], top: usize) -> i32 {
    let Some(path) = args.iter().find(|a| !a.starts_with("--") && a.ends_with(".tsv")) else {
        eprintln!("no .tsv file given");
        return 2;
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return 1;
        }
    };
    let dump = match tsv::read_window(BufReader::new(file)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return 1;
        }
    };
    println!(
        "dataset {} | window {}s @ t={}s | kept {} dropped {} filtered {}",
        dump.dataset, dump.length, dump.start, dump.kept, dump.dropped, dump.filtered
    );
    println!(
        "{:<40} {:>8} {:>7} {:>7} {:>9} {:>8}",
        "key", "hits", "nxd", "nodata", "delay_ms", "top_ttl"
    );
    for (key, row) in dump.rows.iter().take(top) {
        println!(
            "{:<40} {:>8} {:>6.1}% {:>6.1}% {:>9.1} {:>8}",
            key,
            row.hits,
            row.nxd_share() * 100.0,
            row.nodata_share() * 100.0,
            row.median_delay(),
            row.top_ttl()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    0
}
