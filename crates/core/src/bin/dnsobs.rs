//! `dnsobs` — the platform as a command-line tool.
//!
//! ```text
//! dnsobs simulate --duration 60 --out ./data     run the pipeline, write TSV files
//! dnsobs show ./data/srvip-60.tsv                pretty-print a TSV window
//! dnsobs top ./data/srvip-60.tsv --n 10          top rows of a window by hits
//! dnsobs collect --listen 127.0.0.1:5300         run the collector half of a feed
//! dnsobs sensor --connect 127.0.0.1:5300         run one sensor pushing into it
//! ```
//!
//! File names encode the dataset and the window start, like the paper's
//! storage layout (§2.4). A `10min` rollup is produced alongside the
//! minutely files when the run is long enough.
//!
//! `sensor`/`collect` split the platform at the paper's Figure 1 A→B
//! boundary: sensors summarize resolver traffic locally and stream the
//! summaries over TCP; the collector merges the streams back into one
//! time-ordered feed and runs the tracking pipeline on it. Start the
//! collector first (or don't — sensors reconnect with backoff), run one
//! `sensor --index I` process per sensor with the same `--seed` and
//! `--sensors N`, and the collector's TSV output matches a single-process
//! `simulate` run of the same seed.

use dns_observatory::aggregate::{Aggregator, Level};
use dns_observatory::{
    tsv, Dataset, Observatory, ObservatoryConfig, ThreadedPipeline, TimeSeriesStore, TxSummary,
};
use feed::{Collector, CollectorConfig, Sensor, SensorConfig};
use psl::Psl;
use simnet::{SimConfig, Simulation};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("simulate") => simulate(&args[1..]),
        Some("sensor") => sensor(&args[1..]),
        Some("collect") => collect(&args[1..]),
        Some("show") => show(&args[1..], usize::MAX),
        Some("top") => {
            let n = flag_value(&args[1..], "--n")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            show(&args[1..], n)
        }
        _ => {
            eprintln!(
                "usage:\n  dnsobs simulate [--duration SECS] [--window SECS] [--seed N] [--out DIR]\n  dnsobs sensor --connect ADDR [--duration SECS] [--seed N] [--sensors N] [--index I]\n  dnsobs collect --listen ADDR [--sensors N] [--window SECS] [--out DIR]\n  dnsobs show FILE.tsv\n  dnsobs top FILE.tsv [--n N]\n\nsensor:  simulate traffic, keep the 1/N slice owned by --index, and\n         stream its summaries to the collector (reconnects with backoff).\ncollect: accept N sensors, merge their streams in time order, run the\n         tracking pipeline, and write TSV windows like `simulate`."
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn simulate(args: &[String]) -> i32 {
    let duration: f64 = flag_value(args, "--duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let window: f64 = flag_value(args, "--window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(SimConfig::default().seed);
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or("./dnsobs-data"));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return 1;
    }

    let cfg = SimConfig {
        seed,
        ..SimConfig::small()
    };
    eprintln!(
        "simulating {duration}s of DNS traffic (seed {seed}), windows of {window}s -> {}",
        out.display()
    );
    let mut sim = Simulation::from_config(cfg);
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: default_datasets(),
        window_secs: window,
        ..ObservatoryConfig::default()
    });
    sim.run(duration, &mut |tx| obs.ingest(tx));
    eprintln!("ingested {} transactions", obs.ingested());
    let store = obs.finish();

    match write_store(&out, &store) {
        Ok(files) => {
            eprintln!("wrote {files} TSV files to {}", out.display());
            0
        }
        Err(path) => {
            eprintln!("failed writing {}", path.display());
            1
        }
    }
}

fn default_datasets() -> Vec<(Dataset, usize)> {
    vec![
        (Dataset::SrvIp, 10_000),
        (Dataset::Esld, 10_000),
        (Dataset::Qname, 10_000),
        (Dataset::Qtype, 64),
        (Dataset::Rcode, 16),
    ]
}

/// Minutely files + a coarse rollup ladder per dataset; returns the file
/// count, or the path that failed.
fn write_store(out: &Path, store: &TimeSeriesStore) -> Result<usize, PathBuf> {
    let mut files = 0usize;
    for &(ds, _) in &default_datasets() {
        let mut agg = Aggregator::new(&[Level {
            name: "10win",
            fan_in: 10,
            retention: 1_000,
        }]);
        for w in store.dataset(ds) {
            let path = out.join(format!("{}-{:05}.tsv", ds.name(), w.start as u64));
            if write_dump(&path, w).is_err() {
                return Err(path);
            }
            files += 1;
            agg.push((*w).clone());
        }
        for w in agg.completed(0) {
            let path = out.join(format!("{}-10win-{:05}.tsv", ds.name(), w.start as u64));
            if write_dump(&path, w).is_err() {
                return Err(path);
            }
            files += 1;
        }
    }
    Ok(files)
}

/// The sensor half of a distributed run: simulate the full deployment's
/// traffic, keep the slice this sensor's vantage point would see, and
/// stream its summaries to the collector.
fn sensor(args: &[String]) -> i32 {
    let Some(addr) = flag_value(args, "--connect") else {
        eprintln!("sensor: --connect ADDR is required");
        return 2;
    };
    let duration: f64 = flag_value(args, "--duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(SimConfig::default().seed);
    let sensors: usize = flag_value(args, "--sensors")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let index: usize = flag_value(args, "--index")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if index >= sensors {
        eprintln!("sensor: --index {index} out of range for --sensors {sensors}");
        return 2;
    }

    eprintln!(
        "sensor {index}/{sensors}: {duration}s of traffic (seed {seed}) -> {addr}"
    );
    let psl = Psl::embedded();
    let client = Sensor::connect(addr, SensorConfig::new(index as u64));
    let mut sim = Simulation::from_config(SimConfig {
        seed,
        ..SimConfig::small()
    });
    let mut kept = 0u64;
    sim.run(duration, &mut |tx| {
        if tx.sensor_index(sensors) == index {
            client.send(TxSummary::from_transaction(tx, &psl));
            kept += 1;
        }
    });
    let report = client.finish();
    eprintln!(
        "sensor {index}: summarized {kept} transactions, sent {} frames/{} items, dropped {} frames/{} items, {} connect(s)",
        report.sent_frames,
        report.sent_items,
        report.dropped_frames,
        report.dropped_items,
        report.connects
    );
    0
}

/// The collector half: accept N sensors, merge their streams in time
/// order, run the tracking pipeline over the merged feed, and write the
/// same TSV layout as `simulate`.
fn collect(args: &[String]) -> i32 {
    let Some(listen) = flag_value(args, "--listen") else {
        eprintln!("collect: --listen ADDR is required");
        return 2;
    };
    let sensors: u64 = flag_value(args, "--sensors")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let window: f64 = flag_value(args, "--window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or("./dnsobs-data"));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return 1;
    }

    let mut collector = match Collector::<TxSummary>::bind(listen, CollectorConfig::new(sensors)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot listen on {listen}: {e}");
            return 1;
        }
    };
    eprintln!(
        "collecting from {sensors} sensor(s) on {}, windows of {window}s -> {}",
        collector.local_addr(),
        out.display()
    );
    let output = collector.take_output();
    let pipeline = ThreadedPipeline::new(
        ObservatoryConfig {
            datasets: default_datasets(),
            window_secs: window,
            ..ObservatoryConfig::default()
        },
        1,
    );
    let store = pipeline.run_summaries(output.iter());
    let report = collector.finish();

    eprintln!("merged {} items", report.items_merged);
    for (id, s) in &report.sensors {
        eprintln!(
            "  sensor {id}: {} frames/{} items, {} gap(s)/{} missing frames, {} dup(s), {} crc error(s), self-reported drops {} frames/{} items",
            s.frames,
            s.items,
            s.gaps.len(),
            s.gap_frames,
            s.duplicate_frames,
            s.crc_errors,
            s.reported_dropped_frames,
            s.reported_dropped_items
        );
    }
    match write_store(&out, &store) {
        Ok(files) => {
            eprintln!("wrote {files} TSV files to {}", out.display());
            0
        }
        Err(path) => {
            eprintln!("failed writing {}", path.display());
            1
        }
    }
}

fn write_dump(path: &Path, dump: &dns_observatory::WindowDump) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    tsv::write_window(&mut w, dump)
}

fn show(args: &[String], top: usize) -> i32 {
    let Some(path) = args.iter().find(|a| !a.starts_with("--") && a.ends_with(".tsv")) else {
        eprintln!("no .tsv file given");
        return 2;
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return 1;
        }
    };
    let dump = match tsv::read_window(BufReader::new(file)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return 1;
        }
    };
    println!(
        "dataset {} | window {}s @ t={}s | kept {} dropped {} filtered {}",
        dump.dataset, dump.length, dump.start, dump.kept, dump.dropped, dump.filtered
    );
    println!(
        "{:<40} {:>8} {:>7} {:>7} {:>9} {:>8}",
        "key", "hits", "nxd", "nodata", "delay_ms", "top_ttl"
    );
    for (key, row) in dump.rows.iter().take(top) {
        println!(
            "{:<40} {:>8} {:>6.1}% {:>6.1}% {:>9.1} {:>8}",
            key,
            row.hits,
            row.nxd_share() * 100.0,
            row.nodata_share() * 100.0,
            row.median_delay(),
            row.top_ttl()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    0
}
