//! `dnsobs` — the platform as a command-line tool.
//!
//! ```text
//! dnsobs simulate --duration 60 --out ./data     run the pipeline, write TSV files
//! dnsobs show ./data/srvip-60.tsv                pretty-print a TSV window
//! dnsobs top ./data/srvip-60.tsv --n 10          top rows of a window by hits
//! dnsobs collect --listen 127.0.0.1:5300         run the collector half of a feed
//! dnsobs sensor --connect 127.0.0.1:5300         run one sensor pushing into it
//! dnsobs status --metrics 127.0.0.1:9464         one-page health view of a run
//! ```
//!
//! `simulate` and `collect` accept `--metrics ADDR` to serve the global
//! telemetry registry as a Prometheus text endpoint while they run;
//! `dnsobs status` scrapes that endpoint (or any Prometheus page the
//! Observatory exported) and renders the one-page operator summary.
//! Both writers also emit `meta-*.tsv` self-report windows next to the
//! data files: the platform's own counters on the platform's own storage
//! path, like the paper's `meta` dataset (§2.4).
//!
//! File names encode the dataset and the window start, like the paper's
//! storage layout (§2.4). A `10min` rollup is produced alongside the
//! minutely files when the run is long enough.
//!
//! `sensor`/`collect` split the platform at the paper's Figure 1 A→B
//! boundary: sensors summarize resolver traffic locally and stream the
//! summaries over TCP; the collector merges the streams back into one
//! time-ordered feed and runs the tracking pipeline on it. Start the
//! collector first (or don't — sensors reconnect with backoff), run one
//! `sensor --index I` process per sensor with the same `--seed` and
//! `--sensors N`, and the collector's TSV output matches a single-process
//! `simulate` run of the same seed.

use dns_observatory::aggregate::{Aggregator, Level};
use dns_observatory::{
    status, tsv, Dataset, MetaReporter, Observatory, ObservatoryConfig, StateExporter,
    ThreadedPipeline, TimeSeriesStore, TxSummary,
};
use feed::{Collector, CollectorConfig, Sensor, SensorConfig};
use psl::Psl;
use pubsub::{ServeConfig, Server, ServerHandle, SubEvent, SubscribeClient, Topic};
use simnet::{SimConfig, Simulation};
use sketchwire::{AggregatorConfig, AggregatorCore, WindowState};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use telemetry::{
    FlightRecorder, MetricsServer, Registry, StallEvent, SystemClock, Watchdog, WatchdogCore,
};

fn main() {
    // Whatever crashes, the black box survives to stderr.
    FlightRecorder::install_panic_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("simulate") => simulate(&args[1..]),
        Some("sensor") => sensor(&args[1..]),
        Some("collect") => collect(&args[1..]),
        Some("aggregate") => aggregate_cmd(&args[1..]),
        Some("query") => query_cmd(&args[1..]),
        Some("subscribe") => subscribe_cmd(&args[1..]),
        Some("store") => store_admin(&args[1..]),
        Some("status") => status_cmd(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some("show") => show(&args[1..], usize::MAX),
        Some("top") => {
            let n = flag_value(&args[1..], "--n")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            show(&args[1..], n)
        }
        _ => {
            eprintln!(
                "usage:\n  dnsobs simulate [--duration SECS] [--window SECS] [--seed N] [--topk N] [--out DIR] [--metrics ADDR]\n  dnsobs sensor --connect ADDR [--duration SECS] [--seed N] [--sensors N] [--index I]\n  dnsobs collect --listen ADDR [--sensors N] [--window SECS] [--topk N] [--out DIR] [--metrics ADDR] [--trace-out FILE]\n  dnsobs collect --listen ADDR --forward ADDR [--upstream N] [--chunk-entries N] [--state-out FILE] [--store DIR] [--retain DAYS] [--serve ADDR] [--no-bloom-gate]\n  dnsobs aggregate --listen ADDR --upstreams N [--out DIR] [--metrics ADDR] [--trace-out FILE] [--store DIR] [--retain DAYS] [--serve ADDR]\n  dnsobs aggregate --input FILE [--input FILE ...] [--out DIR]\n  dnsobs subscribe --connect ADDR [--out DIR] [--topics topk,features,meta,dataset=DS]\n  dnsobs query history --store DIR --dataset DS --key KEY [--from SECS] [--to SECS]\n  dnsobs query renumber --store DIR [--dataset aafqdn] [--from SECS] [--to SECS]\n  dnsobs query topk --store DIR --dataset DS --at SECS [--n N]\n  dnsobs store synth --dir DIR [--days N] [--seed N] [--keys N] [--window SECS] [--renumber-every N] [--no-compact]\n  dnsobs store info --dir DIR\n  dnsobs store expire --dir DIR (--retain DAYS | --before SECS)\n  dnsobs status [--metrics ADDR]\n  dnsobs trace DUMP.tsv [--window-start SECS]\n  dnsobs show FILE.tsv\n  dnsobs top FILE.tsv [--n N]\n\n--topk caps the big per-dataset trackers (default 10000); forwarding\ncollectors and the aggregator must agree on it for state to merge.\n\nsensor:    simulate traffic, keep the 1/N slice owned by --index, and\n           stream its summaries to the collector (reconnects with backoff).\ncollect:   accept N sensors, merge their streams in time order, run the\n           tracking pipeline, and write TSV windows like `simulate`.\n           With --forward/--state-out it exports per-window sketch state\n           upward instead of rendering TSVs locally (federated tier).\naggregate: merge the window-state streams of N forwarding collectors\n           (or state files) into global TSV windows with a stated\n           error bound.\nsubscribe: connect to a `--serve ADDR` collector or aggregator and\n           follow its live sealed windows (snapshot, then deltas),\n           writing the same TSV files the server writes locally.\n           --topics narrows fidelity: `topk` drops per-key features.\nquery:     answer history/renumbering/top-k questions from a --store\n           directory in milliseconds, from footer indexes and merged\n           sketch state — raw transactions are never re-read. Output\n           states the merged Space-Saving error bound.\nstore:     `synth` fabricates months of seeded 10-min windows (with\n           planted renumbering events) and compacts them; `info` prints\n           the manifest summary; `expire` drops whole segments older\n           than the retention horizon (manifest-swap commit, ledgered).\n           `collect`/`aggregate` accept --store DIR to persist every\n           sealed window (on restart the last durable window resumes\n           the watermark frontier) and --retain DAYS to expire old\n           segments after every append. --serve ADDR additionally\n           publishes every sealed window to `dnsobs subscribe` clients\n           as delta-encoded state with per-client backpressure.\nstatus:    scrape a running `--metrics` endpoint (default 127.0.0.1:9464)\n           and print the one-page health summary.\ntrace:     render a flight-recorder dump (`--trace-out`, stall or panic\n           dump) as per-window lineage; --window-start narrows to one\n           window. --trace-out on collect/aggregate records span events\n           into the flight recorder and writes the dump at exit (the\n           stall watchdog also dumps it on a stall, to the same file)."
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Port every `--metrics ADDR` endpoint defaults to.
const DEFAULT_METRICS_ADDR: &str = "127.0.0.1:9464";

/// Dump the global flight recorder: to `path` when given, otherwise as
/// a delimited block on stderr (skipped when nothing was recorded).
fn dump_recorder(path: Option<&Path>, why: &str) {
    let recorder = FlightRecorder::global();
    match path {
        Some(p) => match recorder.dump_to(p) {
            Ok(()) => eprintln!("flight recorder ({why}): wrote {}", p.display()),
            Err(e) => eprintln!("flight recorder ({why}): cannot write {}: {e}", p.display()),
        },
        None => {
            let dump = recorder.dump();
            if dump.lines().count() > 1 {
                eprintln!("--- flight recorder dump ({why}) ---");
                eprint!("{dump}");
                eprintln!("--- end flight recorder dump ---");
            }
        }
    }
}

/// The watchdog's stderr reporter, plus the black box: a stall dumps the
/// flight recorder (to `trace_out` when given, else stderr) so the
/// evidence is on disk *before* anyone attaches a debugger.
fn watchdog_reporter(trace_out: Option<PathBuf>) -> impl Fn(&StallEvent) + Send + 'static {
    move |event| match event {
        StallEvent::Stalled {
            name,
            stalled_for_us,
            at_value,
        } => {
            eprintln!(
                "watchdog: {name} stalled for {:.1}s at {at_value}",
                *stalled_for_us as f64 / 1e6
            );
            dump_recorder(trace_out.as_deref(), "stall");
        }
        StallEvent::Recovered {
            name,
            stalled_for_us,
        } => eprintln!(
            "watchdog: {name} recovered after {:.1}s",
            *stalled_for_us as f64 / 1e6
        ),
    }
}

/// Serve the global registry on `--metrics ADDR` when asked. Returns
/// `Err` only when the flag was given and the bind failed; the server
/// must be held alive for the duration of the run.
fn metrics_server(args: &[String]) -> Result<Option<MetricsServer>, i32> {
    let Some(addr) = flag_value(args, "--metrics") else {
        return Ok(None);
    };
    match MetricsServer::serve(addr, Registry::global(), Arc::new(SystemClock::new())) {
        Ok(server) => {
            eprintln!("metrics: http://{}/metrics", server.addr());
            Ok(Some(server))
        }
        Err(e) => {
            eprintln!("cannot serve metrics on {addr}: {e}");
            Err(1)
        }
    }
}

/// Write one rendered meta self-report window into `out`, named by its
/// window start like the data files (`meta-00060.tsv`).
fn write_meta(out: &Path, bytes: &[u8]) -> usize {
    let start = match tsv::read_meta_window(bytes) {
        Ok((start, _, _)) => start,
        Err(_) => return 0,
    };
    let path = out.join(format!("meta-{:05}.tsv", start as u64));
    match std::fs::write(&path, bytes) {
        Ok(()) => 1,
        Err(e) => {
            eprintln!("failed writing {}: {e}", path.display());
            0
        }
    }
}

fn simulate(args: &[String]) -> i32 {
    let duration: f64 = flag_value(args, "--duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let window: f64 = flag_value(args, "--window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(SimConfig::default().seed);
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or("./dnsobs-data"));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return 1;
    }

    let _server = match metrics_server(args) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let cfg = SimConfig {
        seed,
        ..SimConfig::small()
    };
    eprintln!(
        "simulating {duration}s of DNS traffic (seed {seed}), windows of {window}s -> {}",
        out.display()
    );
    let mut sim = Simulation::from_config(cfg);
    let mut obs = Observatory::new(ObservatoryConfig {
        datasets: datasets(args),
        window_secs: window,
        ..ObservatoryConfig::default()
    });
    // The meta self-report rides on stream time: one window of platform
    // counters per data window, written next to the data files.
    let mut meta = MetaReporter::new(Registry::global(), (window.max(1.0) * 1e6) as u64);
    let mut meta_files = 0usize;
    meta.tick(0);
    sim.run(duration, &mut |tx| {
        let at = (tx.time.max(0.0) * 1e6) as u64;
        obs.ingest(tx);
        if let Some(bytes) = meta.tick(at) {
            meta_files += write_meta(&out, &bytes);
        }
    });
    if let Some(bytes) = meta.finish((duration.max(0.0) * 1e6) as u64) {
        meta_files += write_meta(&out, &bytes);
    }
    eprintln!("ingested {} transactions", obs.ingested());
    let store = obs.finish();

    match write_store(&out, &store) {
        Ok(files) => {
            eprintln!(
                "wrote {files} TSV files and {meta_files} meta report(s) to {}",
                out.display()
            );
            0
        }
        Err(path) => {
            eprintln!("failed writing {}", path.display());
            1
        }
    }
}

fn default_datasets() -> Vec<(Dataset, usize)> {
    datasets_with_cap(10_000)
}

/// The standard dataset suite with the big trackers capped at `--topk`
/// (default 10 000). Small enumerated datasets keep their natural caps.
fn datasets(args: &[String]) -> Vec<(Dataset, usize)> {
    let cap: usize = flag_value(args, "--topk")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10_000);
    datasets_with_cap(cap)
}

fn datasets_with_cap(cap: usize) -> Vec<(Dataset, usize)> {
    vec![
        (Dataset::SrvIp, cap),
        (Dataset::Esld, cap),
        (Dataset::Qname, cap),
        (Dataset::Qtype, 64.min(cap)),
        (Dataset::Rcode, 16.min(cap)),
    ]
}

/// Minutely files + a coarse rollup ladder per dataset; returns the file
/// count, or the path that failed.
fn write_store(out: &Path, store: &TimeSeriesStore) -> Result<usize, PathBuf> {
    let mut files = 0usize;
    for &(ds, _) in &default_datasets() {
        let mut agg = Aggregator::new(&[Level {
            name: "10win",
            fan_in: 10,
            retention: 1_000,
        }]);
        for w in store.dataset(ds) {
            let path = out.join(format!("{}-{:05}.tsv", ds.name(), w.start as u64));
            if write_dump(&path, w).is_err() {
                return Err(path);
            }
            files += 1;
            agg.push((*w).clone());
        }
        for w in agg.completed(0) {
            let path = out.join(format!("{}-10win-{:05}.tsv", ds.name(), w.start as u64));
            if write_dump(&path, w).is_err() {
                return Err(path);
            }
            files += 1;
        }
    }
    Ok(files)
}

/// The sensor half of a distributed run: simulate the full deployment's
/// traffic, keep the slice this sensor's vantage point would see, and
/// stream its summaries to the collector.
fn sensor(args: &[String]) -> i32 {
    let Some(addr) = flag_value(args, "--connect") else {
        eprintln!("sensor: --connect ADDR is required");
        return 2;
    };
    let duration: f64 = flag_value(args, "--duration")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(SimConfig::default().seed);
    let sensors: usize = flag_value(args, "--sensors")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let index: usize = flag_value(args, "--index")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if index >= sensors {
        eprintln!("sensor: --index {index} out of range for --sensors {sensors}");
        return 2;
    }

    eprintln!("sensor {index}/{sensors}: {duration}s of traffic (seed {seed}) -> {addr}");
    let psl = Psl::embedded();
    let client = Sensor::connect(addr, SensorConfig::new(index as u64));
    let mut sim = Simulation::from_config(SimConfig {
        seed,
        ..SimConfig::small()
    });
    let mut kept = 0u64;
    sim.run(duration, &mut |tx| {
        if tx.sensor_index(sensors) == index {
            client.send(TxSummary::from_transaction(tx, &psl));
            kept += 1;
        }
    });
    let report = client.finish();
    eprintln!(
        "sensor {index}: summarized {kept} transactions, sent {} frames/{} items, dropped {} frames/{} items, {} connect(s)",
        report.sent_frames,
        report.sent_items,
        report.dropped_frames,
        report.dropped_items,
        report.connects
    );
    0
}

/// The collector half: accept N sensors, merge their streams in time
/// order, run the tracking pipeline over the merged feed, and write the
/// same TSV layout as `simulate`.
fn collect(args: &[String]) -> i32 {
    let Some(listen) = flag_value(args, "--listen") else {
        eprintln!("collect: --listen ADDR is required");
        return 2;
    };
    let sensors: u64 = flag_value(args, "--sensors")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let window: f64 = flag_value(args, "--window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or("./dnsobs-data"));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return 1;
    }

    let _server = match metrics_server(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let stall_secs: f64 = flag_value(args, "--stall-threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0);

    let mut collector = match Collector::<TxSummary>::bind(listen, CollectorConfig::new(sensors)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot listen on {listen}: {e}");
            return 1;
        }
    };
    eprintln!(
        "collecting from {sensors} sensor(s) on {}, windows of {window}s -> {}",
        collector.local_addr(),
        out.display()
    );

    // Stall watchdog: the collector proves liveness through its event
    // counter; a feed frozen past the threshold gets one stderr line
    // (and one more when it recovers) plus a flight-recorder dump.
    let trace_out = flag_value(args, "--trace-out").map(PathBuf::from);
    let clock = Arc::new(SystemClock::new());
    let registry = Registry::global();
    let mut dog = WatchdogCore::new();
    dog.watch_counter(
        "collector_events",
        registry.counter("feed_collector_events_total"),
        (stall_secs.max(1.0) * 1e6) as u64,
        telemetry::Clock::now_us(clock.as_ref()),
    );
    let watchdog = Watchdog::spawn(
        dog,
        clock,
        Duration::from_millis(500),
        watchdog_reporter(trace_out.clone()),
    )
    .ok();

    let output = collector.take_output();
    if flag_value(args, "--forward").is_some()
        || flag_value(args, "--state-out").is_some()
        || flag_value(args, "--store").is_some()
        || flag_value(args, "--serve").is_some()
    {
        let code = collect_forward(args, output.iter(), window);
        let report = collector.finish();
        if let Some(dog) = watchdog {
            dog.stop();
        }
        print_feed_report(&report);
        if let Some(path) = &trace_out {
            dump_recorder(Some(path), "run end");
        }
        return code;
    }
    let mut pipeline = ThreadedPipeline::new(
        ObservatoryConfig {
            datasets: datasets(args),
            window_secs: window,
            ..ObservatoryConfig::default()
        },
        1,
    );
    if trace_out.is_some() {
        // Provenance tracing on: the pipeline stages record span events
        // into the same recorder the feed io edges already write to.
        pipeline = pipeline.with_flight_recorder(FlightRecorder::global());
    }
    // Meta self-reports ride on the merged feed's stream time, one per
    // data window.
    let mut meta = MetaReporter::new(registry, (window.max(1.0) * 1e6) as u64);
    let mut meta_files = 0usize;
    meta.tick(0);
    let mut last_us = 0u64;
    let store = pipeline.run_summaries(output.iter().inspect(|s| {
        last_us = (s.time.max(0.0) * 1e6) as u64;
        if let Some(bytes) = meta.tick(last_us) {
            meta_files += write_meta(&out, &bytes);
        }
    }));
    let report = collector.finish();
    if let Some(dog) = watchdog {
        dog.stop();
    }
    if let Some(bytes) = meta.finish(last_us) {
        meta_files += write_meta(&out, &bytes);
    }
    eprintln!("wrote {meta_files} meta report(s)");

    print_feed_report(&report);
    if let Some(path) = &trace_out {
        dump_recorder(Some(path), "run end");
    }
    match write_store(&out, &store) {
        Ok(files) => {
            eprintln!("wrote {files} TSV files to {}", out.display());
            0
        }
        Err(path) => {
            eprintln!("failed writing {}", path.display());
            1
        }
    }
}

/// Print the transport-level ledger of a finished feed: merged totals
/// plus per-sensor gap/dup/CRC accounting.
fn print_feed_report(report: &feed::CollectorReport) {
    eprintln!("merged {} items", report.items_merged);
    for (id, s) in &report.sensors {
        eprintln!(
            "  sensor {id}: {} frames/{} items, {} gap(s)/{} missing frames, {} dup(s), {} crc error(s), self-reported drops {} frames/{} items",
            s.frames,
            s.items,
            s.gaps.len(),
            s.gap_frames,
            s.duplicate_frames,
            s.crc_errors,
            s.reported_dropped_frames,
            s.reported_dropped_items
        );
    }
}

/// An open `--store` handle plus the newest durable window (start
/// seconds + its states) — the resume point, when one exists.
type CliStore = (store::Store, Option<(f64, Vec<WindowState>)>);

/// Open the `--store DIR` historical window store when asked: recovery
/// leftovers are printed (ledgered, never silent), counters mirror into
/// the global registry, and the newest durable window — the resume
/// point — is returned alongside.
fn open_cli_store(args: &[String]) -> Result<Option<CliStore>, i32> {
    let Some(dir) = flag_value(args, "--store") else {
        return Ok(None);
    };
    let dir = PathBuf::from(dir);
    let (s, report) = match store::Store::open(&dir) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("cannot open store {}: {e}", dir.display());
            if let Some(seg) = e.bad_segment() {
                eprintln!("bad segment: {seg} (quarantine it or restore from a replica)");
            }
            return Err(1);
        }
    };
    if !report.is_clean() {
        eprintln!(
            "store recovery: removed {} tmp file(s) {:?} and {} orphan segment(s) {:?}",
            report.removed_tmp.len(),
            report.removed_tmp,
            report.removed_orphans.len(),
            report.removed_orphans
        );
    }
    let mut s = s.with_registry(&Registry::global(), &report);
    if flag_value(args, "--trace-out").is_some() {
        s = s.with_trace(FlightRecorder::global().ring("store"));
    }
    let last = match s.last_window() {
        Ok(l) => l,
        Err(e) => {
            eprintln!("store {}: cannot read last window: {e}", dir.display());
            return Err(1);
        }
    };
    Ok(Some((s, last)))
}

/// Parse `--retain DAYS` (fractional days allowed) into a retention
/// span in microseconds of stream time.
fn retain_span_us(args: &[String]) -> Option<u64> {
    flag_value(args, "--retain")
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|d| d.is_finite() && *d > 0.0)
        .map(|d| (d * 86_400.0 * 1e6).round() as u64)
}

/// Append one sealed window's records, run the background compaction
/// tick (rolls any newly ripe hour/day/month bucket), then enforce the
/// `--retain` horizon: segments wholly older than `frontier - retain`
/// are dropped behind a manifest-swap commit.
fn store_append(
    s: &mut store::Store,
    batch: &[WindowState],
    policy: &store::CompactionPolicy,
    retain: Option<u64>,
) -> Result<(), i32> {
    if batch.is_empty() {
        return Ok(());
    }
    if let Err(e) = s.append(batch) {
        eprintln!("store append failed: {e}");
        return Err(1);
    }
    match store::compact(s, policy) {
        Ok(report) if !report.rolled.is_empty() => {
            eprintln!(
                "store: rolled {} segment(s) into {} rollup(s)",
                report.inputs(),
                report.rolled.len()
            );
        }
        Ok(_) => {}
        Err(e) => {
            eprintln!("store compaction failed: {e}");
            return Err(1);
        }
    }
    if let (Some(span), Some(frontier)) = (retain, s.frontier_us()) {
        match s.expire_before(frontier.saturating_sub(span)) {
            Ok(report) if !report.expired.is_empty() => {
                eprintln!(
                    "store: expired {} segment(s) ({} window(s)) behind t={}s",
                    report.expired.len(),
                    report.windows(),
                    report.horizon_us as f64 / 1e6
                );
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("store expiry failed: {e}");
                return Err(1);
            }
        }
    }
    Ok(())
}

/// Bind the `--serve ADDR` live subscription tier when asked. Returns
/// the server plus its single seal-path publish handle.
fn serve_server(args: &[String]) -> Result<Option<(Server, ServerHandle)>, i32> {
    let Some(addr) = flag_value(args, "--serve") else {
        return Ok(None);
    };
    let trace = if flag_value(args, "--trace-out").is_some() {
        FlightRecorder::global().ring("pubsub")
    } else {
        telemetry::TraceRing::disabled()
    };
    match Server::bind(addr, ServeConfig::default(), &Registry::global(), trace) {
        Ok(mut server) => {
            eprintln!("serving live windows on {}", server.local_addr());
            let handle = server.take_handle().expect("fresh server has its handle");
            Ok(Some((server, handle)))
        }
        Err(e) => {
            eprintln!("cannot serve on {addr}: {e}");
            Err(1)
        }
    }
}

/// Drop the publish handle, finish the server, and print the broker's
/// departure ledger summary.
fn finish_server(serve: Option<(Server, ServerHandle)>) {
    let Some((server, handle)) = serve else {
        return;
    };
    drop(handle);
    let report = server.finish();
    eprintln!(
        "served {} client(s): {} frames delivered, {} dropped, {} undelivered at exit, {} evicted",
        report.clients_seen,
        report.frames_delivered,
        report.frames_dropped,
        report.undelivered,
        report
            .departures
            .iter()
            .filter(|d| matches!(
                d.reason,
                pubsub::EvictReason::TooSlow | pubsub::EvictReason::Protocol
            ))
            .count()
    );
}

/// The forwarding half of a federated collector: fold the merged summary
/// feed into per-window sketch state and push it upward (`--forward`),
/// append it to a state record file (`--state-out`), and/or persist it
/// into a historical store (`--store`). With a store, a restart resumes
/// the watermark frontier from the last durable window instead of
/// re-counting from zero.
fn collect_forward(args: &[String], output: impl Iterator<Item = TxSummary>, window: f64) -> i32 {
    let upstream: u64 = flag_value(args, "--upstream")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    // Chunk trackers so every record stays comfortably under the feed's
    // frame cap even at the default 10k-key capacities.
    let chunk_entries: usize = flag_value(args, "--chunk-entries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);
    let state_out = flag_value(args, "--state-out");
    let upward = flag_value(args, "--forward")
        .map(|addr| Sensor::<WindowState>::connect(addr, SensorConfig::new(upstream)));
    // Test hook for the crash-recovery suite: exit hard (code 3) after
    // the Nth window is durable, like a kill -9 at the worst moment.
    let kill_after: Option<u64> =
        flag_value(args, "--kill-after-windows").and_then(|v| v.parse().ok());

    let cfg = ObservatoryConfig {
        datasets: datasets(args),
        window_secs: window,
        // The admission gate's bloom filter and eviction order ride in
        // the serialized window exports, so a crash-recovery resume
        // reconstructs the gate exactly; --no-bloom-gate now only
        // disables the gate itself, it is not needed for exact resume.
        bloom_gate: !args.iter().any(|a| a == "--no-bloom-gate"),
        ..ObservatoryConfig::default()
    };
    let mut cli_store = match open_cli_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut serve = match serve_server(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let retain = retain_span_us(args);
    let mut exporter = match &cli_store {
        Some((_, Some((start, states)))) => {
            match StateExporter::resume(cfg.clone(), upstream, chunk_entries, *start, states) {
                Ok(e) => {
                    eprintln!("store: resumed watermark frontier after window t={start}s");
                    e
                }
                Err(e) => {
                    eprintln!("store: cannot resume from last window ({e}); starting fresh");
                    StateExporter::new(cfg.clone(), upstream, chunk_entries)
                }
            }
        }
        _ => StateExporter::new(cfg.clone(), upstream, chunk_entries),
    };
    let policy = store::CompactionPolicy::default();
    let tracing = flag_value(args, "--trace-out").is_some();
    let export_clock = SystemClock::new();
    if tracing {
        exporter = exporter.with_trace(FlightRecorder::global().ring("exporter"));
    }
    // Live subscribers get the platform's own meta self-report windows
    // alongside the data, one per sealed window of stream time.
    let mut meta = serve
        .is_some()
        .then(|| MetaReporter::new(Registry::global(), (window.max(1.0) * 1e6) as u64));
    if let Some(m) = &mut meta {
        m.tick(0);
    }
    let mut file_buf = Vec::new();
    let mut states = Vec::new();
    let mut exported = 0u64;
    let mut windows_stored = 0u64;
    let mut push = |states: &mut Vec<WindowState>,
                    file_buf: &mut Vec<u8>,
                    cli_store: &mut Option<CliStore>,
                    serve: &mut Option<(Server, ServerHandle)>|
     -> Result<(), i32> {
        if let Some((s, _)) = cli_store {
            // Each drain is one sealed window's full record batch.
            store_append(s, states, &policy, retain)?;
            if !states.is_empty() {
                windows_stored += 1;
                if kill_after.is_some_and(|n| windows_stored >= n) {
                    eprintln!("kill hook: exiting after {windows_stored} stored window(s)");
                    std::process::exit(3);
                }
            }
        }
        if let Some((_, handle)) = serve {
            // Publishing never blocks the seal path: a full broker ring
            // drops the batch and counts it, subscribers resync later.
            if !states.is_empty() {
                handle.publish_windows(states.clone());
            }
        }
        for ws in states.drain(..) {
            if state_out.is_some() {
                sketchwire::write_record(&ws, file_buf);
            }
            if let Some(s) = &upward {
                s.send(ws);
            }
            exported += 1;
        }
        Ok(())
    };
    let publish_meta = |meta_bytes: Option<Vec<u8>>, serve: &mut Option<(Server, ServerHandle)>| {
        let (Some(bytes), Some((_, handle))) = (meta_bytes, serve.as_mut()) else {
            return;
        };
        if let Ok((start, _, _)) = tsv::read_meta_window(bytes.as_slice()) {
            handle.publish_meta((start.max(0.0) * 1e6) as u64, bytes);
        }
    };
    let mut last_us = 0u64;
    for summary in output {
        if tracing {
            exporter.set_now_us(telemetry::Clock::now_us(&export_clock));
        }
        last_us = (summary.time.max(0.0) * 1e6) as u64;
        if let Some(m) = &mut meta {
            let bytes = m.tick(last_us);
            publish_meta(bytes, &mut serve);
        }
        exporter.ingest_summary(summary, &mut states);
        if let Err(code) = push(&mut states, &mut file_buf, &mut cli_store, &mut serve) {
            return code;
        }
    }
    let skipped = exporter.resumed_skipped();
    let ingested = exporter.finish(&mut states);
    if let Err(code) = push(&mut states, &mut file_buf, &mut cli_store, &mut serve) {
        return code;
    }
    if let Some(m) = &mut meta {
        let bytes = m.finish(last_us);
        publish_meta(bytes, &mut serve);
    }
    finish_server(serve);
    if skipped > 0 {
        eprintln!("store: skipped {skipped} summaries already covered by durable windows");
    }
    eprintln!("upstream {upstream}: ingested {ingested} summaries, exported {exported} window-state record(s)");
    if let Some((s, _)) = &cli_store {
        eprintln!(
            "store: {} live segment(s), frontier {}",
            s.segments().len(),
            s.frontier_us()
                .map(|us| format!("t={}s", us as f64 / 1e6))
                .unwrap_or_else(|| "empty".into())
        );
    }

    if let Some(path) = state_out {
        if let Err(e) = std::fs::write(path, &file_buf) {
            eprintln!("failed writing {path}: {e}");
            return 1;
        }
        eprintln!("wrote {} state bytes to {path}", file_buf.len());
    }
    if let Some(s) = upward {
        let report = s.finish();
        eprintln!(
            "forwarded {} frames/{} items, dropped {} frames/{} items, {} connect(s)",
            report.sent_frames,
            report.sent_items,
            report.dropped_frames,
            report.dropped_items,
            report.connects
        );
    }
    0
}

/// Every value of a repeatable flag (`--input a --input b`).
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// The aggregation tier: merge N forwarding collectors' window-state
/// streams (over TCP or from record files) into global TSV windows whose
/// error bound is the sum of the per-collector bounds.
fn aggregate_cmd(args: &[String]) -> i32 {
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or("./dnsobs-data"));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return 1;
    }
    let _server = match metrics_server(args) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let inputs = flag_values(args, "--input");
    if !inputs.is_empty() {
        return aggregate_files(&inputs, &out, args);
    }

    let Some(listen) = flag_value(args, "--listen") else {
        eprintln!("aggregate: --listen ADDR (or --input FILE) is required");
        return 2;
    };
    let upstreams: u64 = flag_value(args, "--upstreams")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut collector =
        match Collector::<WindowState>::bind(listen, CollectorConfig::new(upstreams)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot listen on {listen}: {e}");
                return 1;
            }
        };
    eprintln!(
        "aggregating {upstreams} upstream(s) on {} -> {}",
        collector.local_addr(),
        out.display()
    );

    let trace_out = flag_value(args, "--trace-out").map(PathBuf::from);
    let mut core = AggregatorCore::with_registry(
        &AggregatorConfig::new(upstreams as usize),
        &Registry::global(),
    );
    if trace_out.is_some() {
        core = core.with_trace(FlightRecorder::global().ring("aggregator"));
    }
    // With --store, sealed global windows are persisted (upstream id 0)
    // and a restart resumes the seal watermark from the last durable
    // window instead of re-sealing — records at or before it are late.
    let mut cli_store = match open_cli_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut serve = match serve_server(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let retain = retain_span_us(args);
    let policy = store::CompactionPolicy::default();
    if let Some((_, Some((start, _)))) = &cli_store {
        core.resume_sealed_through((start * 1e6).round() as u64);
        eprintln!("store: resumed seal watermark after window t={start}s");
    }
    // Lineage timestamps are always stamped — one clock read per record
    // keeps every sealed window's first-seen/sealed times meaningful
    // even when span tracing is off.
    let agg_clock = SystemClock::new();
    let output = collector.take_output();
    let mut sealed = Vec::new();
    let mut files = 0usize;
    for ws in output.iter() {
        core.set_now_us(telemetry::Clock::now_us(&agg_clock));
        if let Err(e) = core.on_state(ws) {
            eprintln!("rejected window-state record: {e}");
        }
        core.poll(&mut sealed);
        match write_sealed(
            &out,
            &mut sealed,
            cli_store.as_mut().map(|(s, _)| s),
            &policy,
            retain,
            serve.as_mut().map(|(_, h)| h),
        ) {
            Ok(n) => files += n,
            Err(e) => {
                eprintln!("failed writing global window: {e}");
                return 1;
            }
        }
    }
    let feed_report = collector.finish();
    let report = core.finish(&mut sealed);
    match write_sealed(
        &out,
        &mut sealed,
        cli_store.as_mut().map(|(s, _)| s),
        &policy,
        retain,
        serve.as_mut().map(|(_, h)| h),
    ) {
        Ok(n) => files += n,
        Err(e) => {
            eprintln!("failed writing global window: {e}");
            return 1;
        }
    }
    finish_server(serve);
    print_feed_report(&feed_report);
    print_aggregator_report(&report);
    if let Some(path) = &trace_out {
        dump_recorder(Some(path), "run end");
    }
    eprintln!("wrote {files} global TSV files to {}", out.display());
    0
}

/// Offline aggregation over `--state-out` record files.
fn aggregate_files(inputs: &[&str], out: &Path, args: &[String]) -> i32 {
    let mut records = Vec::new();
    for path in inputs {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return 1;
            }
        };
        match sketchwire::read_all(&bytes) {
            Ok(mut r) => records.append(&mut r),
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return 1;
            }
        }
    }
    let expected = records
        .iter()
        .map(|r| r.upstream)
        .collect::<std::collections::BTreeSet<_>>()
        .len()
        .max(1);
    let mut core =
        AggregatorCore::with_registry(&AggregatorConfig::new(expected), &Registry::global());
    let mut cli_store = match open_cli_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let retain = retain_span_us(args);
    let policy = store::CompactionPolicy::default();
    if let Some((_, Some((start, _)))) = &cli_store {
        core.resume_sealed_through((start * 1e6).round() as u64);
        eprintln!("store: resumed seal watermark after window t={start}s");
    }
    for ws in records {
        if let Err(e) = core.on_state(ws) {
            eprintln!("rejected window-state record: {e}");
        }
    }
    let mut sealed = Vec::new();
    let report = core.finish(&mut sealed);
    let files = match write_sealed(
        out,
        &mut sealed,
        cli_store.as_mut().map(|(s, _)| s),
        &policy,
        retain,
        None,
    ) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("failed writing global window: {e}");
            return 1;
        }
    };
    print_aggregator_report(&report);
    eprintln!("wrote {files} global TSV files to {}", out.display());
    0
}

/// Render and write every sealed global window, draining `sealed`.
/// When a store is given, each window is persisted (durably, before the
/// TSV render) as upstream-0 records, then compaction and retention
/// tick. When a serve handle is given, the window is also published to
/// live subscribers (never blocking: a full broker ring drops it).
fn write_sealed(
    out: &Path,
    sealed: &mut Vec<sketchwire::GlobalWindow>,
    mut cli_store: Option<&mut store::Store>,
    policy: &store::CompactionPolicy,
    retain: Option<u64>,
    mut serve: Option<&mut ServerHandle>,
) -> std::io::Result<usize> {
    let mut files = 0usize;
    for gw in sealed.drain(..) {
        if cli_store.is_some() || serve.is_some() {
            let batch: Vec<WindowState> = gw
                .datasets
                .iter()
                .map(|topk| WindowState {
                    upstream: 0,
                    start: gw.start,
                    length: gw.length,
                    topk: topk.clone(),
                })
                .collect();
            if let Some(s) = cli_store.as_deref_mut() {
                if store_append(s, &batch, policy, retain).is_err() {
                    return Err(std::io::Error::other("store append failed"));
                }
            }
            if let Some(h) = serve.as_deref_mut() {
                h.publish_windows(batch);
            }
        }
        files += dns_observatory::write_global(out, &gw)?;
    }
    Ok(files)
}

/// Parse a `--flag SECS` time as integer microseconds.
fn secs_us(args: &[String], flag: &str) -> Option<u64> {
    flag_value(args, flag)
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s >= 0.0)
        .map(|s| (s * 1e6).round() as u64)
}

/// Print a typed query failure; corrupt stores name the bad segment so
/// the operator knows which file to quarantine.
fn report_query_error(e: &store::StoreError) -> i32 {
    eprintln!("query failed: {e}");
    if let Some(seg) = e.bad_segment() {
        eprintln!("bad segment: {seg} (quarantine it or restore from a replica)");
    }
    1
}

/// Print the query planner's accounting plus wall-clock latency.
fn print_query_stats(started: std::time::Instant, stats: &store::QueryStats) {
    println!(
        "answered in {:.2} ms ({} of {} segment(s) decoded, {} record(s); pruned {} time, {} dataset, {} bloom)",
        started.elapsed().as_secs_f64() * 1e3,
        stats.segments_scanned,
        stats.segments_total,
        stats.records_decoded,
        stats.pruned_time,
        stats.pruned_dataset,
        stats.pruned_bloom
    );
}

/// `dnsobs query`: answer historical questions from a `--store`
/// directory — footer indexes plus merged sketch state, never raw
/// transactions. Every answer states the merged Space-Saving error
/// bound it carries.
fn query_cmd(args: &[String]) -> i32 {
    let usage = || {
        eprintln!(
            "query: usage:\n  dnsobs query history --store DIR --dataset DS --key KEY [--from SECS] [--to SECS]\n  dnsobs query renumber --store DIR [--dataset aafqdn] [--from SECS] [--to SECS]\n  dnsobs query topk --store DIR --dataset DS --at SECS [--n N]"
        );
        2
    };
    let Some(kind) = args.first().map(String::as_str) else {
        return usage();
    };
    let rest = &args[1..];
    let Some(dir) = flag_value(rest, "--store") else {
        eprintln!("query: --store DIR is required");
        return 2;
    };
    let started = std::time::Instant::now();
    let (s, report) = match store::Store::open(Path::new(dir)) {
        Ok(opened) => opened,
        Err(e) => return report_query_error(&e),
    };
    if !report.is_clean() {
        eprintln!(
            "note: store recovery swept {} tmp / {} orphan file(s)",
            report.removed_tmp.len(),
            report.removed_orphans.len()
        );
    }
    let t0_us = secs_us(rest, "--from").unwrap_or(0);
    let t1_us = secs_us(rest, "--to")
        .or_else(|| s.frontier_us().map(|f| f.saturating_add(1)))
        .unwrap_or(u64::MAX);
    match kind {
        "history" => {
            let (Some(dataset), Some(key)) =
                (flag_value(rest, "--dataset"), flag_value(rest, "--key"))
            else {
                eprintln!("query history: --dataset and --key are required");
                return 2;
            };
            match store::query::history(&s, dataset, key, t0_us, t1_us) {
                Ok((points, total_bound, stats)) => {
                    println!(
                        "history of {key:?} in {dataset} over [{}s, {}s): {} window(s)",
                        t0_us as f64 / 1e6,
                        t1_us as f64 / 1e6,
                        points.len()
                    );
                    for p in &points {
                        println!(
                            "  t={:>12.0}s len={:>7.0}s level={} hits={:<10} count<={} (err<={}) window-bound={}",
                            p.start, p.length, p.level, p.hits, p.count, p.error, p.error_bound
                        );
                    }
                    let hits: u64 = points.iter().map(|p| p.hits).sum();
                    println!("exact hits (feature counters, sum of per-window deltas): {hits}");
                    println!(
                        "merged Space-Saving error bound: {total_bound} (sum over {} window(s))",
                        points.len()
                    );
                    print_query_stats(started, &stats);
                    0
                }
                Err(e) => report_query_error(&e),
            }
        }
        "renumber" => {
            let dataset = flag_value(rest, "--dataset").unwrap_or("aafqdn");
            let (groups, stats) = match store::query::windows_in(&s, dataset, t0_us, t1_us, None) {
                Ok(r) => r,
                Err(e) => return report_query_error(&e),
            };
            let mut dumps = Vec::new();
            let mut total_bound = 0u64;
            for g in &groups {
                total_bound = total_bound.saturating_add(g.state.error_bound);
                match dns_observatory::render_state(&g.state, g.start, g.length) {
                    Ok(d) => dumps.push(d),
                    Err(e) => {
                        eprintln!("window t={}s does not render: {e}", g.start);
                        return 1;
                    }
                }
            }
            let refs: Vec<&dns_observatory::WindowDump> = dumps.iter().collect();
            let changes = dns_observatory::analysis::ttl::detect_changes(&refs);
            let renumberings: Vec<_> = changes
                .iter()
                .filter(|c| {
                    c.category == dns_observatory::analysis::ttl::ChangeCategory::Renumbering
                })
                .collect();
            println!(
                "renumbering events in [{}s, {}s): {}",
                t0_us as f64 / 1e6,
                t1_us as f64 / 1e6,
                renumberings.len()
            );
            for c in &renumberings {
                println!(
                    "  t={:>12.0}s {:<40} A-TTL {} -> {}",
                    c.at, c.key, c.ttl_before, c.ttl_after
                );
            }
            println!(
                "inspected {} window(s) of {dataset}; merged Space-Saving error bound: {total_bound}",
                groups.len()
            );
            print_query_stats(started, &stats);
            0
        }
        "topk" => {
            let Some(dataset) = flag_value(rest, "--dataset") else {
                eprintln!("query topk: --dataset is required");
                return 2;
            };
            let Some(at_us) = secs_us(rest, "--at") else {
                eprintln!("query topk: --at SECS is required");
                return 2;
            };
            let n: usize = flag_value(rest, "--n")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            match store::query::topk_at(&s, dataset, at_us) {
                Ok((Some(g), stats)) => {
                    let mut rows: Vec<(&str, u64, u64, u64)> = g
                        .state
                        .entries
                        .iter()
                        .map(|e| {
                            (
                                e.key.as_str(),
                                e.features.adds.first().copied().unwrap_or(0),
                                e.count,
                                e.error,
                            )
                        })
                        .collect();
                    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                    println!(
                        "top-{n} of {dataset} at t={}s (window t={}s len={}s, level {}):",
                        at_us as f64 / 1e6,
                        g.start,
                        g.length,
                        g.level
                    );
                    println!(
                        "{:<40} {:>10} {:>12} {:>8}",
                        "key", "hits", "count<=", "err<="
                    );
                    for (key, hits, count, err) in rows.into_iter().take(n) {
                        println!("{key:<40} {hits:>10} {count:>12} {err:>8}");
                    }
                    println!(
                        "merged Space-Saving error bound: {} (observed {}, capacity {})",
                        g.state.error_bound, g.state.observed, g.state.capacity
                    );
                    print_query_stats(started, &stats);
                    0
                }
                Ok((None, stats)) => {
                    println!("no {dataset} window covers t={}s", at_us as f64 / 1e6);
                    print_query_stats(started, &stats);
                    0
                }
                Err(e) => report_query_error(&e),
            }
        }
        _ => usage(),
    }
}

/// `dnsobs subscribe`: follow a `--serve ADDR` collector or aggregator
/// live. The first frame per dataset is a full snapshot; every later
/// sealed window arrives as a delta against the previous one, and the
/// reassembled state renders to the same TSV files the server writes
/// locally. Meta self-report windows land next to the data files.
fn subscribe_cmd(args: &[String]) -> i32 {
    let Some(addr) = flag_value(args, "--connect") else {
        eprintln!("subscribe: --connect ADDR is required");
        return 2;
    };
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or("./dnsobs-data"));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return 1;
    }
    let mut topics = Vec::new();
    for spec in flag_value(args, "--topics")
        .map(|v| v.split(',').collect::<Vec<_>>())
        .unwrap_or_default()
    {
        match Topic::parse(spec.trim()) {
            Some(t) => topics.push(t),
            None => {
                eprintln!(
                    "subscribe: unknown topic {spec:?} (expected topk, features, meta, or dataset=NAME)"
                );
                return 2;
            }
        }
    }
    let mut client = match SubscribeClient::connect(addr, &topics) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot subscribe to {addr}: {e}");
            return 1;
        }
    };
    eprintln!("subscribed to {addr} -> {}", out.display());
    let mut files = 0usize;
    let mut meta_files = 0usize;
    loop {
        match client.next_event() {
            Ok(Some(SubEvent::Window(h))) => {
                let dump = match dns_observatory::render_state(&h.state, h.start, h.length) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("window t={}s does not render: {e}", h.start);
                        return 1;
                    }
                };
                let path = out.join(format!("{}-{:05}.tsv", dump.dataset, dump.start as u64));
                if let Err(e) = write_dump(&path, &dump) {
                    eprintln!("failed writing {}: {e}", path.display());
                    return 1;
                }
                files += 1;
            }
            Ok(Some(SubEvent::Meta { bytes, .. })) => {
                meta_files += write_meta(&out, &bytes);
            }
            Ok(Some(SubEvent::Evicted {
                reason,
                undelivered,
            })) => {
                eprintln!(
                    "evicted by the server ({reason}): {undelivered} frame(s) were undelivered"
                );
                eprintln!("wrote {files} TSV file(s) and {meta_files} meta report(s)");
                return 1;
            }
            Ok(Some(SubEvent::End)) | Ok(None) => {
                let core = client.core();
                eprintln!(
                    "stream over: {} snapshot(s) + {} delta(s) -> {files} TSV file(s), {meta_files} meta report(s)",
                    core.snapshots_applied(),
                    core.deltas_applied()
                );
                return 0;
            }
            Err(e) => {
                eprintln!("subscription failed: {e}");
                return 1;
            }
        }
    }
}

/// `dnsobs store`: admin verbs for a store directory.
fn store_admin(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("synth") => store_synth(&args[1..]),
        Some("info") => store_info(&args[1..]),
        Some("expire") => store_expire(&args[1..]),
        _ => {
            eprintln!(
                "store: usage:\n  dnsobs store synth --dir DIR [--days N] [--seed N] [--keys N] [--window SECS] [--renumber-every N] [--no-compact]\n  dnsobs store info --dir DIR\n  dnsobs store expire --dir DIR (--retain DAYS | --before SECS)"
            );
            2
        }
    }
}

/// `dnsobs store expire`: drop whole segments older than the retention
/// horizon. `--retain DAYS` keeps the trailing span behind the frontier;
/// `--before SECS` names an absolute stream-time horizon. The manifest
/// swap is the commit point: a crash mid-unlink leaves only ledgered
/// orphans for the next open to sweep.
fn store_expire(args: &[String]) -> i32 {
    let Some(dir) = flag_value(args, "--dir") else {
        eprintln!("store expire: --dir DIR is required");
        return 2;
    };
    let (mut s, report) = match store::Store::open(Path::new(dir)) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("cannot open store {dir}: {e}");
            return 1;
        }
    };
    if !report.is_clean() {
        eprintln!(
            "store recovery swept {} tmp / {} orphan file(s)",
            report.removed_tmp.len(),
            report.removed_orphans.len()
        );
    }
    let horizon_us = match (retain_span_us(args), secs_us(args, "--before")) {
        (Some(span), None) => {
            let Some(frontier) = s.frontier_us() else {
                eprintln!("store expire: {dir} is empty, nothing to do");
                return 0;
            };
            frontier.saturating_sub(span)
        }
        (None, Some(at)) => at,
        _ => {
            eprintln!("store expire: exactly one of --retain DAYS or --before SECS is required");
            return 2;
        }
    };
    match s.expire_before(horizon_us) {
        Ok(report) => {
            eprintln!(
                "expired {} segment(s), {} window(s), {} record(s) behind t={}s; {} live segment(s) remain",
                report.expired.len(),
                report.windows(),
                report.records(),
                report.horizon_us as f64 / 1e6,
                s.segments().len()
            );
            for meta in &report.expired {
                eprintln!("  removed {}", meta.name);
            }
            0
        }
        Err(e) => {
            eprintln!("store expire failed: {e}");
            1
        }
    }
}

/// `dnsobs store synth`: fabricate months of seeded 10-minute windows
/// (with planted renumbering events `dnsobs query renumber` can find)
/// and compact them up the hour/day/month hierarchy.
fn store_synth(args: &[String]) -> i32 {
    use dns_observatory::synth::{renumber_truth, SynthConfig, SynthStream};
    let Some(dir) = flag_value(args, "--dir") else {
        eprintln!("store synth: --dir DIR is required");
        return 2;
    };
    let days: usize = flag_value(args, "--days")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(92);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let keys: usize = flag_value(args, "--keys")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8);
    let window: f64 = flag_value(args, "--window")
        .and_then(|v| v.parse().ok())
        .filter(|&w: &f64| w > 0.0)
        .unwrap_or(600.0);
    let windows_per_day = (86_400.0 / window).round().max(1.0) as usize;
    let renumber_every: usize = flag_value(args, "--renumber-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(windows_per_day);
    let started = std::time::Instant::now();
    let (mut s, report) = match store::Store::open(Path::new(dir)) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("cannot open store {dir}: {e}");
            return 1;
        }
    };
    if !report.is_clean() {
        eprintln!(
            "store recovery swept {} tmp / {} orphan file(s)",
            report.removed_tmp.len(),
            report.removed_orphans.len()
        );
    }
    if !s.segments().is_empty() {
        eprintln!(
            "store synth: {dir} already holds {} segment(s); refusing to mix",
            s.segments().len()
        );
        return 1;
    }
    let cfg = SynthConfig {
        seed,
        start: 0.0,
        window_secs: window,
        windows: days * windows_per_day,
        keys,
        datasets: vec!["aafqdn".to_string(), "esld".to_string()],
        capacity: (keys as u64) * 4,
        renumber_every,
    };
    let planted = renumber_truth(&cfg).len();
    let mut stream = SynthStream::new(cfg);
    // One level-0 segment per synthetic day keeps the append count (and
    // the manifest) proportional to days, not 10-min windows.
    for day in 0..days {
        let mut batch = Vec::new();
        for _ in 0..windows_per_day {
            batch.extend(stream.next_window().expect("stream sized to days"));
        }
        if let Err(e) = s.append(&batch) {
            eprintln!("append failed on day {day}: {e}");
            return 1;
        }
    }
    let before = s.segments().len();
    if flag_value(args, "--no-compact").is_none() && !args.iter().any(|a| a == "--no-compact") {
        match store::compact(&mut s, &store::CompactionPolicy::default()) {
            Ok(r) => eprintln!(
                "compacted {} input segment(s) into {} rollup(s)",
                r.inputs(),
                r.rolled.len()
            ),
            Err(e) => {
                eprintln!("compaction failed: {e}");
                return 1;
            }
        }
    }
    eprintln!(
        "synthesized {days} day(s) = {} windows ({} planted renumbering event(s), seed {seed}) in {:.2}s; segments {before} -> {}",
        days * windows_per_day,
        planted,
        started.elapsed().as_secs_f64(),
        s.segments().len()
    );
    0
}

/// `dnsobs store info`: one-page manifest summary of a store directory.
fn store_info(args: &[String]) -> i32 {
    let Some(dir) = flag_value(args, "--dir") else {
        eprintln!("store info: --dir DIR is required");
        return 2;
    };
    let (s, report) = match store::Store::open(Path::new(dir)) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("cannot open store {dir}: {e}");
            if let Some(seg) = e.bad_segment() {
                eprintln!("bad segment: {seg}");
            }
            return 1;
        }
    };
    if !report.is_clean() {
        println!(
            "recovery swept: {} tmp {:?}, {} orphan(s) {:?}",
            report.removed_tmp.len(),
            report.removed_tmp,
            report.removed_orphans.len(),
            report.removed_orphans
        );
    }
    println!("generation: {}", s.generation());
    println!("segments:   {}", s.segments().len());
    let mut by_level: std::collections::BTreeMap<u8, (usize, u64, u64)> = Default::default();
    for m in s.segments() {
        let e = by_level.entry(m.level).or_default();
        e.0 += 1;
        e.1 += m.windows as u64;
        e.2 += m.records as u64;
    }
    for (level, (segs, windows, records)) in by_level {
        println!("  level {level}: {segs} segment(s), {windows} window(s), {records} record(s)");
    }
    match s.frontier_us() {
        Some(f) => println!("frontier:   t={}s", f as f64 / 1e6),
        None => println!("frontier:   empty store"),
    }
    0
}

/// Print the aggregator's semantic ledger: per-upstream record, window,
/// gap, and late counts (the transport ledger is printed separately).
fn print_aggregator_report(report: &sketchwire::AggregatorReport) {
    eprintln!(
        "aggregated {} records into {} global window(s) ({} dataset merges, {} conflicts, {} late, {} rejected)",
        report.records,
        report.windows_sealed,
        report.dataset_merges,
        report.merge_conflicts,
        report.late_records,
        report.rejected
    );
    for (id, s) in &report.upstreams {
        eprintln!(
            "  upstream {id}: {} records, {} windows, {} gap(s), {} out-of-order, {} late, {} rejected, {} merged",
            s.records, s.windows, s.window_gaps, s.out_of_order, s.late_records, s.rejected, s.merged_windows
        );
    }
}

/// `dnsobs status`: scrape a metrics endpoint and render the one-page
/// operator summary.
fn status_cmd(args: &[String]) -> i32 {
    let addr = flag_value(args, "--metrics").unwrap_or(DEFAULT_METRICS_ADDR);
    let text = match telemetry::fetch(addr) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot scrape {addr}: {e}\n(start a run with `--metrics {addr}` first)");
            return 1;
        }
    };
    let samples = telemetry::prometheus::parse(&text);
    print!("{}", status::render_status(&samples));
    0
}

/// `dnsobs trace`: render a flight-recorder dump file as per-window
/// lineage. `--window-start SECS` narrows the detail to one window.
fn trace_cmd(args: &[String]) -> i32 {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("trace: usage: dnsobs trace DUMP.tsv [--window-start SECS]");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    let rows = telemetry::trace::parse_dump(&text);
    let only = flag_value(args, "--window-start")
        .and_then(|v| v.parse::<f64>().ok())
        .map(|s| (s * 1e6).round() as u64);
    print!("{}", dns_observatory::lineage::render_trace(&rows, only));
    0
}

fn write_dump(path: &Path, dump: &dns_observatory::WindowDump) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    tsv::write_window(&mut w, dump)
}

fn show(args: &[String], top: usize) -> i32 {
    let Some(path) = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".tsv"))
    else {
        eprintln!("no .tsv file given");
        return 2;
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return 1;
        }
    };
    let dump = match tsv::read_window(BufReader::new(file)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return 1;
        }
    };
    println!(
        "dataset {} | window {}s @ t={}s | kept {} dropped {} filtered {}",
        dump.dataset, dump.length, dump.start, dump.kept, dump.dropped, dump.filtered
    );
    println!(
        "{:<40} {:>8} {:>7} {:>7} {:>9} {:>8}",
        "key", "hits", "nxd", "nodata", "delay_ms", "top_ttl"
    );
    for (key, row) in dump.rows.iter().take(top) {
        println!(
            "{:<40} {:>8} {:>6.1}% {:>6.1}% {:>9.1} {:>8}",
            key,
            row.hits,
            row.nxd_share() * 100.0,
            row.nodata_share() * 100.0,
            row.median_delay(),
            row.top_ttl()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    0
}
