//! `dns-observatory` — a stream-analytics platform for passive DNS, a
//! from-scratch reproduction of *DNS Observatory: The Big Picture of the
//! DNS* (Foremski, Gasser, Moura — IMC 2019).
//!
//! # Pipeline (paper Figure 1)
//!
//! ```text
//! A) resolvers submit cache-miss traffic        →  simnet / raw packets
//! B) summarize query-response transactions      →  [`summarize`]
//! C) track Top-k objects per key definition     →  [`topk`], [`keys`]
//! D) collect statistics in 60-second windows    →  [`features`]
//! E) write time series                          →  [`timeseries`], [`tsv`]
//! F) aggregate in time (10 min/hour/day…)       →  [`aggregate`]
//! ```
//!
//! The analysis layer ([`analysis`]) reproduces every table and figure of
//! the paper's evaluation — traffic CDFs, AS aggregation, QTYPE tables,
//! delay/hop studies, QNAME-minimization detection, representativeness,
//! TTL-change detection, and the Happy-Eyeballs/negative-caching study.
//!
//! # Quick start
//!
//! ```
//! use dns_observatory::{Observatory, ObservatoryConfig, Dataset};
//! use simnet::{SimConfig, Simulation};
//!
//! let mut sim = Simulation::from_config(SimConfig::small());
//! let mut obs = Observatory::new(ObservatoryConfig {
//!     datasets: vec![(Dataset::SrvIp, 1_000)],
//!     ..ObservatoryConfig::default()
//! });
//! sim.run(2.0, &mut |tx| obs.ingest(tx));
//! let store = obs.finish();
//! assert!(store.windows().len() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod analysis;
pub mod features;
pub mod federate;
pub mod feedwire;
pub mod keys;
pub mod lineage;
pub mod metrics;
pub mod pipeline;
pub mod status;
pub mod summarize;
pub mod synth;
pub mod timeseries;
pub mod topk;
pub mod tsv;

pub use features::{FeatureConfig, FeatureRow, FeatureSet};
pub use federate::{render_global, render_state, write_global, StateExporter};
pub use keys::{Dataset, Key, KeyBuf};
pub use metrics::{MetaReporter, SequencerMetrics, ShardMetrics, TrackerMetrics};
pub use pipeline::{Observatory, ObservatoryConfig, StallHook, ThreadedPipeline};
pub use summarize::{Outcome, TxSummary};
pub use timeseries::{TimeSeriesStore, WindowDump};
pub use topk::TopKTracker;
