//! `dnsobs status` — a one-screen summary of a live `/metrics` scrape.
//!
//! Input is the parsed Prometheus exposition ([`telemetry::prometheus::parse`]),
//! so the renderer is a pure function over a name→value map and testable
//! without a running server. Sections appear only when their metrics do,
//! so the same screen serves a sensor, a collector, or a full pipeline.

use telemetry::prometheus::Samples;

/// Sum every sample of `base`: the plain series plus all labeled ones
/// (`base{...}`). Returns `None` when the metric is entirely absent.
fn sum(samples: &Samples, base: &str) -> Option<f64> {
    let mut total = 0.0;
    let mut seen = false;
    let prefix = format!("{base}{{");
    for (name, v) in samples {
        if name == base || name.starts_with(&prefix) {
            total += v;
            seen = true;
        }
    }
    seen.then_some(total)
}

/// Every `(label-set, value)` of `base`, for per-shard/per-sensor lines.
fn series<'a>(samples: &'a Samples, base: &str) -> Vec<(&'a str, f64)> {
    let prefix = format!("{base}{{");
    samples
        .iter()
        .filter_map(|(name, v)| {
            if name == base {
                Some(("", *v))
            } else {
                name.strip_prefix(&prefix)
                    .and_then(|rest| rest.strip_suffix('}'))
                    .map(|labels| (labels, *v))
            }
        })
        .collect()
}

fn fmt_count(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

fn push_line(out: &mut String, key: &str, value: String) {
    out.push_str(&format!("  {key:<28} {value}\n"));
}

/// Render the status screen. Returns a multi-line string ending in `\n`;
/// "no metrics" when the scrape was empty.
pub fn render_status(samples: &Samples) -> String {
    let mut out = String::new();

    if let Some(ingested) = sum(samples, "pipeline_ingested_total") {
        out.push_str("pipeline\n");
        push_line(&mut out, "ingested", fmt_count(ingested));
        if let Some(w) = sum(samples, "pipeline_windows_total") {
            push_line(&mut out, "windows closed", fmt_count(w));
        }
        if let Some(lag) = sum(samples, "pipeline_watermark_lag_seconds") {
            push_line(&mut out, "watermark lag (s)", format!("{lag:.3}"));
        }
        let depths = series(samples, "pipeline_queue_depth");
        if !depths.is_empty() {
            let total: f64 = depths.iter().map(|(_, v)| v).sum();
            push_line(
                &mut out,
                "queued batches",
                format!("{} across {} shard(s)", fmt_count(total), depths.len()),
            );
        }
        if let (Some(c), Some(s)) = (
            sum(samples, "pipeline_batch_seconds_count"),
            sum(samples, "pipeline_batch_seconds_sum"),
        ) {
            if c > 0.0 {
                push_line(
                    &mut out,
                    "batch latency mean (ms)",
                    format!("{:.3} over {} batches", 1e3 * s / c, fmt_count(c)),
                );
            }
        }
        if let (Some(c), Some(s)) = (
            sum(samples, "pipeline_window_seconds_count"),
            sum(samples, "pipeline_window_seconds_sum"),
        ) {
            if c > 0.0 {
                push_line(
                    &mut out,
                    "window residency mean (s)",
                    format!("{:.3} over {} windows", s / c, fmt_count(c)),
                );
            }
        }
    }

    if let Some(kept) = sum(samples, "pipeline_kept_total") {
        let dropped = sum(samples, "pipeline_dropped_total").unwrap_or(0.0);
        let filtered = sum(samples, "pipeline_filtered_total").unwrap_or(0.0);
        out.push_str("trackers\n");
        push_line(
            &mut out,
            "kept / dropped / filtered",
            format!(
                "{} / {} / {}",
                fmt_count(kept),
                fmt_count(dropped),
                fmt_count(filtered)
            ),
        );
        if let Some(ev) = sum(samples, "topk_evictions_total") {
            push_line(&mut out, "top-k evictions", fmt_count(ev));
        }
        if let Some(m) = sum(samples, "topk_monitored") {
            push_line(&mut out, "monitored objects", fmt_count(m));
        }
    }

    if let Some(frames) = sum(samples, "feed_collector_frames_total") {
        out.push_str("collector\n");
        let items = sum(samples, "feed_collector_items_total").unwrap_or(0.0);
        push_line(
            &mut out,
            "frames / items",
            format!("{} / {}", fmt_count(frames), fmt_count(items)),
        );
        if let Some(s) = sum(samples, "feed_collector_sensors") {
            push_line(&mut out, "sensors connected", fmt_count(s));
        }
        let gaps = sum(samples, "feed_collector_gap_recorded_frames_total").unwrap_or(0.0);
        let open = sum(samples, "feed_collector_open_gap_frames").unwrap_or(0.0);
        let crc = sum(samples, "feed_collector_crc_errors_total").unwrap_or(0.0);
        push_line(
            &mut out,
            "gap frames (open) / crc",
            format!(
                "{} ({}) / {}",
                fmt_count(gaps),
                fmt_count(open),
                fmt_count(crc)
            ),
        );
        if let Some(late) = sum(samples, "feed_collector_late_items_total") {
            push_line(&mut out, "late items", fmt_count(late));
        }
    }

    let pushed = series(samples, "feed_sensor_pushed_items_total");
    if !pushed.is_empty() {
        out.push_str("sensors\n");
        for (labels, v) in &pushed {
            let sent = lookup(samples, "feed_sensor_sent_items_total", labels).unwrap_or(0.0);
            let dropped =
                lookup(samples, "feed_sensor_buffer_dropped_items_total", labels).unwrap_or(0.0);
            let who = label_value(labels, "sensor").unwrap_or(labels);
            push_line(
                &mut out,
                &format!("sensor {who}"),
                format!(
                    "pushed {} sent {} dropped {}",
                    fmt_count(*v),
                    fmt_count(sent),
                    fmt_count(dropped)
                ),
            );
        }
    }

    if let Some(records) = sum(samples, "agg_records_total") {
        out.push_str("aggregator\n");
        let rejected = sum(samples, "agg_rejected_records_total").unwrap_or(0.0);
        let late = sum(samples, "agg_late_records_total").unwrap_or(0.0);
        push_line(
            &mut out,
            "records / rejected / late",
            format!(
                "{} / {} / {}",
                fmt_count(records),
                fmt_count(rejected),
                fmt_count(late)
            ),
        );
        if let Some(sealed) = sum(samples, "agg_windows_sealed_total") {
            let merges = sum(samples, "agg_dataset_merges_total").unwrap_or(0.0);
            push_line(
                &mut out,
                "windows sealed / merges",
                format!("{} / {}", fmt_count(sealed), fmt_count(merges)),
            );
        }
        if let Some(open) = sum(samples, "agg_open_windows") {
            push_line(&mut out, "open windows", fmt_count(open));
        }
        if let (Some(c), Some(s)) = (
            sum(samples, "agg_window_seal_seconds_count"),
            sum(samples, "agg_window_seal_seconds_sum"),
        ) {
            if c > 0.0 {
                push_line(
                    &mut out,
                    "seal latency mean (s)",
                    format!("{:.3} over {} windows", s / c, fmt_count(c)),
                );
            }
        }
        let upstreams = series(samples, "agg_upstream_records_total");
        if !upstreams.is_empty() {
            push_line(&mut out, "upstreams", fmt_count(upstreams.len() as f64));
            for (labels, v) in &upstreams {
                let gaps = lookup(samples, "agg_upstream_window_gaps_total", labels).unwrap_or(0.0);
                let windows = lookup(samples, "agg_upstream_windows_total", labels).unwrap_or(0.0);
                let who = label_value(labels, "upstream").unwrap_or(labels);
                push_line(
                    &mut out,
                    &format!("upstream {who}"),
                    format!(
                        "records {} windows {} gaps {}",
                        fmt_count(*v),
                        fmt_count(windows),
                        fmt_count(gaps)
                    ),
                );
            }
        }
    }

    if let Some(appends) = sum(samples, "store_appends_total") {
        out.push_str("store\n");
        let segments = sum(samples, "store_segments_written_total").unwrap_or(0.0);
        let records = sum(samples, "store_records_written_total").unwrap_or(0.0);
        push_line(
            &mut out,
            "appends / segments / records",
            format!(
                "{} / {} / {}",
                fmt_count(appends),
                fmt_count(segments),
                fmt_count(records)
            ),
        );
        if let Some(compactions) = sum(samples, "store_compactions_total") {
            let inputs = sum(samples, "store_compaction_input_segments_total").unwrap_or(0.0);
            push_line(
                &mut out,
                "compactions / inputs rolled",
                format!("{} / {}", fmt_count(compactions), fmt_count(inputs)),
            );
        }
        let tmp = sum(samples, "store_recovery_tmp_removed_total").unwrap_or(0.0);
        let orphans = sum(samples, "store_recovery_orphans_removed_total").unwrap_or(0.0);
        if tmp + orphans > 0.0 {
            push_line(
                &mut out,
                "recovery swept tmp/orphans",
                format!("{} / {}", fmt_count(tmp), fmt_count(orphans)),
            );
        }
        if let Some(expired) = sum(samples, "store_expired_segments_total") {
            if expired > 0.0 {
                push_line(&mut out, "expired segments", fmt_count(expired));
            }
        }
    }

    if let Some(windows) = sum(samples, "pubsub_windows_ingested_total") {
        out.push_str("pubsub\n");
        push_line(
            &mut out,
            "clients / windows served",
            format!(
                "{} / {}",
                fmt_count(sum(samples, "pubsub_clients").unwrap_or(0.0)),
                fmt_count(windows)
            ),
        );
        let pushed = sum(samples, "pubsub_frames_pushed_total").unwrap_or(0.0);
        let delivered = sum(samples, "pubsub_frames_delivered_total").unwrap_or(0.0);
        let dropped = sum(samples, "pubsub_frames_dropped_total").unwrap_or(0.0);
        push_line(
            &mut out,
            "frames pushed/delivered/drop",
            format!(
                "{} / {} / {}",
                fmt_count(pushed),
                fmt_count(delivered),
                fmt_count(dropped)
            ),
        );
        let evicted = sum(samples, "pubsub_clients_evicted_total").unwrap_or(0.0);
        let lost = sum(samples, "pubsub_ingest_dropped_total").unwrap_or(0.0);
        if evicted + lost > 0.0 {
            push_line(
                &mut out,
                "evicted clients / lost seals",
                format!("{} / {}", fmt_count(evicted), fmt_count(lost)),
            );
        }
    }

    if let Some(tx) = sum(samples, "simnet_transactions_total") {
        out.push_str("simnet\n");
        push_line(&mut out, "transactions", fmt_count(tx));
        if let Some(secs) = sum(samples, "simnet_stream_seconds") {
            if secs > 0.0 {
                push_line(&mut out, "tx/s (stream time)", format!("{:.0}", tx / secs));
            }
        }
    }

    if let Some(threads) = sum(samples, "process_threads") {
        out.push_str("process\n");
        push_line(&mut out, "threads", fmt_count(threads));
        if let (Some(rss), Some(vsize)) = (
            sum(samples, "process_rss_kbytes"),
            sum(samples, "process_vsize_kbytes"),
        ) {
            push_line(
                &mut out,
                "rss / vsize (MB)",
                format!("{:.1} / {:.1}", rss / 1024.0, vsize / 1024.0),
            );
        }
    }

    if out.is_empty() {
        out.push_str("no metrics\n");
    }
    out
}

/// Value of `base{labels}` exactly.
fn lookup(samples: &Samples, base: &str, labels: &str) -> Option<f64> {
    samples.get(&format!("{base}{{{labels}}}")).copied()
}

/// Extract one label's value out of a `k="v",...` label string.
fn label_value<'a>(labels: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("{key}=\"");
    let start = labels.find(&pat)? + pat.len();
    let end = labels[start..].find('"')? + start;
    Some(&labels[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(pairs: &[(&str, f64)]) -> Samples {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn empty_scrape_says_so() {
        assert_eq!(render_status(&Samples::new()), "no metrics\n");
    }

    #[test]
    fn pipeline_section_sums_labeled_series() {
        let s = samples(&[
            ("pipeline_ingested_total", 1000.0),
            ("pipeline_windows_total", 4.0),
            ("pipeline_queue_depth{shard=\"0\"}", 2.0),
            ("pipeline_queue_depth{shard=\"1\"}", 3.0),
            ("pipeline_kept_total{dataset=\"srvip\",shard=\"0\"}", 700.0),
            ("pipeline_kept_total{dataset=\"srvip\",shard=\"1\"}", 300.0),
            ("pipeline_dropped_total{dataset=\"srvip\",shard=\"0\"}", 5.0),
        ]);
        let text = render_status(&s);
        assert!(text.contains("pipeline\n"));
        assert!(text.contains("ingested"));
        assert!(text.contains("1000"));
        assert!(text.contains("5 across 2 shard(s)"));
        assert!(text.contains("1000 / 5 / 0"));
    }

    #[test]
    fn collector_and_sensor_sections() {
        let s = samples(&[
            ("feed_collector_frames_total", 42.0),
            ("feed_collector_items_total", 420.0),
            ("feed_collector_gap_recorded_frames_total", 3.0),
            ("feed_collector_open_gap_frames", 1.0),
            ("feed_collector_crc_errors_total", 2.0),
            ("feed_sensor_pushed_items_total{sensor=\"7\"}", 500.0),
            ("feed_sensor_sent_items_total{sensor=\"7\"}", 480.0),
            ("feed_sensor_buffer_dropped_items_total{sensor=\"7\"}", 20.0),
        ]);
        let text = render_status(&s);
        assert!(text.contains("collector\n"));
        assert!(text.contains("42 / 420"));
        assert!(text.contains("3 (1) / 2"));
        assert!(text.contains("sensor 7"));
        assert!(text.contains("pushed 500 sent 480 dropped 20"));
    }

    #[test]
    fn aggregator_section_lists_upstream_ledgers() {
        let s = samples(&[
            ("agg_records_total", 120.0),
            ("agg_rejected_records_total", 2.0),
            ("agg_late_records_total", 1.0),
            ("agg_windows_sealed_total", 6.0),
            ("agg_dataset_merges_total", 18.0),
            ("agg_open_windows", 2.0),
            ("agg_upstream_records_total{upstream=\"3\"}", 60.0),
            ("agg_upstream_windows_total{upstream=\"3\"}", 6.0),
            ("agg_upstream_window_gaps_total{upstream=\"3\"}", 1.0),
            ("agg_upstream_records_total{upstream=\"9\"}", 60.0),
            ("agg_upstream_windows_total{upstream=\"9\"}", 7.0),
        ]);
        let text = render_status(&s);
        assert!(text.contains("aggregator\n"));
        assert!(text.contains("120 / 2 / 1"));
        assert!(text.contains("6 / 18"));
        assert!(text.contains("upstream 3"));
        assert!(text.contains("records 60 windows 6 gaps 1"));
        assert!(text.contains("upstream 9"));
        assert!(text.contains("records 60 windows 7 gaps 0"));
    }

    #[test]
    fn store_section_renders_compaction_and_recovery_ledger() {
        let s = samples(&[
            ("store_appends_total", 12.0),
            ("store_segments_written_total", 14.0),
            ("store_records_written_total", 96.0),
            ("store_compactions_total", 3.0),
            ("store_compaction_input_segments_total", 9.0),
            ("store_recovery_tmp_removed_total", 1.0),
            ("store_recovery_orphans_removed_total", 2.0),
        ]);
        let text = render_status(&s);
        assert!(text.contains("store\n"));
        assert!(text.contains("12 / 14 / 96"));
        assert!(text.contains("3 / 9"));
        assert!(text.contains("recovery swept tmp/orphans"));
        assert!(text.contains("1 / 2"));
    }

    #[test]
    fn store_recovery_line_is_hidden_when_clean() {
        let s = samples(&[("store_appends_total", 2.0)]);
        let text = render_status(&s);
        assert!(text.contains("store\n"));
        assert!(!text.contains("recovery swept"));
        assert!(!text.contains("expired segments"));
    }

    #[test]
    fn store_section_reports_retention_expiry() {
        let s = samples(&[
            ("store_appends_total", 2.0),
            ("store_expired_segments_total", 7.0),
        ]);
        let text = render_status(&s);
        assert!(text.contains("expired segments"));
        assert!(text.contains("7"));
    }

    #[test]
    fn pubsub_section_renders_broker_ledger() {
        let s = samples(&[
            ("pubsub_windows_ingested_total", 20.0),
            ("pubsub_clients", 3.0),
            ("pubsub_frames_pushed_total", 60.0),
            ("pubsub_frames_delivered_total", 55.0),
            ("pubsub_frames_dropped_total", 5.0),
            ("pubsub_clients_evicted_total", 1.0),
        ]);
        let text = render_status(&s);
        assert!(text.contains("pubsub\n"));
        assert!(text.contains("3 / 20"));
        assert!(text.contains("60 / 55 / 5"));
        assert!(text.contains("evicted clients / lost seals"));
        assert!(text.contains("1 / 0"));
    }

    #[test]
    fn pubsub_eviction_line_is_hidden_when_healthy() {
        let s = samples(&[
            ("pubsub_windows_ingested_total", 20.0),
            ("pubsub_frames_pushed_total", 60.0),
            ("pubsub_frames_delivered_total", 60.0),
        ]);
        let text = render_status(&s);
        assert!(text.contains("pubsub\n"));
        assert!(!text.contains("evicted clients"));
    }

    #[test]
    fn stage_latency_means_render_from_histogram_sums() {
        let s = samples(&[
            ("pipeline_ingested_total", 10.0),
            ("pipeline_window_seconds_sum{stage=\"sequencer\"}", 3.0),
            ("pipeline_window_seconds_count{stage=\"sequencer\"}", 6.0),
            ("agg_records_total", 4.0),
            ("agg_window_seal_seconds_sum", 1.0),
            ("agg_window_seal_seconds_count", 4.0),
        ]);
        let text = render_status(&s);
        assert!(text.contains("window residency mean (s)"));
        assert!(text.contains("0.500 over 6 windows"));
        assert!(text.contains("seal latency mean (s)"));
        assert!(text.contains("0.250 over 4 windows"));
    }

    #[test]
    fn simnet_rate_uses_stream_time() {
        let s = samples(&[
            ("simnet_transactions_total", 5000.0),
            ("simnet_stream_seconds", 10.0),
        ]);
        let text = render_status(&s);
        assert!(text.contains("simnet\n"));
        assert!(text.contains("500"));
    }

    #[test]
    fn process_section_reports_thread_and_memory_budget() {
        let s = samples(&[
            ("process_threads", 17.0),
            ("process_rss_kbytes", 10240.0),
            ("process_vsize_kbytes", 204800.0),
        ]);
        let text = render_status(&s);
        assert!(text.contains("process\n"));
        assert!(text.contains("17"));
        assert!(text.contains("10.0 / 200.0"));
    }

    #[test]
    fn label_value_extracts() {
        assert_eq!(
            label_value("dataset=\"srvip\",sensor=\"3\"", "sensor"),
            Some("3")
        );
        assert_eq!(label_value("dataset=\"srvip\"", "sensor"), None);
    }
}
