//! Time aggregation (paper §2.4, step F): minutely windows roll up into
//! 10-minute, hourly, daily, … files, with retention limits per level.
//!
//! Aggregation semantics follow the paper exactly: counters aggregate as
//! the *mean rate per sub-window*, filling 0 for sub-windows where the
//! object is missing; non-counter features (cardinality estimates,
//! quartiles, averages) aggregate as the mean over the sub-windows where
//! the object is *present*.

use crate::features::FeatureRow;
use crate::timeseries::WindowDump;
use std::collections::HashMap;

/// One rollup level, e.g. "10 windows of the level below".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Level {
    /// Human name (`10min`, `hour`, …).
    pub name: &'static str,
    /// How many windows of the previous level form one of this level.
    pub fan_in: usize,
    /// How many aggregated windows to retain (older ones are deleted).
    pub retention: usize,
}

/// The paper's ladder: minute → 10 min → hour → day.
pub const DEFAULT_LEVELS: &[Level] = &[
    Level {
        name: "10min",
        fan_in: 10,
        retention: 144,
    },
    Level {
        name: "hour",
        fan_in: 6,
        retention: 72,
    },
    Level {
        name: "day",
        fan_in: 24,
        retention: 60,
    },
];

/// Aggregate `fan_in` consecutive window dumps of one dataset into one
/// coarser dump. Counters become mean-per-subwindow (missing → 0);
/// everything else becomes mean over present subwindows.
pub fn rollup(windows: &[WindowDump]) -> WindowDump {
    assert!(!windows.is_empty(), "cannot roll up zero windows");
    let dataset = windows[0].dataset.clone();
    assert!(
        windows.iter().all(|w| w.dataset == dataset),
        "mixed datasets in rollup"
    );
    let n = windows.len() as f64;
    let mut acc: HashMap<String, (FeatureRow, u64)> = HashMap::new();
    for w in windows {
        for (key, row) in &w.rows {
            match acc.get_mut(key) {
                None => {
                    acc.insert(key.clone(), (row.clone(), 1));
                }
                Some((total, present)) => {
                    crate::timeseries::merge_rows(total, row);
                    *present += 1;
                }
            }
        }
    }
    let mut rows: Vec<(String, FeatureRow)> = acc
        .into_iter()
        .map(|(key, (mut row, present))| {
            scale_row(&mut row, present, n);
            (key, row)
        })
        .collect();
    rows.sort_by(|a, b| b.1.hits.cmp(&a.1.hits).then_with(|| a.0.cmp(&b.0)));
    WindowDump {
        dataset,
        start: windows[0].start,
        length: windows.iter().map(|w| w.length).sum(),
        kept: windows.iter().map(|w| w.kept).sum(),
        dropped: windows.iter().map(|w| w.dropped).sum(),
        filtered: windows.iter().map(|w| w.filtered).sum(),
        rows,
    }
}

/// Counters: divide by the total sub-window count (missing → 0).
/// Non-counters: divide by the number of sub-windows present.
fn scale_row(row: &mut FeatureRow, present: u64, n: f64) {
    // The merged row already holds sums over present windows.
    // Counters use n (fill-zero); means use `present`.
    let div_counter = n;
    row.hits = (row.hits as f64 / div_counter).round() as u64;
    row.unans = (row.unans as f64 / div_counter).round() as u64;
    row.ok = (row.ok as f64 / div_counter).round() as u64;
    row.nxd = (row.nxd as f64 / div_counter).round() as u64;
    row.rfs = (row.rfs as f64 / div_counter).round() as u64;
    row.fail = (row.fail as f64 / div_counter).round() as u64;
    row.ok_ans = (row.ok_ans as f64 / div_counter).round() as u64;
    row.ok_ns = (row.ok_ns as f64 / div_counter).round() as u64;
    row.ok_add = (row.ok_add as f64 / div_counter).round() as u64;
    row.ok_nil = (row.ok_nil as f64 / div_counter).round() as u64;
    row.ok6 = (row.ok6 as f64 / div_counter).round() as u64;
    row.ok6nil = (row.ok6nil as f64 / div_counter).round() as u64;
    row.ok_sec = (row.ok_sec as f64 / div_counter).round() as u64;
    let p = present as f64;
    for v in [
        &mut row.srvips,
        &mut row.srcips,
        &mut row.sources,
        &mut row.qnamesa,
        &mut row.qnames,
        &mut row.tlds,
        &mut row.eslds,
        &mut row.qtypes,
        &mut row.ip4s,
        &mut row.ip6s,
    ] {
        *v /= p;
    }
    for arr in [
        &mut row.resp_delays,
        &mut row.network_hops,
        &mut row.resp_size,
    ] {
        for v in arr.iter_mut() {
            *v /= p;
        }
    }
}

/// A rolling aggregator: feed minutely dumps, get coarser dumps out as
/// they complete, with per-level retention.
#[derive(Debug)]
pub struct Aggregator {
    levels: Vec<Level>,
    /// Pending (not yet complete) windows per level; level 0 receives the
    /// raw minutely input.
    pending: Vec<Vec<WindowDump>>,
    /// Completed windows per level, trimmed to retention.
    complete: Vec<Vec<WindowDump>>,
}

impl Aggregator {
    /// Build an aggregator with the given ladder (see [`DEFAULT_LEVELS`]).
    pub fn new(levels: &[Level]) -> Aggregator {
        assert!(!levels.is_empty());
        Aggregator {
            levels: levels.to_vec(),
            pending: vec![Vec::new(); levels.len()],
            complete: vec![Vec::new(); levels.len()],
        }
    }

    /// Feed one minutely dump; cascades completed rollups upward.
    pub fn push(&mut self, dump: WindowDump) {
        self.push_level(0, dump);
    }

    fn push_level(&mut self, level: usize, dump: WindowDump) {
        if level >= self.levels.len() {
            return;
        }
        self.pending[level].push(dump);
        if self.pending[level].len() >= self.levels[level].fan_in {
            let batch: Vec<WindowDump> = self.pending[level].drain(..).collect();
            let rolled = rollup(&batch);
            self.complete[level].push(rolled.clone());
            let retention = self.levels[level].retention;
            let len = self.complete[level].len();
            if len > retention {
                self.complete[level].drain(0..len - retention);
            }
            self.push_level(level + 1, rolled);
        }
    }

    /// Completed windows at a level (0 = first rollup, e.g. 10 min).
    pub fn completed(&self, level: usize) -> &[WindowDump] {
        &self.complete[level]
    }

    /// Names of the configured levels.
    pub fn level_names(&self) -> Vec<&'static str> {
        self.levels.iter().map(|l| l.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, FeatureSet};
    use crate::summarize::TxSummary;
    use psl::Psl;
    use simnet::{SimConfig, Simulation};

    fn row(secs: f64, seed: u64) -> FeatureRow {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig {
            seed,
            ..SimConfig::small()
        });
        let mut fs = FeatureSet::new(FeatureConfig::default());
        sim.run(secs, &mut |tx| {
            fs.fold(&TxSummary::from_transaction(tx, &psl))
        });
        fs.row()
    }

    fn dump(start: f64, rows: Vec<(String, FeatureRow)>) -> WindowDump {
        WindowDump {
            dataset: "esld".into(),
            start,
            length: 60.0,
            kept: rows.iter().map(|r| r.1.hits).sum(),
            dropped: 0,
            filtered: 0,
            rows,
        }
    }

    #[test]
    fn counters_average_with_zero_fill() {
        let r = row(1.0, 1);
        let hits = r.hits;
        // Object present in 1 of 2 windows → mean rate = hits/2.
        let d1 = dump(0.0, vec![("k".into(), r)]);
        let d2 = dump(60.0, vec![]);
        let rolled = rollup(&[d1, d2]);
        assert_eq!(rolled.rows.len(), 1);
        assert_eq!(rolled.rows[0].1.hits, hits.div_ceil(2).max(hits / 2));
        assert_eq!(rolled.length, 120.0);
    }

    #[test]
    fn noncounters_average_over_present_only() {
        let r = row(1.0, 2);
        let srvips = r.srvips;
        let d1 = dump(0.0, vec![("k".into(), r)]);
        let d2 = dump(60.0, vec![]);
        let rolled = rollup(&[d1, d2]);
        // Present in one window → unchanged, NOT halved.
        assert!((rolled.rows[0].1.srvips - srvips).abs() < 1e-9);
    }

    #[test]
    fn rollup_of_identical_windows_is_identity_for_counters() {
        let r = row(1.0, 3);
        let d1 = dump(0.0, vec![("k".into(), r.clone())]);
        let d2 = dump(60.0, vec![("k".into(), r.clone())]);
        let rolled = rollup(&[d1, d2]);
        assert_eq!(rolled.rows[0].1.hits, r.hits);
        assert!((rolled.rows[0].1.resp_delays[1] - r.resp_delays[1]).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mixed datasets")]
    fn mixed_datasets_rejected() {
        let r = row(0.3, 4);
        let mut d2 = dump(60.0, vec![("k".into(), r.clone())]);
        d2.dataset = "qname".into();
        let d1 = dump(0.0, vec![("k".into(), r)]);
        rollup(&[d1, d2]);
    }

    #[test]
    fn aggregator_cascades() {
        let r = row(0.3, 5);
        let mut agg = Aggregator::new(&[
            Level {
                name: "2min",
                fan_in: 2,
                retention: 10,
            },
            Level {
                name: "4min",
                fan_in: 2,
                retention: 10,
            },
        ]);
        for i in 0..4 {
            agg.push(dump(i as f64 * 60.0, vec![("k".into(), r.clone())]));
        }
        assert_eq!(agg.completed(0).len(), 2, "two 2-min windows");
        assert_eq!(agg.completed(1).len(), 1, "one 4-min window");
        assert_eq!(agg.completed(1)[0].length, 240.0);
        assert_eq!(agg.level_names(), vec!["2min", "4min"]);
    }

    #[test]
    fn retention_trims_old_windows() {
        let r = row(0.3, 6);
        let mut agg = Aggregator::new(&[Level {
            name: "2min",
            fan_in: 2,
            retention: 3,
        }]);
        for i in 0..12 {
            agg.push(dump(i as f64 * 60.0, vec![("k".into(), r.clone())]));
        }
        assert_eq!(agg.completed(0).len(), 3, "retention caps history");
        // The oldest retained window starts at minute 6 (windows 0-5 gone).
        assert_eq!(agg.completed(0)[0].start, 6.0 * 60.0);
    }
}
