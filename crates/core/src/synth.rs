//! Deterministic synthetic window-state history.
//!
//! The store's query path, benches, and recovery tests all need *months*
//! of sealed windows without paying for months of simulated packets.
//! This module fabricates [`sketchwire::WindowState`] records directly —
//! bit-for-bit reproducible from a seed — with the same invariants real
//! tracker exports carry: cumulative Space-Saving counts, per-window
//! feature deltas in `adds`, `error_bound = observed / capacity`, and
//! single-chunk records.
//!
//! The generated population also embeds *renumbering episodes*: at a
//! seeded cadence one key flips its dominant A-record TTL and its
//! dominant A-data hash in the same window, which is exactly the
//! signature [`crate::analysis::ttl::detect_changes`] classifies as
//! [`crate::analysis::ttl::ChangeCategory::Renumbering`]. The ground
//! truth schedule is available via [`renumber_truth`] so tests can
//! assert the query layer finds every planted event and nothing else.

use crate::features::{FeatureConfig, FeatureSet};
use sketchwire::{FeatureState, TopKEntry, TopKState, WindowState};

/// Parameters of a synthetic history. All generation is a pure function
/// of this struct, so two streams with equal configs yield byte-equal
/// windows.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Seed for the per-epoch data hashes.
    pub seed: u64,
    /// Start of the first window, seconds (must be finite and ≥ 0).
    pub start: f64,
    /// Window length, seconds (the paper's native grain is 600).
    pub window_secs: f64,
    /// Number of windows to generate.
    pub windows: usize,
    /// Objects per dataset (all objects appear in every window).
    pub keys: usize,
    /// Dataset names to emit per window (e.g. `"aafqdn"`, `"srvip"`).
    pub datasets: Vec<String>,
    /// Claimed tracker capacity (must be ≥ `keys`).
    pub capacity: u64,
    /// Every `renumber_every`-th window, one key (round-robin) changes
    /// its dominant TTL and A data. `0` disables renumbering.
    pub renumber_every: usize,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            seed: 1,
            start: 0.0,
            window_secs: 600.0,
            windows: 144,
            keys: 8,
            datasets: vec!["aafqdn".to_string()],
            capacity: 64,
            renumber_every: 0,
        }
    }
}

/// One planted renumbering event: the ground truth the query layer is
/// expected to recover from sketch state alone.
#[derive(Debug, Clone, PartialEq)]
pub struct RenumberEvent {
    /// Index of the window where the new TTL/data first appear.
    pub window_index: usize,
    /// Start of that window, seconds.
    pub window_start: f64,
    /// Index of the renumbered key.
    pub key_index: usize,
    /// Rendered key (text form, as in the `aafqdn` dataset).
    pub key: String,
    /// Dominant A TTL before the event.
    pub ttl_before: u64,
    /// Dominant A TTL from the event on.
    pub ttl_after: u64,
}

/// SplitMix64 — the repo's standard seedable mixer.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Rendered key for object `i` of `dataset`, shaped to the dataset's
/// key kind so the strings parse back through `Key::from_render`.
pub fn key_name(dataset: &str, i: usize) -> String {
    match dataset {
        "srvip" => format!("198.51.{}.{}", i / 250, 1 + i % 250),
        "srcsrv" => format!("203.0.113.{}|198.51.100.{}", 1 + i % 250, 1 + i % 250),
        _ => format!("host{i}.example."),
    }
}

/// Per-key constant hits per window: distinct enough to give a stable
/// top-k order, constant so cumulative counts have a closed form.
fn hits_for(key: usize) -> u64 {
    40 + 10 * (key as u64 % 5) + key as u64
}

/// Dominant A TTL of `key` during `epoch`. Consecutive epochs always
/// differ (the step is 3 mod 7, coprime with 7).
fn ttl_for(key: usize, epoch: u32) -> u64 {
    60 * (1 + ((key as u64 + 3 * epoch as u64) % 7))
}

/// Dominant A-data hash of `key` during `epoch`.
fn adata_for(seed: u64, key: usize, epoch: u32) -> u64 {
    splitmix(seed ^ ((key as u64) << 32) ^ epoch as u64) | 1
}

/// A lazy generator of consecutive synthetic windows. Calling
/// [`SynthStream::next_window`] `n` times is equivalent to any other
/// batching of the same `n` windows.
#[derive(Debug)]
pub struct SynthStream {
    cfg: SynthConfig,
    template: FeatureState,
    widx: usize,
    counts: Vec<u64>,
    epochs: Vec<u32>,
}

impl SynthStream {
    /// Build a stream positioned before the first window.
    ///
    /// # Panics
    /// If the config is degenerate (no keys/datasets, zero capacity,
    /// capacity < keys, or a non-finite/negative start).
    pub fn new(cfg: SynthConfig) -> SynthStream {
        assert!(
            cfg.keys > 0 && !cfg.datasets.is_empty(),
            "empty synth population"
        );
        assert!(cfg.capacity >= cfg.keys as u64, "capacity below key count");
        assert!(cfg.start.is_finite() && cfg.start >= 0.0, "bad synth start");
        assert!(cfg.window_secs > 0.0, "bad synth window length");
        let template = FeatureSet::new(FeatureConfig {
            hll_precision: 4,
            ttl_slots: 4,
        })
        .to_state();
        let counts = vec![0; cfg.keys];
        let epochs = vec![0; cfg.keys];
        SynthStream {
            cfg,
            template,
            widx: 0,
            counts,
            epochs,
        }
    }

    /// Index of the next window to be generated.
    pub fn window_index(&self) -> usize {
        self.widx
    }

    /// The feature layout every generated entry uses.
    fn features(&self, key: usize, hits: u64) -> FeatureState {
        let mut f = self.template.clone();
        // Positional contract (see features.rs): adds[0]=hits,
        // adds[2]=ok, adds[16]=answered; tops: 0=ttl 1=ttl_a 2=nsttl
        // 3=negttl 4=a_data 5=ns_names.
        f.adds[0] = hits;
        f.adds[2] = hits;
        f.adds[16] = hits;
        let epoch = self.epochs[key];
        let ttl = ttl_for(key, epoch);
        let adata = adata_for(self.cfg.seed, key, epoch);
        let ns = splitmix(self.cfg.seed ^ 0x4e53) | 1;
        for (idx, value) in [(0, ttl), (1, ttl), (4, adata), (5, ns)] {
            f.tops[idx].observed = hits;
            f.tops[idx].slots = vec![(value, hits)];
        }
        f
    }

    /// Generate the next window, or `None` once `cfg.windows` have been
    /// produced.
    pub fn next_window(&mut self) -> Option<Vec<WindowState>> {
        if self.widx >= self.cfg.windows {
            return None;
        }
        let w = self.widx;
        self.widx += 1;
        if self.cfg.renumber_every > 0 && w > 0 && w.is_multiple_of(self.cfg.renumber_every) {
            let event = w / self.cfg.renumber_every;
            self.epochs[(event - 1) % self.cfg.keys] += 1;
        }
        let mut window_hits = 0;
        for (k, count) in self.counts.iter_mut().enumerate() {
            let h = hits_for(k);
            *count += h;
            window_hits += h;
        }
        let observed: u64 = self.counts.iter().sum();
        let start = self.cfg.start + w as f64 * self.cfg.window_secs;
        let out = self
            .cfg
            .datasets
            .iter()
            .map(|dataset| {
                let mut entries: Vec<TopKEntry> = (0..self.cfg.keys)
                    .map(|k| TopKEntry {
                        key: key_name(dataset, k),
                        count: self.counts[k],
                        error: 0,
                        inserted_at: 0.0,
                        features: self.features(k, hits_for(k)),
                    })
                    .collect();
                // Real exports come count-descending; ties break on key.
                entries.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
                WindowState {
                    upstream: 1,
                    start,
                    length: self.cfg.window_secs,
                    topk: TopKState {
                        dataset: dataset.clone(),
                        capacity: self.cfg.capacity,
                        observed,
                        min_count: 0,
                        error_bound: observed / self.cfg.capacity,
                        evictions: 0,
                        kept: window_hits,
                        dropped: 0,
                        filtered: 0,
                        chunk: 0,
                        chunks: 1,
                        entries,
                        gate: None,
                    },
                }
            })
            .collect();
        Some(out)
    }
}

/// Replay the renumbering schedule of `cfg` without materializing any
/// window state. Keys are rendered in text (`aafqdn`) form.
pub fn renumber_truth(cfg: &SynthConfig) -> Vec<RenumberEvent> {
    let mut out = Vec::new();
    if cfg.renumber_every == 0 || cfg.keys == 0 {
        return out;
    }
    let mut epochs = vec![0u32; cfg.keys];
    let mut w = cfg.renumber_every;
    while w < cfg.windows {
        let event = w / cfg.renumber_every;
        let key_index = (event - 1) % cfg.keys;
        let before = ttl_for(key_index, epochs[key_index]);
        epochs[key_index] += 1;
        out.push(RenumberEvent {
            window_index: w,
            window_start: cfg.start + w as f64 * cfg.window_secs,
            key_index,
            key: key_name("aafqdn", key_index),
            ttl_before: before,
            ttl_after: ttl_for(key_index, epochs[key_index]),
        });
        w += cfg.renumber_every;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ttl::{detect_changes, ChangeCategory};
    use crate::federate::render_state;
    use crate::timeseries::WindowDump;

    fn cfg() -> SynthConfig {
        SynthConfig {
            windows: 24,
            keys: 4,
            renumber_every: 6,
            ..SynthConfig::default()
        }
    }

    #[test]
    fn deterministic_and_reencodable() {
        let mut a = SynthStream::new(cfg());
        let mut b = SynthStream::new(cfg());
        let mut seen = 0;
        while let Some(wa) = a.next_window() {
            let wb = b.next_window().expect("streams agree on length");
            assert_eq!(wa, wb);
            seen += 1;
            // Every generated record must survive the wire codec.
            let mut buf = Vec::new();
            for ws in &wa {
                sketchwire::write_record(ws, &mut buf);
            }
            let back: Vec<WindowState> = sketchwire::read_all(&buf).expect("codec roundtrip");
            assert_eq!(back, wa);
        }
        assert_eq!(seen, 24);
        assert!(b.next_window().is_none());
    }

    #[test]
    fn planted_renumberings_are_detected() {
        let cfg = cfg();
        let truth = renumber_truth(&cfg);
        assert!(!truth.is_empty(), "schedule plants at least one event");
        let mut stream = SynthStream::new(cfg);
        let mut dumps: Vec<WindowDump> = Vec::new();
        while let Some(states) = stream.next_window() {
            for ws in &states {
                dumps.push(render_state(&ws.topk, ws.start, ws.length).expect("renderable"));
            }
        }
        let refs: Vec<&WindowDump> = dumps.iter().collect();
        let changes = detect_changes(&refs);
        for event in &truth {
            let hit = changes
                .iter()
                .find(|c| c.key == event.key)
                .unwrap_or_else(|| panic!("planted event for {} not detected", event.key));
            assert_eq!(hit.category, ChangeCategory::Renumbering);
        }
        // No phantom detections on keys that never renumbered.
        for c in &changes {
            assert!(
                truth.iter().any(|e| e.key == c.key),
                "phantom change on {}",
                c.key
            );
        }
    }

    #[test]
    fn truth_matches_stream_epochs() {
        let cfg = SynthConfig {
            windows: 40,
            keys: 3,
            renumber_every: 7,
            ..SynthConfig::default()
        };
        let truth = renumber_truth(&cfg);
        assert_eq!(truth.len(), (cfg.windows - 1) / cfg.renumber_every);
        for e in &truth {
            assert_ne!(e.ttl_before, e.ttl_after, "epochs must move the TTL");
            assert_eq!(
                e.window_start,
                cfg.start + e.window_index as f64 * cfg.window_secs
            );
        }
    }
}
