//! Transaction summarization (paper §2.1, step B).
//!
//! Raw material — either a [`simnet::Transaction`] or captured IP packets
//! — is reduced to a [`TxSummary`]: "only the relevant pieces of
//! information", with privacy-sensitive EDNS payloads dropped. Everything
//! downstream (top-k tracking, features, analyses) consumes summaries.

use dnswire::{ip, Message, Name, RData, Rcode, RecordType, Section};
use psl::Psl;
use simnet::Transaction;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Outcome classification of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// No response observed.
    Unanswered,
    /// RCODE 0.
    NoError,
    /// RCODE 3.
    NxDomain,
    /// RCODE 5.
    Refused,
    /// RCODE 2.
    ServFail,
    /// Any other RCODE.
    OtherError,
}

impl Outcome {
    /// Map an RCODE to an outcome.
    pub fn from_rcode(rcode: Rcode) -> Outcome {
        match rcode {
            Rcode::NoError => Outcome::NoError,
            Rcode::NxDomain => Outcome::NxDomain,
            Rcode::Refused => Outcome::Refused,
            Rcode::ServFail => Outcome::ServFail,
            _ => Outcome::OtherError,
        }
    }

    /// Short lowercase tag used as a dataset key (`rcode` aggregation).
    pub fn tag(self) -> &'static str {
        match self {
            Outcome::Unanswered => "unans",
            Outcome::NoError => "ok",
            Outcome::NxDomain => "nxd",
            Outcome::Refused => "rfs",
            Outcome::ServFail => "fail",
            Outcome::OtherError => "err",
        }
    }
}

/// One summarized transaction: everything the feature step needs, nothing
/// more (the paper's "line of text" per transaction).
///
/// `PartialEq` compares every field (times bit-for-bit) — the chaos
/// differential oracle uses it to match a delivered stream against its
/// prediction element by element.
#[derive(Debug, Clone, PartialEq)]
pub struct TxSummary {
    /// Stream time, seconds.
    pub time: f64,
    /// Recursive resolver address.
    pub resolver: IpAddr,
    /// SIE contributor id.
    pub contributor: u16,
    /// Authoritative nameserver address.
    pub nameserver: IpAddr,
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RecordType,
    /// Number of labels in the QNAME.
    pub qdots: u8,
    /// Outcome classification.
    pub outcome: Outcome,
    /// Response had the AA flag.
    pub aa: bool,
    /// NoError with a non-empty ANSWER section.
    pub ok_ans: bool,
    /// NoError with NS records in AUTHORITY.
    pub ok_ns: bool,
    /// NoError with a non-empty ADDITIONAL section (OPT excluded).
    pub ok_add: bool,
    /// Number of records in ANSWER.
    pub answer_count: u8,
    /// Number of NS records in AUTHORITY.
    pub authority_ns_count: u8,
    /// Distinct IPv4 addresses in NoError answers to A/ANY queries.
    pub ip4s: Vec<Ipv4Addr>,
    /// Distinct IPv6 addresses in NoError answers to AAAA/ANY queries.
    pub ip6s: Vec<Ipv6Addr>,
    /// TTL of the first ANSWER record.
    pub answer_ttl: Option<u32>,
    /// TTL of the first NS record in AUTHORITY.
    pub ns_ttl: Option<u32>,
    /// SOA `minimum` (negative-caching TTL) from AUTHORITY, when present.
    pub soa_minimum: Option<u32>,
    /// Query had the EDNS DO bit set.
    pub do_flag: bool,
    /// Response satisfied the paper's `ok_sec` condition: DO set, data or
    /// delegation present, and RRSIGs in the sections.
    pub dnssec_ok: bool,
    /// Server response delay in milliseconds.
    pub delay_ms: Option<f64>,
    /// Network hops inferred from the response's IP TTL.
    pub hops: Option<u8>,
    /// DNS payload size of the response, bytes.
    pub resp_size: Option<u32>,
    /// 64-bit hashes of the ANSWER rdata values (change detection).
    pub answer_data_hashes: Vec<u64>,
    /// 64-bit hashes of NS names in AUTHORITY/ANSWER (change detection).
    pub ns_name_hashes: Vec<u64>,
    /// Effective TLD of the QNAME (PSL), presentation form.
    pub etld: Option<String>,
    /// Effective SLD of the QNAME (PSL), presentation form.
    pub esld: Option<String>,
    /// Plain last label (TLD) of the QNAME.
    pub tld: Option<String>,
}

impl TxSummary {
    /// Summarize a simulator transaction (structured fast path).
    pub fn from_transaction(tx: &Transaction, psl: &Psl) -> TxSummary {
        let q = tx
            .query
            .question()
            .cloned()
            .unwrap_or_else(|| dnswire::Question::new(Name::root(), RecordType::Any));
        let do_flag = tx.query.edns.as_ref().map(|e| e.dnssec_ok).unwrap_or(false);
        let mut s = TxSummary {
            time: tx.time,
            resolver: tx.resolver,
            contributor: tx.contributor,
            nameserver: tx.nameserver,
            qdots: q.qname.label_count() as u8,
            etld: psl.etld(&q.qname).map(|n| n.to_ascii()),
            esld: psl.esld(&q.qname).map(|n| n.to_ascii()),
            tld: (!q.qname.is_root()).then(|| q.qname.suffix(1).to_ascii()),
            qname: q.qname,
            qtype: q.qtype,
            outcome: Outcome::Unanswered,
            aa: false,
            ok_ans: false,
            ok_ns: false,
            ok_add: false,
            answer_count: 0,
            authority_ns_count: 0,
            ip4s: Vec::new(),
            ip6s: Vec::new(),
            answer_ttl: None,
            ns_ttl: None,
            soa_minimum: None,
            do_flag,
            dnssec_ok: false,
            delay_ms: None,
            hops: None,
            resp_size: None,
            answer_data_hashes: Vec::new(),
            ns_name_hashes: Vec::new(),
        };
        if let Some(resp) = &tx.response {
            s.absorb_response(resp);
            s.delay_ms = Some(tx.delay_ms);
            s.hops = ip::infer_hops(tx.ip_ttl_observed);
            s.resp_size = Some(tx.response_size as u32);
        }
        s
    }

    /// Summarize from raw captured packets, exactly as the sensors feed
    /// the platform: `(query packet, optional response packet, metadata)`.
    /// Returns `None` when the packets are not a parseable UDP/53 DNS
    /// transaction (the preprocessing filter).
    pub fn from_packets(
        query_pkt: &[u8],
        response_pkt: Option<&[u8]>,
        time: f64,
        contributor: u16,
        delay_ms: f64,
        psl: &Psl,
    ) -> Option<TxSummary> {
        let qdg = ip::parse_udp_packet(query_pkt).ok()?;
        if qdg.udp.dst_port != 53 {
            return None;
        }
        let query =
            Message::parse(&query_pkt[qdg.payload_offset..qdg.payload_offset + qdg.payload_len])
                .ok()?;
        let q = query.question()?.clone();
        let do_flag = query.edns.as_ref().map(|e| e.dnssec_ok).unwrap_or(false);
        let mut s = TxSummary {
            time,
            resolver: qdg.ip.src,
            contributor,
            nameserver: qdg.ip.dst,
            qdots: q.qname.label_count() as u8,
            etld: psl.etld(&q.qname).map(|n| n.to_ascii()),
            esld: psl.esld(&q.qname).map(|n| n.to_ascii()),
            tld: (!q.qname.is_root()).then(|| q.qname.suffix(1).to_ascii()),
            qname: q.qname,
            qtype: q.qtype,
            outcome: Outcome::Unanswered,
            aa: false,
            ok_ans: false,
            ok_ns: false,
            ok_add: false,
            answer_count: 0,
            authority_ns_count: 0,
            ip4s: Vec::new(),
            ip6s: Vec::new(),
            answer_ttl: None,
            ns_ttl: None,
            soa_minimum: None,
            do_flag,
            dnssec_ok: false,
            delay_ms: None,
            hops: None,
            resp_size: None,
            answer_data_hashes: Vec::new(),
            ns_name_hashes: Vec::new(),
        };
        if let Some(rpkt) = response_pkt {
            let rdg = ip::parse_udp_packet(rpkt).ok()?;
            let resp =
                Message::parse(&rpkt[rdg.payload_offset..rdg.payload_offset + rdg.payload_len])
                    .ok()?;
            // Sanity: the response must come from the queried server.
            if rdg.ip.src != qdg.ip.dst || resp.header.id != query.header.id {
                return None;
            }
            s.absorb_response(&resp);
            s.delay_ms = Some(delay_ms);
            s.hops = ip::infer_hops(rdg.ip.ttl);
            s.resp_size = Some(rdg.payload_len as u32);
        }
        Some(s)
    }

    fn absorb_response(&mut self, resp: &Message) {
        self.outcome = Outcome::from_rcode(resp.rcode());
        self.aa = resp.header.aa;
        self.answer_count = resp.answers.len().min(255) as u8;
        self.answer_ttl = resp.answers.first().map(|r| r.ttl);

        let mut has_rrsig = false;
        for (section, rec) in resp.all_records() {
            match &rec.rdata {
                RData::Ns(name) => {
                    if section == Section::Authority {
                        self.authority_ns_count = self.authority_ns_count.saturating_add(1);
                        if self.ns_ttl.is_none() {
                            self.ns_ttl = Some(rec.ttl);
                        }
                    }
                    self.ns_name_hashes.push(hash_bytes(name.as_wire()));
                }
                RData::Soa(soa) if section == Section::Authority && self.soa_minimum.is_none() => {
                    self.soa_minimum = Some(soa.minimum);
                }
                RData::Rrsig(_) => has_rrsig = true,
                _ => {}
            }
            if section == Section::Answer {
                match &rec.rdata {
                    RData::A(a) => {
                        if matches!(self.qtype, RecordType::A | RecordType::Any)
                            && !self.ip4s.contains(a)
                        {
                            self.ip4s.push(*a);
                        }
                        self.answer_data_hashes.push(hash_bytes(&a.octets()));
                    }
                    RData::Aaaa(a) => {
                        if matches!(self.qtype, RecordType::Aaaa | RecordType::Any)
                            && !self.ip6s.contains(a)
                        {
                            self.ip6s.push(*a);
                        }
                        self.answer_data_hashes.push(hash_bytes(&a.octets()));
                    }
                    RData::Cname(n) | RData::Ptr(n) => {
                        self.answer_data_hashes.push(hash_bytes(n.as_wire()));
                    }
                    _ => {}
                }
            }
        }

        if self.outcome == Outcome::NoError {
            self.ok_ans = !resp.answers.is_empty();
            self.ok_ns = resp
                .authorities
                .iter()
                .any(|r| matches!(r.rdata, RData::Ns(_)));
            self.ok_add = !resp.additionals.is_empty();
            self.dnssec_ok = self.do_flag && (self.ok_ans || self.ok_ns) && has_rrsig;
        }
    }

    /// NoData: a NoError response with neither answer nor delegation.
    pub fn is_nodata(&self) -> bool {
        self.outcome == Outcome::NoError && !self.ok_ans && !self.ok_ns
    }

    /// NoError with data or delegation (the paper's "NOERROR + data").
    pub fn is_ok_with_data(&self) -> bool {
        self.outcome == Outcome::NoError && (self.ok_ans || self.ok_ns)
    }
}

/// FNV-1a over bytes; stable, dependency-free hashing for change
/// detection sets.
fn hash_bytes(b: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in b {
        h ^= x as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimConfig, Simulation};

    fn collect_summaries(n_secs: f64) -> Vec<TxSummary> {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut out = Vec::new();
        sim.run(n_secs, &mut |tx| {
            out.push(TxSummary::from_transaction(tx, &psl));
        });
        out
    }

    #[test]
    fn summaries_cover_outcomes() {
        let sums = collect_summaries(2.0);
        assert!(sums.len() > 200);
        let ok = sums
            .iter()
            .filter(|s| s.outcome == Outcome::NoError)
            .count();
        let nxd = sums
            .iter()
            .filter(|s| s.outcome == Outcome::NxDomain)
            .count();
        let unans = sums
            .iter()
            .filter(|s| s.outcome == Outcome::Unanswered)
            .count();
        assert!(
            ok > 0 && nxd > 0 && unans > 0,
            "ok={ok} nxd={nxd} unans={unans}"
        );
    }

    #[test]
    fn psl_fields_populated() {
        let sums = collect_summaries(1.0);
        let with_esld = sums.iter().filter(|s| s.esld.is_some()).count();
        assert!(with_esld as f64 > 0.8 * sums.len() as f64);
        // Every non-root name has a TLD.
        assert!(sums.iter().all(|s| s.tld.is_some()));
    }

    #[test]
    fn nodata_vs_data_classification() {
        let sums = collect_summaries(3.0);
        let nodata = sums.iter().filter(|s| s.is_nodata()).count();
        let with_data = sums.iter().filter(|s| s.is_ok_with_data()).count();
        assert!(nodata > 0, "expect some AAAA NoData");
        assert!(with_data > nodata, "data should dominate");
        // NoData and ok-with-data are disjoint.
        assert!(sums.iter().all(|s| !(s.is_nodata() && s.is_ok_with_data())));
    }

    #[test]
    fn answered_summaries_have_delay_hops_size() {
        let sums = collect_summaries(1.0);
        for s in sums.iter().filter(|s| s.outcome != Outcome::Unanswered) {
            assert!(s.delay_ms.is_some());
            assert!(s.hops.is_some());
            assert!(s.resp_size.unwrap() >= 12);
        }
        for s in sums.iter().filter(|s| s.outcome == Outcome::Unanswered) {
            assert!(s.delay_ms.is_none() && s.hops.is_none() && s.resp_size.is_none());
        }
    }

    #[test]
    fn packet_path_agrees_with_structured_path() {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut checked = 0;
        sim.run(0.5, &mut |tx| {
            let structured = TxSummary::from_transaction(tx, &psl);
            let (qpkt, rpkt) = tx.to_packets();
            let from_pkts = TxSummary::from_packets(
                &qpkt,
                rpkt.as_deref(),
                tx.time,
                tx.contributor,
                tx.delay_ms,
                &psl,
            )
            .expect("sim packets always parse");
            assert_eq!(structured.qname, from_pkts.qname);
            assert_eq!(structured.qtype, from_pkts.qtype);
            assert_eq!(structured.outcome, from_pkts.outcome);
            assert_eq!(structured.ok_ans, from_pkts.ok_ans);
            assert_eq!(structured.ok_ns, from_pkts.ok_ns);
            assert_eq!(structured.resp_size, from_pkts.resp_size);
            assert_eq!(structured.hops, from_pkts.hops);
            assert_eq!(structured.ip4s, from_pkts.ip4s);
            assert_eq!(structured.soa_minimum, from_pkts.soa_minimum);
            checked += 1;
        });
        assert!(checked > 50);
    }

    #[test]
    fn garbage_packets_filtered() {
        let psl = Psl::embedded();
        assert!(TxSummary::from_packets(&[0u8; 4], None, 0.0, 0, 0.0, &psl).is_none());
        // Valid IP/UDP but port 80.
        let pkt = ip::build_udp_packet(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            1234,
            80,
            64,
            b"\x00\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",
        );
        assert!(TxSummary::from_packets(&pkt, None, 0.0, 0, 0.0, &psl).is_none());
    }

    #[test]
    fn dnssec_feature_detected() {
        let sums = collect_summaries(3.0);
        let sec = sums.iter().filter(|s| s.dnssec_ok).count();
        assert!(sec > 0, "expect some RRSIG-bearing responses");
        // dnssec_ok implies the DO bit was set.
        assert!(sums.iter().filter(|s| s.dnssec_ok).all(|s| s.do_flag));
    }
}
