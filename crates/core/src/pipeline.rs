//! The assembled Observatory (steps B–F of the paper's Figure 1), in two
//! flavours: a single-threaded [`Observatory`] and a crossbeam-channel
//! [`ThreadedPipeline`] with parallel summarizers and a sequencing stage,
//! mirroring how a production deployment separates ingest from tracking.

use crate::features::FeatureConfig;
use crate::keys::Dataset;
use crate::summarize::TxSummary;
use crate::timeseries::{TimeSeriesStore, WindowDump};
use crate::topk::TopKTracker;
use psl::Psl;
use simnet::Transaction;

/// Observatory configuration.
#[derive(Debug, Clone)]
pub struct ObservatoryConfig {
    /// Datasets to track, with their top-k capacities.
    pub datasets: Vec<(Dataset, usize)>,
    /// Window length in seconds (the paper uses 60).
    pub window_secs: f64,
    /// Sketch sizing for per-object features.
    pub feature_cfg: FeatureConfig,
    /// Use the Bloom eviction gate (paper §2.2's optional filter).
    pub bloom_gate: bool,
}

impl Default for ObservatoryConfig {
    fn default() -> Self {
        ObservatoryConfig {
            datasets: vec![(Dataset::SrvIp, 10_000)],
            window_secs: 60.0,
            feature_cfg: FeatureConfig::default(),
            bloom_gate: true,
        }
    }
}

/// The single-threaded stream processor: summarize → track → window-dump.
pub struct Observatory {
    cfg: ObservatoryConfig,
    psl: Psl,
    trackers: Vec<TopKTracker>,
    store: TimeSeriesStore,
    window_start: Option<f64>,
    /// Stats captured at the previous window boundary, per tracker.
    prev_stats: Vec<(u64, u64, u64)>,
    ingested: u64,
}

impl Observatory {
    /// Build from config.
    pub fn new(cfg: ObservatoryConfig) -> Observatory {
        let trackers = cfg
            .datasets
            .iter()
            .map(|&(ds, k)| TopKTracker::new(ds, k, cfg.feature_cfg, cfg.bloom_gate))
            .collect::<Vec<_>>();
        let prev_stats = vec![(0, 0, 0); trackers.len()];
        Observatory {
            cfg,
            psl: Psl::embedded(),
            trackers,
            store: TimeSeriesStore::new(),
            window_start: None,
            prev_stats,
            ingested: 0,
        }
    }

    /// Total transactions ingested.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Ingest one simulator transaction (structured fast path).
    pub fn ingest(&mut self, tx: &Transaction) {
        let summary = TxSummary::from_transaction(tx, &self.psl);
        self.ingest_summary(summary);
    }

    /// Ingest one transaction from raw captured packets; silently drops
    /// unparseable input (the preprocessing filter).
    pub fn ingest_packets(
        &mut self,
        query_pkt: &[u8],
        response_pkt: Option<&[u8]>,
        time: f64,
        contributor: u16,
        delay_ms: f64,
    ) {
        if let Some(summary) = TxSummary::from_packets(
            query_pkt,
            response_pkt,
            time,
            contributor,
            delay_ms,
            &self.psl,
        ) {
            self.ingest_summary(summary);
        }
    }

    /// Ingest a pre-built summary.
    pub fn ingest_summary(&mut self, summary: TxSummary) {
        let start = *self.window_start.get_or_insert(summary.time);
        if summary.time >= start + self.cfg.window_secs {
            self.dump_window();
            // Advance to the window containing this summary.
            let w = self.cfg.window_secs;
            let start = self.window_start.expect("set above");
            let skipped = ((summary.time - start) / w).floor();
            self.window_start = Some(start + skipped * w);
        }
        self.ingested += 1;
        for t in &mut self.trackers {
            t.observe(&summary);
        }
    }

    fn dump_window(&mut self) {
        let start = self.window_start.expect("dump only after first tx");
        for (i, t) in self.trackers.iter_mut().enumerate() {
            let rows = t.dump(start);
            let (kept, dropped, filtered) = t.stats();
            let (pk, pd, pf) = self.prev_stats[i];
            self.prev_stats[i] = (kept, dropped, filtered);
            self.store.push(WindowDump {
                dataset: t.dataset().name().to_string(),
                start,
                length: self.cfg.window_secs,
                rows,
                kept: kept - pk,
                dropped: dropped - pd,
                filtered: filtered - pf,
            });
        }
    }

    /// Flush the final partial window and return the collected store.
    pub fn finish(mut self) -> TimeSeriesStore {
        if self.window_start.is_some() && self.ingested > 0 {
            self.dump_window();
        }
        self.store
    }

    /// Borrow the store collected so far (completed windows only).
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }
}

/// A threaded pipeline: a bounded crossbeam channel fans transactions to
/// `workers` summarizer threads; summaries return with sequence numbers
/// and are re-ordered before entering the (stateful, single-threaded)
/// trackers — the same shape as the paper's production ingest.
pub struct ThreadedPipeline {
    cfg: ObservatoryConfig,
    workers: usize,
}

impl ThreadedPipeline {
    /// Build a pipeline with `workers` summarizer threads.
    pub fn new(cfg: ObservatoryConfig, workers: usize) -> ThreadedPipeline {
        ThreadedPipeline {
            cfg,
            workers: workers.max(1),
        }
    }

    /// Consume `transactions`, returning the collected time series.
    ///
    /// The input is chunked into batches; each batch is summarized by one
    /// worker; a sequencer restores batch order so window boundaries are
    /// deterministic and identical to the single-threaded result.
    pub fn run(&self, transactions: Vec<Transaction>) -> TimeSeriesStore {
        use crossbeam_channel::bounded;
        use std::collections::BTreeMap;

        const BATCH: usize = 512;
        let (task_tx, task_rx) = bounded::<(u64, Vec<Transaction>)>(self.workers * 2);
        let (done_tx, done_rx) = bounded::<(u64, Vec<TxSummary>)>(self.workers * 2);

        let mut observatory = Observatory::new(self.cfg.clone());
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    let psl = Psl::embedded();
                    for (seq, batch) in task_rx.iter() {
                        let summaries = batch
                            .iter()
                            .map(|tx| TxSummary::from_transaction(tx, &psl))
                            .collect();
                        if done_tx.send((seq, summaries)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(task_rx);
            drop(done_tx);

            // Feeder thread: chunk and send.
            let feeder = scope.spawn(move || {
                let mut seq = 0u64;
                let mut it = transactions.into_iter().peekable();
                while it.peek().is_some() {
                    let batch: Vec<Transaction> = it.by_ref().take(BATCH).collect();
                    if task_tx.send((seq, batch)).is_err() {
                        return;
                    }
                    seq += 1;
                }
            });

            // Sequencer: restore batch order, feed the trackers.
            let mut next_seq = 0u64;
            let mut hold: BTreeMap<u64, Vec<TxSummary>> = BTreeMap::new();
            for (seq, summaries) in done_rx.iter() {
                hold.insert(seq, summaries);
                while let Some(batch) = hold.remove(&next_seq) {
                    for s in batch {
                        observatory.ingest_summary(s);
                    }
                    next_seq += 1;
                }
            }
            feeder.join().expect("feeder thread");
        });
        observatory.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimConfig, Simulation};

    fn small_cfg() -> ObservatoryConfig {
        ObservatoryConfig {
            datasets: vec![(Dataset::SrvIp, 500), (Dataset::Qtype, 32)],
            window_secs: 1.0,
            ..ObservatoryConfig::default()
        }
    }

    #[test]
    fn windows_are_produced() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(3.5, &mut |tx| obs.ingest(tx));
        let store = obs.finish();
        // 3 full windows + final partial, × 2 datasets.
        let srvip = store.dataset(Dataset::SrvIp).len();
        assert!((3..=4).contains(&srvip), "srvip windows: {srvip}");
        assert_eq!(store.windows().len() % srvip, 0);
    }

    #[test]
    fn window_rows_have_traffic() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(2.5, &mut |tx| obs.ingest(tx));
        let store = obs.finish();
        let windows = store.dataset(Dataset::Qtype);
        let with_rows = windows.iter().filter(|w| !w.rows.is_empty()).count();
        assert!(with_rows >= 1);
        for w in &windows {
            for (key, row) in &w.rows {
                assert!(!key.is_empty());
                assert!(row.hits > 0);
            }
        }
    }

    #[test]
    fn kept_dropped_are_per_window() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(3.5, &mut |tx| obs.ingest(tx));
        let ingested = obs.ingested();
        let store = obs.finish();
        let total_kept: u64 = store
            .dataset(Dataset::SrvIp)
            .iter()
            .map(|w| w.kept + w.dropped + w.filtered)
            .sum();
        assert_eq!(total_kept, ingested, "per-window stats must sum to total");
    }

    #[test]
    fn packet_path_matches_structured_path() {
        let mut sim1 = Simulation::from_config(SimConfig::small());
        let mut obs1 = Observatory::new(small_cfg());
        sim1.run(1.5, &mut |tx| obs1.ingest(tx));

        let mut sim2 = Simulation::from_config(SimConfig::small());
        let mut obs2 = Observatory::new(small_cfg());
        sim2.run(1.5, &mut |tx| {
            let (q, r) = tx.to_packets();
            obs2.ingest_packets(&q, r.as_deref(), tx.time, tx.contributor, tx.delay_ms);
        });

        let s1 = obs1.finish();
        let s2 = obs2.finish();
        assert_eq!(s1.windows().len(), s2.windows().len());
        for (w1, w2) in s1.windows().iter().zip(s2.windows()) {
            assert_eq!(w1.rows.len(), w2.rows.len(), "{} window", w1.dataset);
            assert_eq!(w1.total_hits(), w2.total_hits());
        }
    }

    #[test]
    fn threaded_pipeline_matches_single_threaded() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);

        let mut obs = Observatory::new(small_cfg());
        for tx in &txs {
            obs.ingest(tx);
        }
        let single = obs.finish();

        let threaded = ThreadedPipeline::new(small_cfg(), 4).run(txs);

        assert_eq!(single.windows().len(), threaded.windows().len());
        for (a, b) in single.windows().iter().zip(threaded.windows()) {
            assert_eq!(a.dataset, b.dataset);
            assert_eq!(a.start, b.start);
            assert_eq!(a.rows.len(), b.rows.len());
            assert_eq!(a.total_hits(), b.total_hits());
            for ((ka, ra), (kb, rb)) in a.rows.iter().zip(&b.rows) {
                assert_eq!(ka, kb);
                assert_eq!(ra.hits, rb.hits);
            }
        }
    }

    #[test]
    fn gap_in_traffic_does_not_break_windows() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(1.2, &mut |tx| obs.ingest(tx));
        sim.skip_to(10.0);
        sim.run(1.2, &mut |tx| obs.ingest(tx));
        let store = obs.finish();
        // Windows must align to the 1 s grid despite the jump.
        for w in store.windows() {
            assert!(w.length == 1.0);
        }
        assert!(store.windows().iter().any(|w| w.start >= 9.0));
    }
}
