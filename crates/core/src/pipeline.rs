//! The assembled Observatory (steps B–F of the paper's Figure 1), in two
//! flavours: a single-threaded [`Observatory`] and a crossbeam-channel
//! [`ThreadedPipeline`] with parallel summarizers and a sequencing stage,
//! mirroring how a production deployment separates ingest from tracking.

use crate::features::FeatureConfig;
use crate::keys::Dataset;
use crate::metrics::{SequencerMetrics, ShardMetrics};
use crate::summarize::TxSummary;
use crate::timeseries::{TimeSeriesStore, WindowDump};
use crate::topk::TopKTracker;
use psl::Psl;
use simnet::Transaction;
use telemetry::Registry;

/// Observatory configuration.
#[derive(Debug, Clone)]
pub struct ObservatoryConfig {
    /// Datasets to track, with their top-k capacities.
    pub datasets: Vec<(Dataset, usize)>,
    /// Window length in seconds (the paper uses 60).
    pub window_secs: f64,
    /// Sketch sizing for per-object features.
    pub feature_cfg: FeatureConfig,
    /// Use the Bloom eviction gate (paper §2.2's optional filter).
    pub bloom_gate: bool,
}

impl Default for ObservatoryConfig {
    fn default() -> Self {
        ObservatoryConfig {
            datasets: vec![(Dataset::SrvIp, 10_000)],
            window_secs: 60.0,
            feature_cfg: FeatureConfig::default(),
            bloom_gate: true,
        }
    }
}

/// The single-threaded stream processor: summarize → track → window-dump.
pub struct Observatory {
    cfg: ObservatoryConfig,
    psl: Psl,
    trackers: Vec<TopKTracker>,
    store: TimeSeriesStore,
    window_start: Option<f64>,
    /// Stats captured at the previous window boundary, per tracker.
    prev_stats: Vec<(u64, u64, u64)>,
    ingested: u64,
}

impl Observatory {
    /// Build from config.
    pub fn new(cfg: ObservatoryConfig) -> Observatory {
        let trackers = cfg
            .datasets
            .iter()
            .map(|&(ds, k)| TopKTracker::new(ds, k, cfg.feature_cfg, cfg.bloom_gate))
            .collect::<Vec<_>>();
        let prev_stats = vec![(0, 0, 0); trackers.len()];
        Observatory {
            cfg,
            psl: Psl::embedded(),
            trackers,
            store: TimeSeriesStore::new(),
            window_start: None,
            prev_stats,
            ingested: 0,
        }
    }

    /// Total transactions ingested.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Ingest one simulator transaction (structured fast path).
    pub fn ingest(&mut self, tx: &Transaction) {
        let summary = TxSummary::from_transaction(tx, &self.psl);
        self.ingest_summary(summary);
    }

    /// Ingest one transaction from raw captured packets; silently drops
    /// unparseable input (the preprocessing filter).
    pub fn ingest_packets(
        &mut self,
        query_pkt: &[u8],
        response_pkt: Option<&[u8]>,
        time: f64,
        contributor: u16,
        delay_ms: f64,
    ) {
        if let Some(summary) = TxSummary::from_packets(
            query_pkt,
            response_pkt,
            time,
            contributor,
            delay_ms,
            &self.psl,
        ) {
            self.ingest_summary(summary);
        }
    }

    /// Ingest a pre-built summary.
    pub fn ingest_summary(&mut self, summary: TxSummary) {
        let start = *self.window_start.get_or_insert(summary.time);
        if summary.time >= start + self.cfg.window_secs {
            self.dump_window();
            // Advance to the window containing this summary.
            let w = self.cfg.window_secs;
            let start = self.window_start.expect("set above");
            let skipped = ((summary.time - start) / w).floor();
            self.window_start = Some(start + skipped * w);
        }
        self.ingested += 1;
        for t in &mut self.trackers {
            t.observe(&summary);
        }
    }

    fn dump_window(&mut self) {
        let start = self.window_start.expect("dump only after first tx");
        for (i, t) in self.trackers.iter_mut().enumerate() {
            let rows = t.dump(start);
            let (kept, dropped, filtered) = t.stats();
            let (pk, pd, pf) = self.prev_stats[i];
            self.prev_stats[i] = (kept, dropped, filtered);
            self.store.push(WindowDump {
                dataset: t.dataset().name().to_string(),
                start,
                length: self.cfg.window_secs,
                rows,
                kept: kept - pk,
                dropped: dropped - pd,
                filtered: filtered - pf,
            });
        }
    }

    /// Flush the final partial window and return the collected store.
    pub fn finish(mut self) -> TimeSeriesStore {
        if self.window_start.is_some() && self.ingested > 0 {
            self.dump_window();
        }
        self.store
    }

    /// Borrow the store collected so far (completed windows only).
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }
}

/// One message on a shard's input channel.
///
/// Batches carry the summaries by `Arc` (shared with every other shard
/// that got assignments from the same batch) plus this shard's private
/// assignment list: `(index into the batch, bitmask of dataset slots)`.
/// Watermarks mark a window boundary; the sequencer broadcasts one to
/// every shard so all partial trackers dump at exactly the same point in
/// the (re-ordered, deterministic) stream.
enum ShardMsg {
    Batch {
        summaries: std::sync::Arc<Vec<TxSummary>>,
        assign: Vec<(u32, u16)>,
    },
    Watermark {
        start: f64,
    },
}

/// Per-window output of one shard: for each configured dataset (in config
/// order) the dumped rows plus this window's `(kept, dropped, filtered)`
/// deltas.
type ShardPart = (Vec<(String, crate::features::FeatureRow)>, (u64, u64, u64));
type ShardWindows = Vec<(f64, Vec<ShardPart>)>;

/// A threaded pipeline: transactions are chunked into batches and fanned
/// out to `workers` summarizer threads; a sequencer restores batch order,
/// drives the window clock, and routes each summary to one of `shards`
/// tracker threads by `xxh64(key) % shards` — so the Top-k state itself
/// is partitioned, not just the parsing. Disjoint key partitions make the
/// merge trivial (concatenate + re-sort) and keep the sharded output
/// byte-identical to the single-threaded [`Observatory`].
pub struct ThreadedPipeline {
    cfg: ObservatoryConfig,
    workers: usize,
    shards: usize,
    registry: Registry,
}

impl ThreadedPipeline {
    /// Build a pipeline with `workers` summarizer threads and a single
    /// tracker shard (exact single-tracker capacities).
    pub fn new(cfg: ObservatoryConfig, workers: usize) -> ThreadedPipeline {
        Self::with_shards(cfg, workers, 1)
    }

    /// Build a pipeline with `workers` summarizer threads and `shards`
    /// tracker threads. With `shards > 1` each shard gets capacity
    /// `ceil(k/shards)` plus 25 % headroom against uneven hashing; with
    /// `shards == 1` capacities match the single-threaded tracker
    /// exactly.
    pub fn with_shards(cfg: ObservatoryConfig, workers: usize, shards: usize) -> ThreadedPipeline {
        assert!(
            cfg.datasets.len() <= 16,
            "shard routing packs dataset slots into a u16 bitmask"
        );
        ThreadedPipeline {
            cfg,
            workers: workers.max(1),
            shards: shards.max(1),
            registry: Registry::global(),
        }
    }

    /// Report telemetry into `registry` instead of the global one (tests
    /// and multi-pipeline processes that need isolated metric spaces).
    pub fn with_registry(mut self, registry: Registry) -> ThreadedPipeline {
        self.registry = registry;
        self
    }

    /// Per-shard cache capacity for a dataset configured with capacity `k`.
    fn shard_capacity(k: usize, shards: usize) -> usize {
        if shards <= 1 {
            k
        } else {
            let per = k.div_ceil(shards);
            (per + per / 4).max(8)
        }
    }

    /// Consume `transactions`, returning the collected time series.
    ///
    /// The input is chunked into batches on the calling thread (batch
    /// `Vec`s are recycled through a return channel, so the steady state
    /// allocates no batch storage); each batch is summarized by one
    /// worker; the sequencer restores batch order so window boundaries
    /// are deterministic and identical to the single-threaded result,
    /// then scatters summaries to the tracker shards.
    pub fn run<I>(&self, transactions: I) -> TimeSeriesStore
    where
        I: IntoIterator<Item = Transaction>,
    {
        use crossbeam_channel::{bounded, unbounded};

        const BATCH: usize = 512;
        let workers = self.workers;
        let shards = self.shards;
        let datasets: Vec<Dataset> = self.cfg.datasets.iter().map(|&(ds, _)| ds).collect();
        let window_secs = self.cfg.window_secs;

        let (task_tx, task_rx) = bounded::<(u64, Vec<Transaction>)>(workers * 2);
        let (done_tx, done_rx) = bounded::<(u64, Vec<TxSummary>)>(workers * 2);
        // Drained batch Vecs flow back to the feeder for reuse. Unbounded
        // so a worker can never block on the return path; the population
        // of batches is bounded by the task channel anyway.
        let (recycle_tx, recycle_rx) = unbounded::<Vec<Transaction>>();
        let (shard_txs, shard_rxs) = shard_channels(shards);
        let seq_metrics = SequencerMetrics::register(&self.registry, shards);

        let mut shard_windows: Vec<ShardWindows> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            // Summarizer workers.
            for _ in 0..workers {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                let recycle_tx = recycle_tx.clone();
                scope.spawn(move || {
                    let psl = Psl::embedded();
                    for (seq, mut batch) in task_rx.iter() {
                        let summaries = batch
                            .iter()
                            .map(|tx| TxSummary::from_transaction(tx, &psl))
                            .collect();
                        batch.clear();
                        // Feeder may already be done draining; that's fine.
                        let _ = recycle_tx.send(batch);
                        if done_tx.send((seq, summaries)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(task_rx);
            drop(done_tx);
            drop(recycle_tx);

            let shard_handles: Vec<_> = shard_rxs
                .into_iter()
                .enumerate()
                .map(|(sh, rx)| {
                    let cfg = &self.cfg;
                    let metrics = ShardMetrics::register(&self.registry, sh, &datasets);
                    scope.spawn(move || shard_loop(rx, cfg, shards, metrics))
                })
                .collect();

            let datasets: &[Dataset] = &datasets;
            let sequencer = scope.spawn(move || {
                sequencer_loop(done_rx, shard_txs, datasets, window_secs, seq_metrics)
            });

            // Feeder (this thread): chunk the input, reusing drained
            // batch Vecs from the recycle channel.
            let mut it = transactions.into_iter();
            let mut seq = 0u64;
            loop {
                let mut batch = recycle_rx.try_recv().unwrap_or_default();
                batch.extend(it.by_ref().take(BATCH));
                if batch.is_empty() {
                    break;
                }
                if task_tx.send((seq, batch)).is_err() {
                    break;
                }
                seq += 1;
            }
            drop(task_tx);
            drop(recycle_rx);

            sequencer.join().expect("sequencer thread");
            for h in shard_handles {
                shard_windows.push(h.join().expect("shard thread"));
            }
        });

        merge_shard_windows(shard_windows, &datasets, window_secs)
    }

    /// Consume pre-built summaries, returning the collected time series.
    ///
    /// This is the collector-side entry point of the feed transport: the
    /// summaries were produced (and parallelized) on the sensors, so the
    /// summarizer stage is skipped and the stream goes straight through
    /// the sequencer → shard → merge machinery shared with [`Self::run`].
    /// With one shard the result is byte-identical to feeding the same
    /// summaries through [`Observatory::ingest_summary`].
    pub fn run_summaries<I>(&self, summaries: I) -> TimeSeriesStore
    where
        I: IntoIterator<Item = TxSummary>,
    {
        use crossbeam_channel::bounded;

        const BATCH: usize = 512;
        let shards = self.shards;
        let datasets: Vec<Dataset> = self.cfg.datasets.iter().map(|&(ds, _)| ds).collect();
        let window_secs = self.cfg.window_secs;

        let (done_tx, done_rx) = bounded::<(u64, Vec<TxSummary>)>(4);
        let (shard_txs, shard_rxs) = shard_channels(shards);
        let seq_metrics = SequencerMetrics::register(&self.registry, shards);

        let mut shard_windows: Vec<ShardWindows> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let shard_handles: Vec<_> = shard_rxs
                .into_iter()
                .enumerate()
                .map(|(sh, rx)| {
                    let cfg = &self.cfg;
                    let metrics = ShardMetrics::register(&self.registry, sh, &datasets);
                    scope.spawn(move || shard_loop(rx, cfg, shards, metrics))
                })
                .collect();

            let datasets: &[Dataset] = &datasets;
            let sequencer = scope.spawn(move || {
                sequencer_loop(done_rx, shard_txs, datasets, window_secs, seq_metrics)
            });

            let mut it = summaries.into_iter();
            let mut seq = 0u64;
            loop {
                let batch: Vec<TxSummary> = it.by_ref().take(BATCH).collect();
                if batch.is_empty() {
                    break;
                }
                if done_tx.send((seq, batch)).is_err() {
                    break;
                }
                seq += 1;
            }
            drop(done_tx);

            sequencer.join().expect("sequencer thread");
            for h in shard_handles {
                shard_windows.push(h.join().expect("shard thread"));
            }
        });

        merge_shard_windows(shard_windows, &datasets, window_secs)
    }
}

fn shard_channels(
    shards: usize,
) -> (
    Vec<crossbeam_channel::Sender<ShardMsg>>,
    Vec<crossbeam_channel::Receiver<ShardMsg>>,
) {
    let mut shard_txs = Vec::with_capacity(shards);
    let mut shard_rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = crossbeam_channel::bounded::<ShardMsg>(4);
        shard_txs.push(tx);
        shard_rxs.push(rx);
    }
    (shard_txs, shard_rxs)
}

/// Tracker shard: owns an independent TopKTracker per dataset over its
/// disjoint slice of the key space, dumping at every watermark.
fn shard_loop(
    rx: crossbeam_channel::Receiver<ShardMsg>,
    cfg: &ObservatoryConfig,
    shards: usize,
    mut metrics: ShardMetrics,
) -> ShardWindows {
    let mut trackers: Vec<TopKTracker> = cfg
        .datasets
        .iter()
        .map(|&(ds, k)| {
            TopKTracker::new(
                ds,
                ThreadedPipeline::shard_capacity(k, shards),
                cfg.feature_cfg,
                cfg.bloom_gate,
            )
        })
        .collect();
    let mut prev = vec![(0u64, 0u64, 0u64); trackers.len()];
    let mut windows: ShardWindows = Vec::new();
    for msg in rx.iter() {
        metrics.queue_depth.add(-1.0);
        match msg {
            ShardMsg::Batch { summaries, assign } => {
                let t0 = std::time::Instant::now();
                for (idx, mask) in assign {
                    let s = &summaries[idx as usize];
                    for (d, t) in trackers.iter_mut().enumerate() {
                        if mask & (1 << d) != 0 {
                            t.observe(s);
                        }
                    }
                }
                metrics.batch_seconds.record(t0.elapsed().as_secs_f64());
            }
            ShardMsg::Watermark { start } => {
                let tracker_metrics = &mut metrics.trackers;
                let parts = trackers
                    .iter_mut()
                    .enumerate()
                    .map(|(i, t)| {
                        let rows = t.dump(start);
                        let (k, dr, f) = t.stats();
                        let (pk, pd, pf) = prev[i];
                        prev[i] = (k, dr, f);
                        let delta = (k - pk, dr - pd, f - pf);
                        tracker_metrics[i].flush(t, delta);
                        (rows, delta)
                    })
                    .collect();
                windows.push((start, parts));
            }
        }
    }
    windows
}

/// Sequencer: restore batch order, drive the window clock with the exact
/// arithmetic of `Observatory::ingest_summary`, and scatter assignments
/// to the shards. Dropping the senders on return disconnects the shards.
fn sequencer_loop(
    done_rx: crossbeam_channel::Receiver<(u64, Vec<TxSummary>)>,
    shard_txs: Vec<crossbeam_channel::Sender<ShardMsg>>,
    datasets: &[Dataset],
    window_secs: f64,
    metrics: SequencerMetrics,
) {
    use crate::keys::KeyBuf;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    let shards = shard_txs.len();
    let n_datasets = datasets.len();
    let full_mask: u16 = if n_datasets >= 16 {
        u16::MAX
    } else {
        (1u16 << n_datasets) - 1
    };

    let mut next_seq = 0u64;
    let mut hold: BTreeMap<u64, Vec<TxSummary>> = BTreeMap::new();
    let mut window_start: Option<f64> = None;
    let mut ingested = 0u64;
    let mut keybuf = KeyBuf::new();
    let mut masks: Vec<u16> = vec![0; shards];
    let mut pending: Vec<Vec<(u32, u16)>> = vec![Vec::new(); shards];

    let queue_depth = &metrics.queue_depth;
    let flush = |pending: &mut Vec<Vec<(u32, u16)>>,
                 batch: &Arc<Vec<TxSummary>>,
                 shard_txs: &[crossbeam_channel::Sender<ShardMsg>]| {
        for (sh, assign) in pending.iter_mut().enumerate() {
            if !assign.is_empty() {
                // Gauge first: the bounded channel may block, and the
                // depth should reflect the message the shard will see.
                queue_depth[sh].add(1.0);
                shard_txs[sh]
                    .send(ShardMsg::Batch {
                        summaries: Arc::clone(batch),
                        assign: std::mem::take(assign),
                    })
                    .unwrap_or_else(|_| panic!("shard thread alive"));
            }
        }
    };

    for (seq, summaries) in done_rx.iter() {
        hold.insert(seq, summaries);
        while let Some(batch) = hold.remove(&next_seq) {
            next_seq += 1;
            let batch = Arc::new(batch);
            metrics.batches.inc(1);
            metrics.ingested.inc(batch.len() as u64);
            for (i, s) in batch.iter().enumerate() {
                let start = *window_start.get_or_insert(s.time);
                if s.time >= start + window_secs {
                    // Window boundary *before* this summary: ship
                    // everything routed so far, then the watermark,
                    // exactly as the single-threaded Observatory dumps
                    // before observing.
                    flush(&mut pending, &batch, &shard_txs);
                    for (sh, tx) in shard_txs.iter().enumerate() {
                        queue_depth[sh].add(1.0);
                        tx.send(ShardMsg::Watermark { start })
                            .unwrap_or_else(|_| panic!("shard thread alive"));
                    }
                    metrics.windows.inc(1);
                    metrics.watermark_lag_seconds.set(s.time - start);
                    let skipped = ((s.time - start) / window_secs).floor();
                    window_start = Some(start + skipped * window_secs);
                }
                ingested += 1;
                if shards == 1 {
                    pending[0].push((i as u32, full_mask));
                } else {
                    masks.iter_mut().for_each(|m| *m = 0);
                    for (d, ds) in datasets.iter().enumerate() {
                        // Filtered summaries still count once: route them
                        // by dataset slot so exactly one shard tallies
                        // the `filtered` stat.
                        let sh = if ds.key_into(s, &mut keybuf) {
                            (sketches::hash::xxh64(keybuf.as_bytes(), 0) % shards as u64) as usize
                        } else {
                            d % shards
                        };
                        masks[sh] |= 1 << d;
                    }
                    for (sh, m) in masks.iter().enumerate() {
                        if *m != 0 {
                            pending[sh].push((i as u32, *m));
                        }
                    }
                }
            }
            flush(&mut pending, &batch, &shard_txs);
        }
    }
    // Final partial window, matching `Observatory::finish`.
    if let Some(start) = window_start {
        if ingested > 0 {
            for (sh, tx) in shard_txs.iter().enumerate() {
                queue_depth[sh].add(1.0);
                tx.send(ShardMsg::Watermark { start })
                    .unwrap_or_else(|_| panic!("shard thread alive"));
            }
            metrics.windows.inc(1);
        }
    }
}

/// Merge: every shard saw every watermark, so all shards report the same
/// window starts in the same order. Partitions are disjoint, so a
/// window's rows are the concatenation, re-sorted with the tracker's own
/// dump order (hits desc, then key).
fn merge_shard_windows(
    mut shard_windows: Vec<ShardWindows>,
    datasets: &[Dataset],
    window_secs: f64,
) -> TimeSeriesStore {
    let mut store = TimeSeriesStore::new();
    let n_windows = shard_windows.first().map_or(0, Vec::len);
    debug_assert!(shard_windows.iter().all(|w| w.len() == n_windows));
    for w in 0..n_windows {
        let start = shard_windows[0][w].0;
        for (d, ds) in datasets.iter().enumerate() {
            let mut rows = Vec::new();
            let (mut kept, mut dropped, mut filtered) = (0u64, 0u64, 0u64);
            for sw in shard_windows.iter_mut() {
                let (part_rows, (dk, dd, df)) = std::mem::take(&mut sw[w].1[d]);
                rows.extend(part_rows);
                kept += dk;
                dropped += dd;
                filtered += df;
            }
            rows.sort_by(|a, b| b.1.hits.cmp(&a.1.hits).then_with(|| a.0.cmp(&b.0)));
            store.push(WindowDump {
                dataset: ds.name().to_string(),
                start,
                length: window_secs,
                rows,
                kept,
                dropped,
                filtered,
            });
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimConfig, Simulation};

    fn small_cfg() -> ObservatoryConfig {
        ObservatoryConfig {
            datasets: vec![(Dataset::SrvIp, 500), (Dataset::Qtype, 32)],
            window_secs: 1.0,
            ..ObservatoryConfig::default()
        }
    }

    #[test]
    fn windows_are_produced() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(3.5, &mut |tx| obs.ingest(tx));
        let store = obs.finish();
        // 3 full windows + final partial, × 2 datasets.
        let srvip = store.dataset(Dataset::SrvIp).len();
        assert!((3..=4).contains(&srvip), "srvip windows: {srvip}");
        assert_eq!(store.windows().len() % srvip, 0);
    }

    #[test]
    fn window_rows_have_traffic() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(2.5, &mut |tx| obs.ingest(tx));
        let store = obs.finish();
        let windows = store.dataset(Dataset::Qtype);
        let with_rows = windows.iter().filter(|w| !w.rows.is_empty()).count();
        assert!(with_rows >= 1);
        for w in &windows {
            for (key, row) in &w.rows {
                assert!(!key.is_empty());
                assert!(row.hits > 0);
            }
        }
    }

    #[test]
    fn kept_dropped_are_per_window() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(3.5, &mut |tx| obs.ingest(tx));
        let ingested = obs.ingested();
        let store = obs.finish();
        let total_kept: u64 = store
            .dataset(Dataset::SrvIp)
            .iter()
            .map(|w| w.kept + w.dropped + w.filtered)
            .sum();
        assert_eq!(total_kept, ingested, "per-window stats must sum to total");
    }

    #[test]
    fn packet_path_matches_structured_path() {
        let mut sim1 = Simulation::from_config(SimConfig::small());
        let mut obs1 = Observatory::new(small_cfg());
        sim1.run(1.5, &mut |tx| obs1.ingest(tx));

        let mut sim2 = Simulation::from_config(SimConfig::small());
        let mut obs2 = Observatory::new(small_cfg());
        sim2.run(1.5, &mut |tx| {
            let (q, r) = tx.to_packets();
            obs2.ingest_packets(&q, r.as_deref(), tx.time, tx.contributor, tx.delay_ms);
        });

        let s1 = obs1.finish();
        let s2 = obs2.finish();
        assert_eq!(s1.windows().len(), s2.windows().len());
        for (w1, w2) in s1.windows().iter().zip(s2.windows()) {
            assert_eq!(w1.rows.len(), w2.rows.len(), "{} window", w1.dataset);
            assert_eq!(w1.total_hits(), w2.total_hits());
        }
    }

    #[test]
    fn threaded_pipeline_matches_single_threaded() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);

        let mut obs = Observatory::new(small_cfg());
        for tx in &txs {
            obs.ingest(tx);
        }
        let single = obs.finish();

        // small_cfg's SrvIp cache saturates (evictions happen), so exact
        // equality is only guaranteed with one tracker shard — any number
        // of summarizer workers.
        for workers in [1, 4] {
            let threaded = ThreadedPipeline::new(small_cfg(), workers).run(txs.clone());
            assert_eq!(
                single.windows().len(),
                threaded.windows().len(),
                "workers={workers}"
            );
            for (a, b) in single.windows().iter().zip(threaded.windows()) {
                assert_eq!(a.dataset, b.dataset);
                assert_eq!(a.start, b.start);
                assert_eq!(a.rows.len(), b.rows.len(), "{} window", a.dataset);
                assert_eq!(a.total_hits(), b.total_hits());
                for ((ka, ra), (kb, rb)) in a.rows.iter().zip(&b.rows) {
                    assert_eq!(ka, kb);
                    assert_eq!(ra.hits, rb.hits);
                }
            }
        }

        // With unsaturated caches, equality extends to sharded trackers
        // (see sharded_pipeline_is_byte_identical_to_observatory for the
        // full 8-dataset version of this assertion).
        let roomy_cfg = ObservatoryConfig {
            datasets: vec![(Dataset::SrvIp, 16_000), (Dataset::Qtype, 64)],
            window_secs: 1.0,
            ..ObservatoryConfig::default()
        };
        let mut obs = Observatory::new(roomy_cfg.clone());
        for tx in &txs {
            obs.ingest(tx);
        }
        let single = obs.finish();
        for (workers, shards) in [(4, 2), (4, 4)] {
            let threaded =
                ThreadedPipeline::with_shards(roomy_cfg.clone(), workers, shards).run(txs.clone());
            assert_eq!(single.windows().len(), threaded.windows().len());
            for (a, b) in single.windows().iter().zip(threaded.windows()) {
                assert_eq!(a.dataset, b.dataset);
                assert_eq!(a.start, b.start);
                assert_eq!(
                    format!("{:?}", a.rows),
                    format!("{:?}", b.rows),
                    "{} @ {} (workers={workers} shards={shards})",
                    a.dataset,
                    a.start
                );
            }
        }
    }

    /// Every paper dataset, including the filtered ones (AaFqdn only sees
    /// authoritative answers, Esld/Etld drop unparseable names): the
    /// sharded pipeline must be byte-identical to the single-threaded
    /// Observatory — rows, feature values, and per-window stat deltas.
    ///
    /// Exactness requires the unsaturated regime (no cache is ever full,
    /// in either pipeline): eviction consults a *global* minimum that a
    /// key-partitioned shard cannot see. The `dropped == 0` asserts guard
    /// that premise; under saturation the sharded result degrades to the
    /// per-partition Space-Saving error bound instead (covered by the
    /// sketches proptest).
    #[test]
    fn sharded_pipeline_is_byte_identical_to_observatory() {
        let cfg = ObservatoryConfig {
            datasets: vec![
                // ~10k transactions in the 3 s workload below, so 16k
                // capacity can never saturate even for per-tx-unique keys.
                (Dataset::SrvIp, 16_000),
                (Dataset::Etld, 2_000),
                (Dataset::Esld, 16_000),
                (Dataset::Qname, 16_000),
                (Dataset::Qtype, 64),
                (Dataset::Rcode, 32),
                (Dataset::AaFqdn, 16_000),
                (Dataset::SrcSrv, 16_000),
            ],
            window_secs: 1.0,
            ..ObservatoryConfig::default()
        };
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(3.0);

        let mut obs = Observatory::new(cfg.clone());
        for tx in &txs {
            obs.ingest(tx);
        }
        let single = obs.finish();
        for w in single.windows() {
            assert_eq!(w.dropped, 0, "test premise: no eviction in {}", w.dataset);
        }

        for (workers, shards) in [(4, 4), (2, 3)] {
            let threaded =
                ThreadedPipeline::with_shards(cfg.clone(), workers, shards).run(txs.clone());
            assert_eq!(single.windows().len(), threaded.windows().len());
            for (a, b) in single.windows().iter().zip(threaded.windows()) {
                assert_eq!(a.dataset, b.dataset);
                assert_eq!(a.start, b.start);
                assert_eq!(a.length, b.length);
                assert_eq!(
                    (a.kept, a.dropped, a.filtered),
                    (b.kept, b.dropped, b.filtered),
                    "{} @ {} (workers={workers} shards={shards})",
                    a.dataset,
                    a.start
                );
                // Debug formatting covers every feature field (and renders
                // NaN stably, which f64 == would reject).
                assert_eq!(
                    format!("{:?}", a.rows),
                    format!("{:?}", b.rows),
                    "{} @ {} (workers={workers} shards={shards})",
                    a.dataset,
                    a.start
                );
            }
        }
    }

    /// Under eviction pressure the sharded rows legitimately differ, but
    /// the per-window data-collection stats must still be conserved:
    /// every transaction lands in exactly one shard's kept/dropped/
    /// filtered tally for each dataset.
    #[test]
    fn sharded_stats_sum_to_ingested_under_pressure() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);
        let total = txs.len() as u64;
        let store = ThreadedPipeline::with_shards(small_cfg(), 2, 3).run(txs);
        for ds in [Dataset::SrvIp, Dataset::Qtype] {
            let sum: u64 = store
                .dataset(ds)
                .iter()
                .map(|w| w.kept + w.dropped + w.filtered)
                .sum();
            assert_eq!(sum, total, "{} stats must sum to ingested", ds.name());
        }
    }

    /// `run` takes any IntoIterator, so transactions can stream straight
    /// off a generator without being collected first.
    #[test]
    fn run_accepts_streaming_iterator() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(1.5);
        let from_vec = ThreadedPipeline::new(small_cfg(), 2).run(txs.clone());
        let from_iter = ThreadedPipeline::new(small_cfg(), 2).run(txs.into_iter().filter(|_| true));
        assert_eq!(from_vec.windows().len(), from_iter.windows().len());
        for (a, b) in from_vec.windows().iter().zip(from_iter.windows()) {
            assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows));
        }
    }

    /// `run_summaries` (the collector-side feed entry point) must agree
    /// with ingesting the same pre-built summaries one by one — the
    /// guarantee the distributed loopback equivalence test builds on.
    #[test]
    fn run_summaries_matches_ingest_summary() {
        let psl = psl::Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);
        let summaries: Vec<TxSummary> = txs
            .iter()
            .map(|tx| TxSummary::from_transaction(tx, &psl))
            .collect();

        let mut obs = Observatory::new(small_cfg());
        for s in summaries.clone() {
            obs.ingest_summary(s);
        }
        let single = obs.finish();

        let threaded = ThreadedPipeline::new(small_cfg(), 2).run_summaries(summaries);
        assert_eq!(single.windows().len(), threaded.windows().len());
        for (a, b) in single.windows().iter().zip(threaded.windows()) {
            assert_eq!(a.dataset, b.dataset);
            assert_eq!(a.start, b.start);
            assert_eq!(
                (a.kept, a.dropped, a.filtered),
                (b.kept, b.dropped, b.filtered)
            );
            assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows));
        }
    }

    /// The telemetry counters must reconcile exactly with the store the
    /// pipeline produced: ingested matches the input, and each dataset's
    /// kept/dropped/filtered counters equal the per-window TSV totals.
    #[test]
    fn telemetry_reconciles_with_store() {
        let registry = Registry::new();
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);
        let total = txs.len() as u64;
        let store = ThreadedPipeline::with_shards(small_cfg(), 2, 3)
            .with_registry(registry.clone())
            .run(txs);
        let snap = registry.snapshot(0);
        assert_eq!(snap.counter("pipeline_ingested_total"), total);
        assert!(snap.counter("pipeline_batches_total") > 0);
        let boundaries = snap.counter("pipeline_windows_total");
        assert_eq!(
            boundaries as usize,
            store.dataset(Dataset::SrvIp).len(),
            "one watermark broadcast per produced window"
        );
        for ds in [Dataset::SrvIp, Dataset::Qtype] {
            let from_store: (u64, u64, u64) =
                store.dataset(ds).iter().fold((0, 0, 0), |(k, d, f), w| {
                    (k + w.kept, d + w.dropped, f + w.filtered)
                });
            let sel = |what: &str| {
                snap.counter_sum(&format!("pipeline_{what}_total{{dataset=\"{}\"", ds.name()))
            };
            assert_eq!(
                (sel("kept"), sel("dropped"), sel("filtered")),
                from_store,
                "{} counters must mirror the TSV totals",
                ds.name()
            );
        }
        // Every queued message was consumed: the depth gauges are back
        // to zero once the run returns.
        for sh in 0..3 {
            assert_eq!(
                snap.gauge(&format!("pipeline_queue_depth{{shard=\"{sh}\"}}")),
                0.0
            );
        }
        // Each batch was timed.
        let h = snap
            .histogram("pipeline_batch_seconds")
            .expect("batch histogram registered");
        assert!(h.count > 0);
    }

    #[test]
    fn gap_in_traffic_does_not_break_windows() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(1.2, &mut |tx| obs.ingest(tx));
        sim.skip_to(10.0);
        sim.run(1.2, &mut |tx| obs.ingest(tx));
        let store = obs.finish();
        // Windows must align to the 1 s grid despite the jump.
        for w in store.windows() {
            assert!(w.length == 1.0);
        }
        assert!(store.windows().iter().any(|w| w.start >= 9.0));
    }
}
