//! The assembled Observatory (steps B–F of the paper's Figure 1), in two
//! flavours: a single-threaded [`Observatory`] and a multi-core
//! [`ThreadedPipeline`] built on lock-free SPSC stage rings
//! (`crates/spsc`) with parallel summarizers, an order-restoring
//! sequencer, and hash-partitioned tracker shards.
//!
//! Concurrency architecture (see DESIGN.md for the full protocol):
//!
//! * **Stage rings** — every inter-stage edge (feeder → worker, worker →
//!   sequencer, sequencer → shard) is a single-producer/single-consumer
//!   ring; a hand-off costs one slot write and one release store,
//!   amortized over a whole batch of transactions.
//! * **Round-robin sequencing** — the feeder deals batches to workers in
//!   round-robin order and the sequencer collects them in the same
//!   order, so global stream order is restored with no reorder buffer.
//! * **Per-shard watermark frontiers** — window closes are not broadcast
//!   as a barrier; each shard's next message piggybacks the list of
//!   window starts that closed since the shard last heard from the
//!   sequencer, so idle shards never stall the hot path and every shard
//!   still dumps at exactly the same points in the (deterministic)
//!   stream.
//! * **Adaptive batching** — the feeder grows its batch size under
//!   backlog (deep stage rings / shard queues) and shrinks it when the
//!   pipeline runs idle, between a configurable `[min, max]`.
//!
//! The threaded output is byte-identical to the single-threaded
//! [`Observatory`] (in the unsaturated-cache regime for `shards > 1`);
//! the differential tests below and `crates/core/tests/frontier_prop.rs`
//! enforce it.

use crate::features::FeatureConfig;
use crate::keys::Dataset;
use crate::metrics::{SequencerMetrics, ShardMetrics};
use crate::summarize::TxSummary;
use crate::timeseries::{TimeSeriesStore, WindowDump};
use crate::topk::TopKTracker;
use psl::Psl;
use simnet::Transaction;
use spsc::{ring, Consumer, Pool, Producer, Recycled};
use std::sync::Arc;
use telemetry::trace::{TraceEvent, TraceKind, TraceRing};
use telemetry::{Clock, FlightRecorder, Registry, SystemClock};

/// Observatory configuration.
#[derive(Debug, Clone)]
pub struct ObservatoryConfig {
    /// Datasets to track, with their top-k capacities.
    pub datasets: Vec<(Dataset, usize)>,
    /// Window length in seconds (the paper uses 60).
    pub window_secs: f64,
    /// Sketch sizing for per-object features.
    pub feature_cfg: FeatureConfig,
    /// Use the Bloom eviction gate (paper §2.2's optional filter).
    pub bloom_gate: bool,
}

impl Default for ObservatoryConfig {
    fn default() -> Self {
        ObservatoryConfig {
            datasets: vec![(Dataset::SrvIp, 10_000)],
            window_secs: 60.0,
            feature_cfg: FeatureConfig::default(),
            bloom_gate: true,
        }
    }
}

/// The single-threaded stream processor: summarize → track → window-dump.
pub struct Observatory {
    cfg: ObservatoryConfig,
    psl: Psl,
    trackers: Vec<TopKTracker>,
    store: TimeSeriesStore,
    window_start: Option<f64>,
    /// Stats captured at the previous window boundary, per tracker.
    prev_stats: Vec<(u64, u64, u64)>,
    ingested: u64,
}

impl Observatory {
    /// Build from config.
    pub fn new(cfg: ObservatoryConfig) -> Observatory {
        let trackers = cfg
            .datasets
            .iter()
            .map(|&(ds, k)| TopKTracker::new(ds, k, cfg.feature_cfg, cfg.bloom_gate))
            .collect::<Vec<_>>();
        let prev_stats = vec![(0, 0, 0); trackers.len()];
        Observatory {
            cfg,
            psl: Psl::embedded(),
            trackers,
            store: TimeSeriesStore::new(),
            window_start: None,
            prev_stats,
            ingested: 0,
        }
    }

    /// Total transactions ingested.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Ingest one simulator transaction (structured fast path).
    pub fn ingest(&mut self, tx: &Transaction) {
        let summary = TxSummary::from_transaction(tx, &self.psl);
        self.ingest_summary(summary);
    }

    /// Ingest one transaction from raw captured packets; silently drops
    /// unparseable input (the preprocessing filter).
    pub fn ingest_packets(
        &mut self,
        query_pkt: &[u8],
        response_pkt: Option<&[u8]>,
        time: f64,
        contributor: u16,
        delay_ms: f64,
    ) {
        if let Some(summary) = TxSummary::from_packets(
            query_pkt,
            response_pkt,
            time,
            contributor,
            delay_ms,
            &self.psl,
        ) {
            self.ingest_summary(summary);
        }
    }

    /// Ingest a pre-built summary.
    pub fn ingest_summary(&mut self, summary: TxSummary) {
        let start = *self.window_start.get_or_insert(summary.time);
        if summary.time >= start + self.cfg.window_secs {
            self.dump_window();
            // Advance to the window containing this summary.
            let w = self.cfg.window_secs;
            let start = self.window_start.expect("set above");
            let skipped = ((summary.time - start) / w).floor();
            self.window_start = Some(start + skipped * w);
        }
        self.ingested += 1;
        for t in &mut self.trackers {
            t.observe(&summary);
        }
    }

    fn dump_window(&mut self) {
        let start = self.window_start.expect("dump only after first tx");
        for (i, t) in self.trackers.iter_mut().enumerate() {
            let rows = t.dump(start);
            let (kept, dropped, filtered) = t.stats();
            let (pk, pd, pf) = self.prev_stats[i];
            self.prev_stats[i] = (kept, dropped, filtered);
            self.store.push(WindowDump {
                dataset: t.dataset().name().to_string(),
                start,
                length: self.cfg.window_secs,
                rows,
                kept: kept - pk,
                dropped: dropped - pd,
                filtered: filtered - pf,
            });
        }
    }

    /// Flush the final partial window and return the collected store.
    pub fn finish(mut self) -> TimeSeriesStore {
        if self.window_start.is_some() && self.ingested > 0 {
            self.dump_window();
        }
        self.store
    }

    /// Borrow the store collected so far (completed windows only).
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }
}

/// Chaos-testing hook: called by each tracker shard as `(shard index,
/// message index)` before every message it processes, so fault-injection
/// harnesses can stall one shard on a deterministic schedule (see
/// `chaos::slowshard`). Production pipelines leave it unset.
pub type StallHook = Arc<dyn Fn(usize, u64) + Send + Sync>;

/// Feeder → worker and worker → sequencer ring depth, in batches.
const STAGE_RING_BATCHES: usize = 4;
/// Sequencer → shard ring depth, in messages. Deep enough that window
/// closes and short shard hiccups never stall the sequencer.
const SHARD_RING_MSGS: usize = 64;
/// Default adaptive batch bounds (transactions per batch).
const BATCH_MIN_DEFAULT: usize = 64;
const BATCH_MAX_DEFAULT: usize = 8_192;
/// Initial batch size before the controller has seen any signal.
const BATCH_START: usize = 512;

/// One message on a shard's ring.
///
/// `closes` is this shard's watermark frontier delta: the window starts
/// (in global stream order) that closed since the sequencer last sent
/// this shard a message. The shard dumps its trackers for each close
/// *before* observing `batch` — all of the batch's assignments belong to
/// the window that is open after the last close. Batches carry the
/// summaries by `Arc` (shared with every other shard that got
/// assignments from the same feeder batch) plus this shard's private
/// assignment list: `(index into the batch, bitmask of dataset slots)`.
struct ShardMsg {
    closes: Vec<f64>,
    batch: Option<ShardBatch>,
}

/// A shared summary batch plus one shard's private assignment list.
type ShardBatch = (Arc<Recycled<TxSummary>>, Vec<(u32, u16)>);

/// The sequencer's view of how far each shard's window clock lags the
/// global one: all closed window starts, plus a per-shard cursor of how
/// many have been shipped. Shards learn about closes lazily — piggybacked
/// on their next batch, or in a final drain message — so a window close
/// costs nothing on the hot path and never synchronizes the shard pool.
struct Frontier {
    closes: Vec<f64>,
    sent: Vec<usize>,
}

impl Frontier {
    fn new(shards: usize) -> Frontier {
        Frontier {
            closes: Vec::new(),
            sent: vec![0; shards],
        }
    }

    /// Record a window close at `start` (global stream order).
    fn close(&mut self, start: f64) {
        self.closes.push(start);
    }

    /// The closes shard `sh` has not heard about yet; marks them sent.
    /// Returns an empty (allocation-free) `Vec` when the shard is
    /// current.
    fn take(&mut self, sh: usize) -> Vec<f64> {
        let from = self.sent[sh];
        self.sent[sh] = self.closes.len();
        if from == self.closes.len() {
            Vec::new()
        } else {
            self.closes[from..].to_vec()
        }
    }
}

/// The feeder's batch-size controller: grow under backlog, shrink when
/// idle, clamp to `[min, max]`.
///
/// Signals (both already exported as telemetry gauges): the occupancy of
/// the stage ring being pushed to, and the deepest sequencer → shard
/// queue. A nearly-full ring or deep shard queues mean downstream is the
/// bottleneck — larger batches amortize per-batch overhead. An empty
/// ring with idle shard queues means the pipeline is keeping up —
/// smaller batches reduce latency and memory. Output is *independent* of
/// batch size (the window clock is driven per summary), so adaptation
/// never affects byte-identicality.
struct AdaptiveBatch {
    cur: usize,
    min: usize,
    max: usize,
}

impl AdaptiveBatch {
    fn new(min: usize, max: usize) -> AdaptiveBatch {
        AdaptiveBatch {
            cur: BATCH_START.clamp(min, max),
            min,
            max,
        }
    }

    fn size(&self) -> usize {
        self.cur
    }

    fn adapt(&mut self, ring_occupancy: usize, ring_cap: usize, deepest_shard_queue: f64) {
        let backlog =
            ring_occupancy + 1 >= ring_cap || deepest_shard_queue >= (SHARD_RING_MSGS / 2) as f64;
        let idle = ring_occupancy == 0 && deepest_shard_queue <= 0.0;
        if backlog {
            self.cur = (self.cur * 2).min(self.max);
        } else if idle {
            self.cur = (self.cur / 2).max(self.min);
        }
    }
}

/// Per-window output of one shard: for each configured dataset (in config
/// order) the dumped rows plus this window's `(kept, dropped, filtered)`
/// deltas.
type ShardPart = (Vec<(String, crate::features::FeatureRow)>, (u64, u64, u64));
type ShardWindows = Vec<(f64, Vec<ShardPart>)>;

/// A threaded pipeline: transactions are chunked into recycled batches
/// and dealt round-robin to `workers` summarizer threads over SPSC
/// rings; a sequencer collects the batches in the same round-robin order
/// (restoring global stream order with no reorder buffer), drives the
/// window clock, and routes each summary to one of `shards` tracker
/// threads by `xxh64(key) % shards` — so the Top-k state itself is
/// partitioned, not just the parsing. Disjoint key partitions make the
/// merge trivial (concatenate + re-sort) and keep the sharded output
/// byte-identical to the single-threaded [`Observatory`].
pub struct ThreadedPipeline {
    cfg: ObservatoryConfig,
    workers: usize,
    shards: usize,
    batch_min: usize,
    batch_max: usize,
    stall: Option<StallHook>,
    registry: Registry,
    recorder: Option<FlightRecorder>,
    clock: Arc<dyn Clock>,
}

impl ThreadedPipeline {
    /// Build a pipeline with `workers` summarizer threads and a single
    /// tracker shard (exact single-tracker capacities).
    pub fn new(cfg: ObservatoryConfig, workers: usize) -> ThreadedPipeline {
        Self::with_shards(cfg, workers, 1)
    }

    /// Build a pipeline with `workers` summarizer threads and `shards`
    /// tracker threads. With `shards > 1` each shard gets capacity
    /// `ceil(k/shards)` plus 25 % headroom against uneven hashing; with
    /// `shards == 1` capacities match the single-threaded tracker
    /// exactly.
    pub fn with_shards(cfg: ObservatoryConfig, workers: usize, shards: usize) -> ThreadedPipeline {
        assert!(
            cfg.datasets.len() <= 16,
            "shard routing packs dataset slots into a u16 bitmask"
        );
        ThreadedPipeline {
            cfg,
            workers: workers.max(1),
            shards: shards.max(1),
            batch_min: BATCH_MIN_DEFAULT,
            batch_max: BATCH_MAX_DEFAULT,
            stall: None,
            registry: Registry::global(),
            recorder: None,
            clock: Arc::new(SystemClock::new()),
        }
    }

    /// Report telemetry into `registry` instead of the global one (tests
    /// and multi-pipeline processes that need isolated metric spaces).
    pub fn with_registry(mut self, registry: Registry) -> ThreadedPipeline {
        self.registry = registry;
        self
    }

    /// Constrain the adaptive feeder batch size to `[min, max]`
    /// transactions. Passing `min == max` pins the batch size — the
    /// frontier-equivalence property tests use this to sweep schedules.
    /// Output never depends on batch size; only throughput and latency
    /// do.
    pub fn with_batch_range(mut self, min: usize, max: usize) -> ThreadedPipeline {
        assert!(min >= 1 && max >= min, "need 1 <= min <= max");
        self.batch_min = min;
        self.batch_max = max;
        self
    }

    /// Attach a flight recorder: every stage records window-provenance
    /// [`TraceEvent`]s into its own bounded ring (`pipeline/feeder`,
    /// `pipeline/worker<i>`, `pipeline/sequencer`, `pipeline/shard<sh>`,
    /// `pipeline/seal`). Window ids on the trace are the window start in
    /// integer microseconds — the same keying `sketchwire` uses on the
    /// wire. Without a recorder the rings are disabled and the hot path
    /// skips the per-event clock reads entirely.
    pub fn with_flight_recorder(mut self, recorder: FlightRecorder) -> ThreadedPipeline {
        self.recorder = Some(recorder);
        self
    }

    /// Trace timestamps come from `clock` — tests pin a
    /// [`telemetry::ManualClock`] (or the chaos `VirtualClock`) for
    /// deterministic dumps. Defaults to [`SystemClock`].
    pub fn with_trace_clock(mut self, clock: Arc<dyn Clock>) -> ThreadedPipeline {
        self.clock = clock;
        self
    }

    /// Install a chaos-testing [`StallHook`] invoked by each shard before
    /// every message it processes. Used by the slow-shard fault axis to
    /// stall one shard's consumer on a deterministic schedule; must not
    /// be set in production pipelines.
    pub fn with_stall_injector(mut self, hook: StallHook) -> ThreadedPipeline {
        self.stall = Some(hook);
        self
    }

    /// Per-shard cache capacity for a dataset configured with capacity `k`.
    fn shard_capacity(k: usize, shards: usize) -> usize {
        if shards <= 1 {
            k
        } else {
            let per = k.div_ceil(shards);
            (per + per / 4).max(8)
        }
    }

    /// Consume `transactions`, returning the collected time series.
    ///
    /// The input is chunked into batches on the calling thread (batch
    /// storage is recycled through bounded [`Pool`]s, so the steady state
    /// allocates no batch storage on any path); each batch is summarized
    /// by one worker; the sequencer collects batches in round-robin order
    /// so window boundaries are deterministic and identical to the
    /// single-threaded result, then scatters summaries to the tracker
    /// shards with per-shard frontier watermarks.
    pub fn run<I>(&self, transactions: I) -> TimeSeriesStore
    where
        I: IntoIterator<Item = Transaction>,
    {
        let workers = self.workers;
        let shards = self.shards;
        let datasets: Vec<Dataset> = self.cfg.datasets.iter().map(|&(ds, _)| ds).collect();
        let window_secs = self.cfg.window_secs;

        // One SPSC ring per stage edge.
        let mut task_txs = Vec::with_capacity(workers);
        let mut task_rxs = Vec::with_capacity(workers);
        let mut done_txs = Vec::with_capacity(workers);
        let mut done_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = ring::<Vec<Transaction>>(STAGE_RING_BATCHES);
            task_txs.push(tx);
            task_rxs.push(rx);
            let (tx, rx) = ring::<Vec<TxSummary>>(STAGE_RING_BATCHES);
            done_txs.push(tx);
            done_rxs.push(rx);
        }
        let (shard_txs, shard_rxs) = shard_rings(shards);

        // Batch-storage pools, bounded to the rings' aggregate depth (a
        // slow stage can never accumulate more idle buffers than the
        // rings could hold in flight).
        let tx_pool: Pool<Transaction> = Pool::new(workers * STAGE_RING_BATCHES + 2);
        let summary_pool: Pool<TxSummary> =
            Pool::new(workers * STAGE_RING_BATCHES + 2 * shards + 2);
        let assign_pool: Pool<(u32, u16)> = Pool::new(shards * SHARD_RING_MSGS + shards + 2);

        let seq_metrics = SequencerMetrics::register(&self.registry, shards);
        let trace = PipelineTrace::new(self.recorder.as_ref(), self.clock.clone(), workers, shards);

        let mut shard_windows: Vec<ShardWindows> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            // Summarizer workers.
            for (w, (task_rx, done_tx)) in task_rxs.into_iter().zip(done_txs).enumerate() {
                let tx_pool = tx_pool.clone();
                let summary_pool = summary_pool.clone();
                let wtrace = trace.workers[w].clone();
                scope
                    .spawn(move || worker_loop(w, task_rx, done_tx, tx_pool, summary_pool, wtrace));
            }

            let shard_handles: Vec<_> = shard_rxs
                .into_iter()
                .enumerate()
                .map(|(sh, rx)| {
                    let cfg = &self.cfg;
                    let metrics = ShardMetrics::register(&self.registry, sh, &datasets);
                    let stall = self.stall.clone();
                    let assign_pool = assign_pool.clone();
                    let strace = trace.shards[sh].clone();
                    scope.spawn(move || {
                        shard_loop(sh, rx, cfg, shards, metrics, stall, assign_pool, strace)
                    })
                })
                .collect();

            let datasets: &[Dataset] = &datasets;
            let seq_m = seq_metrics.clone();
            let seq_summary_pool = summary_pool.clone();
            let seq_assign_pool = assign_pool.clone();
            let seq_trace = trace.sequencer.clone();
            let sequencer = scope.spawn(move || {
                sequencer_loop(
                    done_rxs,
                    shard_txs,
                    datasets,
                    window_secs,
                    seq_m,
                    seq_summary_pool,
                    seq_assign_pool,
                    seq_trace,
                )
            });

            // Feeder (this thread): chunk the input into recycled batch
            // Vecs, dealing them round-robin to the workers.
            feed_batches(
                transactions.into_iter(),
                task_txs,
                &tx_pool,
                AdaptiveBatch::new(self.batch_min, self.batch_max),
                &seq_metrics,
                &trace.feeder,
            );

            sequencer.join().expect("sequencer thread");
            for h in shard_handles {
                shard_windows.push(h.join().expect("shard thread"));
            }
        });

        merge_shard_windows(shard_windows, &datasets, window_secs, &trace)
    }

    /// Consume pre-built summaries, returning the collected time series.
    ///
    /// This is the collector-side entry point of the feed transport: the
    /// summaries were produced (and parallelized) on the sensors, so the
    /// summarizer stage is skipped and the stream goes straight through
    /// the sequencer → shard → merge machinery shared with [`Self::run`].
    /// The feeder is the same recycling, adaptive-batch chunker — batch
    /// storage flows back through the bounded summary pool exactly as on
    /// the transaction path. With one shard the result is byte-identical
    /// to feeding the same summaries through
    /// [`Observatory::ingest_summary`].
    pub fn run_summaries<I>(&self, summaries: I) -> TimeSeriesStore
    where
        I: IntoIterator<Item = TxSummary>,
    {
        let shards = self.shards;
        let datasets: Vec<Dataset> = self.cfg.datasets.iter().map(|&(ds, _)| ds).collect();
        let window_secs = self.cfg.window_secs;

        let (feed_tx, feed_rx) = ring::<Vec<TxSummary>>(STAGE_RING_BATCHES);
        let (shard_txs, shard_rxs) = shard_rings(shards);
        let summary_pool: Pool<TxSummary> = Pool::new(STAGE_RING_BATCHES + 2 * shards + 2);
        let assign_pool: Pool<(u32, u16)> = Pool::new(shards * SHARD_RING_MSGS + shards + 2);
        let seq_metrics = SequencerMetrics::register(&self.registry, shards);
        let trace = PipelineTrace::new(self.recorder.as_ref(), self.clock.clone(), 0, shards);

        let mut shard_windows: Vec<ShardWindows> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let shard_handles: Vec<_> = shard_rxs
                .into_iter()
                .enumerate()
                .map(|(sh, rx)| {
                    let cfg = &self.cfg;
                    let metrics = ShardMetrics::register(&self.registry, sh, &datasets);
                    let stall = self.stall.clone();
                    let assign_pool = assign_pool.clone();
                    let strace = trace.shards[sh].clone();
                    scope.spawn(move || {
                        shard_loop(sh, rx, cfg, shards, metrics, stall, assign_pool, strace)
                    })
                })
                .collect();

            let datasets: &[Dataset] = &datasets;
            let seq_m = seq_metrics.clone();
            let seq_summary_pool = summary_pool.clone();
            let seq_assign_pool = assign_pool.clone();
            let seq_trace = trace.sequencer.clone();
            let sequencer = scope.spawn(move || {
                sequencer_loop(
                    vec![feed_rx],
                    shard_txs,
                    datasets,
                    window_secs,
                    seq_m,
                    seq_summary_pool,
                    seq_assign_pool,
                    seq_trace,
                )
            });

            feed_batches(
                summaries.into_iter(),
                vec![feed_tx],
                &summary_pool,
                AdaptiveBatch::new(self.batch_min, self.batch_max),
                &seq_metrics,
                &trace.feeder,
            );

            sequencer.join().expect("sequencer thread");
            for h in shard_handles {
                shard_windows.push(h.join().expect("shard thread"));
            }
        });

        merge_shard_windows(shard_windows, &datasets, window_secs, &trace)
    }
}

/// Window ids on the trace: the window start in integer microseconds,
/// the same keying `sketchwire::AggregatorCore` uses for windows on the
/// wire — so a window's provenance can be followed from the pipeline
/// stages through the federation tier with one id.
pub(crate) fn window_id_us(start: f64) -> u64 {
    (start * 1e6).round() as u64
}

/// One stage's handle on the flight recorder: its bounded trace ring
/// plus the clock that stamps events. With no recorder attached the
/// ring is disabled, so the tracing-off hot path checks one bool and
/// performs no clock reads and takes no locks.
#[derive(Clone)]
struct StageTrace {
    ring: TraceRing,
    clock: Arc<dyn Clock>,
}

impl StageTrace {
    fn is_enabled(&self) -> bool {
        self.ring.is_enabled()
    }

    fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    fn record(&self, event: TraceEvent) {
        self.ring.record(event);
    }
}

/// Per-run trace handles: one [`StageTrace`] per pipeline stage.
#[derive(Clone)]
struct PipelineTrace {
    feeder: StageTrace,
    workers: Vec<StageTrace>,
    sequencer: StageTrace,
    shards: Vec<StageTrace>,
    seal: StageTrace,
}

impl PipelineTrace {
    fn new(
        recorder: Option<&FlightRecorder>,
        clock: Arc<dyn Clock>,
        workers: usize,
        shards: usize,
    ) -> PipelineTrace {
        let stage = |name: String| StageTrace {
            ring: match recorder {
                Some(fr) => fr.ring(&name),
                None => TraceRing::disabled(),
            },
            clock: clock.clone(),
        };
        PipelineTrace {
            feeder: stage("pipeline/feeder".to_string()),
            workers: (0..workers)
                .map(|w| stage(format!("pipeline/worker{w}")))
                .collect(),
            sequencer: stage("pipeline/sequencer".to_string()),
            shards: (0..shards)
                .map(|sh| stage(format!("pipeline/shard{sh}")))
                .collect(),
            seal: stage("pipeline/seal".to_string()),
        }
    }
}

fn shard_rings(shards: usize) -> (Vec<Producer<ShardMsg>>, Vec<Consumer<ShardMsg>>) {
    let mut shard_txs = Vec::with_capacity(shards);
    let mut shard_rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = ring::<ShardMsg>(SHARD_RING_MSGS);
        shard_txs.push(tx);
        shard_rxs.push(rx);
    }
    (shard_txs, shard_rxs)
}

/// The shared feeder: chunk `it` into pooled batch `Vec`s and deal them
/// round-robin to `outs`, adapting the batch size to backpressure. Both
/// `run` (transactions → workers) and `run_summaries` (summaries →
/// sequencer) go through here, so batch recycling and adaptive sizing
/// behave identically on both paths.
fn feed_batches<T, I>(
    mut it: I,
    mut outs: Vec<Producer<Vec<T>>>,
    pool: &Pool<T>,
    mut ctl: AdaptiveBatch,
    metrics: &SequencerMetrics,
    trace: &StageTrace,
) where
    T: Send,
    I: Iterator<Item = T>,
{
    let mut w = 0usize;
    loop {
        let mut batch = pool.get();
        batch.extend(it.by_ref().take(ctl.size()));
        if batch.is_empty() {
            pool.put(batch);
            break;
        }
        if trace.is_enabled() {
            trace.record(
                TraceEvent::new(trace.now_us(), "feeder", TraceKind::Ingest)
                    .source(w as u64)
                    .value(batch.len() as u64),
            );
        }
        let out = &mut outs[w];
        let deepest = metrics
            .queue_depth
            .iter()
            .map(telemetry::Gauge::value)
            .fold(0.0, f64::max);
        ctl.adapt(out.len(), out.capacity(), deepest);
        metrics.batch_size.set(ctl.size() as f64);
        if out.push(batch).is_err() {
            break; // downstream died (panic propagates at scope join)
        }
        w = (w + 1) % outs.len();
    }
    // Dropping the producers here ends the stream for every worker.
}

/// Summarizer worker: pooled transaction batches in, pooled summary
/// batches out, strict FIFO so round-robin sequencing holds.
fn worker_loop(
    w: usize,
    mut rx: Consumer<Vec<Transaction>>,
    mut tx: Producer<Vec<TxSummary>>,
    tx_pool: Pool<Transaction>,
    summary_pool: Pool<TxSummary>,
    trace: StageTrace,
) {
    let psl = Psl::embedded();
    while let Some(batch) = rx.pop() {
        let mut out = summary_pool.get();
        out.extend(batch.iter().map(|t| TxSummary::from_transaction(t, &psl)));
        tx_pool.put(batch);
        if trace.is_enabled() {
            trace.record(
                TraceEvent::new(trace.now_us(), "worker", TraceKind::Ingest)
                    .source(w as u64)
                    .value(out.len() as u64),
            );
        }
        if tx.push(out).is_err() {
            return;
        }
    }
}

/// Tracker shard: owns an independent TopKTracker per dataset over its
/// disjoint slice of the key space. Processes each message's frontier
/// closes (window dumps) before its batch assignments, which restores
/// exactly the single-threaded dump-before-observe order.
#[allow(clippy::too_many_arguments)] // internal stage entry point
fn shard_loop(
    sh: usize,
    mut rx: Consumer<ShardMsg>,
    cfg: &ObservatoryConfig,
    shards: usize,
    mut metrics: ShardMetrics,
    stall: Option<StallHook>,
    assign_pool: Pool<(u32, u16)>,
    trace: StageTrace,
) -> ShardWindows {
    let mut trackers: Vec<TopKTracker> = cfg
        .datasets
        .iter()
        .map(|&(ds, k)| {
            TopKTracker::new(
                ds,
                ThreadedPipeline::shard_capacity(k, shards),
                cfg.feature_cfg,
                cfg.bloom_gate,
            )
        })
        .collect();
    let mut prev = vec![(0u64, 0u64, 0u64); trackers.len()];
    let mut windows: ShardWindows = Vec::new();
    let mut msg_idx = 0u64;
    while let Some(msg) = rx.pop() {
        metrics.queue_depth.add(-1.0);
        if let Some(stall) = &stall {
            stall(sh, msg_idx);
        }
        msg_idx += 1;
        for &start in &msg.closes {
            let tracker_metrics = &mut metrics.trackers;
            let parts: Vec<ShardPart> = trackers
                .iter_mut()
                .enumerate()
                .map(|(i, t)| {
                    let rows = t.dump(start);
                    let (k, dr, f) = t.stats();
                    let (pk, pd, pf) = prev[i];
                    prev[i] = (k, dr, f);
                    let delta = (k - pk, dr - pd, f - pf);
                    tracker_metrics[i].flush(t, delta);
                    (rows, delta)
                })
                .collect();
            if trace.is_enabled() {
                let rows: usize = parts.iter().map(|(r, _)| r.len()).sum();
                trace.record(
                    TraceEvent::new(trace.now_us(), "shard", TraceKind::Close)
                        .window(window_id_us(start))
                        .source(sh as u64)
                        .value(rows as u64),
                );
            }
            windows.push((start, parts));
        }
        if let Some((summaries, assign)) = msg.batch {
            let t0 = std::time::Instant::now();
            for &(idx, mask) in &assign {
                let s = &summaries[idx as usize];
                for (d, t) in trackers.iter_mut().enumerate() {
                    if mask & (1 << d) != 0 {
                        t.observe(s);
                    }
                }
            }
            metrics.batch_seconds.record(t0.elapsed().as_secs_f64());
            assign_pool.put(assign);
            // `summaries` drops here; the last shard to finish with the
            // batch returns its storage to the summary pool.
        }
    }
    windows
}

/// Sequencer: collect worker batches in round-robin order (global stream
/// order by construction), drive the window clock with the exact
/// arithmetic of `Observatory::ingest_summary`, and scatter assignments
/// to the shards with per-shard frontier closes piggybacked. Dropping
/// the ring producers on return disconnects the shards.
#[allow(clippy::too_many_arguments)] // internal stage entry point
fn sequencer_loop(
    mut inputs: Vec<Consumer<Vec<TxSummary>>>,
    mut shard_txs: Vec<Producer<ShardMsg>>,
    datasets: &[Dataset],
    window_secs: f64,
    metrics: SequencerMetrics,
    summary_pool: Pool<TxSummary>,
    assign_pool: Pool<(u32, u16)>,
    trace: StageTrace,
) {
    use crate::keys::KeyBuf;

    let shards = shard_txs.len();
    let n_datasets = datasets.len();
    let full_mask: u16 = if n_datasets >= 16 {
        u16::MAX
    } else {
        (1u16 << n_datasets) - 1
    };

    let mut next = 0usize;
    let mut window_start: Option<f64> = None;
    let mut ingested = 0u64;
    // Per-window provenance: when the open window was opened (clock
    // time) and how many summaries landed in it.
    let mut window_opened_us = 0u64;
    let mut window_count = 0u64;
    let mut keybuf = KeyBuf::new();
    let mut masks: Vec<u16> = vec![0; shards];
    let mut pending: Vec<Vec<(u32, u16)>> = vec![Vec::new(); shards];
    let mut frontier = Frontier::new(shards);

    // Strict round-robin: when the batch due from a ring does not exist
    // (producer gone, ring drained), no later batch exists either — the
    // stream is over.
    while let Some(buf) = inputs[next].pop() {
        next = (next + 1) % inputs.len();
        let batch = Arc::new(summary_pool.wrap(buf));
        metrics.batches.inc(1);
        metrics.ingested.inc(batch.len() as u64);
        for (i, s) in batch.iter().enumerate() {
            let start = match window_start {
                Some(start) => start,
                None => {
                    // First summary of the stream opens the first window.
                    window_start = Some(s.time);
                    window_opened_us = trace.now_us();
                    if trace.is_enabled() {
                        trace.record(
                            TraceEvent::new(window_opened_us, "sequencer", TraceKind::Open)
                                .window(window_id_us(s.time)),
                        );
                    }
                    s.time
                }
            };
            if s.time >= start + window_secs {
                // Window boundary *before* this summary: everything
                // routed so far belongs to the closing window, so flush
                // it, then record the close on the frontier. No message
                // is sent to idle shards — they learn of the close with
                // their next batch (or the final drain).
                flush_pending(
                    &mut pending,
                    &batch,
                    &mut shard_txs,
                    &mut frontier,
                    &metrics,
                );
                frontier.close(start);
                metrics.windows.inc(1);
                metrics.watermark_lag_seconds.set(s.time - start);
                let closed_us = trace.now_us();
                metrics
                    .window_seconds
                    .record(closed_us.saturating_sub(window_opened_us) as f64 / 1e6);
                let skipped = ((s.time - start) / window_secs).floor();
                let new_start = start + skipped * window_secs;
                window_start = Some(new_start);
                if trace.is_enabled() {
                    trace.record(
                        TraceEvent::new(closed_us, "sequencer", TraceKind::Close)
                            .window(window_id_us(start))
                            .value(window_count),
                    );
                    trace.record(
                        TraceEvent::new(closed_us, "sequencer", TraceKind::Open)
                            .window(window_id_us(new_start)),
                    );
                }
                window_opened_us = closed_us;
                window_count = 0;
            }
            ingested += 1;
            window_count += 1;
            if shards == 1 {
                push_assign(&mut pending[0], &assign_pool, (i as u32, full_mask));
            } else {
                masks.iter_mut().for_each(|m| *m = 0);
                for (d, ds) in datasets.iter().enumerate() {
                    // Filtered summaries still count once: route them
                    // by dataset slot so exactly one shard tallies
                    // the `filtered` stat.
                    let sh = if ds.key_into(s, &mut keybuf) {
                        (sketches::hash::xxh64(keybuf.as_bytes(), 0) % shards as u64) as usize
                    } else {
                        d % shards
                    };
                    masks[sh] |= 1 << d;
                }
                for (sh, m) in masks.iter().enumerate() {
                    if *m != 0 {
                        push_assign(&mut pending[sh], &assign_pool, (i as u32, *m));
                    }
                }
            }
        }
        // Messages never span feeder batches (assignments index into one
        // `Arc` batch), so flush the remainder before the next batch.
        flush_pending(
            &mut pending,
            &batch,
            &mut shard_txs,
            &mut frontier,
            &metrics,
        );
    }
    // Final partial window, matching `Observatory::finish`.
    if let Some(start) = window_start {
        if ingested > 0 {
            frontier.close(start);
            metrics.windows.inc(1);
            let closed_us = trace.now_us();
            metrics
                .window_seconds
                .record(closed_us.saturating_sub(window_opened_us) as f64 / 1e6);
            if trace.is_enabled() {
                trace.record(
                    TraceEvent::new(closed_us, "sequencer", TraceKind::Close)
                        .window(window_id_us(start))
                        .value(window_count),
                );
            }
        }
    }
    // Drain outstanding frontier deltas so every shard closes every
    // window (idle shards included) before the rings disconnect.
    for (sh, tx) in shard_txs.iter_mut().enumerate() {
        let closes = frontier.take(sh);
        if !closes.is_empty() {
            metrics.queue_depth[sh].add(1.0);
            tx.push(ShardMsg {
                closes,
                batch: None,
            })
            .unwrap_or_else(|_| panic!("shard thread alive"));
        }
    }
}

/// Append one assignment, fetching pooled storage on first use (the
/// previous `Vec` left with the last message to this shard).
#[inline]
fn push_assign(pending: &mut Vec<(u32, u16)>, pool: &Pool<(u32, u16)>, item: (u32, u16)) {
    if pending.capacity() == 0 {
        *pending = pool.get();
    }
    pending.push(item);
}

/// Ship every shard's pending assignments for `batch`, with that shard's
/// outstanding frontier closes piggybacked. Shards without assignments
/// get nothing — no barrier, no wakeup.
fn flush_pending(
    pending: &mut [Vec<(u32, u16)>],
    batch: &Arc<Recycled<TxSummary>>,
    shard_txs: &mut [Producer<ShardMsg>],
    frontier: &mut Frontier,
    metrics: &SequencerMetrics,
) {
    for (sh, assign) in pending.iter_mut().enumerate() {
        if assign.is_empty() {
            continue;
        }
        let closes = frontier.take(sh);
        // Gauge first: the bounded ring may block, and the depth should
        // reflect the message the shard will see.
        metrics.queue_depth[sh].add(1.0);
        shard_txs[sh]
            .push(ShardMsg {
                closes,
                batch: Some((Arc::clone(batch), std::mem::take(assign))),
            })
            .unwrap_or_else(|_| panic!("shard thread alive"));
    }
}

/// Merge: every shard processes every frontier close, so all shards
/// report the same window starts in the same order. Partitions are
/// disjoint, so a window's rows are the concatenation, re-sorted with
/// the tracker's own dump order (hits desc, then key).
fn merge_shard_windows(
    mut shard_windows: Vec<ShardWindows>,
    datasets: &[Dataset],
    window_secs: f64,
    trace: &PipelineTrace,
) -> TimeSeriesStore {
    let mut store = TimeSeriesStore::new();
    let n_windows = shard_windows.first().map_or(0, Vec::len);
    debug_assert!(shard_windows.iter().all(|w| w.len() == n_windows));
    for w in 0..n_windows {
        let start = shard_windows[0][w].0;
        let mut window_rows = 0u64;
        for (d, ds) in datasets.iter().enumerate() {
            let mut rows = Vec::new();
            let (mut kept, mut dropped, mut filtered) = (0u64, 0u64, 0u64);
            for sw in shard_windows.iter_mut() {
                let (part_rows, (dk, dd, df)) = std::mem::take(&mut sw[w].1[d]);
                rows.extend(part_rows);
                kept += dk;
                dropped += dd;
                filtered += df;
            }
            rows.sort_by(|a, b| b.1.hits.cmp(&a.1.hits).then_with(|| a.0.cmp(&b.0)));
            window_rows += rows.len() as u64;
            store.push(WindowDump {
                dataset: ds.name().to_string(),
                start,
                length: window_secs,
                rows,
                kept,
                dropped,
                filtered,
            });
        }
        // The merged window is final — the pipeline-local terminal of its
        // provenance trace (the federation tier seals across upstreams).
        if trace.seal.is_enabled() {
            trace.seal.record(
                TraceEvent::new(trace.seal.now_us(), "seal", TraceKind::Seal)
                    .window(window_id_us(start))
                    .value(window_rows),
            );
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimConfig, Simulation};

    fn small_cfg() -> ObservatoryConfig {
        ObservatoryConfig {
            datasets: vec![(Dataset::SrvIp, 500), (Dataset::Qtype, 32)],
            window_secs: 1.0,
            ..ObservatoryConfig::default()
        }
    }

    #[test]
    fn windows_are_produced() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(3.5, &mut |tx| obs.ingest(tx));
        let store = obs.finish();
        // 3 full windows + final partial, × 2 datasets.
        let srvip = store.dataset(Dataset::SrvIp).len();
        assert!((3..=4).contains(&srvip), "srvip windows: {srvip}");
        assert_eq!(store.windows().len() % srvip, 0);
    }

    #[test]
    fn window_rows_have_traffic() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(2.5, &mut |tx| obs.ingest(tx));
        let store = obs.finish();
        let windows = store.dataset(Dataset::Qtype);
        let with_rows = windows.iter().filter(|w| !w.rows.is_empty()).count();
        assert!(with_rows >= 1);
        for w in &windows {
            for (key, row) in &w.rows {
                assert!(!key.is_empty());
                assert!(row.hits > 0);
            }
        }
    }

    #[test]
    fn kept_dropped_are_per_window() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(3.5, &mut |tx| obs.ingest(tx));
        let ingested = obs.ingested();
        let store = obs.finish();
        let total_kept: u64 = store
            .dataset(Dataset::SrvIp)
            .iter()
            .map(|w| w.kept + w.dropped + w.filtered)
            .sum();
        assert_eq!(total_kept, ingested, "per-window stats must sum to total");
    }

    #[test]
    fn packet_path_matches_structured_path() {
        let mut sim1 = Simulation::from_config(SimConfig::small());
        let mut obs1 = Observatory::new(small_cfg());
        sim1.run(1.5, &mut |tx| obs1.ingest(tx));

        let mut sim2 = Simulation::from_config(SimConfig::small());
        let mut obs2 = Observatory::new(small_cfg());
        sim2.run(1.5, &mut |tx| {
            let (q, r) = tx.to_packets();
            obs2.ingest_packets(&q, r.as_deref(), tx.time, tx.contributor, tx.delay_ms);
        });

        let s1 = obs1.finish();
        let s2 = obs2.finish();
        assert_eq!(s1.windows().len(), s2.windows().len());
        for (w1, w2) in s1.windows().iter().zip(s2.windows()) {
            assert_eq!(w1.rows.len(), w2.rows.len(), "{} window", w1.dataset);
            assert_eq!(w1.total_hits(), w2.total_hits());
        }
    }

    #[test]
    fn threaded_pipeline_matches_single_threaded() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);

        let mut obs = Observatory::new(small_cfg());
        for tx in &txs {
            obs.ingest(tx);
        }
        let single = obs.finish();

        // small_cfg's SrvIp cache saturates (evictions happen), so exact
        // equality is only guaranteed with one tracker shard — any number
        // of summarizer workers.
        for workers in [1, 4] {
            let threaded = ThreadedPipeline::new(small_cfg(), workers).run(txs.clone());
            assert_eq!(
                single.windows().len(),
                threaded.windows().len(),
                "workers={workers}"
            );
            for (a, b) in single.windows().iter().zip(threaded.windows()) {
                assert_eq!(a.dataset, b.dataset);
                assert_eq!(a.start, b.start);
                assert_eq!(a.rows.len(), b.rows.len(), "{} window", a.dataset);
                assert_eq!(a.total_hits(), b.total_hits());
                for ((ka, ra), (kb, rb)) in a.rows.iter().zip(&b.rows) {
                    assert_eq!(ka, kb);
                    assert_eq!(ra.hits, rb.hits);
                }
            }
        }

        // With unsaturated caches, equality extends to sharded trackers
        // (see sharded_pipeline_is_byte_identical_to_observatory for the
        // full 8-dataset version of this assertion).
        let roomy_cfg = ObservatoryConfig {
            datasets: vec![(Dataset::SrvIp, 16_000), (Dataset::Qtype, 64)],
            window_secs: 1.0,
            ..ObservatoryConfig::default()
        };
        let mut obs = Observatory::new(roomy_cfg.clone());
        for tx in &txs {
            obs.ingest(tx);
        }
        let single = obs.finish();
        for (workers, shards) in [(4, 2), (4, 4)] {
            let threaded =
                ThreadedPipeline::with_shards(roomy_cfg.clone(), workers, shards).run(txs.clone());
            assert_eq!(single.windows().len(), threaded.windows().len());
            for (a, b) in single.windows().iter().zip(threaded.windows()) {
                assert_eq!(a.dataset, b.dataset);
                assert_eq!(a.start, b.start);
                assert_eq!(
                    format!("{:?}", a.rows),
                    format!("{:?}", b.rows),
                    "{} @ {} (workers={workers} shards={shards})",
                    a.dataset,
                    a.start
                );
            }
        }
    }

    /// Every paper dataset, including the filtered ones (AaFqdn only sees
    /// authoritative answers, Esld/Etld drop unparseable names): the
    /// sharded pipeline must be byte-identical to the single-threaded
    /// Observatory — rows, feature values, and per-window stat deltas.
    ///
    /// Exactness requires the unsaturated regime (no cache is ever full,
    /// in either pipeline): eviction consults a *global* minimum that a
    /// key-partitioned shard cannot see. The `dropped == 0` asserts guard
    /// that premise; under saturation the sharded result degrades to the
    /// per-partition Space-Saving error bound instead (covered by the
    /// sketches proptest).
    #[test]
    fn sharded_pipeline_is_byte_identical_to_observatory() {
        let cfg = ObservatoryConfig {
            datasets: vec![
                // ~10k transactions in the 3 s workload below, so 16k
                // capacity can never saturate even for per-tx-unique keys.
                (Dataset::SrvIp, 16_000),
                (Dataset::Etld, 2_000),
                (Dataset::Esld, 16_000),
                (Dataset::Qname, 16_000),
                (Dataset::Qtype, 64),
                (Dataset::Rcode, 32),
                (Dataset::AaFqdn, 16_000),
                (Dataset::SrcSrv, 16_000),
            ],
            window_secs: 1.0,
            ..ObservatoryConfig::default()
        };
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(3.0);

        let mut obs = Observatory::new(cfg.clone());
        for tx in &txs {
            obs.ingest(tx);
        }
        let single = obs.finish();
        for w in single.windows() {
            assert_eq!(w.dropped, 0, "test premise: no eviction in {}", w.dataset);
        }

        for (workers, shards) in [(4, 4), (2, 3)] {
            let threaded =
                ThreadedPipeline::with_shards(cfg.clone(), workers, shards).run(txs.clone());
            assert_eq!(single.windows().len(), threaded.windows().len());
            for (a, b) in single.windows().iter().zip(threaded.windows()) {
                assert_eq!(a.dataset, b.dataset);
                assert_eq!(a.start, b.start);
                assert_eq!(a.length, b.length);
                assert_eq!(
                    (a.kept, a.dropped, a.filtered),
                    (b.kept, b.dropped, b.filtered),
                    "{} @ {} (workers={workers} shards={shards})",
                    a.dataset,
                    a.start
                );
                // Debug formatting covers every feature field (and renders
                // NaN stably, which f64 == would reject).
                assert_eq!(
                    format!("{:?}", a.rows),
                    format!("{:?}", b.rows),
                    "{} @ {} (workers={workers} shards={shards})",
                    a.dataset,
                    a.start
                );
            }
        }
    }

    /// Under eviction pressure the sharded rows legitimately differ, but
    /// the per-window data-collection stats must still be conserved:
    /// every transaction lands in exactly one shard's kept/dropped/
    /// filtered tally for each dataset.
    #[test]
    fn sharded_stats_sum_to_ingested_under_pressure() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);
        let total = txs.len() as u64;
        let store = ThreadedPipeline::with_shards(small_cfg(), 2, 3).run(txs);
        for ds in [Dataset::SrvIp, Dataset::Qtype] {
            let sum: u64 = store
                .dataset(ds)
                .iter()
                .map(|w| w.kept + w.dropped + w.filtered)
                .sum();
            assert_eq!(sum, total, "{} stats must sum to ingested", ds.name());
        }
    }

    /// `run` takes any IntoIterator, so transactions can stream straight
    /// off a generator without being collected first.
    #[test]
    fn run_accepts_streaming_iterator() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(1.5);
        let from_vec = ThreadedPipeline::new(small_cfg(), 2).run(txs.clone());
        let from_iter = ThreadedPipeline::new(small_cfg(), 2).run(txs.into_iter().filter(|_| true));
        assert_eq!(from_vec.windows().len(), from_iter.windows().len());
        for (a, b) in from_vec.windows().iter().zip(from_iter.windows()) {
            assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows));
        }
    }

    /// `run_summaries` (the collector-side feed entry point) must agree
    /// with ingesting the same pre-built summaries one by one — the
    /// guarantee the distributed loopback equivalence test builds on.
    #[test]
    fn run_summaries_matches_ingest_summary() {
        let psl = psl::Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);
        let summaries: Vec<TxSummary> = txs
            .iter()
            .map(|tx| TxSummary::from_transaction(tx, &psl))
            .collect();

        let mut obs = Observatory::new(small_cfg());
        for s in summaries.clone() {
            obs.ingest_summary(s);
        }
        let single = obs.finish();

        let threaded = ThreadedPipeline::new(small_cfg(), 2).run_summaries(summaries);
        assert_eq!(single.windows().len(), threaded.windows().len());
        for (a, b) in single.windows().iter().zip(threaded.windows()) {
            assert_eq!(a.dataset, b.dataset);
            assert_eq!(a.start, b.start);
            assert_eq!(
                (a.kept, a.dropped, a.filtered),
                (b.kept, b.dropped, b.filtered)
            );
            assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows));
        }
    }

    /// Batch size must never affect output: pin the adaptive controller
    /// at several sizes (including degenerate 1-transaction batches that
    /// maximize frontier piggybacking) and demand identical stores.
    #[test]
    fn output_is_invariant_under_batch_size() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);
        let reference = ThreadedPipeline::with_shards(small_cfg(), 2, 2)
            .with_batch_range(512, 512)
            .run(txs.clone());
        for pinned in [1, 7, 64, 4096] {
            let got = ThreadedPipeline::with_shards(small_cfg(), 2, 2)
                .with_batch_range(pinned, pinned)
                .run(txs.clone());
            assert_eq!(reference.windows().len(), got.windows().len());
            for (a, b) in reference.windows().iter().zip(got.windows()) {
                assert_eq!(a.start, b.start, "batch={pinned}");
                assert_eq!(
                    (a.kept, a.dropped, a.filtered),
                    (b.kept, b.dropped, b.filtered),
                    "batch={pinned}"
                );
                assert_eq!(
                    format!("{:?}", a.rows),
                    format!("{:?}", b.rows),
                    "batch={pinned}"
                );
            }
        }
    }

    /// The stall hook exists for chaos testing; stalling must delay, not
    /// change, the output.
    #[test]
    fn stall_injector_does_not_change_output() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(1.5);
        let clean = ThreadedPipeline::with_shards(small_cfg(), 2, 2).run(txs.clone());
        let stalled = ThreadedPipeline::with_shards(small_cfg(), 2, 2)
            .with_stall_injector(Arc::new(|sh, idx| {
                if sh == 0 && idx % 3 == 0 {
                    for _ in 0..50 {
                        std::thread::yield_now();
                    }
                }
            }))
            .run(txs);
        assert_eq!(clean.windows().len(), stalled.windows().len());
        for (a, b) in clean.windows().iter().zip(stalled.windows()) {
            assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows));
        }
    }

    /// An empty input stream must terminate cleanly with an empty store
    /// on every stage topology.
    #[test]
    fn empty_input_produces_empty_store() {
        let store = ThreadedPipeline::with_shards(small_cfg(), 3, 2).run(Vec::new());
        assert!(store.windows().is_empty());
        let store = ThreadedPipeline::new(small_cfg(), 2).run_summaries(Vec::new());
        assert!(store.windows().is_empty());
    }

    /// The telemetry counters must reconcile exactly with the store the
    /// pipeline produced: ingested matches the input, and each dataset's
    /// kept/dropped/filtered counters equal the per-window TSV totals.
    #[test]
    fn telemetry_reconciles_with_store() {
        let registry = Registry::new();
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);
        let total = txs.len() as u64;
        let store = ThreadedPipeline::with_shards(small_cfg(), 2, 3)
            .with_registry(registry.clone())
            .run(txs);
        let snap = registry.snapshot(0);
        assert_eq!(snap.counter("pipeline_ingested_total"), total);
        assert!(snap.counter("pipeline_batches_total") > 0);
        let boundaries = snap.counter("pipeline_windows_total");
        assert_eq!(
            boundaries as usize,
            store.dataset(Dataset::SrvIp).len(),
            "one frontier close per produced window"
        );
        for ds in [Dataset::SrvIp, Dataset::Qtype] {
            let from_store: (u64, u64, u64) =
                store.dataset(ds).iter().fold((0, 0, 0), |(k, d, f), w| {
                    (k + w.kept, d + w.dropped, f + w.filtered)
                });
            let sel = |what: &str| {
                snap.counter_sum(&format!("pipeline_{what}_total{{dataset=\"{}\"", ds.name()))
            };
            assert_eq!(
                (sel("kept"), sel("dropped"), sel("filtered")),
                from_store,
                "{} counters must mirror the TSV totals",
                ds.name()
            );
        }
        // Every queued message was consumed: the depth gauges are back
        // to zero once the run returns.
        for sh in 0..3 {
            assert_eq!(
                snap.gauge(&format!("pipeline_queue_depth{{shard=\"{sh}\"}}")),
                0.0
            );
        }
        // The adaptive feeder reported its batch size.
        assert!(snap.gauge("pipeline_batch_size") >= 1.0);
        // Each batch was timed.
        let h = snap
            .histogram("pipeline_batch_seconds")
            .expect("batch histogram registered");
        assert!(h.count > 0);
    }

    /// With a flight recorder attached, every stage leaves a provenance
    /// trail and the record-level balance holds: one sequencer Open and
    /// one Close per produced window, the Close values summing to the
    /// input size; one Close per (shard, window); one Seal per window at
    /// the merge. Attaching the recorder must not change the output.
    #[test]
    fn flight_recorder_captures_window_provenance() {
        use telemetry::trace::parse_dump;
        use telemetry::{FlightRecorder, ManualClock};

        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);
        let plain = ThreadedPipeline::with_shards(small_cfg(), 2, 2).run(txs.clone());

        let recorder = FlightRecorder::new();
        let clock = Arc::new(ManualClock::new());
        clock.set(7);
        let traced = ThreadedPipeline::with_shards(small_cfg(), 2, 2)
            .with_flight_recorder(recorder.clone())
            .with_trace_clock(clock)
            .run(txs.clone());

        // Tracing is observability, never behaviour.
        assert_eq!(plain.windows().len(), traced.windows().len());
        for (a, b) in plain.windows().iter().zip(traced.windows()) {
            assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows));
        }

        let n_windows = plain.dataset(Dataset::SrvIp).len();
        let rows = parse_dump(&recorder.dump());
        let count = |subsystem: &str, kind: TraceKind| {
            rows.iter()
                .filter(|r| r.subsystem == subsystem && r.kind == kind)
                .count()
        };
        assert_eq!(count("pipeline/sequencer", TraceKind::Open), n_windows);
        assert_eq!(count("pipeline/sequencer", TraceKind::Close), n_windows);
        let routed: u64 = rows
            .iter()
            .filter(|r| r.subsystem == "pipeline/sequencer" && r.kind == TraceKind::Close)
            .map(|r| r.value)
            .sum();
        assert_eq!(routed, txs.len() as u64, "every summary lands in a window");
        for sh in 0..2 {
            assert_eq!(
                count(&format!("pipeline/shard{sh}"), TraceKind::Close),
                n_windows
            );
        }
        assert_eq!(count("pipeline/seal", TraceKind::Seal), n_windows);
        // The feeder and both workers saw the stream go by.
        assert!(count("pipeline/feeder", TraceKind::Ingest) > 0);
        // Window ids are the window start in µs; every Seal id matches a
        // produced window, stamped by the manual clock.
        for r in rows.iter().filter(|r| r.kind == TraceKind::Seal) {
            assert_eq!(r.at_us, 7);
            assert!(plain
                .dataset(Dataset::SrvIp)
                .iter()
                .any(|w| (w.start * 1e6).round() as u64 == r.window_us));
        }
    }

    /// The sequencer's window-residency histogram records one sample per
    /// produced window even with tracing disabled.
    #[test]
    fn window_residency_histogram_fills_without_a_recorder() {
        let registry = Registry::new();
        let mut sim = Simulation::from_config(SimConfig::small());
        let txs = sim.collect(2.0);
        let store = ThreadedPipeline::with_shards(small_cfg(), 2, 2)
            .with_registry(registry.clone())
            .run(txs);
        let snap = registry.snapshot(0);
        let h = snap
            .histogram("pipeline_window_seconds{stage=\"sequencer\"}")
            .expect("window residency histogram registered");
        assert_eq!(h.count as usize, store.dataset(Dataset::SrvIp).len());
    }

    #[test]
    fn gap_in_traffic_does_not_break_windows() {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(small_cfg());
        sim.run(1.2, &mut |tx| obs.ingest(tx));
        sim.skip_to(10.0);
        sim.run(1.2, &mut |tx| obs.ingest(tx));
        let store = obs.finish();
        // Windows must align to the 1 s grid despite the jump.
        for w in store.windows() {
            assert!(w.length == 1.0);
        }
        assert!(store.windows().iter().any(|w| w.start >= 9.0));
    }
}
