//! Federated aggregation (collector → aggregator tier).
//!
//! The paper's Observatory ends at one collector process. This module is
//! the collector side of the tier above it: instead of rendering TSV
//! rows locally, a forwarding collector exports its per-window *sketch
//! state* — Space-Saving counters with error terms, HLL registers,
//! feature accumulators — as [`WindowState`] items, and an aggregator
//! (`sketchwire::AggregatorCore`) merges N such streams into one global
//! view whose error bound is the sum of the per-collector bounds.
//!
//! Two things differ deliberately from the local pipeline:
//!
//! * **Windows are floor-aligned** (`⌊t/w⌋·w`), not anchored at the
//!   first summary seen. Collectors start at slightly different stream
//!   times; anchoring would misalign their windows and make cross-stream
//!   merging meaningless. The local pipeline keeps its historical
//!   anchoring; this exporter owns alignment.
//! * **One tracker per dataset** (no sharding). Shards partition the key
//!   space and carry *per-shard* `min_count`s; the cross-collector
//!   absent-key merge law is only valid against a whole tracker's
//!   `min_count`, so the forwarding path keeps trackers whole.

use crate::features::FeatureSet;
use crate::pipeline::{window_id_us, ObservatoryConfig};
use crate::summarize::TxSummary;
use crate::timeseries::WindowDump;
use crate::topk::TopKTracker;
use crate::tsv;
use psl::Psl;
use simnet::Transaction;
use sketchwire::{merge_chunks, GlobalWindow, StateError, TopKState, WindowState};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use telemetry::trace::{TraceEvent, TraceKind, TraceRing};

/// Trace stage name for exporter span events.
const STAGE: &str = "exporter";

/// Turns a summary stream into per-window [`WindowState`] items — the
/// collector half of the federated tier.
pub struct StateExporter {
    cfg: ObservatoryConfig,
    upstream: u64,
    chunk_entries: usize,
    psl: Psl,
    trackers: Vec<TopKTracker>,
    /// Stats captured at the previous window boundary, per tracker.
    prev_stats: Vec<(u64, u64, u64)>,
    window_start: Option<f64>,
    ingested: u64,
    /// Summaries at or before this aligned window start are already in
    /// the durable store and are skipped on a resumed run.
    resume_before: f64,
    /// Summaries skipped by the resume frontier.
    resumed_skipped: u64,
    trace: TraceRing,
    now_us: u64,
}

impl StateExporter {
    /// Build an exporter for collector `upstream`. `chunk_entries` caps
    /// the keys per exported chunk (`0` = never chunk); large trackers
    /// are split with `TopKState::into_chunks` so every record stays
    /// under the transport frame cap.
    pub fn new(cfg: ObservatoryConfig, upstream: u64, chunk_entries: usize) -> StateExporter {
        let trackers = cfg
            .datasets
            .iter()
            .map(|&(ds, k)| TopKTracker::new(ds, k, cfg.feature_cfg, cfg.bloom_gate))
            .collect::<Vec<_>>();
        let prev_stats = vec![(0, 0, 0); trackers.len()];
        StateExporter {
            cfg,
            upstream,
            chunk_entries: if chunk_entries == 0 {
                usize::MAX
            } else {
                chunk_entries
            },
            psl: Psl::embedded(),
            trackers,
            prev_stats,
            window_start: None,
            ingested: 0,
            resume_before: f64::NEG_INFINITY,
            resumed_skipped: 0,
            trace: TraceRing::disabled(),
            now_us: 0,
        }
    }

    /// Rebuild an exporter from the newest durable window of a store —
    /// the crash-recovery path of `collect --store`.
    ///
    /// `states` are that window's records (every dataset, chunked or
    /// not) and `last_window_start` its aligned start. Each tracker is
    /// restored from its serialized state (see [`TopKTracker::restore`]
    /// for why the rebuilt tracker equals the post-export one), and the
    /// resume frontier is set so replayed summaries belonging to the
    /// durable window — or anything earlier — are skipped, not
    /// double-counted. The per-tracker `kept`/`dropped`/`filtered`
    /// counters and `prev_stats` both restart at zero, so the *deltas*
    /// exported per window are unaffected by the restart.
    pub fn resume(
        cfg: ObservatoryConfig,
        upstream: u64,
        chunk_entries: usize,
        last_window_start: f64,
        states: &[WindowState],
    ) -> Result<StateExporter, StateError> {
        let mut exporter = StateExporter::new(cfg, upstream, chunk_entries);
        let mut by_dataset: BTreeMap<String, Vec<TopKState>> = BTreeMap::new();
        for ws in states {
            by_dataset
                .entry(ws.topk.dataset.clone())
                .or_default()
                .push(ws.topk.clone());
        }
        for (i, tracker) in exporter.trackers.iter_mut().enumerate() {
            let (ds, k) = exporter.cfg.datasets[i];
            let parts = by_dataset
                .remove(ds.name())
                .ok_or(StateError::LayoutMismatch("resume state missing a dataset"))?;
            let whole = merge_chunks(&parts)?;
            if whole.capacity != k as u64 {
                return Err(StateError::LayoutMismatch(
                    "resume capacity differs from configured k",
                ));
            }
            *tracker =
                TopKTracker::restore(&whole, exporter.cfg.feature_cfg, exporter.cfg.bloom_gate)?;
        }
        if !by_dataset.is_empty() {
            return Err(StateError::LayoutMismatch(
                "resume state has a dataset the config lacks",
            ));
        }
        exporter.resume_before = last_window_start + exporter.cfg.window_secs;
        Ok(exporter)
    }

    /// Attach a trace ring; each exported window records a `close` span
    /// event keyed by the same window id the aggregator uses on the
    /// wire, with the chunk count as its value. Sans-io: pair with
    /// [`StateExporter::set_now_us`] to timestamp events.
    pub fn with_trace(mut self, ring: TraceRing) -> StateExporter {
        self.trace = ring;
        self
    }

    /// Advance the exporter's notion of time for trace timestamps.
    pub fn set_now_us(&mut self, now_us: u64) {
        self.now_us = now_us;
    }

    /// Total transactions ingested.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Transactions skipped because they predate the resume frontier.
    pub fn resumed_skipped(&self) -> u64 {
        self.resumed_skipped
    }

    /// Ingest one simulator transaction; completed windows are appended
    /// to `out`.
    pub fn ingest(&mut self, tx: &Transaction, out: &mut Vec<WindowState>) {
        let summary = TxSummary::from_transaction(tx, &self.psl);
        self.ingest_summary(summary, out);
    }

    /// Ingest a pre-built summary; completed windows are appended to
    /// `out`. Input must be time-ordered (the feed collector's merge
    /// guarantees this).
    pub fn ingest_summary(&mut self, summary: TxSummary, out: &mut Vec<WindowState>) {
        let w = self.cfg.window_secs;
        let aligned = (summary.time / w).floor() * w;
        // Resumed runs replay the feed from before the crash; anything
        // already folded into the durable store is skipped (and counted),
        // never double-aggregated.
        if aligned < self.resume_before {
            self.resumed_skipped += 1;
            return;
        }
        match self.window_start {
            None => {
                self.window_start = Some(aligned);
                self.trace_open(aligned);
            }
            Some(start) if aligned > start => {
                // A jump of more than one window leaves a gap the
                // aggregator's per-upstream ledger will count.
                self.export_window(start, out);
                self.window_start = Some(aligned);
                self.trace_open(aligned);
            }
            _ => {}
        }
        self.ingested += 1;
        for t in &mut self.trackers {
            t.observe(&summary);
        }
    }

    /// Flush the final partial window and return how many transactions
    /// were ingested in total.
    pub fn finish(mut self, out: &mut Vec<WindowState>) -> u64 {
        if let Some(start) = self.window_start {
            if self.ingested > 0 {
                self.export_window(start, out);
            }
        }
        self.ingested
    }

    fn trace_open(&self, start: f64) {
        if self.trace.is_enabled() {
            self.trace.record(
                TraceEvent::new(self.now_us, STAGE, TraceKind::Open)
                    .window(window_id_us(start))
                    .source(self.upstream),
            );
        }
    }

    fn export_window(&mut self, start: f64, out: &mut Vec<WindowState>) {
        let before = out.len();
        for (i, t) in self.trackers.iter_mut().enumerate() {
            let (kept, dropped, filtered) = t.stats();
            let (pk, pd, pf) = self.prev_stats[i];
            self.prev_stats[i] = (kept, dropped, filtered);
            let state = t.export_state(kept - pk, dropped - pd, filtered - pf);
            for chunk in state.into_chunks(self.chunk_entries) {
                out.push(WindowState {
                    upstream: self.upstream,
                    start,
                    length: self.cfg.window_secs,
                    topk: chunk,
                });
            }
        }
        if self.trace.is_enabled() {
            self.trace.record(
                TraceEvent::new(self.now_us, STAGE, TraceKind::Close)
                    .window(window_id_us(start))
                    .source(self.upstream)
                    .value((out.len() - before) as u64),
            );
        }
    }
}

/// Render one merged sketch state into the [`WindowDump`] shape the
/// local pipeline produces — residency rule, hit filter, hits-descending
/// order, and the capacity cap re-applied. Shared by the aggregator's
/// global render and the historical store's query path (which renders
/// windows of any compaction level through exactly this function).
pub fn render_state(state: &TopKState, start: f64, length: f64) -> Result<WindowDump, StateError> {
    let mut rows = Vec::new();
    for e in &state.entries {
        // adds[0] is `hits` in the layout contract: per-window
        // traffic, not the cumulative Space-Saving count.
        let hits = e.features.adds.first().copied().unwrap_or(0);
        if e.inserted_at <= start && hits > 0 {
            rows.push((e.key.clone(), FeatureSet::from_state(&e.features)?.row()));
        }
    }
    rows.sort_by(|a, b| b.1.hits.cmp(&a.1.hits).then_with(|| a.0.cmp(&b.0)));
    rows.truncate(state.capacity as usize);
    Ok(WindowDump {
        dataset: state.dataset.clone(),
        start,
        length,
        rows,
        kept: state.kept,
        dropped: state.dropped,
        filtered: state.filtered,
    })
}

/// Render one merged global window into per-dataset [`WindowDump`]s —
/// a drop-in for every downstream consumer (TSV writer, rollups,
/// analysis).
pub fn render_global(gw: &GlobalWindow) -> Result<Vec<WindowDump>, StateError> {
    gw.datasets
        .iter()
        .map(|state| render_state(state, gw.start, gw.length))
        .collect()
}

/// Write one global window to `dir` using the same file naming as the
/// local pipeline (`{dataset}-{start:05}.tsv`); returns the file count.
/// A state that cannot be rendered maps to [`io::ErrorKind::InvalidData`].
pub fn write_global(dir: &Path, gw: &GlobalWindow) -> io::Result<usize> {
    let dumps =
        render_global(gw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    for dump in &dumps {
        let path = dir.join(format!("{}-{:05}.tsv", dump.dataset, dump.start as u64));
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        tsv::write_window(&mut w, dump)?;
    }
    Ok(dumps.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Dataset;
    use crate::pipeline::Observatory;
    use simnet::{SimConfig, Simulation};
    use sketchwire::{merge_chunks, merge_topk, AggregatorConfig, AggregatorCore};
    use std::collections::BTreeMap;

    fn cfg(window: f64) -> ObservatoryConfig {
        ObservatoryConfig {
            datasets: vec![(Dataset::SrvIp, 500), (Dataset::Qtype, 64)],
            window_secs: window,
            bloom_gate: false,
            ..ObservatoryConfig::default()
        }
    }

    /// One collector's exported state, rendered back, matches the local
    /// pipeline's dump — *given* the same (floor-aligned) window starts.
    #[test]
    fn single_exporter_roundtrips_to_local_dump() {
        let psl = Psl::embedded();
        let mut summaries = Vec::new();
        let mut sim = Simulation::from_config(SimConfig::small());
        sim.run(2.5, &mut |tx| {
            summaries.push(TxSummary::from_transaction(tx, &psl));
        });
        // The local pipeline anchors windows at the first summary time;
        // the exporter floor-aligns. Snapping the first summary to a
        // window boundary makes the two schemes coincide, so the dumps
        // must then agree exactly.
        summaries[0].time = summaries[0].time.floor();

        let mut exporter = StateExporter::new(cfg(1.0), 7, 0);
        let mut obs = Observatory::new(cfg(1.0));
        let mut states = Vec::new();
        for s in summaries {
            obs.ingest_summary(s.clone());
            exporter.ingest_summary(s, &mut states);
        }
        exporter.finish(&mut states);
        let store = obs.finish();
        assert!(!states.is_empty());

        // The sim starts at t≈0, so the local anchored windows coincide
        // with the floor-aligned ones and the dumps must agree exactly.
        let mut core = AggregatorCore::new(&AggregatorConfig::new(1));
        for ws in states {
            core.on_state(ws).expect("valid state");
        }
        let mut sealed = Vec::new();
        core.finish(&mut sealed);
        let mut rendered: Vec<WindowDump> = Vec::new();
        for gw in &sealed {
            rendered.extend(render_global(gw).expect("render"));
        }
        for want in store.windows() {
            let got = rendered
                .iter()
                .find(|d| d.dataset == want.dataset && d.start == want.start)
                .unwrap_or_else(|| panic!("missing {}@{}", want.dataset, want.start));
            assert_eq!(got.kept, want.kept);
            assert_eq!(got.dropped, want.dropped);
            assert_eq!(got.filtered, want.filtered);
            // Compare the canonical TSV rendering: empty quartiles are
            // NaN, and NaN ≠ NaN would fail a direct row comparison.
            let bytes = |d: &WindowDump| {
                let mut b = Vec::new();
                tsv::write_window(&mut b, d).expect("write to Vec");
                b
            };
            assert_eq!(bytes(got), bytes(want), "{}@{}", want.dataset, want.start);
        }
    }

    /// Chunked export merges back to exactly the unchunked state.
    #[test]
    fn chunked_export_reassembles() {
        let run = |chunk: usize| {
            let mut exporter = StateExporter::new(cfg(1.0), 1, chunk);
            let mut states = Vec::new();
            let mut sim = Simulation::from_config(SimConfig::small());
            sim.run(1.5, &mut |tx| exporter.ingest(tx, &mut states));
            exporter.finish(&mut states);
            states
        };
        let whole = run(0);
        let chunked = run(3);
        assert!(chunked.len() > whole.len(), "chunking must split records");
        let mut groups: BTreeMap<(u64, String), Vec<sketchwire::TopKState>> = BTreeMap::new();
        for ws in chunked {
            groups
                .entry(((ws.start * 1e6).round() as u64, ws.topk.dataset.clone()))
                .or_default()
                .push(ws.topk);
        }
        for ws in whole {
            let key = ((ws.start * 1e6).round() as u64, ws.topk.dataset.clone());
            let parts = groups.get(&key).expect("chunked run has same windows");
            let mut back = merge_chunks(parts).expect("reassemble");
            let mut want = ws.topk;
            want.entries.sort_by(|a, b| a.key.cmp(&b.key));
            back.entries.sort_by(|a, b| a.key.cmp(&b.key));
            assert_eq!(back, want);
        }
    }

    /// Tracing is a pure observer: a traced exporter emits one `open`
    /// and one `close` span per exported window (close value = chunk
    /// count) and produces byte-identical states to an untraced run.
    #[test]
    fn traced_exporter_spans_match_exports() {
        let run = |ring: Option<TraceRing>| {
            let mut exporter = StateExporter::new(cfg(1.0), 7, 0);
            if let Some(ring) = ring {
                exporter = exporter.with_trace(ring);
            }
            let mut states = Vec::new();
            let mut sim = Simulation::from_config(SimConfig::small());
            let mut tick = 0u64;
            sim.run(2.5, &mut |tx| {
                tick += 1;
                exporter.set_now_us(tick);
                exporter.ingest(tx, &mut states);
            });
            exporter.finish(&mut states);
            states
        };
        let ring = TraceRing::new(256);
        let plain = run(None);
        let traced = run(Some(ring.clone()));
        assert_eq!(plain, traced, "tracing must not perturb exports");

        let events: Vec<TraceEvent> = ring.events().into_iter().map(|(_, e)| e).collect();
        let opens: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceKind::Open)
            .collect();
        let closes: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceKind::Close)
            .collect();
        let windows: BTreeMap<u64, usize> = traced.iter().fold(BTreeMap::new(), |mut acc, ws| {
            *acc.entry(window_id_us(ws.start)).or_default() += 1;
            acc
        });
        assert_eq!(opens.len(), windows.len(), "one open per window");
        // Boundary windows close at the boundary; `finish` closes the
        // final partial window — so every window closes exactly once.
        assert_eq!(closes.len(), windows.len(), "one close per window");
        for close in &closes {
            assert_eq!(close.stage, "exporter");
            assert_eq!(close.source, 7, "upstream id rides the span");
            let chunks = windows[&close.window_us];
            assert_eq!(close.value, chunks as u64);
        }
    }

    /// Two exporters fed disjoint slices merge into a global view whose
    /// stated error bound is the sum of the per-collector bounds and
    /// whose per-key hits are conserved exactly.
    #[test]
    fn two_way_merge_states_its_bound_and_conserves_hits() {
        let mut a = StateExporter::new(cfg(10.0), 0, 0);
        let mut b = StateExporter::new(cfg(10.0), 1, 0);
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        let mut sim = Simulation::from_config(SimConfig::small());
        sim.run(3.0, &mut |tx| {
            if tx.sensor_index(2) == 0 {
                a.ingest(tx, &mut sa);
            } else {
                b.ingest(tx, &mut sb);
            }
        });
        a.finish(&mut sa);
        b.finish(&mut sb);
        // 3 s < one 10 s window: exactly one window per dataset per side.
        let find = |v: &[WindowState], ds: &str| {
            v.iter()
                .find(|w| w.topk.dataset == ds)
                .expect("window present")
                .topk
                .clone()
        };
        for ds in ["srvip", "qtype"] {
            let (ta, tb) = (find(&sa, ds), find(&sb, ds));
            let merged = merge_topk(&ta, &tb).expect("merge");
            assert_eq!(merged.error_bound, ta.error_bound + tb.error_bound);
            assert!(merged.max_entry_error() <= merged.error_bound);
            // Per-key per-window hits are conserved: features are exact
            // counters, so the merged hits equal the sum of the sides'.
            let hits = |t: &sketchwire::TopKState| -> BTreeMap<String, u64> {
                t.entries
                    .iter()
                    .map(|e| (e.key.clone(), e.features.adds[0]))
                    .collect()
            };
            let (ha, hb, hm) = (hits(&ta), hits(&tb), hits(&merged));
            for (k, &v) in &hm {
                let want = ha.get(k).copied().unwrap_or(0) + hb.get(k).copied().unwrap_or(0);
                assert_eq!(v, want, "hits for {k} in {ds}");
            }
        }
    }
}
