//! Feed wire codec for [`TxSummary`] — the item format sensors ship to
//! the collector (paper §2.1, the Farsight-SIE-style feed boundary).
//!
//! The transport itself lives in the `feed` crate and is generic over
//! [`feed::FeedItem`]; this module supplies the impl for the
//! Observatory's summary type. (The split keeps the dependency graph
//! acyclic: `dns-observatory` depends on `feed`, not the other way
//! around.)
//!
//! Layout (all integers little-endian, varints LEB128):
//!
//! ```text
//! time f64 | flags u16 | resolver addr | contributor u16 | nameserver addr
//! | qname len u8 + wire | qtype u16 | qdots u8 | outcome u8
//! | answer_count u8 | authority_ns_count u8
//! | ip4s varint + 4B each | ip6s varint + 16B each
//! | [answer_ttl u32] [ns_ttl u32] [soa_minimum u32]
//! | [delay_ms f64] [hops u8] [resp_size u32]
//! | answer_data_hashes varint + 8B each | ns_name_hashes varint + 8B each
//! | [etld str] [esld str] [tld str]
//! ```
//!
//! `addr` is a tag octet (4 or 6) followed by the address octets; `str`
//! is a varint length plus UTF-8 bytes; bracketed fields are present only
//! when their flag bit is set.

use crate::summarize::{Outcome, TxSummary};
use dnswire::{Name, RecordType};
use feed::{ByteReader, FeedError, FeedItem};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

const F_AA: u16 = 1 << 0;
const F_OK_ANS: u16 = 1 << 1;
const F_OK_NS: u16 = 1 << 2;
const F_OK_ADD: u16 = 1 << 3;
const F_DO: u16 = 1 << 4;
const F_DNSSEC_OK: u16 = 1 << 5;
const F_ANSWER_TTL: u16 = 1 << 6;
const F_NS_TTL: u16 = 1 << 7;
const F_SOA_MIN: u16 = 1 << 8;
const F_DELAY: u16 = 1 << 9;
const F_HOPS: u16 = 1 << 10;
const F_RESP_SIZE: u16 = 1 << 11;
const F_ETLD: u16 = 1 << 12;
const F_ESLD: u16 = 1 << 13;
const F_TLD: u16 = 1 << 14;

fn outcome_code(o: Outcome) -> u8 {
    match o {
        Outcome::Unanswered => 0,
        Outcome::NoError => 1,
        Outcome::NxDomain => 2,
        Outcome::Refused => 3,
        Outcome::ServFail => 4,
        Outcome::OtherError => 5,
    }
}

fn outcome_from_code(c: u8) -> Result<Outcome, FeedError> {
    Ok(match c {
        0 => Outcome::Unanswered,
        1 => Outcome::NoError,
        2 => Outcome::NxDomain,
        3 => Outcome::Refused,
        4 => Outcome::ServFail,
        5 => Outcome::OtherError,
        _ => return Err(FeedError::Invalid("outcome code")),
    })
}

fn write_addr(addr: IpAddr, out: &mut Vec<u8>) {
    match addr {
        IpAddr::V4(a) => {
            out.push(4);
            out.extend_from_slice(&a.octets());
        }
        IpAddr::V6(a) => {
            out.push(6);
            out.extend_from_slice(&a.octets());
        }
    }
}

fn read_addr(r: &mut ByteReader<'_>) -> Result<IpAddr, FeedError> {
    match r.u8("address family tag")? {
        4 => {
            let b = r.bytes(4, "ipv4 address")?;
            Ok(IpAddr::V4(Ipv4Addr::new(b[0], b[1], b[2], b[3])))
        }
        6 => {
            let b = r.bytes(16, "ipv6 address")?;
            let mut o = [0u8; 16];
            o.copy_from_slice(b);
            Ok(IpAddr::V6(Ipv6Addr::from(o)))
        }
        _ => Err(FeedError::Invalid("address family tag")),
    }
}

fn write_str(s: &str, out: &mut Vec<u8>) {
    feed::codec::write_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(r: &mut ByteReader<'_>) -> Result<String, FeedError> {
    let len = r.count(1, "string length")?;
    let bytes = r.bytes(len, "string bytes")?;
    std::str::from_utf8(bytes)
        .map(str::to_owned)
        .map_err(|_| FeedError::Invalid("string not utf-8"))
}

impl FeedItem for TxSummary {
    const ITEM_VERSION: u8 = 1;

    fn encode(&self, out: &mut Vec<u8>) {
        let mut flags = 0u16;
        let mut set = |on: bool, bit: u16| {
            if on {
                flags |= bit;
            }
        };
        set(self.aa, F_AA);
        set(self.ok_ans, F_OK_ANS);
        set(self.ok_ns, F_OK_NS);
        set(self.ok_add, F_OK_ADD);
        set(self.do_flag, F_DO);
        set(self.dnssec_ok, F_DNSSEC_OK);
        set(self.answer_ttl.is_some(), F_ANSWER_TTL);
        set(self.ns_ttl.is_some(), F_NS_TTL);
        set(self.soa_minimum.is_some(), F_SOA_MIN);
        set(self.delay_ms.is_some(), F_DELAY);
        set(self.hops.is_some(), F_HOPS);
        set(self.resp_size.is_some(), F_RESP_SIZE);
        set(self.etld.is_some(), F_ETLD);
        set(self.esld.is_some(), F_ESLD);
        set(self.tld.is_some(), F_TLD);

        out.extend_from_slice(&self.time.to_bits().to_le_bytes());
        out.extend_from_slice(&flags.to_le_bytes());
        write_addr(self.resolver, out);
        out.extend_from_slice(&self.contributor.to_le_bytes());
        write_addr(self.nameserver, out);
        let wire = self.qname.as_wire();
        debug_assert!(wire.len() <= 255, "DNS names are at most 255 octets");
        out.push(wire.len() as u8);
        out.extend_from_slice(wire);
        out.extend_from_slice(&self.qtype.code().to_le_bytes());
        out.push(self.qdots);
        out.push(outcome_code(self.outcome));
        out.push(self.answer_count);
        out.push(self.authority_ns_count);
        feed::codec::write_varint(self.ip4s.len() as u64, out);
        for a in &self.ip4s {
            out.extend_from_slice(&a.octets());
        }
        feed::codec::write_varint(self.ip6s.len() as u64, out);
        for a in &self.ip6s {
            out.extend_from_slice(&a.octets());
        }
        for ttl in [self.answer_ttl, self.ns_ttl, self.soa_minimum]
            .into_iter()
            .flatten()
        {
            out.extend_from_slice(&ttl.to_le_bytes());
        }
        if let Some(d) = self.delay_ms {
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        if let Some(h) = self.hops {
            out.push(h);
        }
        if let Some(s) = self.resp_size {
            out.extend_from_slice(&s.to_le_bytes());
        }
        feed::codec::write_varint(self.answer_data_hashes.len() as u64, out);
        for h in &self.answer_data_hashes {
            out.extend_from_slice(&h.to_le_bytes());
        }
        feed::codec::write_varint(self.ns_name_hashes.len() as u64, out);
        for h in &self.ns_name_hashes {
            out.extend_from_slice(&h.to_le_bytes());
        }
        for s in [&self.etld, &self.esld, &self.tld].into_iter().flatten() {
            write_str(s, out);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, FeedError> {
        let time = r.f64("time")?;
        let flags = r.u16("flags")?;
        let resolver = read_addr(r)?;
        let contributor = r.u16("contributor")?;
        let nameserver = read_addr(r)?;
        let qname_len = r.u8("qname length")? as usize;
        let qname_wire = r.bytes(qname_len, "qname wire")?;
        let (qname, consumed) =
            Name::parse(qname_wire, 0).map_err(|_| FeedError::Invalid("qname wire form"))?;
        if consumed != qname_len {
            return Err(FeedError::Invalid("qname length mismatch"));
        }
        let qtype = RecordType::from_code(r.u16("qtype")?);
        let qdots = r.u8("qdots")?;
        let outcome = outcome_from_code(r.u8("outcome")?)?;
        let answer_count = r.u8("answer count")?;
        let authority_ns_count = r.u8("authority ns count")?;
        let n4 = r.count(4, "ip4 count")?;
        let mut ip4s = Vec::with_capacity(n4);
        for _ in 0..n4 {
            let b = r.bytes(4, "ip4 octets")?;
            ip4s.push(Ipv4Addr::new(b[0], b[1], b[2], b[3]));
        }
        let n6 = r.count(16, "ip6 count")?;
        let mut ip6s = Vec::with_capacity(n6);
        for _ in 0..n6 {
            let b = r.bytes(16, "ip6 octets")?;
            let mut o = [0u8; 16];
            o.copy_from_slice(b);
            ip6s.push(Ipv6Addr::from(o));
        }
        let has = |bit: u16| flags & bit != 0;
        let answer_ttl = has(F_ANSWER_TTL).then(|| r.u32("answer ttl")).transpose()?;
        let ns_ttl = has(F_NS_TTL).then(|| r.u32("ns ttl")).transpose()?;
        let soa_minimum = has(F_SOA_MIN).then(|| r.u32("soa minimum")).transpose()?;
        let delay_ms = has(F_DELAY).then(|| r.f64("delay")).transpose()?;
        let hops = has(F_HOPS).then(|| r.u8("hops")).transpose()?;
        let resp_size = has(F_RESP_SIZE).then(|| r.u32("resp size")).transpose()?;
        let nah = r.count(8, "answer hash count")?;
        let mut answer_data_hashes = Vec::with_capacity(nah);
        for _ in 0..nah {
            answer_data_hashes.push(r.u64("answer hash")?);
        }
        let nnh = r.count(8, "ns hash count")?;
        let mut ns_name_hashes = Vec::with_capacity(nnh);
        for _ in 0..nnh {
            ns_name_hashes.push(r.u64("ns hash")?);
        }
        let etld = has(F_ETLD).then(|| read_str(r)).transpose()?;
        let esld = has(F_ESLD).then(|| read_str(r)).transpose()?;
        let tld = has(F_TLD).then(|| read_str(r)).transpose()?;

        Ok(TxSummary {
            time,
            resolver,
            contributor,
            nameserver,
            qname,
            qtype,
            qdots,
            outcome,
            aa: has(F_AA),
            ok_ans: has(F_OK_ANS),
            ok_ns: has(F_OK_NS),
            ok_add: has(F_OK_ADD),
            answer_count,
            authority_ns_count,
            ip4s,
            ip6s,
            answer_ttl,
            ns_ttl,
            soa_minimum,
            do_flag: has(F_DO),
            dnssec_ok: has(F_DNSSEC_OK),
            delay_ms,
            hops,
            resp_size,
            answer_data_hashes,
            ns_name_hashes,
            etld,
            esld,
            tld,
        })
    }

    fn order_time(&self) -> f64 {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psl::Psl;
    use simnet::{SimConfig, Simulation};

    fn roundtrip(s: &TxSummary) -> TxSummary {
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut r = ByteReader::new(&buf);
        let back = TxSummary::decode(&mut r).expect("decodes");
        assert!(r.is_empty(), "decode must consume every encoded byte");
        back
    }

    #[test]
    fn simulated_summaries_roundtrip_exactly() {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut checked = 0u32;
        sim.run(2.0, &mut |tx| {
            let s = TxSummary::from_transaction(tx, &psl);
            let back = roundtrip(&s);
            // TxSummary has no PartialEq; Debug covers every field.
            assert_eq!(format!("{s:?}"), format!("{back:?}"));
            checked += 1;
        });
        assert!(checked > 500, "exercised {checked} summaries");
    }

    #[test]
    fn truncation_yields_clean_errors() {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut buf = Vec::new();
        sim.run(0.1, &mut |tx| {
            if buf.is_empty() {
                TxSummary::from_transaction(tx, &psl).encode(&mut buf);
            }
        });
        assert!(!buf.is_empty());
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            // Every prefix must fail (or decode without trailing bytes,
            // which full-frame decoding would then reject) — never panic.
            let _ = TxSummary::decode(&mut r);
        }
    }

    #[test]
    fn bad_enum_codes_rejected() {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut buf = Vec::new();
        sim.run(0.1, &mut |tx| {
            if buf.is_empty() {
                TxSummary::from_transaction(tx, &psl).encode(&mut buf);
            }
        });
        // Corrupt the address family tag (offset 10: after time + flags).
        let mut bad = buf.clone();
        bad[10] = 9;
        let mut r = ByteReader::new(&bad);
        assert!(matches!(
            TxSummary::decode(&mut r),
            Err(FeedError::Invalid("address family tag"))
        ));
    }
}
