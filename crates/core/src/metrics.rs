//! Pipeline observability: telemetry handles for every Observatory stage
//! plus the periodic `meta` self-report (paper §2.4 stores the platform's
//! own collection statistics next to the data; this module generalizes
//! that to a full metric snapshot on the same TSV path).
//!
//! All handles come from a [`telemetry::Registry`] so tests can use a
//! fresh registry per run; production code defaults to the global one.
//! Registration happens once per pipeline run (cold path); the hot path
//! touches only sharded atomic counters, gauges, and histograms.

use crate::keys::Dataset;
use crate::topk::TopKTracker;
use telemetry::{Counter, Gauge, Histogram, Registry, Snapshot};

/// Handles owned by the sequencer stage (one per pipeline run).
#[derive(Debug, Clone)]
pub struct SequencerMetrics {
    /// `pipeline_ingested_total`: summaries routed to shards.
    pub ingested: Counter,
    /// `pipeline_batches_total`: ordered batches processed.
    pub batches: Counter,
    /// `pipeline_windows_total`: watermark broadcasts (window closes).
    pub windows: Counter,
    /// `pipeline_watermark_lag_seconds`: stream time accumulated past the
    /// closing window's start when its watermark fired.
    pub watermark_lag_seconds: Gauge,
    /// `pipeline_queue_depth{shard=..}`: in-flight messages per shard
    /// ring. The sequencer adds on send; the shard subtracts on
    /// receive (so the gauge reflects unconsumed work, not ring slots).
    pub queue_depth: Vec<Gauge>,
    /// `pipeline_batch_size`: the adaptive feeder's current batch size in
    /// transactions — grows under backlog, shrinks when the stage rings
    /// run idle.
    pub batch_size: Gauge,
    /// `pipeline_window_seconds{stage="sequencer"}`: wall residency of
    /// each window from open to frontier close at the sequencer — the
    /// stage-latency leg of a sealed window's lineage.
    pub window_seconds: Histogram,
}

impl SequencerMetrics {
    /// Register (or re-attach to) the sequencer-side handles.
    pub fn register(registry: &Registry, shards: usize) -> SequencerMetrics {
        SequencerMetrics {
            ingested: registry.counter("pipeline_ingested_total"),
            batches: registry.counter("pipeline_batches_total"),
            windows: registry.counter("pipeline_windows_total"),
            watermark_lag_seconds: registry.gauge("pipeline_watermark_lag_seconds"),
            queue_depth: (0..shards)
                .map(|sh| {
                    registry.gauge_with("pipeline_queue_depth", &[("shard", &sh.to_string())])
                })
                .collect(),
            batch_size: registry.gauge("pipeline_batch_size"),
            window_seconds: registry.histogram_with(
                "pipeline_window_seconds",
                &[("stage", "sequencer")],
                Histogram::seconds_layout(),
            ),
        }
    }
}

/// Handles for one `(dataset, shard)` tracker, flushed at watermarks so
/// the observe path stays allocation- and atomic-free.
#[derive(Debug, Clone)]
pub struct TrackerMetrics {
    /// `pipeline_kept_total{dataset,shard}`.
    pub kept: Counter,
    /// `pipeline_dropped_total{dataset,shard}`.
    pub dropped: Counter,
    /// `pipeline_filtered_total{dataset,shard}`.
    pub filtered: Counter,
    /// `topk_evictions_total{dataset,shard}`: Space-Saving displacements.
    pub evictions: Counter,
    /// `topk_monitored{dataset,shard}`: objects currently in the cache.
    pub monitored: Gauge,
    /// `topk_min_count{dataset,shard}`: smallest monitored count — the
    /// per-partition Space-Saving error bound actually in force.
    pub min_count: Gauge,
    /// `topk_error_bound{dataset,shard}`: worst-case over-count
    /// (observed / capacity).
    pub error_bound: Gauge,
    /// Eviction total at the previous flush (for delta computation).
    prev_evictions: u64,
}

impl TrackerMetrics {
    fn register(registry: &Registry, dataset: Dataset, shard: usize) -> TrackerMetrics {
        let sh = shard.to_string();
        let labels: &[(&str, &str)] = &[("dataset", dataset.name()), ("shard", &sh)];
        TrackerMetrics {
            kept: registry.counter_with("pipeline_kept_total", labels),
            dropped: registry.counter_with("pipeline_dropped_total", labels),
            filtered: registry.counter_with("pipeline_filtered_total", labels),
            evictions: registry.counter_with("topk_evictions_total", labels),
            monitored: registry.gauge_with("topk_monitored", labels),
            min_count: registry.gauge_with("topk_min_count", labels),
            error_bound: registry.gauge_with("topk_error_bound", labels),
            prev_evictions: 0,
        }
    }

    /// Flush one watermark's deltas for this tracker. `stat_delta` is the
    /// window's `(kept, dropped, filtered)` — already computed by the
    /// shard loop for the window dump, so telemetry and TSV totals agree
    /// by construction.
    pub fn flush(&mut self, tracker: &TopKTracker, stat_delta: (u64, u64, u64)) {
        let (k, d, f) = stat_delta;
        self.kept.inc(k);
        self.dropped.inc(d);
        self.filtered.inc(f);
        let ev = tracker.evictions();
        self.evictions.inc(ev - self.prev_evictions);
        self.prev_evictions = ev;
        self.monitored.set(tracker.len() as f64);
        self.min_count.set(tracker.min_count() as f64);
        self.error_bound.set(tracker.error_bound() as f64);
    }
}

/// Handles owned by one tracker shard thread.
#[derive(Debug)]
pub struct ShardMetrics {
    /// This shard's slice of `pipeline_queue_depth{shard=..}`.
    pub queue_depth: Gauge,
    /// `pipeline_batch_seconds`: per-batch tracking latency, shared by
    /// all shards.
    pub batch_seconds: Histogram,
    /// Per-dataset tracker handles, in config order.
    pub trackers: Vec<TrackerMetrics>,
}

impl ShardMetrics {
    /// Register this shard's handles for the configured datasets.
    pub fn register(registry: &Registry, shard: usize, datasets: &[Dataset]) -> ShardMetrics {
        ShardMetrics {
            queue_depth: registry
                .gauge_with("pipeline_queue_depth", &[("shard", &shard.to_string())]),
            batch_seconds: registry
                .histogram("pipeline_batch_seconds", Histogram::seconds_layout()),
            trackers: datasets
                .iter()
                .map(|&ds| TrackerMetrics::register(registry, ds, shard))
                .collect(),
        }
    }
}

/// The periodic `meta` self-report: every `interval_us` of observed time
/// it snapshots the registry and renders the *delta* since the previous
/// report as a TSV window on the same path as the data files
/// ([`crate::tsv::write_meta_window`]).
///
/// Sans-io: the caller drives `tick` with a clock reading and writes the
/// returned bytes wherever windows go (a file per report in `dnsobs`).
#[derive(Debug)]
pub struct MetaReporter {
    registry: Registry,
    interval_us: u64,
    last: Option<(u64, Snapshot)>,
    reports: u64,
}

impl MetaReporter {
    /// A reporter emitting one meta window per `interval_us`.
    pub fn new(registry: Registry, interval_us: u64) -> MetaReporter {
        MetaReporter {
            registry,
            interval_us: interval_us.max(1),
            last: None,
            reports: 0,
        }
    }

    /// Number of reports emitted so far.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Advance to `now_us`. Returns the rendered meta TSV window when a
    /// full interval has elapsed since the last report (the first call
    /// only arms the baseline snapshot).
    pub fn tick(&mut self, now_us: u64) -> Option<Vec<u8>> {
        match &self.last {
            None => {
                self.last = Some((now_us, self.registry.snapshot(now_us)));
                None
            }
            Some((at, baseline)) if now_us.saturating_sub(*at) >= self.interval_us => {
                let snap = self.registry.snapshot(now_us);
                let delta = baseline.delta(&snap);
                let start = *at as f64 / 1e6;
                let length = (now_us - at) as f64 / 1e6;
                let mut bytes = Vec::new();
                crate::tsv::write_meta_window(&mut bytes, start, length, &delta.meta_rows())
                    .expect("writing to a Vec cannot fail");
                self.last = Some((now_us, snap));
                self.reports += 1;
                Some(bytes)
            }
            Some(_) => None,
        }
    }

    /// Force a final report covering the time since the last one (used on
    /// shutdown so the tail interval is not lost). Returns `None` if no
    /// baseline was ever armed or no time has passed.
    pub fn finish(&mut self, now_us: u64) -> Option<Vec<u8>> {
        let (at, baseline) = self.last.take()?;
        if now_us <= at {
            return None;
        }
        let snap = self.registry.snapshot(now_us);
        let delta = baseline.delta(&snap);
        let mut bytes = Vec::new();
        crate::tsv::write_meta_window(
            &mut bytes,
            at as f64 / 1e6,
            (now_us - at) as f64 / 1e6,
            &delta.meta_rows(),
        )
        .expect("writing to a Vec cannot fail");
        self.reports += 1;
        Some(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequencer_metrics_register_per_shard_gauges() {
        let r = Registry::new();
        let m = SequencerMetrics::register(&r, 3);
        assert_eq!(m.queue_depth.len(), 3);
        m.queue_depth[2].add(5.0);
        let snap = r.snapshot(0);
        assert_eq!(snap.gauge("pipeline_queue_depth{shard=\"2\"}"), 5.0);
    }

    #[test]
    fn tracker_metrics_flush_is_delta_based() {
        use crate::features::FeatureConfig;
        let r = Registry::new();
        let mut shard = ShardMetrics::register(&r, 0, &[Dataset::Qtype]);
        let tracker = TopKTracker::new(Dataset::Qtype, 8, FeatureConfig::default(), false);
        shard.trackers[0].flush(&tracker, (10, 2, 1));
        shard.trackers[0].flush(&tracker, (5, 0, 0));
        let snap = r.snapshot(0);
        let labels = "{dataset=\"qtype\",shard=\"0\"}";
        assert_eq!(snap.counter(&format!("pipeline_kept_total{labels}")), 15);
        assert_eq!(snap.counter(&format!("pipeline_dropped_total{labels}")), 2);
        assert_eq!(snap.counter(&format!("topk_evictions_total{labels}")), 0);
    }

    #[test]
    fn meta_reporter_emits_interval_deltas() {
        let r = Registry::new();
        let c = r.counter("pipeline_ingested_total");
        let mut rep = MetaReporter::new(r.clone(), 1_000_000);
        assert!(rep.tick(0).is_none(), "first tick arms the baseline");
        c.inc(7);
        assert!(rep.tick(500_000).is_none(), "interval not elapsed");
        let bytes = rep.tick(1_000_000).expect("interval elapsed");
        let (start, length, rows) = crate::tsv::read_meta_window(&bytes[..]).unwrap();
        assert_eq!(start, 0.0);
        assert_eq!(length, 1.0);
        assert_eq!(
            rows.iter()
                .find(|(k, _)| k == "pipeline_ingested_total")
                .map(|(_, v)| *v),
            Some(7.0)
        );
        // Next interval reports only what happened inside it.
        c.inc(3);
        let bytes = rep.tick(2_000_000).expect("second interval");
        let (_, _, rows) = crate::tsv::read_meta_window(&bytes[..]).unwrap();
        assert_eq!(
            rows.iter()
                .find(|(k, _)| k == "pipeline_ingested_total")
                .map(|(_, v)| *v),
            Some(3.0)
        );
        assert_eq!(rep.reports(), 2);
    }

    #[test]
    fn meta_reporter_finish_covers_the_tail() {
        let r = Registry::new();
        let c = r.counter("x_total");
        let mut rep = MetaReporter::new(r.clone(), 60_000_000);
        rep.tick(0);
        c.inc(4);
        let bytes = rep.finish(2_500_000).expect("tail report");
        let (start, length, rows) = crate::tsv::read_meta_window(&bytes[..]).unwrap();
        assert_eq!(start, 0.0);
        assert_eq!(length, 2.5);
        assert_eq!(rows, vec![("x_total".to_string(), 4.0)]);
        assert!(rep.finish(3_000_000).is_none(), "baseline consumed");
    }
}
