//! TSV serialization of window dumps (paper §2.4: "data is stored on disk
//! in the TSV file format", column header first, collection statistics in
//! the last row).

use crate::features::FeatureRow;
use crate::keys::Dataset;
use crate::timeseries::{TimeSeriesStore, WindowDump};
use std::io::{self, BufRead, Write};

/// Column names, in file order.
pub const COLUMNS: &[&str] = &[
    "key",
    "hits",
    "unans",
    "ok",
    "nxd",
    "rfs",
    "fail",
    "ok_ans",
    "ok_ns",
    "ok_add",
    "ok_nil",
    "ok6",
    "ok6nil",
    "ok_sec",
    "srvips",
    "srcips",
    "sources",
    "qnamesa",
    "qnames",
    "tlds",
    "eslds",
    "qtypes",
    "ip4s",
    "ip6s",
    "qdots",
    "qdots_max",
    "lvl",
    "nslvl",
    "ttl_top",
    "ttl_a_top",
    "nsttl_top",
    "negttl_top",
    "a_data_top",
    "ns_names_top",
    "delay_q25",
    "delay_q50",
    "delay_q75",
    "hops_q25",
    "hops_q50",
    "hops_q75",
    "size_q25",
    "size_q50",
    "size_q75",
];

fn fmt_tops(tops: &[(u64, f64)]) -> String {
    if tops.is_empty() {
        return "-".to_string();
    }
    tops.iter()
        .map(|(v, s)| format!("{v}:{s:.4}"))
        .collect::<Vec<_>>()
        .join("|")
}

fn parse_tops(s: &str) -> Option<Vec<(u64, f64)>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split('|')
        .map(|pair| {
            let (v, share) = pair.split_once(':')?;
            Some((v.parse().ok()?, share.parse().ok()?))
        })
        .collect()
}

fn fmt_f(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.3}")
    }
}

fn parse_f(s: &str) -> Option<f64> {
    if s == "-" {
        Some(f64::NAN)
    } else {
        s.parse().ok()
    }
}

/// Write one window dump as TSV: header, rows, and a final `#totals` row
/// with the collection statistics.
pub fn write_window<W: Write>(w: &mut W, dump: &WindowDump) -> io::Result<()> {
    writeln!(w, "{}", COLUMNS.join("\t"))?;
    for (key, row) in &dump.rows {
        write_row(w, key, row)?;
    }
    writeln!(
        w,
        "#totals\tdataset={}\tstart={}\tlength={}\tkept={}\tdropped={}\tfiltered={}",
        dump.dataset, dump.start, dump.length, dump.kept, dump.dropped, dump.filtered
    )
}

fn write_row<W: Write>(w: &mut W, key: &str, r: &FeatureRow) -> io::Result<()> {
    writeln!(
        w,
        "{key}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        r.hits,
        r.unans,
        r.ok,
        r.nxd,
        r.rfs,
        r.fail,
        r.ok_ans,
        r.ok_ns,
        r.ok_add,
        r.ok_nil,
        r.ok6,
        r.ok6nil,
        r.ok_sec,
        fmt_f(r.srvips),
        fmt_f(r.srcips),
        fmt_f(r.sources),
        fmt_f(r.qnamesa),
        fmt_f(r.qnames),
        fmt_f(r.tlds),
        fmt_f(r.eslds),
        fmt_f(r.qtypes),
        fmt_f(r.ip4s),
        fmt_f(r.ip6s),
        fmt_f(r.qdots),
        r.qdots_max,
        fmt_f(r.lvl),
        fmt_f(r.nslvl),
        fmt_tops(&r.ttl_top),
        fmt_tops(&r.ttl_a_top),
        fmt_tops(&r.nsttl_top),
        fmt_tops(&r.negttl_top),
        fmt_tops(&r.a_data_top),
        fmt_tops(&r.ns_names_top),
        fmt_f(r.resp_delays[0]),
        fmt_f(r.resp_delays[1]),
        fmt_f(r.resp_delays[2]),
        fmt_f(r.network_hops[0]),
        fmt_f(r.network_hops[1]),
        fmt_f(r.network_hops[2]),
        fmt_f(r.resp_size[0]),
        fmt_f(r.resp_size[1]),
        fmt_f(r.resp_size[2]),
    )
}

/// Render every window of the given datasets exactly as `dnsobs` writes
/// them to disk: one `(file-name, bytes)` pair per window, in dataset
/// then window order. This is the canonical byte-level fingerprint of a
/// pipeline run — the loopback-equivalence and chaos differential tests
/// compare two runs by comparing these pairs.
pub fn render_store(store: &TimeSeriesStore, datasets: &[Dataset]) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for &ds in datasets {
        for w in store.dataset(ds) {
            let mut bytes = Vec::new();
            write_window(&mut bytes, w).expect("writing to a Vec cannot fail");
            out.push((format!("{}-{:05}", ds.name(), w.start as u64), bytes));
        }
    }
    out
}

/// Parse a TSV produced by [`write_window`] back into a [`WindowDump`].
pub fn read_window<R: BufRead>(r: R) -> io::Result<WindowDump> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "empty file"))??;
    if header != COLUMNS.join("\t") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected header",
        ));
    }
    let mut dump = WindowDump {
        dataset: String::new(),
        start: 0.0,
        length: 0.0,
        rows: Vec::new(),
        kept: 0,
        dropped: 0,
        filtered: 0,
    };
    for line in lines {
        let line = line?;
        if let Some(rest) = line.strip_prefix("#totals\t") {
            for field in rest.split('\t') {
                if let Some((k, v)) = field.split_once('=') {
                    match k {
                        "dataset" => dump.dataset = v.to_string(),
                        "start" => dump.start = v.parse().unwrap_or(0.0),
                        "length" => dump.length = v.parse().unwrap_or(0.0),
                        "kept" => dump.kept = v.parse().unwrap_or(0),
                        "dropped" => dump.dropped = v.parse().unwrap_or(0),
                        "filtered" => dump.filtered = v.parse().unwrap_or(0),
                        _ => {}
                    }
                }
            }
            continue;
        }
        let (key, row) = parse_row(&line)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad row"))?;
        dump.rows.push((key, row));
    }
    Ok(dump)
}

/// Column names of the `meta` self-report files, in file order.
pub const META_COLUMNS: &[&str] = &["metric", "value"];

/// Write one telemetry self-report window in the same shape as the data
/// files: column header first, one row per metric, `#totals` last. The
/// dataset name is always `meta`, so the files sort next to the real
/// datasets in an output directory.
pub fn write_meta_window<W: Write>(
    w: &mut W,
    start: f64,
    length: f64,
    rows: &[(String, f64)],
) -> io::Result<()> {
    writeln!(w, "{}", META_COLUMNS.join("\t"))?;
    for (metric, value) in rows {
        // Counters dominate; print them without a fractional tail so the
        // files diff cleanly, falling back to full precision for gauges.
        if value.fract() == 0.0 && value.abs() < 9.0e15 {
            writeln!(w, "{metric}\t{}", *value as i64)?;
        } else {
            writeln!(w, "{metric}\t{value}")?;
        }
    }
    writeln!(
        w,
        "#totals\tdataset=meta\tstart={start}\tlength={length}\tmetrics={}",
        rows.len()
    )
}

/// A parsed meta self-report: `(start, length, rows)`.
pub type MetaWindow = (f64, f64, Vec<(String, f64)>);

/// Parse a meta self-report produced by [`write_meta_window`].
pub fn read_meta_window<R: BufRead>(r: R) -> io::Result<MetaWindow> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "empty file"))??;
    if header != META_COLUMNS.join("\t") {
        return Err(bad("unexpected meta header"));
    }
    let (mut start, mut length) = (0.0f64, 0.0f64);
    let mut rows = Vec::new();
    for line in lines {
        let line = line?;
        if let Some(rest) = line.strip_prefix("#totals\t") {
            for field in rest.split('\t') {
                if let Some((k, v)) = field.split_once('=') {
                    match k {
                        "start" => start = v.parse().map_err(|_| bad("bad start"))?,
                        "length" => length = v.parse().map_err(|_| bad("bad length"))?,
                        _ => {}
                    }
                }
            }
            continue;
        }
        let (metric, value) = line.split_once('\t').ok_or_else(|| bad("bad meta row"))?;
        rows.push((
            metric.to_string(),
            value.parse().map_err(|_| bad("bad meta value"))?,
        ));
    }
    Ok((start, length, rows))
}

fn parse_row(line: &str) -> Option<(String, FeatureRow)> {
    let f: Vec<&str> = line.split('\t').collect();
    if f.len() != COLUMNS.len() {
        return None;
    }
    let mut i = 0usize;
    let mut next = || {
        let v = f[i];
        i += 1;
        v
    };
    let key = next().to_string();
    let row = FeatureRow {
        hits: next().parse().ok()?,
        unans: next().parse().ok()?,
        ok: next().parse().ok()?,
        nxd: next().parse().ok()?,
        rfs: next().parse().ok()?,
        fail: next().parse().ok()?,
        ok_ans: next().parse().ok()?,
        ok_ns: next().parse().ok()?,
        ok_add: next().parse().ok()?,
        ok_nil: next().parse().ok()?,
        ok6: next().parse().ok()?,
        ok6nil: next().parse().ok()?,
        ok_sec: next().parse().ok()?,
        srvips: parse_f(next())?,
        srcips: parse_f(next())?,
        sources: parse_f(next())?,
        qnamesa: parse_f(next())?,
        qnames: parse_f(next())?,
        tlds: parse_f(next())?,
        eslds: parse_f(next())?,
        qtypes: parse_f(next())?,
        ip4s: parse_f(next())?,
        ip6s: parse_f(next())?,
        qdots: parse_f(next())?,
        qdots_max: next().parse().ok()?,
        lvl: parse_f(next())?,
        nslvl: parse_f(next())?,
        ttl_top: parse_tops(next())?,
        ttl_a_top: parse_tops(next())?,
        nsttl_top: parse_tops(next())?,
        negttl_top: parse_tops(next())?,
        a_data_top: parse_tops(next())?,
        ns_names_top: parse_tops(next())?,
        resp_delays: [parse_f(next())?, parse_f(next())?, parse_f(next())?],
        network_hops: [parse_f(next())?, parse_f(next())?, parse_f(next())?],
        resp_size: [parse_f(next())?, parse_f(next())?, parse_f(next())?],
    };
    Some((key, row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, FeatureSet};
    use crate::summarize::TxSummary;
    use psl::Psl;
    use simnet::{SimConfig, Simulation};

    fn sample_dump() -> WindowDump {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut fs = FeatureSet::new(FeatureConfig::default());
        sim.run(1.0, &mut |tx| {
            fs.fold(&TxSummary::from_transaction(tx, &psl))
        });
        WindowDump {
            dataset: "srvip".into(),
            start: 0.0,
            length: 60.0,
            rows: vec![("198.41.0.4".into(), fs.row())],
            kept: fs.hits(),
            dropped: 3,
            filtered: 1,
        }
    }

    #[test]
    fn roundtrip() {
        let dump = sample_dump();
        let mut buf = Vec::new();
        write_window(&mut buf, &dump).unwrap();
        let parsed = read_window(&buf[..]).unwrap();
        assert_eq!(parsed.dataset, dump.dataset);
        assert_eq!(parsed.kept, dump.kept);
        assert_eq!(parsed.dropped, dump.dropped);
        assert_eq!(parsed.rows.len(), 1);
        let (key, row) = &parsed.rows[0];
        let (okey, orow) = &dump.rows[0];
        assert_eq!(key, okey);
        assert_eq!(row.hits, orow.hits);
        assert_eq!(row.ttl_top.len(), orow.ttl_top.len());
        assert!((row.qdots - orow.qdots).abs() < 0.01);
    }

    #[test]
    fn header_first_totals_last() {
        let dump = sample_dump();
        let mut buf = Vec::new();
        write_window(&mut buf, &dump).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("key\thits\t"));
        assert!(lines.last().unwrap().starts_with("#totals\t"));
    }

    #[test]
    fn nan_roundtrips_as_dash() {
        let mut dump = sample_dump();
        dump.rows[0].1.resp_delays = [f64::NAN; 3];
        let mut buf = Vec::new();
        write_window(&mut buf, &dump).unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("\t-\t"));
        let parsed = read_window(&buf[..]).unwrap();
        assert!(parsed.rows[0].1.resp_delays[1].is_nan());
    }

    #[test]
    fn rejects_bad_header() {
        let bad = b"wrong\theader\n";
        assert!(read_window(&bad[..]).is_err());
    }

    #[test]
    fn rejects_truncated_row() {
        let dump = sample_dump();
        let mut buf = Vec::new();
        write_window(&mut buf, &dump).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = lines[1].split('\t').take(5).collect::<Vec<_>>().join("\t");
        let broken = lines.join("\n");
        assert!(read_window(broken.as_bytes()).is_err());
    }

    #[test]
    fn meta_window_roundtrips() {
        let rows = vec![
            ("pipeline_ingested_total".to_string(), 12_345.0),
            ("pipeline_watermark_lag_seconds".to_string(), 0.125),
        ];
        let mut buf = Vec::new();
        write_meta_window(&mut buf, 60.0, 60.0, &rows).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("metric\tvalue\n"));
        assert!(text.contains("pipeline_ingested_total\t12345\n"));
        assert!(text
            .lines()
            .last()
            .unwrap()
            .starts_with("#totals\tdataset=meta"));
        let (start, length, parsed) = read_meta_window(&buf[..]).unwrap();
        assert_eq!(start, 60.0);
        assert_eq!(length, 60.0);
        assert_eq!(parsed, rows);
    }

    #[test]
    fn meta_window_rejects_data_header() {
        let dump = sample_dump();
        let mut buf = Vec::new();
        write_window(&mut buf, &dump).unwrap();
        assert!(read_meta_window(&buf[..]).is_err());
    }

    #[test]
    fn empty_tops_roundtrip() {
        assert_eq!(fmt_tops(&[]), "-");
        assert_eq!(parse_tops("-"), Some(vec![]));
        let tops = vec![(300u64, 0.75), (60u64, 0.25)];
        let s = fmt_tops(&tops);
        let parsed = parse_tops(&s).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, 300);
    }
}
