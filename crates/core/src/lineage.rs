//! `dnsobs trace` — render a flight-recorder dump as per-window lineage.
//!
//! Input is the parsed dump ([`telemetry::trace::parse_dump`]), so the
//! renderer is a pure function over rows and testable without a file.
//! Events across all subsystems are regrouped by the window id they
//! carry — the window's start time in µs, the same keying the
//! federation wire uses — which turns N per-stage rings into one
//! chronological story per window: opened where, ingested how much,
//! closed by which shard, sealed (or dropped, or conflicted) when.
//!
//! A window with ingests but no terminal event is flagged `open`: either
//! the dump was taken mid-flight (normal) or a window leaked (the bug
//! the flight recorder exists to catch).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use telemetry::trace::{TraceKind, TraceRow, NO_SOURCE, NO_WINDOW};

/// How one window's trace ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Sealed,
    Dropped,
    Conflict,
    Open,
}

impl Fate {
    fn label(self) -> &'static str {
        match self {
            Fate::Sealed => "sealed",
            Fate::Dropped => "dropped",
            Fate::Conflict => "conflict",
            Fate::Open => "open",
        }
    }
}

fn fate(rows: &[&TraceRow]) -> Fate {
    // A drop event on a window that ALSO sealed marks late records, not
    // the window's fate — terminal precedence: conflict > seal > drop.
    if rows.iter().any(|r| r.kind == TraceKind::Conflict) {
        Fate::Conflict
    } else if rows.iter().any(|r| r.kind == TraceKind::Seal) {
        Fate::Sealed
    } else if rows.iter().any(|r| r.kind == TraceKind::Drop) {
        Fate::Dropped
    } else {
        Fate::Open
    }
}

/// Render a trace dump as per-window lineage. `only_window` (µs)
/// restricts the detail listing to one window; the summary always
/// covers everything. Returns a multi-line string ending in `\n`.
pub fn render_trace(rows: &[TraceRow], only_window: Option<u64>) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        out.push_str("no trace events\n");
        return out;
    }

    let mut windows: BTreeMap<u64, Vec<&TraceRow>> = BTreeMap::new();
    let mut unkeyed = 0usize;
    for row in rows {
        if row.window_us == NO_WINDOW {
            unkeyed += 1;
        } else {
            windows.entry(row.window_us).or_default().push(row);
        }
    }
    let subsystems: std::collections::BTreeSet<&str> =
        rows.iter().map(|r| r.subsystem.as_str()).collect();

    let fates: Vec<Fate> = windows.values().map(|rows| fate(rows)).collect();
    let count = |f: Fate| fates.iter().filter(|&&g| g == f).count();
    let _ = writeln!(
        out,
        "{} event(s) in {} subsystem(s); {} window(s): {} sealed, {} conflict, {} dropped, {} open; {} unkeyed event(s)",
        rows.len(),
        subsystems.len(),
        windows.len(),
        count(Fate::Sealed),
        count(Fate::Conflict),
        count(Fate::Dropped),
        count(Fate::Open),
        unkeyed
    );

    // The display rounds starts to milliseconds, so the filter accepts
    // ids within half a millisecond of the requested start — an operator
    // retyping a start from a previous render must get a match.
    let wanted = |w: u64| only_window.is_none_or(|want| w.abs_diff(want) <= 500);
    let mut shown = 0usize;
    for (window_us, mut wrows) in windows {
        if !wanted(window_us) {
            continue;
        }
        shown += 1;
        wrows.sort_by_key(|r| (r.at_us, r.subsystem.as_str(), r.seq));
        let first = wrows.first().map(|r| r.at_us).unwrap_or(0);
        let last = wrows.last().map(|r| r.at_us).unwrap_or(0);
        let _ = writeln!(
            out,
            "window {:.3}s  [{}]  {} event(s), {:.3}s first-to-last",
            window_us as f64 / 1e6,
            fate(&wrows).label(),
            wrows.len(),
            last.saturating_sub(first) as f64 / 1e6
        );
        for row in wrows {
            let source = if row.source == NO_SOURCE {
                String::new()
            } else {
                format!(" source={}", row.source)
            };
            let dataset = if row.dataset.is_empty() {
                String::new()
            } else {
                format!(" dataset={}", row.dataset)
            };
            let _ = writeln!(
                out,
                "  +{:>10.3}s  {:<18} {:<8}{}{} value={}",
                row.at_us.saturating_sub(first) as f64 / 1e6,
                format!("{}/{}", row.subsystem, row.stage),
                row.kind.as_str(),
                dataset,
                source,
                row.value
            );
        }
    }
    if let Some(want) = only_window {
        if shown == 0 {
            let _ = writeln!(
                out,
                "no window starting within 0.5 ms of {:.3}s",
                want as f64 / 1e6
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::trace::parse_dump;
    use telemetry::trace::{FlightRecorder, TraceEvent};

    fn row(
        subsystem: &str,
        seq: u64,
        at_us: u64,
        stage: &str,
        kind: TraceKind,
        window_us: u64,
    ) -> TraceRow {
        TraceRow {
            subsystem: subsystem.to_string(),
            seq,
            at_us,
            stage: stage.to_string(),
            kind,
            window_us,
            dataset: String::new(),
            source: NO_SOURCE,
            value: 0,
        }
    }

    #[test]
    fn empty_dump_says_so() {
        assert_eq!(render_trace(&[], None), "no trace events\n");
    }

    #[test]
    fn windows_group_and_sort_across_subsystems() {
        let rows = vec![
            row("pipeline/seal", 0, 900, "seal", TraceKind::Seal, 2_000_000),
            row(
                "pipeline/sequencer",
                0,
                100,
                "sequencer",
                TraceKind::Open,
                2_000_000,
            ),
            row(
                "pipeline/sequencer",
                1,
                500,
                "sequencer",
                TraceKind::Close,
                2_000_000,
            ),
            row(
                "pipeline/sequencer",
                2,
                500,
                "sequencer",
                TraceKind::Open,
                3_000_000,
            ),
        ];
        let text = render_trace(&rows, None);
        assert!(text.contains("4 event(s) in 2 subsystem(s); 2 window(s): 1 sealed"));
        assert!(text.contains("1 open"));
        assert!(text.contains("window 2.000s  [sealed]  3 event(s)"));
        assert!(text.contains("window 3.000s  [open]  1 event(s)"));
        // Events come out in at_us order within the window.
        let open_at = text.find("sequencer open").expect("open line");
        let seal_at = text.find("pipeline/seal/seal").expect("seal line");
        assert!(open_at < seal_at);
    }

    #[test]
    fn late_drop_does_not_demote_a_sealed_window() {
        let rows = vec![
            row("agg", 0, 10, "aggregator", TraceKind::Seal, 1_000_000),
            row("agg", 1, 20, "aggregator", TraceKind::Drop, 1_000_000),
        ];
        let text = render_trace(&rows, None);
        assert!(text.contains("[sealed]"));
        assert!(text.contains("1 sealed, 0 conflict, 0 dropped, 0 open"));
    }

    #[test]
    fn conflict_wins_over_seal() {
        let rows = vec![
            row("agg", 0, 10, "aggregator", TraceKind::Conflict, 1_000_000),
            row("agg", 1, 20, "aggregator", TraceKind::Seal, 1_000_000),
        ];
        assert!(render_trace(&rows, None).contains("[conflict]"));
    }

    #[test]
    fn window_filter_keeps_summary_but_trims_detail() {
        let rows = vec![
            row("a", 0, 10, "s", TraceKind::Seal, 1_000_000),
            row("a", 1, 20, "s", TraceKind::Seal, 2_000_000),
        ];
        let text = render_trace(&rows, Some(2_000_000));
        assert!(text.contains("2 window(s)"));
        assert!(!text.contains("window 1.000s"));
        assert!(text.contains("window 2.000s"));
    }

    #[test]
    fn window_filter_matches_at_display_precision() {
        // The window actually starts at 182 µs but renders as 0.000s;
        // retyping the rendered value must match, and a miss says so.
        let rows = vec![row("a", 0, 10, "s", TraceKind::Seal, 182)];
        let text = render_trace(&rows, Some(0));
        assert!(text.contains("window 0.000s  [sealed]"), "{text}");
        let miss = render_trace(&rows, Some(99_000_000));
        assert!(!miss.contains("[sealed]"));
        assert!(miss.contains("no window starting within 0.5 ms of 99.000s"));
    }

    #[test]
    fn renders_a_real_recorder_dump() {
        let fr = FlightRecorder::with_capacity(16);
        fr.ring("pipeline/sequencer")
            .record(TraceEvent::new(100, "sequencer", TraceKind::Open).window(60_000_000));
        fr.ring("pipeline/seal").record(
            TraceEvent::new(900, "seal", TraceKind::Seal)
                .window(60_000_000)
                .value(42),
        );
        let rows = parse_dump(&fr.dump());
        let text = render_trace(&rows, None);
        assert!(text.contains("window 60.000s  [sealed]"));
        assert!(text.contains("value=42"));
    }
}
