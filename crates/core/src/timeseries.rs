//! Time-series production (paper §2.4, step E): per-window dumps of every
//! dataset, held in memory and/or streamed to TSV files.

use crate::features::FeatureRow;
use crate::keys::Dataset;
use serde::{Deserialize, Serialize};

/// One dataset's rows for one time window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowDump {
    /// Dataset name (`srvip`, `esld`, …).
    pub dataset: String,
    /// Window start, stream seconds.
    pub start: f64,
    /// Window length, seconds.
    pub length: f64,
    /// `(key, features)` rows, ordered by hits descending.
    pub rows: Vec<(String, FeatureRow)>,
    /// Transactions aggregated into monitored objects in this window.
    pub kept: u64,
    /// Transactions dropped (object not monitored).
    pub dropped: u64,
    /// Transactions excluded by the dataset filter.
    pub filtered: u64,
}

impl WindowDump {
    /// Total hits across all rows.
    pub fn total_hits(&self) -> u64 {
        self.rows.iter().map(|(_, r)| r.hits).sum()
    }

    /// Look up a key's row.
    pub fn get(&self, key: &str) -> Option<&FeatureRow> {
        self.rows.iter().find(|(k, _)| k == key).map(|(_, r)| r)
    }
}

/// In-memory store of all window dumps produced by a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeriesStore {
    windows: Vec<WindowDump>,
}

impl TimeSeriesStore {
    /// Empty store.
    pub fn new() -> TimeSeriesStore {
        TimeSeriesStore::default()
    }

    /// Append one window dump.
    pub fn push(&mut self, dump: WindowDump) {
        self.windows.push(dump);
    }

    /// All windows, in arrival order.
    pub fn windows(&self) -> &[WindowDump] {
        &self.windows
    }

    /// Windows belonging to one dataset, in time order.
    pub fn dataset(&self, dataset: Dataset) -> Vec<&WindowDump> {
        let name = dataset.name();
        self.windows.iter().filter(|w| w.dataset == name).collect()
    }

    /// Merge all windows of a dataset into cumulative per-key totals:
    /// counters summed, quartiles/cardinalities averaged over the windows
    /// where the key appears, TTL tops merged by vote share.
    ///
    /// This is the "whole measurement period" view used by the rank
    /// analyses (Fig. 2, Table 1, Table 2).
    pub fn cumulative(&self, dataset: Dataset) -> Vec<(String, FeatureRow)> {
        use std::collections::HashMap;
        let mut acc: HashMap<String, (FeatureRow, u64)> = HashMap::new();
        for w in self.dataset(dataset) {
            for (key, row) in &w.rows {
                match acc.get_mut(key) {
                    None => {
                        acc.insert(key.clone(), (row.clone(), 1));
                    }
                    Some((total, n)) => {
                        merge_rows(total, row);
                        *n += 1;
                    }
                }
            }
        }
        let mut out: Vec<(String, FeatureRow)> = acc
            .into_iter()
            .map(|(key, (mut row, n))| {
                finish_merge(&mut row, n);
                (key, row)
            })
            .collect();
        out.sort_by(|a, b| b.1.hits.cmp(&a.1.hits).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// Accumulate `other` into `total`: counters add; means/cardinalities/
/// quartiles add (divided by the window count in `finish_merge`);
/// TTL tops merge weighted by hits.
pub(crate) fn merge_rows(total: &mut FeatureRow, other: &FeatureRow) {
    let w_total = total.hits as f64;
    let w_other = other.hits as f64;
    total.hits += other.hits;
    total.unans += other.unans;
    total.ok += other.ok;
    total.nxd += other.nxd;
    total.rfs += other.rfs;
    total.fail += other.fail;
    total.ok_ans += other.ok_ans;
    total.ok_ns += other.ok_ns;
    total.ok_add += other.ok_add;
    total.ok_nil += other.ok_nil;
    total.ok6 += other.ok6;
    total.ok6nil += other.ok6nil;
    total.ok_sec += other.ok_sec;
    // Cardinalities and averages: keep running sums; finish divides.
    total.srvips += other.srvips;
    total.srcips += other.srcips;
    total.sources += other.sources;
    total.qnamesa += other.qnamesa;
    total.qnames += other.qnames;
    total.tlds += other.tlds;
    total.eslds += other.eslds;
    total.qtypes += other.qtypes;
    total.ip4s += other.ip4s;
    total.ip6s += other.ip6s;
    // Hit-weighted means.
    let wsum = w_total + w_other;
    if wsum > 0.0 {
        total.qdots = (total.qdots * w_total + other.qdots * w_other) / wsum;
        total.lvl = (total.lvl * w_total + other.lvl * w_other) / wsum;
        total.nslvl = (total.nslvl * w_total + other.nslvl * w_other) / wsum;
    }
    total.qdots_max = total.qdots_max.max(other.qdots_max);
    merge_tops(&mut total.ttl_top, &other.ttl_top, w_total, w_other);
    merge_tops(&mut total.ttl_a_top, &other.ttl_a_top, w_total, w_other);
    merge_tops(&mut total.nsttl_top, &other.nsttl_top, w_total, w_other);
    merge_tops(&mut total.negttl_top, &other.negttl_top, w_total, w_other);
    merge_tops(&mut total.a_data_top, &other.a_data_top, w_total, w_other);
    merge_tops(
        &mut total.ns_names_top,
        &other.ns_names_top,
        w_total,
        w_other,
    );
    for i in 0..3 {
        total.resp_delays[i] = nan_add(total.resp_delays[i], other.resp_delays[i]);
        total.network_hops[i] = nan_add(total.network_hops[i], other.network_hops[i]);
        total.resp_size[i] = nan_add(total.resp_size[i], other.resp_size[i]);
    }
}

fn finish_merge(row: &mut FeatureRow, n: u64) {
    if n <= 1 {
        return;
    }
    let n = n as f64;
    // Cardinalities stay per-window averages (the paper aggregates
    // non-counters as means over present data points).
    for v in [
        &mut row.srvips,
        &mut row.srcips,
        &mut row.sources,
        &mut row.qnamesa,
        &mut row.qnames,
        &mut row.tlds,
        &mut row.eslds,
        &mut row.qtypes,
        &mut row.ip4s,
        &mut row.ip6s,
    ] {
        *v /= n;
    }
    for arr in [
        &mut row.resp_delays,
        &mut row.network_hops,
        &mut row.resp_size,
    ] {
        for v in arr.iter_mut() {
            *v /= n;
        }
    }
}

/// NaN-aware addition: missing (NaN) data points are skipped, matching
/// the paper's rule for non-counter features.
fn nan_add(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => f64::NAN,
        (true, false) => b,
        (false, true) => a,
        (false, false) => a + b,
    }
}

/// Merge two weighted top-value lists, keeping the top 3.
fn merge_tops(total: &mut Vec<(u64, f64)>, other: &[(u64, f64)], w_total: f64, w_other: f64) {
    let wsum = w_total + w_other;
    if wsum <= 0.0 {
        return;
    }
    let mut merged: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for &(v, s) in total.iter() {
        *merged.entry(v).or_default() += s * w_total / wsum;
    }
    for &(v, s) in other {
        *merged.entry(v).or_default() += s * w_other / wsum;
    }
    let mut list: Vec<(u64, f64)> = merged.into_iter().collect();
    list.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    list.truncate(3);
    *total = list;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, FeatureSet};
    use crate::summarize::TxSummary;
    use psl::Psl;
    use simnet::{SimConfig, Simulation};

    fn sample_row(secs: f64, seed: u64) -> FeatureRow {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig {
            seed,
            ..SimConfig::small()
        });
        let mut fs = FeatureSet::new(FeatureConfig::default());
        sim.run(secs, &mut |tx| {
            fs.fold(&TxSummary::from_transaction(tx, &psl))
        });
        fs.row()
    }

    fn dump(dataset: &str, start: f64, rows: Vec<(String, FeatureRow)>) -> WindowDump {
        WindowDump {
            dataset: dataset.into(),
            start,
            length: 60.0,
            kept: rows.iter().map(|r| r.1.hits).sum(),
            dropped: 0,
            filtered: 0,
            rows,
        }
    }

    #[test]
    fn store_filters_by_dataset() {
        let mut store = TimeSeriesStore::new();
        store.push(dump("srvip", 0.0, vec![]));
        store.push(dump("esld", 0.0, vec![]));
        store.push(dump("srvip", 60.0, vec![]));
        assert_eq!(store.dataset(Dataset::SrvIp).len(), 2);
        assert_eq!(store.dataset(Dataset::Esld).len(), 1);
        assert_eq!(store.dataset(Dataset::Qname).len(), 0);
        assert_eq!(store.windows().len(), 3);
    }

    #[test]
    fn cumulative_sums_counters() {
        let r1 = sample_row(1.0, 1);
        let r2 = sample_row(1.0, 2);
        let mut store = TimeSeriesStore::new();
        store.push(dump("srvip", 0.0, vec![("k".into(), r1.clone())]));
        store.push(dump("srvip", 60.0, vec![("k".into(), r2.clone())]));
        let cum = store.cumulative(Dataset::SrvIp);
        assert_eq!(cum.len(), 1);
        let row = &cum[0].1;
        assert_eq!(row.hits, r1.hits + r2.hits);
        assert_eq!(row.nxd, r1.nxd + r2.nxd);
        // Quartiles are averaged, so between the two inputs.
        let lo = r1.resp_delays[1].min(r2.resp_delays[1]);
        let hi = r1.resp_delays[1].max(r2.resp_delays[1]);
        assert!(row.resp_delays[1] >= lo && row.resp_delays[1] <= hi);
        // Cardinalities averaged.
        let lo = r1.srvips.min(r2.srvips);
        let hi = r1.srvips.max(r2.srvips);
        assert!(row.srvips >= lo - 1e-9 && row.srvips <= hi + 1e-9);
    }

    #[test]
    fn cumulative_sorts_by_hits() {
        let big = sample_row(1.5, 3);
        let small = sample_row(0.2, 4);
        let mut store = TimeSeriesStore::new();
        store.push(dump(
            "esld",
            0.0,
            vec![("small".into(), small), ("big".into(), big)],
        ));
        let cum = store.cumulative(Dataset::Esld);
        assert_eq!(cum[0].0, "big");
    }

    #[test]
    fn ttl_tops_merge_by_weight() {
        let mut a = sample_row(1.0, 5);
        let mut b = sample_row(1.0, 6);
        a.ttl_top = vec![(300, 1.0)];
        a.hits = 900;
        b.ttl_top = vec![(60, 1.0)];
        b.hits = 100;
        let mut total = a.clone();
        merge_rows(&mut total, &b);
        assert_eq!(total.ttl_top[0].0, 300, "majority TTL wins");
        assert!((total.ttl_top[0].1 - 0.9).abs() < 1e-9);
    }

    #[test]
    fn nan_quartiles_skipped() {
        let mut a = sample_row(0.5, 7);
        let b = {
            let mut r = a.clone();
            r.resp_delays = [f64::NAN; 3];
            r
        };
        let before = a.resp_delays[1];
        merge_rows(&mut a, &b);
        // NaN input leaves the sum equal to the original value.
        assert_eq!(a.resp_delays[1], before);
    }

    #[test]
    fn window_helpers() {
        let r = sample_row(0.5, 8);
        let hits = r.hits;
        let w = dump("qname", 0.0, vec![("x".into(), r)]);
        assert_eq!(w.total_hits(), hits);
        assert!(w.get("x").is_some());
        assert!(w.get("y").is_none());
    }
}
