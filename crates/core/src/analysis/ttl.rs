//! TTL dynamics (paper §4): traffic response to TTL changes (Fig. 7 and
//! 8) and detection + classification of infrastructure changes from TTL
//! movements (Table 4).

use crate::features::FeatureRow;
use crate::timeseries::WindowDump;
use std::collections::HashMap;

/// One point of a per-key time series (Fig. 7).
#[derive(Debug, Clone, Copy)]
pub struct SeriesPoint {
    /// Window start, seconds.
    pub start: f64,
    /// Queries in the window.
    pub hits: u64,
    /// Answered (NoError) queries in the window.
    pub ok: u64,
    /// Most common answer TTL in the window.
    pub top_ttl: Option<u64>,
}

/// Extract the Fig. 7 time series of one key across a dataset's windows.
pub fn key_series(windows: &[&WindowDump], key: &str) -> Vec<SeriesPoint> {
    windows
        .iter()
        .map(|w| {
            let row = w.get(key);
            SeriesPoint {
                start: w.start,
                hits: row.map(|r| r.hits).unwrap_or(0),
                ok: row.map(|r| r.ok).unwrap_or(0),
                top_ttl: row.and_then(|r| r.top_ttl()),
            }
        })
        .collect()
}

/// One point of the Fig. 8 scatter: TTL change vs traffic change between
/// two observation periods.
#[derive(Debug, Clone)]
pub struct TtlTrafficChange {
    /// The eSLD.
    pub key: String,
    /// Most common TTL in the earlier period.
    pub ttl_before: u64,
    /// Most common TTL in the later period.
    pub ttl_after: u64,
    /// Queries per window, earlier period.
    pub hits_before: f64,
    /// Queries per window, later period.
    pub hits_after: f64,
    /// Answered queries per window, earlier/later — the paper uses the
    /// response rate to spot NXDOMAIN-driven anomalies.
    pub ok_before: f64,
    /// Answered queries per window, later period.
    pub ok_after: f64,
}

impl TtlTrafficChange {
    /// log2 of the TTL ratio (negative = TTL decrease).
    pub fn ttl_log_ratio(&self) -> f64 {
        (self.ttl_after.max(1) as f64 / self.ttl_before.max(1) as f64).log2()
    }

    /// Relative traffic change (1.0 = doubled).
    pub fn traffic_change(&self) -> f64 {
        if self.hits_before <= 0.0 {
            return 0.0;
        }
        self.hits_after / self.hits_before - 1.0
    }

    /// True when queries rose but responses did not (the paper's
    /// explanation for TTL-increase-with-traffic-increase cases).
    pub fn query_only_increase(&self) -> bool {
        self.traffic_change() > 0.0
            && self.ok_before > 0.0
            && (self.ok_after / self.ok_before - 1.0) < 0.5 * self.traffic_change()
    }
}

/// Compare two periods of a dataset and report keys whose dominant TTL
/// changed, with their traffic deltas (Fig. 8's population).
pub fn ttl_traffic_changes(before: &[&WindowDump], after: &[&WindowDump]) -> Vec<TtlTrafficChange> {
    let mean_rows = |windows: &[&WindowDump]| -> HashMap<String, (f64, f64, Option<u64>)> {
        let mut acc: HashMap<String, (f64, f64, HashMap<u64, f64>)> = HashMap::new();
        for w in windows {
            for (key, row) in &w.rows {
                let e = acc.entry(key.clone()).or_default();
                e.0 += row.hits as f64;
                e.1 += row.ok as f64;
                for &(v, s) in &row.ttl_top {
                    *e.2.entry(v).or_default() += s * row.hits as f64;
                }
            }
        }
        let n = windows.len().max(1) as f64;
        acc.into_iter()
            .map(|(key, (hits, ok, ttls))| {
                let top = ttls
                    .into_iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .map(|(v, _)| v);
                (key, (hits / n, ok / n, top))
            })
            .collect()
    };
    let b = mean_rows(before);
    let a = mean_rows(after);
    let mut out = Vec::new();
    for (key, &(hits_before, ok_before, ttl_b)) in &b {
        let Some(&(hits_after, ok_after, ttl_a)) = a.get(key) else {
            continue;
        };
        let (Some(ttl_before), Some(ttl_after)) = (ttl_b, ttl_a) else {
            continue;
        };
        if ttl_before == ttl_after {
            continue;
        }
        out.push(TtlTrafficChange {
            key: key.clone(),
            ttl_before,
            ttl_after,
            hits_before,
            hits_after,
            ok_before,
            ok_after,
        });
    }
    // Largest traffic changes first (the paper plots the top 100).
    out.sort_by(|x, y| {
        y.traffic_change()
            .abs()
            .partial_cmp(&x.traffic_change().abs())
            .unwrap()
    });
    out
}

/// Table 4 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeCategory {
    /// Server returns variable TTLs on every query.
    NonConforming,
    /// Address records changed (with a TTL movement).
    Renumbering,
    /// NS set changed (with a TTL movement).
    ChangeNs,
    /// TTL went down, data unchanged.
    TtlDecrease,
    /// TTL went up, data unchanged.
    TtlIncrease,
    /// A TTL change with not enough evidence to classify.
    Unknown,
}

/// One detected change (a Table 4 row).
#[derive(Debug, Clone)]
pub struct DetectedChange {
    /// The FQDN.
    pub key: String,
    /// Window start where the change was first seen.
    pub at: f64,
    /// Classification.
    pub category: ChangeCategory,
    /// Dominant TTL before the change.
    pub ttl_before: u64,
    /// Dominant TTL after.
    pub ttl_after: u64,
}

/// Minimum share a new TTL value needs in a window to count as a change
/// (paper §4.2.1 uses 10 %).
const NEW_VALUE_SHARE: f64 = 0.10;

/// Detect and classify TTL-linked changes across consecutive windows of
/// the `aafqdn` dataset (paper §4.2).
///
/// Works on the per-type TTL distributions: A-record TTLs (`ttl_a_top`)
/// and NS TTLs/names, like the paper's analysis of "the TTL distribution
/// of its A and NS records". Each key yields at most one detection — the
/// whole episode's classification, with data-change evidence taking
/// precedence over plain TTL movements.
pub fn detect_changes(windows: &[&WindowDump]) -> Vec<DetectedChange> {
    // Collect each key's row sequence.
    let mut sequences: HashMap<&str, Vec<(f64, &FeatureRow)>> = HashMap::new();
    for w in windows {
        for (key, row) in &w.rows {
            sequences.entry(key).or_default().push((w.start, row));
        }
    }
    let mut out = Vec::new();
    for (key, seq) in sequences {
        if seq.len() < 2 {
            continue;
        }
        if let Some(change) = classify_episode(key, &seq) {
            out.push(change);
        }
    }
    out.sort_by(|a, b| a.key.cmp(&b.key));
    out
}

/// The most frequent A TTL of a row.
fn top_a_ttl(r: &FeatureRow) -> Option<u64> {
    r.ttl_a_top.first().map(|&(v, _)| v)
}

fn classify_episode(key: &str, seq: &[(f64, &FeatureRow)]) -> Option<DetectedChange> {
    // --- Non-conforming: A TTLs scattered *and* unstable across windows.
    let measured: Vec<&(f64, &FeatureRow)> = seq
        .iter()
        .filter(|(_, r)| r.hits >= 5 && !r.ttl_a_top.is_empty())
        .collect();
    if measured.len() >= 2 {
        let scattered = measured
            .iter()
            .filter(|(_, r)| r.ttl_a_top.first().map(|&(_, s)| s < 0.6).unwrap_or(false))
            .count();
        let unstable = measured
            .windows(2)
            .filter(|w| top_a_ttl(w[0].1) != top_a_ttl(w[1].1))
            .count();
        if scattered * 2 > measured.len() && unstable * 2 >= measured.len() - 1 {
            return Some(DetectedChange {
                key: key.to_string(),
                at: measured[0].0,
                category: ChangeCategory::NonConforming,
                ttl_before: top_a_ttl(measured[0].1).unwrap_or(0),
                ttl_after: top_a_ttl(measured[measured.len() - 1].1).unwrap_or(0),
            });
        }
    }

    // --- Scan consecutive windows for evidence.
    let mut first_ttl_move: Option<(f64, u64, u64)> = None; // (at, before, after)
    let mut a_flipped = false;
    let mut ns_flipped = false;
    for pair in seq.windows(2) {
        let (_, prev) = pair[0];
        let (at, cur) = pair[1];
        a_flipped |= data_top_changed(&prev.a_data_top, &cur.a_data_top);
        ns_flipped |= data_top_changed(&prev.ns_names_top, &cur.ns_names_top);
        if first_ttl_move.is_none() {
            if let Some(prev_ttl) = top_a_ttl(prev) {
                let new_value = cur.ttl_a_top.iter().find(|&&(v, s)| {
                    s >= NEW_VALUE_SHARE && prev.ttl_a_top.iter().all(|&(pv, _)| pv != v)
                });
                if let Some(&(cur_ttl, _)) = new_value {
                    first_ttl_move = Some((at, prev_ttl, cur_ttl));
                }
            }
        }
    }
    // NS-only keys (e.g. eSLDs answering NS queries): an NS-name flip is
    // itself a detection even without A records.
    if first_ttl_move.is_none() && ns_flipped {
        return Some(DetectedChange {
            key: key.to_string(),
            at: seq[0].0,
            category: ChangeCategory::ChangeNs,
            ttl_before: seq[0].1.nsttl_top.first().map(|&(v, _)| v).unwrap_or(0),
            ttl_after: seq[seq.len() - 1]
                .1
                .nsttl_top
                .first()
                .map(|&(v, _)| v)
                .unwrap_or(0),
        });
    }
    let (at, ttl_before, ttl_after) = first_ttl_move?;
    let had_a_data = seq.iter().any(|(_, r)| !r.a_data_top.is_empty());
    let category = if ns_flipped {
        ChangeCategory::ChangeNs
    } else if a_flipped {
        ChangeCategory::Renumbering
    } else if !had_a_data {
        ChangeCategory::Unknown
    } else if ttl_after < ttl_before {
        ChangeCategory::TtlDecrease
    } else {
        ChangeCategory::TtlIncrease
    };
    Some(DetectedChange {
        key: key.to_string(),
        at,
        category,
        ttl_before,
        ttl_after,
    })
}

/// Did the dominant data value change between two top-lists?
fn data_top_changed(prev: &[(u64, f64)], cur: &[(u64, f64)]) -> bool {
    match (prev.first(), cur.first()) {
        (Some(&(p, _)), Some(&(c, _))) => p != c,
        _ => false,
    }
}

/// Count detections per category (the Table 4 "#" column).
pub fn category_counts(changes: &[DetectedChange]) -> HashMap<ChangeCategory, usize> {
    let mut counts = HashMap::new();
    for c in changes {
        *counts.entry(c.category).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, FeatureSet};

    fn row(hits: u64, ttl_top: Vec<(u64, f64)>) -> FeatureRow {
        let mut r = FeatureSet::new(FeatureConfig::default()).row();
        r.hits = hits;
        r.ok = hits;
        r.ttl_a_top = ttl_top.clone();
        r.ttl_top = ttl_top;
        r.a_data_top = vec![(111, 1.0)];
        r.ns_names_top = vec![(222, 1.0)];
        r
    }

    fn dump(start: f64, rows: Vec<(String, FeatureRow)>) -> WindowDump {
        WindowDump {
            dataset: "aafqdn".into(),
            start,
            length: 3600.0,
            kept: 0,
            dropped: 0,
            filtered: 0,
            rows,
        }
    }

    #[test]
    fn series_extraction_fills_gaps() {
        let d1 = dump(0.0, vec![("x".into(), row(10, vec![(600, 1.0)]))]);
        let d2 = dump(3600.0, vec![]);
        let d3 = dump(7200.0, vec![("x".into(), row(40, vec![(10, 1.0)]))]);
        let windows: Vec<&WindowDump> = vec![&d1, &d2, &d3];
        let series = key_series(&windows, "x");
        assert_eq!(series.len(), 3);
        assert_eq!(series[1].hits, 0);
        assert_eq!(series[2].top_ttl, Some(10));
    }

    #[test]
    fn fig8_changes_sorted_by_traffic_delta() {
        let b1 = dump(
            0.0,
            vec![
                ("big".into(), row(100, vec![(600, 1.0)])),
                ("small".into(), row(100, vec![(600, 1.0)])),
                ("same".into(), row(100, vec![(600, 1.0)])),
            ],
        );
        let a1 = dump(
            3600.0,
            vec![
                ("big".into(), row(900, vec![(10, 1.0)])),
                ("small".into(), row(120, vec![(300, 1.0)])),
                ("same".into(), row(100, vec![(600, 1.0)])),
            ],
        );
        let changes = ttl_traffic_changes(&[&b1], &[&a1]);
        assert_eq!(changes.len(), 2, "unchanged-TTL key excluded");
        assert_eq!(changes[0].key, "big");
        assert!(changes[0].ttl_log_ratio() < 0.0);
        assert!((changes[0].traffic_change() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn query_only_increase_detected() {
        let c = TtlTrafficChange {
            key: "x".into(),
            ttl_before: 60,
            ttl_after: 600,
            hits_before: 100.0,
            hits_after: 300.0,
            ok_before: 90.0,
            ok_after: 95.0,
        };
        assert!(c.query_only_increase());
        let healthy = TtlTrafficChange {
            ok_after: 280.0,
            ..c
        };
        assert!(!healthy.query_only_increase());
    }

    #[test]
    fn detects_plain_ttl_decrease() {
        let d1 = dump(0.0, vec![("f".into(), row(50, vec![(86_400, 0.98)]))]);
        let d2 = dump(3600.0, vec![("f".into(), row(50, vec![(3_600, 0.95)]))]);
        let changes = detect_changes(&[&d1, &d2]);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].category, ChangeCategory::TtlDecrease);
        assert_eq!(changes[0].ttl_before, 86_400);
        assert_eq!(changes[0].ttl_after, 3_600);
    }

    #[test]
    fn classifies_renumbering_and_ns_change() {
        // Renumbering: A-data hash flips along with the TTL.
        let mut r2 = row(50, vec![(38_400, 0.9)]);
        r2.a_data_top = vec![(999, 1.0)];
        let d1 = dump(0.0, vec![("ren".into(), row(50, vec![(600, 0.9)]))]);
        let d2 = dump(3600.0, vec![("ren".into(), r2)]);
        let changes = detect_changes(&[&d1, &d2]);
        assert_eq!(changes[0].category, ChangeCategory::Renumbering);

        // NS change dominates over renumbering when both flip.
        let mut r3 = row(50, vec![(10, 0.9)]);
        r3.a_data_top = vec![(999, 1.0)];
        r3.ns_names_top = vec![(333, 1.0)];
        let d3 = dump(0.0, vec![("nsch".into(), row(50, vec![(600, 0.9)]))]);
        let d4 = dump(3600.0, vec![("nsch".into(), r3)]);
        let changes = detect_changes(&[&d3, &d4]);
        assert_eq!(changes[0].category, ChangeCategory::ChangeNs);
    }

    #[test]
    fn detects_nonconforming() {
        let scatter = |seedbase: u64| {
            vec![
                (seedbase + 100, 0.3),
                (seedbase + 200, 0.3),
                (seedbase + 300, 0.3),
            ]
        };
        let d1 = dump(0.0, vec![("var".into(), row(50, scatter(0)))]);
        let d2 = dump(3600.0, vec![("var".into(), row(50, scatter(7)))]);
        let changes = detect_changes(&[&d1, &d2]);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].category, ChangeCategory::NonConforming);
    }

    #[test]
    fn small_new_value_ignored() {
        // A value with <10% share must not trigger a detection.
        let d1 = dump(0.0, vec![("f".into(), row(100, vec![(600, 0.97)]))]);
        let d2 = dump(
            3600.0,
            vec![("f".into(), row(100, vec![(600, 0.93), (10, 0.06)]))],
        );
        assert!(detect_changes(&[&d1, &d2]).is_empty());
    }

    #[test]
    fn category_counting() {
        let changes = vec![
            DetectedChange {
                key: "a".into(),
                at: 0.0,
                category: ChangeCategory::Renumbering,
                ttl_before: 1,
                ttl_after: 2,
            },
            DetectedChange {
                key: "b".into(),
                at: 0.0,
                category: ChangeCategory::Renumbering,
                ttl_before: 1,
                ttl_after: 2,
            },
            DetectedChange {
                key: "c".into(),
                at: 0.0,
                category: ChangeCategory::Unknown,
                ttl_before: 1,
                ttl_after: 2,
            },
        ];
        let counts = category_counts(&changes);
        assert_eq!(counts[&ChangeCategory::Renumbering], 2);
        assert_eq!(counts[&ChangeCategory::Unknown], 1);
    }
}
