//! QTYPE analysis (paper §3.4, Table 2).
//!
//! Renders the `qtype` dataset into the 15-column table the paper
//! reports: shares per outcome class, name-structure statistics,
//! uniqueness cardinalities, top TTL, infrastructure counts and
//! performance quartiles.

use crate::features::FeatureRow;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct QtypeRow {
    /// QTYPE mnemonic.
    pub qtype: String,
    /// Share in all observed transactions.
    pub global: f64,
    /// Share of NoError+data within this QTYPE.
    pub data: f64,
    /// Share of NoData.
    pub nodata: f64,
    /// Share of NXDOMAIN.
    pub nxd: f64,
    /// Share of other errors (incl. unanswered).
    pub err: f64,
    /// Mean QNAME label count.
    pub qdots: f64,
    /// Distinct TLDs per window (mean).
    pub tlds: f64,
    /// Distinct eSLDs per window (mean).
    pub eslds: f64,
    /// Distinct FQDNs per window (mean, NoError).
    pub fqdns: f64,
    /// Share of queried FQDNs that exist (qnames / qnamesa).
    pub valid: f64,
    /// Most common answer TTL.
    pub ttl: Option<u64>,
    /// Distinct nameserver IPs (mean per window).
    pub servers: f64,
    /// Median response delay, ms.
    pub delay: f64,
    /// Median hop count.
    pub hops: f64,
    /// Median response size, bytes.
    pub size: f64,
}

/// Build Table 2 from cumulative `qtype` rows.
pub fn qtype_table(rows: &[(String, FeatureRow)]) -> Vec<QtypeRow> {
    let total: u64 = rows.iter().map(|(_, r)| r.hits).sum();
    let mut out: Vec<QtypeRow> = rows
        .iter()
        .map(|(qtype, r)| {
            let hits = r.hits.max(1) as f64;
            QtypeRow {
                qtype: qtype.clone(),
                global: if total > 0 {
                    r.hits as f64 / total as f64
                } else {
                    0.0
                },
                data: (r.ok - r.ok_nil) as f64 / hits,
                nodata: r.ok_nil as f64 / hits,
                nxd: r.nxd as f64 / hits,
                err: (r.unans + r.rfs + r.fail) as f64 / hits,
                qdots: r.qdots,
                tlds: r.tlds,
                eslds: r.eslds,
                fqdns: r.qnames,
                valid: if r.qnamesa > 0.0 {
                    (r.qnames / r.qnamesa).min(1.0)
                } else {
                    0.0
                },
                ttl: r.top_ttl(),
                servers: r.srvips,
                delay: r.median_delay(),
                hops: r.median_hops(),
                size: r.resp_size[1],
            }
        })
        .collect();
    out.sort_by(|a, b| b.global.partial_cmp(&a.global).unwrap());
    out
}

/// Render Table 2 as aligned text.
pub fn format_qtype_table(rows: &[QtypeRow], top: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<8}{:>7}{:>7}{:>8}{:>7}{:>7}{:>7}{:>8}{:>9}{:>9}{:>7}{:>8}{:>9}{:>7}{:>6}{:>7}\n",
        "QTYPE",
        "global",
        "data",
        "nodata",
        "nxd",
        "err",
        "qdots",
        "TLDs",
        "eSLDs",
        "FQDNs",
        "valid",
        "TTL",
        "servers",
        "delay",
        "hops",
        "size"
    ));
    for r in rows.iter().take(top) {
        s.push_str(&format!(
            "{:<8}{:>6.1}%{:>6.1}%{:>7.1}%{:>6.1}%{:>6.1}%{:>7.1}{:>8.0}{:>9.0}{:>9.0}{:>6.0}%{:>8}{:>9.0}{:>7.1}{:>6.1}{:>7.0}\n",
            r.qtype,
            r.global * 100.0,
            r.data * 100.0,
            r.nodata * 100.0,
            r.nxd * 100.0,
            r.err * 100.0,
            r.qdots,
            r.tlds,
            r.eslds,
            r.fqdns,
            r.valid * 100.0,
            r.ttl.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            r.servers,
            r.delay,
            r.hops,
            r.size,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Dataset;
    use crate::pipeline::{Observatory, ObservatoryConfig};
    use simnet::{SimConfig, Simulation};

    fn table_from_sim(secs: f64) -> Vec<QtypeRow> {
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut obs = Observatory::new(ObservatoryConfig {
            datasets: vec![(Dataset::Qtype, 64)],
            window_secs: secs / 2.0,
            ..ObservatoryConfig::default()
        });
        sim.run(secs, &mut |tx| obs.ingest(tx));
        let store = obs.finish();
        qtype_table(&store.cumulative(Dataset::Qtype))
    }

    #[test]
    fn a_dominates_and_shares_sum() {
        let table = table_from_sim(6.0);
        assert!(!table.is_empty());
        assert_eq!(table[0].qtype, "A", "A must be the top QTYPE");
        let global_sum: f64 = table.iter().map(|r| r.global).sum();
        assert!((global_sum - 1.0).abs() < 1e-6);
        for r in &table {
            let class_sum = r.data + r.nodata + r.nxd + r.err;
            assert!(class_sum <= 1.0 + 1e-6, "{}: {class_sum}", r.qtype);
        }
    }

    #[test]
    fn aaaa_has_more_nodata_than_a() {
        let table = table_from_sim(8.0);
        let a = table.iter().find(|r| r.qtype == "A").unwrap();
        let aaaa = table.iter().find(|r| r.qtype == "AAAA").unwrap();
        assert!(
            aaaa.nodata > 5.0 * a.nodata.max(0.001),
            "AAAA nodata {} vs A {}",
            aaaa.nodata,
            a.nodata
        );
    }

    #[test]
    fn ptr_has_many_labels() {
        let table = table_from_sim(8.0);
        let ptr = table.iter().find(|r| r.qtype == "PTR").unwrap();
        let a = table.iter().find(|r| r.qtype == "A").unwrap();
        assert!(
            ptr.qdots > a.qdots + 1.0,
            "PTR qdots {} vs A {}",
            ptr.qdots,
            a.qdots
        );
    }

    #[test]
    fn ns_is_mostly_nxdomain_with_large_responses() {
        let table = table_from_sim(8.0);
        let ns = table.iter().find(|r| r.qtype == "NS").unwrap();
        let a = table.iter().find(|r| r.qtype == "A").unwrap();
        assert!(ns.nxd > 0.6, "NS nxd share {}", ns.nxd);
        assert!(
            ns.size > 2.0 * a.size,
            "NS size {} vs A {}",
            ns.size,
            a.size
        );
    }

    #[test]
    fn formatting_includes_all_rows() {
        let table = table_from_sim(4.0);
        let text = format_qtype_table(&table, 10);
        assert!(text.contains("QTYPE"));
        assert!(text.contains('A'));
        assert!(text.lines().count() <= 11);
    }
}
