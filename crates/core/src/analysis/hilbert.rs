//! Hilbert-curve heatmap of the observed IPv4 nameserver space
//! (paper §3.7, Figure 6; after Duane Wessels' ipv4-heatmap).
//!
//! Each pixel is one /24 prefix; the pixel value is the number of
//! observed nameserver addresses inside that /24. The 24-bit prefix
//! index is laid out along a Hilbert curve of order 12 (4096×4096), so
//! numerically adjacent prefixes stay visually adjacent.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::IpAddr;

/// Convert a distance `d` along a Hilbert curve of order `order`
/// (side `2^order`) into `(x, y)` coordinates.
pub fn hilbert_d2xy(order: u32, d: u64) -> (u32, u32) {
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = d;
    let mut s = 1u64;
    while s < (1u64 << order) {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// The heatmap: a square grid of /24 occupancy counts.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Curve order; the side length is `2^order`.
    pub order: u32,
    /// Row-major pixel counts.
    pub pixels: Vec<u32>,
}

impl Heatmap {
    /// Side length in pixels.
    pub fn side(&self) -> usize {
        1usize << self.order
    }

    /// Number of non-empty pixels (occupied /24s at full order 12).
    pub fn occupied(&self) -> usize {
        self.pixels.iter().filter(|&&p| p > 0).count()
    }

    /// Maximum pixel value.
    pub fn max(&self) -> u32 {
        self.pixels.iter().copied().max().unwrap_or(0)
    }

    /// Write as a binary PGM (P5) image, 8-bit, log-scaled so single
    /// addresses are visible against dense blocks.
    pub fn write_pgm<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let side = self.side();
        writeln!(w, "P5\n{side} {side}\n255")?;
        let max = self.max().max(1) as f64;
        let scale = 255.0 / (1.0 + max).ln();
        let mut row = vec![0u8; side];
        for y in 0..side {
            for (x, px) in row.iter_mut().enumerate() {
                let v = self.pixels[y * side + x] as f64;
                *px = if v == 0.0 {
                    0
                } else {
                    ((1.0 + v).ln() * scale).round().clamp(1.0, 255.0) as u8
                };
            }
            w.write_all(&row)?;
        }
        Ok(())
    }
}

/// Build the heatmap from observed nameserver addresses. `order` 12 maps
/// every /24 to its own pixel; lower orders aggregate (e.g. order 8 →
/// one pixel per /16).
pub fn heatmap_of(addrs: impl IntoIterator<Item = IpAddr>, order: u32) -> Heatmap {
    assert!((1..=12).contains(&order), "order must be 1..=12");
    let side = 1usize << order;
    let mut per_prefix: HashMap<u32, u32> = HashMap::new();
    for addr in addrs {
        if let IpAddr::V4(v4) = addr {
            let prefix = u32::from(v4) >> 8; // the /24 index, 24 bits
            *per_prefix.entry(prefix).or_default() += 1;
        }
    }
    let mut pixels = vec![0u32; side * side];
    let shift = 24 - 2 * order; // fold 24 bits onto the 2*order-bit curve
    for (prefix, count) in per_prefix {
        let d = (prefix >> shift) as u64;
        let (x, y) = hilbert_d2xy(order, d);
        pixels[y as usize * side + x as usize] += count;
    }
    Heatmap { order, pixels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d2xy_visits_every_cell_once() {
        let order = 4;
        let side = 1u64 << order;
        let mut seen = std::collections::HashSet::new();
        for d in 0..side * side {
            let (x, y) = hilbert_d2xy(order, d);
            assert!(x < side as u32 && y < side as u32);
            assert!(seen.insert((x, y)), "cell visited twice at d={d}");
        }
        assert_eq!(seen.len(), (side * side) as usize);
    }

    #[test]
    fn d2xy_is_continuous() {
        // Successive distances map to 4-adjacent cells — the defining
        // property of the Hilbert layout.
        let order = 5;
        let side = 1u64 << order;
        let mut prev = hilbert_d2xy(order, 0);
        for d in 1..side * side {
            let cur = hilbert_d2xy(order, d);
            let dist = (cur.0 as i64 - prev.0 as i64).abs() + (cur.1 as i64 - prev.1 as i64).abs();
            assert_eq!(dist, 1, "jump at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn heatmap_counts_per_slash24() {
        let addrs: Vec<IpAddr> = vec![
            "60.1.2.3".parse().unwrap(),
            "60.1.2.4".parse().unwrap(),    // same /24
            "60.1.3.1".parse().unwrap(),    // different /24
            "2001:db8::1".parse().unwrap(), // ignored
        ];
        let map = heatmap_of(addrs, 12);
        assert_eq!(map.occupied(), 2);
        assert_eq!(map.max(), 2);
        assert_eq!(map.pixels.iter().map(|&v| v as u64).sum::<u64>(), 3);
    }

    #[test]
    fn lower_order_aggregates() {
        let addrs: Vec<IpAddr> = vec![
            "60.1.2.3".parse().unwrap(),
            "60.1.3.1".parse().unwrap(), // same /16, different /24
        ];
        let map = heatmap_of(addrs, 8); // one pixel per /16
        assert_eq!(map.occupied(), 1);
        assert_eq!(map.max(), 2);
    }

    #[test]
    fn pgm_output_wellformed() {
        let addrs: Vec<IpAddr> = (0..100u32)
            .map(|i| IpAddr::V4(std::net::Ipv4Addr::from(0x3c00_0000 + i * 256)))
            .collect();
        let map = heatmap_of(addrs, 6);
        let mut buf = Vec::new();
        map.write_pgm(&mut buf).unwrap();
        let header_end = buf.iter().filter(|&&b| b == b'\n').take(3).count();
        assert_eq!(header_end, 3);
        assert!(buf.starts_with(b"P5\n64 64\n255\n"));
        assert_eq!(buf.len(), "P5\n64 64\n255\n".len() + 64 * 64);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn bad_order_panics() {
        heatmap_of(Vec::<IpAddr>::new(), 13);
    }
}
