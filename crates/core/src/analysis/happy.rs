//! Happy Eyeballs and negative caching (paper §5, Figure 9).
//!
//! Correlates, per FQDN, the share of empty AAAA responses with the
//! quotient of the A-record TTL by the negative-caching TTL — the
//! paper's explanation for domains where up to ~90 % of all observed
//! responses are empty.

use crate::features::FeatureRow;
use crate::timeseries::WindowDump;

/// One point of Figure 9.
#[derive(Debug, Clone)]
pub struct HappyRow {
    /// The FQDN.
    pub key: String,
    /// Popularity rank (1-based) within the analyzed top list.
    pub rank: usize,
    /// Total transactions.
    pub hits: u64,
    /// Share of all responses that are empty AAAA (NoData), in [0, 1].
    pub empty_aaaa_share: f64,
    /// Dominant A-record TTL, seconds.
    pub a_ttl: Option<u64>,
    /// Dominant negative-caching TTL (SOA minimum), seconds.
    pub neg_ttl: Option<u64>,
}

impl HappyRow {
    /// The paper's right-axis quotient: A TTL / negative TTL. Large
    /// quotient → many empty AAAA responses expected.
    pub fn ttl_quotient(&self) -> Option<f64> {
        match (self.a_ttl, self.neg_ttl) {
            (Some(a), Some(n)) if n > 0 => Some(a as f64 / n as f64),
            _ => None,
        }
    }
}

/// Build the Figure 9 rows from cumulative `qname` rows (already sorted
/// by traffic), keeping the top `n`.
pub fn happy_rows(rows: &[(String, FeatureRow)], n: usize) -> Vec<HappyRow> {
    rows.iter()
        .take(n)
        .enumerate()
        .map(|(i, (key, r))| HappyRow {
            key: key.clone(),
            rank: i + 1,
            hits: r.hits,
            empty_aaaa_share: if r.hits > 0 {
                r.ok6nil as f64 / r.hits as f64
            } else {
                0.0
            },
            a_ttl: r.top_ttl(),
            neg_ttl: r.negttl_top.first().map(|&(v, _)| v),
        })
        .collect()
}

/// Pearson correlation between `log(quotient)` and the empty-AAAA share
/// over rows where both are defined — the headline association of §5.2.
pub fn quotient_share_correlation(rows: &[HappyRow]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .filter_map(|r| r.ttl_quotient().map(|q| (q.ln(), r.empty_aaaa_share)))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let vx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let vy: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// §5.3: the before/after view of one FQDN enabling IPv6.
#[derive(Debug, Clone)]
pub struct Ipv6Turnup {
    /// The FQDN.
    pub key: String,
    /// Empty-AAAA share before / after the turn-up.
    pub empty_share_before: f64,
    /// Empty-AAAA share after.
    pub empty_share_after: f64,
    /// Queries per window before / after.
    pub rate_before: f64,
    /// Queries per window after.
    pub rate_after: f64,
}

/// Compare a key's empty-AAAA share and query volume before and after a
/// split time (the scenario's IPv6 turn-up moment).
pub fn ipv6_turnup(windows: &[&WindowDump], key: &str, split: f64) -> Option<Ipv6Turnup> {
    let mut before = (0u64, 0u64, 0usize); // (hits, ok6nil, windows)
    let mut after = (0u64, 0u64, 0usize);
    for w in windows {
        let Some(row) = w.get(key) else { continue };
        let slot = if w.start < split {
            &mut before
        } else {
            &mut after
        };
        slot.0 += row.hits;
        slot.1 += row.ok6nil;
        slot.2 += 1;
    }
    if before.2 == 0 || after.2 == 0 {
        return None;
    }
    Some(Ipv6Turnup {
        key: key.to_string(),
        empty_share_before: before.1 as f64 / before.0.max(1) as f64,
        empty_share_after: after.1 as f64 / after.0.max(1) as f64,
        rate_before: before.0 as f64 / before.2 as f64,
        rate_after: after.0 as f64 / after.2 as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, FeatureSet};

    fn row(hits: u64, ok6nil: u64, a_ttl: u64, neg_ttl: u64) -> FeatureRow {
        let mut r = FeatureSet::new(FeatureConfig::default()).row();
        r.hits = hits;
        r.ok = hits;
        r.ok6 = ok6nil;
        r.ok6nil = ok6nil;
        r.ttl_top = vec![(a_ttl, 0.9)];
        r.negttl_top = vec![(neg_ttl, 0.9)];
        r
    }

    #[test]
    fn rows_and_quotients() {
        let rows = vec![
            ("pathological".to_string(), row(100, 89, 900, 15)),
            ("healthy".to_string(), row(100, 10, 300, 300)),
        ];
        let happy = happy_rows(&rows, 10);
        assert_eq!(happy.len(), 2);
        assert_eq!(happy[0].rank, 1);
        assert!((happy[0].empty_aaaa_share - 0.89).abs() < 1e-9);
        assert!((happy[0].ttl_quotient().unwrap() - 60.0).abs() < 1e-9);
        assert!((happy[1].ttl_quotient().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_positive_for_pathological_pattern() {
        // Construct the paper's pattern: high quotient ↔ high empty share.
        let rows: Vec<(String, FeatureRow)> = (0..20)
            .map(|i| {
                let quotient = 1 + i as u64 * 3;
                let share = (quotient as f64 / 70.0).min(0.95);
                let hits = 1000;
                (
                    format!("f{i}"),
                    row(hits, (share * hits as f64) as u64, 60 * quotient, 60),
                )
            })
            .collect();
        let happy = happy_rows(&rows, 20);
        let corr = quotient_share_correlation(&happy).unwrap();
        assert!(corr > 0.8, "correlation {corr}");
    }

    #[test]
    fn correlation_needs_enough_points() {
        let rows = vec![("a".to_string(), row(10, 1, 60, 60))];
        let happy = happy_rows(&rows, 10);
        assert!(quotient_share_correlation(&happy).is_none());
    }

    #[test]
    fn turnup_detects_share_drop() {
        use crate::timeseries::WindowDump;
        let mk = |start: f64, ok6nil: u64| WindowDump {
            dataset: "qname".into(),
            start,
            length: 60.0,
            kept: 0,
            dropped: 0,
            filtered: 0,
            rows: vec![("www.d.com".to_string(), row(100, ok6nil, 300, 300))],
        };
        let w1 = mk(0.0, 40);
        let w2 = mk(60.0, 42);
        let w3 = mk(120.0, 2);
        let w4 = mk(180.0, 1);
        let windows: Vec<&WindowDump> = vec![&w1, &w2, &w3, &w4];
        let t = ipv6_turnup(&windows, "www.d.com", 100.0).unwrap();
        assert!(t.empty_share_before > 0.3);
        assert!(t.empty_share_after < 0.05);
        // Volume roughly flat (the §5.3 finding).
        assert!((t.rate_after / t.rate_before - 1.0).abs() < 0.1);
        assert!(ipv6_turnup(&windows, "missing", 100.0).is_none());
    }
}
