//! Response-delay analysis (paper §3.5, Figure 3).
//!
//! Four views over the `srvip` dataset:
//! * (a) the distribution of per-server delay quartiles;
//! * (b) delay and hops versus popularity rank, in groups of 100;
//! * (c)/(d) per-letter quartiles for the root and gTLD constellations.

use crate::features::FeatureRow;
use std::net::IpAddr;

/// Per-server delay statistics extracted from a cumulative `srvip` row.
#[derive(Debug, Clone, Copy)]
pub struct ServerDelay {
    /// Delay quartiles, ms.
    pub q25: f64,
    /// Median delay, ms.
    pub median: f64,
    /// Upper quartile, ms.
    pub q75: f64,
    /// Median hop count.
    pub hops: f64,
    /// Traffic attributed to the server.
    pub hits: u64,
}

/// Figure 3a: empirical CDF over nameservers of a per-server statistic.
#[derive(Debug, Clone)]
pub struct DelayCdf {
    /// Sorted median delays (one per server).
    pub sorted: Vec<f64>,
}

impl DelayCdf {
    /// Fraction of servers with median delay below `ms`.
    pub fn fraction_below(&self, ms: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < ms);
        idx as f64 / self.sorted.len() as f64
    }

    /// The paper's four regimes: shares of servers in
    /// [0,5), [5,35), [35,350), [350,∞) ms.
    pub fn regime_shares(&self) -> [f64; 4] {
        let below5 = self.fraction_below(5.0);
        let below35 = self.fraction_below(35.0);
        let below350 = self.fraction_below(350.0);
        [below5, below35 - below5, below350 - below35, 1.0 - below350]
    }
}

/// Extract per-server delay statistics from cumulative `srvip` rows,
/// skipping servers that never answered.
pub fn server_delays(rows: &[(String, FeatureRow)]) -> Vec<ServerDelay> {
    rows.iter()
        .filter(|(_, r)| !r.median_delay().is_nan())
        .map(|(_, r)| ServerDelay {
            q25: r.resp_delays[0],
            median: r.resp_delays[1],
            q75: r.resp_delays[2],
            hops: r.median_hops(),
            hits: r.hits,
        })
        .collect()
}

/// Figure 3a: CDF of median delays over the server population.
pub fn delay_cdf(delays: &[ServerDelay]) -> DelayCdf {
    let mut sorted: Vec<f64> = delays.iter().map(|d| d.median).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    DelayCdf { sorted }
}

/// One group of Figure 3b: mean delay/hops for 100 neighbouring ranks.
#[derive(Debug, Clone, Copy)]
pub struct RankGroup {
    /// First (best) rank in the group, 1-based.
    pub rank_start: usize,
    /// Mean of the members' median delays, ms.
    pub mean_delay: f64,
    /// Mean of the members' median hop counts.
    pub mean_hops: f64,
}

/// Figure 3b: group the ranked servers (already hits-descending) into
/// buckets of `group` and average each bucket.
pub fn delay_by_rank(delays: &[ServerDelay], group: usize) -> Vec<RankGroup> {
    assert!(group > 0);
    delays
        .chunks(group)
        .enumerate()
        .map(|(i, chunk)| {
            let n = chunk.len() as f64;
            RankGroup {
                rank_start: i * group + 1,
                mean_delay: chunk.iter().map(|d| d.median).sum::<f64>() / n,
                mean_hops: chunk.iter().map(|d| d.hops).sum::<f64>() / n,
            }
        })
        .collect()
}

/// Linear-regression slope of `y` against rank index — used to check the
/// paper's claim that popular servers are faster (positive slope of delay
/// vs rank).
pub fn slope(groups: &[RankGroup], y: impl Fn(&RankGroup) -> f64) -> f64 {
    let n = groups.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let xs: Vec<f64> = (0..groups.len()).map(|i| i as f64).collect();
    let ys: Vec<f64> = groups.iter().map(y).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

/// Figures 3c/3d: per-letter quartiles for an anycast constellation.
#[derive(Debug, Clone)]
pub struct LetterDelay {
    /// Letter label 'A'..'M'.
    pub letter: char,
    /// Delay quartiles, ms.
    pub q25: f64,
    /// Median delay.
    pub median: f64,
    /// Upper quartile.
    pub q75: f64,
    /// Median hops.
    pub hops: f64,
    /// Traffic share within the constellation.
    pub share: f64,
}

/// Extract the 13 letters of a constellation from cumulative `srvip`
/// rows, selecting servers via `is_letter(ip) -> Some(letter index)`.
pub fn constellation(
    rows: &[(String, FeatureRow)],
    is_letter: impl Fn(IpAddr) -> Option<usize>,
) -> Vec<LetterDelay> {
    let mut letters: Vec<Option<(FeatureRow, usize)>> = vec![None; 13];
    for (key, row) in rows {
        let Ok(ip) = key.parse::<IpAddr>() else {
            continue;
        };
        if let Some(idx) = is_letter(ip) {
            if idx < 13 {
                letters[idx] = Some((row.clone(), idx));
            }
        }
    }
    let total: u64 = letters
        .iter()
        .flatten()
        .map(|(r, _)| r.hits)
        .sum::<u64>()
        .max(1);
    letters
        .into_iter()
        .flatten()
        .map(|(r, idx)| LetterDelay {
            letter: (b'A' + idx as u8) as char,
            q25: r.resp_delays[0],
            median: r.resp_delays[1],
            q75: r.resp_delays[2],
            hops: r.median_hops(),
            share: r.hits as f64 / total as f64,
        })
        .collect()
}

/// Selector for the simulated root letters (198.41.L.4).
pub fn root_letter_of(ip: IpAddr) -> Option<usize> {
    match ip {
        IpAddr::V4(v4) => {
            let o = v4.octets();
            (o[0] == 198 && o[1] == 41 && o[3] == 4 && o[2] < 13).then_some(o[2] as usize)
        }
        _ => None,
    }
}

/// Selector for the simulated gTLD letters (192.(5+L).6.30).
pub fn gtld_letter_of(ip: IpAddr) -> Option<usize> {
    match ip {
        IpAddr::V4(v4) => {
            let o = v4.octets();
            (o[0] == 192 && o[3] == 30 && (5..18).contains(&o[1])).then(|| (o[1] - 5) as usize)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, FeatureSet};

    fn row(hits: u64, median: f64, hops: f64) -> FeatureRow {
        let mut r = FeatureSet::new(FeatureConfig::default()).row();
        r.hits = hits;
        r.resp_delays = [median * 0.7, median, median * 1.5];
        r.network_hops = [hops - 1.0, hops, hops + 1.0];
        r
    }

    #[test]
    fn cdf_regimes_partition() {
        let delays = vec![
            ServerDelay {
                q25: 1.0,
                median: 2.0,
                q75: 3.0,
                hops: 2.0,
                hits: 1,
            },
            ServerDelay {
                q25: 8.0,
                median: 10.0,
                q75: 15.0,
                hops: 5.0,
                hits: 1,
            },
            ServerDelay {
                q25: 50.0,
                median: 90.0,
                q75: 200.0,
                hops: 12.0,
                hits: 1,
            },
            ServerDelay {
                q25: 300.0,
                median: 500.0,
                q75: 900.0,
                hops: 20.0,
                hits: 1,
            },
        ];
        let cdf = delay_cdf(&delays);
        let shares = cdf.regime_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(shares, [0.25, 0.25, 0.25, 0.25]);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.fraction_below(1e9), 1.0);
    }

    #[test]
    fn rank_groups_average() {
        let rows: Vec<(String, FeatureRow)> = (0..10)
            .map(|i| {
                (
                    format!("10.0.0.{i}"),
                    row(100 - i as u64, (i + 1) as f64 * 10.0, 5.0),
                )
            })
            .collect();
        let delays = server_delays(&rows);
        let groups = delay_by_rank(&delays, 5);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].rank_start, 1);
        assert!((groups[0].mean_delay - 30.0).abs() < 1e-9);
        assert!((groups[1].mean_delay - 80.0).abs() < 1e-9);
        // Delay increases with rank → positive slope.
        assert!(slope(&groups, |g| g.mean_delay) > 0.0);
    }

    #[test]
    fn constellations_extracted() {
        let mut rows = Vec::new();
        for l in 0..13u8 {
            rows.push((
                format!("198.41.{l}.4"),
                row(100 + l as u64, 10.0 + l as f64, 6.0),
            ));
            rows.push((format!("192.{}.6.30", 5 + l), row(200, 8.0, 5.0)));
        }
        rows.push(("10.1.2.3".to_string(), row(5_000, 99.0, 9.0)));
        let root = constellation(&rows, root_letter_of);
        assert_eq!(root.len(), 13);
        assert_eq!(root[0].letter, 'A');
        assert_eq!(root[12].letter, 'M');
        let share_sum: f64 = root.iter().map(|l| l.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        let gtld = constellation(&rows, gtld_letter_of);
        assert_eq!(gtld.len(), 13);
    }

    #[test]
    fn unanswered_servers_skipped() {
        let mut r = row(10, 5.0, 3.0);
        r.resp_delays = [f64::NAN; 3];
        let rows = vec![("10.0.0.1".to_string(), r)];
        assert!(server_delays(&rows).is_empty());
    }
}
