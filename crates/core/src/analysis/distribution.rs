//! Traffic-distribution analysis (paper §3.2, Figure 2).
//!
//! Ranks the objects of a dataset by traffic and produces, per response
//! class, an independent CDF over ranks — exactly the four curves of
//! Fig. 2: all queries, NXDOMAIN, NoError+data, NoData.

use crate::features::FeatureRow;

/// One response-class curve: cumulative share of that class's traffic
/// carried by the top `i+1` ranked objects.
#[derive(Debug, Clone)]
pub struct RankCdf {
    /// Class label ("all", "nxdomain", "noerror_data", "nodata").
    pub label: &'static str,
    /// Cumulative fraction at each rank (monotone, ends at 1.0 when the
    /// class has any traffic).
    pub cdf: Vec<f64>,
}

impl RankCdf {
    /// Cumulative share at a 1-based rank (clamped to the last rank).
    pub fn at_rank(&self, rank: usize) -> f64 {
        if self.cdf.is_empty() {
            return 0.0;
        }
        self.cdf[(rank.max(1) - 1).min(self.cdf.len() - 1)]
    }

    /// The smallest rank whose cumulative share reaches `q`.
    pub fn rank_for_share(&self, q: f64) -> Option<usize> {
        self.cdf.iter().position(|&v| v >= q).map(|i| i + 1)
    }
}

/// The Figure 2 analysis result for one dataset.
#[derive(Debug, Clone)]
pub struct TrafficDistribution {
    /// Objects in rank order: `(key, hits)`.
    pub ranked: Vec<(String, u64)>,
    /// The four curves of Fig. 2.
    pub curves: Vec<RankCdf>,
    /// Total transactions captured by the top list.
    pub captured_hits: u64,
}

/// Compute the Fig. 2 curves from cumulative per-object rows
/// (see [`crate::TimeSeriesStore::cumulative`]), which must already be
/// sorted by hits descending.
pub fn traffic_distribution(rows: &[(String, FeatureRow)]) -> TrafficDistribution {
    let mut all = Vec::with_capacity(rows.len());
    let mut nxd = Vec::with_capacity(rows.len());
    let mut data = Vec::with_capacity(rows.len());
    let mut nodata = Vec::with_capacity(rows.len());
    let mut ranked = Vec::with_capacity(rows.len());
    for (key, r) in rows {
        ranked.push((key.clone(), r.hits));
        all.push(r.hits as f64);
        nxd.push(r.nxd as f64);
        data.push((r.ok - r.ok_nil) as f64);
        nodata.push(r.ok_nil as f64);
    }
    let captured_hits = ranked.iter().map(|(_, h)| h).sum();
    let curves = vec![
        cdf("all", &all),
        cdf("nxdomain", &nxd),
        cdf("noerror_data", &data),
        cdf("nodata", &nodata),
    ];
    TrafficDistribution {
        ranked,
        curves,
        captured_hits,
    }
}

fn cdf(label: &'static str, per_rank: &[f64]) -> RankCdf {
    let total: f64 = per_rank.iter().sum();
    let mut acc = 0.0;
    let cdf = per_rank
        .iter()
        .map(|v| {
            acc += v;
            if total > 0.0 {
                acc / total
            } else {
                0.0
            }
        })
        .collect();
    RankCdf { label, cdf }
}

/// Downsample a CDF to log-spaced ranks for plotting / reporting:
/// returns `(rank, value)` points at 1, 2, …, 10, 20, …, 100, … .
pub fn log_spaced_points(curve: &RankCdf) -> Vec<(usize, f64)> {
    let n = curve.cdf.len();
    let mut points = Vec::new();
    let mut rank = 1usize;
    let mut step = 1usize;
    while rank <= n {
        points.push((rank, curve.at_rank(rank)));
        if rank >= step * 10 {
            step *= 10;
        }
        rank += step;
    }
    if points.last().map(|&(r, _)| r) != Some(n) && n > 0 {
        points.push((n, curve.at_rank(n)));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, FeatureSet};

    fn row(hits: u64, nxd: u64, ok: u64, ok_nil: u64) -> FeatureRow {
        let mut r = FeatureSet::new(FeatureConfig::default()).row();
        r.hits = hits;
        r.nxd = nxd;
        r.ok = ok;
        r.ok_nil = ok_nil;
        r
    }

    #[test]
    fn curves_are_monotone_and_end_at_one() {
        let rows = vec![
            ("a".to_string(), row(100, 20, 70, 10)),
            ("b".to_string(), row(50, 5, 40, 5)),
            ("c".to_string(), row(10, 10, 0, 0)),
        ];
        let dist = traffic_distribution(&rows);
        assert_eq!(dist.captured_hits, 160);
        for curve in &dist.curves {
            for w in curve.cdf.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "{} not monotone", curve.label);
            }
            assert!((curve.cdf.last().unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn independent_normalization_per_class() {
        // All NXD traffic is at rank 3: its curve must start at 0.
        let rows = vec![
            ("a".to_string(), row(100, 0, 100, 0)),
            ("b".to_string(), row(50, 0, 50, 0)),
            ("c".to_string(), row(10, 10, 0, 0)),
        ];
        let dist = traffic_distribution(&rows);
        let nxd = dist.curves.iter().find(|c| c.label == "nxdomain").unwrap();
        assert_eq!(nxd.at_rank(2), 0.0);
        assert_eq!(nxd.at_rank(3), 1.0);
    }

    #[test]
    fn rank_for_share() {
        let rows = vec![
            ("a".to_string(), row(60, 0, 60, 0)),
            ("b".to_string(), row(30, 0, 30, 0)),
            ("c".to_string(), row(10, 0, 10, 0)),
        ];
        let dist = traffic_distribution(&rows);
        let all = &dist.curves[0];
        assert_eq!(all.rank_for_share(0.5), Some(1));
        assert_eq!(all.rank_for_share(0.9), Some(2));
        assert_eq!(all.rank_for_share(0.95), Some(3));
        assert_eq!(all.rank_for_share(1.1), None);
    }

    #[test]
    fn log_points_cover_range() {
        let rows: Vec<(String, FeatureRow)> = (0..250)
            .map(|i| (format!("k{i}"), row(1000 - i as u64, 0, 0, 0)))
            .collect();
        let dist = traffic_distribution(&rows);
        let pts = log_spaced_points(&dist.curves[0]);
        assert_eq!(pts.first().unwrap().0, 1);
        assert_eq!(pts.last().unwrap().0, 250);
        // Dense at the head, sparse at the tail.
        assert!(pts.len() < 60);
        assert!(pts.iter().any(|&(r, _)| r == 10));
    }

    #[test]
    fn empty_input() {
        let dist = traffic_distribution(&[]);
        assert_eq!(dist.captured_hits, 0);
        assert!(dist.curves[0].cdf.is_empty());
        assert_eq!(dist.curves[0].at_rank(5), 0.0);
    }
}
