//! AS-organization aggregation (paper §3.3, Table 1).
//!
//! Joins the `srvip` top list against a routing + AS-name database,
//! extracts organization names, and aggregates traffic share, server
//! counts, delays and hop counts per organization.

use crate::features::FeatureRow;
use asdb::AsDb;
use std::collections::{HashMap, HashSet};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct OrgRow {
    /// Organization name extracted from AS names.
    pub org: String,
    /// Number of distinct ASes observed for this org.
    pub ases: usize,
    /// Share of all observed DNS transactions (0..1).
    pub global_share: f64,
    /// Number of distinct nameserver IPs in the org's prefixes.
    pub servers: usize,
    /// Hit-weighted mean of per-server median response delay, ms.
    pub delay_ms: f64,
    /// Hit-weighted mean of per-server median hop count.
    pub hops: f64,
}

/// Compute the Table 1 rows from cumulative `srvip` rows.
///
/// `total_hits` normalizes `global_share`; pass the sum over the whole
/// top list (or the platform's total) — the paper uses the share of all
/// observed transactions.
pub fn org_table(rows: &[(String, FeatureRow)], asdb: &AsDb, total_hits: u64) -> Vec<OrgRow> {
    struct Acc {
        ases: HashSet<u32>,
        hits: u64,
        servers: usize,
        delay_weight: f64,
        delay_sum: f64,
        hops_sum: f64,
    }
    let mut orgs: HashMap<String, Acc> = HashMap::new();
    for (key, row) in rows {
        let Ok(ip) = key.parse::<std::net::IpAddr>() else {
            continue;
        };
        let Some(info) = asdb.lookup(ip) else {
            continue;
        };
        let acc = orgs.entry(info.org.clone()).or_insert_with(|| Acc {
            ases: HashSet::new(),
            hits: 0,
            servers: 0,
            delay_weight: 0.0,
            delay_sum: 0.0,
            hops_sum: 0.0,
        });
        acc.ases.insert(info.asn);
        acc.hits += row.hits;
        acc.servers += 1;
        let w = row.hits as f64;
        if !row.median_delay().is_nan() {
            acc.delay_sum += row.median_delay() * w;
            acc.hops_sum += row.median_hops() * w;
            acc.delay_weight += w;
        }
    }
    let mut out: Vec<OrgRow> = orgs
        .into_iter()
        .map(|(org, acc)| OrgRow {
            org,
            ases: acc.ases.len(),
            global_share: if total_hits > 0 {
                acc.hits as f64 / total_hits as f64
            } else {
                0.0
            },
            servers: acc.servers,
            delay_ms: if acc.delay_weight > 0.0 {
                acc.delay_sum / acc.delay_weight
            } else {
                f64::NAN
            },
            hops: if acc.delay_weight > 0.0 {
                acc.hops_sum / acc.delay_weight
            } else {
                f64::NAN
            },
        })
        .collect();
    out.sort_by(|a, b| {
        b.global_share
            .partial_cmp(&a.global_share)
            .unwrap()
            .then_with(|| a.org.cmp(&b.org))
    });
    out
}

/// Render the table as aligned text (for the experiment binaries).
pub fn format_org_table(rows: &[OrgRow], top: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<4}{:<22}{:>5}{:>9}{:>9}{:>9}{:>7}\n",
        "#", "Name", "ASes", "global", "servers", "delay", "hops"
    ));
    for (i, r) in rows.iter().take(top).enumerate() {
        s.push_str(&format!(
            "{:<4}{:<22}{:>5}{:>8.1}%{:>9}{:>8.1}m{:>7.1}\n",
            i + 1,
            r.org,
            r.ases,
            r.global_share * 100.0,
            r.servers,
            r.delay_ms,
            r.hops
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, FeatureSet};

    fn row(hits: u64, delay: f64, hops: f64) -> FeatureRow {
        let mut r = FeatureSet::new(FeatureConfig::default()).row();
        r.hits = hits;
        r.resp_delays = [delay * 0.8, delay, delay * 1.3];
        r.network_hops = [hops - 1.0, hops, hops + 1.0];
        r
    }

    fn db() -> AsDb {
        let mut db = AsDb::new();
        db.announce("10.0.0.0/8".parse().unwrap(), 100);
        db.announce("20.0.0.0/8".parse().unwrap(), 200);
        db.announce("20.128.0.0/9".parse().unwrap(), 201);
        db.register_as(100, "ALPHA - alpha networks");
        db.register_as(200, "BETA-01 - beta cloud");
        db.register_as(201, "BETA-02 - beta cloud east");
        db
    }

    #[test]
    fn aggregates_by_org() {
        let rows = vec![
            ("10.0.0.1".to_string(), row(100, 20.0, 8.0)),
            ("10.0.0.2".to_string(), row(50, 40.0, 10.0)),
            ("20.0.0.1".to_string(), row(300, 60.0, 12.0)),
            ("20.128.0.1".to_string(), row(50, 60.0, 12.0)),
        ];
        let table = org_table(&rows, &db(), 500);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].org, "BETA");
        assert_eq!(table[0].ases, 2);
        assert_eq!(table[0].servers, 2);
        assert!((table[0].global_share - 0.7).abs() < 1e-9);
        let alpha = &table[1];
        assert_eq!(alpha.org, "ALPHA");
        // Hit-weighted delay: (100*20 + 50*40) / 150 = 26.67.
        assert!((alpha.delay_ms - 26.666).abs() < 0.01);
    }

    #[test]
    fn unknown_ips_skipped() {
        let rows = vec![
            ("10.0.0.1".to_string(), row(10, 5.0, 3.0)),
            ("99.9.9.9".to_string(), row(1000, 5.0, 3.0)),
            ("not-an-ip".to_string(), row(1000, 5.0, 3.0)),
        ];
        let table = org_table(&rows, &db(), 2010);
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].org, "ALPHA");
    }

    #[test]
    fn format_is_stable() {
        let rows = vec![("10.0.0.1".to_string(), row(10, 5.0, 3.0))];
        let table = org_table(&rows, &db(), 10);
        let text = format_org_table(&table, 10);
        assert!(text.contains("ALPHA"));
        assert!(text.lines().count() == 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(org_table(&[], &db(), 0).is_empty());
    }
}
