//! QNAME-minimization detection (paper §3.6, Table 3).
//!
//! Works on the `srcsrv` dataset (resolver–nameserver pairs). The
//! classification is deliberately negative-only, as in the paper: a pair
//! is marked *non-qmin* when the resolver demonstrably sent more labels
//! than a minimizing resolver would; otherwise its status is unknown.
//! A resolver is reported as a *possible qmin resolver* when none of its
//! pairs show non-qmin behaviour anywhere.

use crate::features::FeatureRow;
use std::collections::HashMap;
use std::net::IpAddr;

/// Server level a pair talks to, for the Table 3 label rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerLevel {
    /// Root: qmin resolvers send ≤1 label.
    Root,
    /// TLD: qmin resolvers send ≤2 labels (≤3 with the multi-label
    /// whitelist).
    Tld,
    /// Anything else: unclassifiable.
    Other,
}

/// Verdict for one resolver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolverVerdict {
    /// Resolver address (as it appears in the dataset keys).
    pub resolver: String,
    /// Pairs with root servers that proved non-qmin.
    pub nonqmin_root_pairs: usize,
    /// Pairs with TLD servers that proved non-qmin.
    pub nonqmin_tld_pairs: usize,
    /// Pairs observed at root/TLD level in total.
    pub classified_pairs: usize,
    /// True when every observed root/TLD pair was consistent with qmin.
    pub possible_qmin: bool,
}

/// Configuration for the classifier.
pub struct QminConfig<F> {
    /// Classify the nameserver side of a pair into a level.
    pub level_of: F,
    /// Allow up to 3 labels at TLD servers (the lenient whitelist for
    /// registries hosting multi-label zones like `.co.uk`).
    pub lenient_tld: bool,
}

/// Run the classifier over cumulative `srcsrv` rows. Keys must have the
/// `resolver|nameserver` shape produced by [`crate::Dataset::SrcSrv`].
pub fn classify<F>(rows: &[(String, FeatureRow)], cfg: &QminConfig<F>) -> Vec<ResolverVerdict>
where
    F: Fn(IpAddr) -> ServerLevel,
{
    let mut per_resolver: HashMap<String, ResolverVerdict> = HashMap::new();
    let tld_limit = if cfg.lenient_tld { 3 } else { 2 };
    for (key, row) in rows {
        let Some((resolver, server)) = key.split_once('|') else {
            continue;
        };
        let Ok(server_ip) = server.parse::<IpAddr>() else {
            continue;
        };
        let level = (cfg.level_of)(server_ip);
        if level == ServerLevel::Other {
            continue;
        }
        let v = per_resolver
            .entry(resolver.to_string())
            .or_insert_with(|| ResolverVerdict {
                resolver: resolver.to_string(),
                nonqmin_root_pairs: 0,
                nonqmin_tld_pairs: 0,
                classified_pairs: 0,
                possible_qmin: true,
            });
        v.classified_pairs += 1;
        match level {
            ServerLevel::Root => {
                if row.qdots_max > 1 {
                    v.nonqmin_root_pairs += 1;
                    v.possible_qmin = false;
                }
            }
            ServerLevel::Tld => {
                if row.qdots_max > tld_limit {
                    v.nonqmin_tld_pairs += 1;
                    v.possible_qmin = false;
                }
            }
            ServerLevel::Other => unreachable!(),
        }
    }
    let mut out: Vec<ResolverVerdict> = per_resolver.into_values().collect();
    out.sort_by(|a, b| a.resolver.cmp(&b.resolver));
    out
}

/// Summary of the classification (the §3.6 headline numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QminSummary {
    /// Resolvers with at least one classified pair.
    pub resolvers: usize,
    /// Resolvers consistent with qmin everywhere.
    pub possible_qmin: usize,
    /// Fraction of qmin-consistent resolvers.
    pub qmin_fraction: f64,
}

/// Aggregate verdicts into the headline numbers.
pub fn summarize(verdicts: &[ResolverVerdict]) -> QminSummary {
    let resolvers = verdicts.len();
    let possible_qmin = verdicts.iter().filter(|v| v.possible_qmin).count();
    QminSummary {
        resolvers,
        possible_qmin,
        qmin_fraction: if resolvers > 0 {
            possible_qmin as f64 / resolvers as f64
        } else {
            0.0
        },
    }
}

/// The level classifier for the simulated world: root letters at
/// 198.41.L.4, gTLD letters at 192.(5+L).6.30, ccTLD servers in
/// 194.0.0.0/8.
pub fn sim_level_of(ip: IpAddr) -> ServerLevel {
    if super::delays::root_letter_of(ip).is_some() {
        return ServerLevel::Root;
    }
    if super::delays::gtld_letter_of(ip).is_some() {
        return ServerLevel::Tld;
    }
    match ip {
        IpAddr::V4(v4) if v4.octets()[0] == 194 => ServerLevel::Tld,
        _ => ServerLevel::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, FeatureSet};

    fn row(qdots_max: u8) -> FeatureRow {
        let mut r = FeatureSet::new(FeatureConfig::default()).row();
        r.hits = 10;
        r.qdots_max = qdots_max;
        r
    }

    fn cfg(lenient: bool) -> QminConfig<impl Fn(IpAddr) -> ServerLevel> {
        QminConfig {
            level_of: sim_level_of,
            lenient_tld: lenient,
        }
    }

    #[test]
    fn table3_rules() {
        let rows = vec![
            // resolver A: sends full names to root → non-qmin.
            ("10.0.0.1|198.41.0.4".to_string(), row(3)),
            // resolver B: 1 label to root, 2 to TLD → possible qmin.
            ("10.0.0.2|198.41.0.4".to_string(), row(1)),
            ("10.0.0.2|192.5.6.30".to_string(), row(2)),
            // resolver C: fine at root, leaks at TLD.
            ("10.0.0.3|198.41.1.4".to_string(), row(1)),
            ("10.0.0.3|192.6.6.30".to_string(), row(4)),
            // resolver D: only talks to SLD servers → unclassified.
            ("10.0.0.4|40.0.0.53".to_string(), row(9)),
        ];
        let verdicts = classify(&rows, &cfg(false));
        assert_eq!(verdicts.len(), 3, "resolver D is unclassifiable");
        let a = verdicts.iter().find(|v| v.resolver == "10.0.0.1").unwrap();
        assert!(!a.possible_qmin);
        assert_eq!(a.nonqmin_root_pairs, 1);
        let b = verdicts.iter().find(|v| v.resolver == "10.0.0.2").unwrap();
        assert!(b.possible_qmin);
        let c = verdicts.iter().find(|v| v.resolver == "10.0.0.3").unwrap();
        assert!(!c.possible_qmin);
        assert_eq!(c.nonqmin_tld_pairs, 1);

        let summary = summarize(&verdicts);
        assert_eq!(summary.resolvers, 3);
        assert_eq!(summary.possible_qmin, 1);
        assert!((summary.qmin_fraction - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lenient_whitelist_allows_three_labels_at_tld() {
        let rows = vec![("10.0.0.9|192.5.6.30".to_string(), row(3))];
        let strict = classify(&rows, &cfg(false));
        assert!(!strict[0].possible_qmin);
        let lenient = classify(&rows, &cfg(true));
        assert!(lenient[0].possible_qmin);
    }

    #[test]
    fn cctld_space_counts_as_tld() {
        assert_eq!(
            sim_level_of("194.1.2.10".parse().unwrap()),
            ServerLevel::Tld
        );
        assert_eq!(
            sim_level_of("198.41.3.4".parse().unwrap()),
            ServerLevel::Root
        );
        assert_eq!(
            sim_level_of("40.0.0.53".parse().unwrap()),
            ServerLevel::Other
        );
    }

    #[test]
    fn empty_input() {
        let verdicts = classify(&[], &cfg(false));
        assert!(verdicts.is_empty());
        let s = summarize(&verdicts);
        assert_eq!(s.resolvers, 0);
        assert_eq!(s.qmin_fraction, 0.0);
    }
}
