//! Analyses reproducing the paper's evaluation section by section:
//!
//! | Module | Paper result |
//! |---|---|
//! | [`distribution`] | Fig. 2 — traffic CDFs over ranked objects |
//! | [`asn`] | Table 1 — top AS organizations |
//! | [`qtypes`] | Table 2 — top QTYPEs |
//! | [`delays`] | Fig. 3 — response delays and hops |
//! | [`qmin`] | Table 3 / §3.6 — QNAME minimization detection |
//! | [`represent`] | Fig. 4 & 5 — data representativeness |
//! | [`hilbert`] | Fig. 6 — nameserver /24 heatmap |
//! | [`ttl`] | Fig. 7 & 8, Table 4 — TTL dynamics and change detection |
//! | [`happy`] | Fig. 9 / §5 — Happy Eyeballs and negative caching |

pub mod asn;
pub mod delays;
pub mod distribution;
pub mod happy;
pub mod hilbert;
pub mod qmin;
pub mod qtypes;
pub mod represent;
pub mod ttl;
