//! Data-representativeness experiments (paper §3.7, Figures 4 and 5).
//!
//! Figure 4 subsamples the resolver population and measures what a
//! partial vantage-point set would have seen: distinct nameservers (4a),
//! coverage of the full-data top-k nameserver list (4b), and distinct
//! TLDs (4c). Figure 5 grows the observation time instead.

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// The minimal per-transaction record these experiments need.
#[derive(Debug, Clone)]
pub struct ReprRecord {
    /// Stream time, seconds.
    pub time: f64,
    /// Resolver address.
    pub resolver: IpAddr,
    /// Nameserver address.
    pub nameserver: IpAddr,
    /// TLD of the QNAME, if any.
    pub tld: Option<String>,
}

/// One point of the Figure 4 curves.
#[derive(Debug, Clone)]
pub struct SamplePoint {
    /// Fraction of resolvers used, in (0, 1].
    pub fraction: f64,
    /// Mean distinct nameservers seen (over repetitions).
    pub nameservers: f64,
    /// Mean distinct TLDs seen.
    pub tlds: f64,
    /// Mean coverage of the full-data top-k nameserver list, in [0, 1].
    pub topk_coverage: f64,
}

/// Deterministic shuffle of the resolver pool for one repetition.
fn shuffled(pool: &[IpAddr], seed: u64) -> Vec<IpAddr> {
    let mut v = pool.to_vec();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// Run the Figure 4 experiment: for each fraction, take `reps` random
/// resolver samples and average what each sample observes.
///
/// `topk` is the size of the reference top list (the paper uses 10 000;
/// scale it to your run).
pub fn sample_curves(
    records: &[ReprRecord],
    resolver_pool: &[IpAddr],
    fractions: &[f64],
    reps: usize,
    topk: usize,
    seed: u64,
) -> Vec<SamplePoint> {
    // Index transactions per resolver once.
    let mut by_resolver: HashMap<IpAddr, Vec<usize>> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        by_resolver.entry(r.resolver).or_default().push(i);
    }
    // Full-data reference top list by transaction count.
    let mut counts: HashMap<IpAddr, u64> = HashMap::new();
    for r in records {
        *counts.entry(r.nameserver).or_default() += 1;
    }
    let mut ranked: Vec<(IpAddr, u64)> = counts.into_iter().collect();
    ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let reference: HashSet<IpAddr> = ranked.iter().take(topk).map(|&(ip, _)| ip).collect();

    let mut out = Vec::with_capacity(fractions.len());
    for &fraction in fractions {
        let take = ((fraction * resolver_pool.len() as f64).round() as usize)
            .clamp(1, resolver_pool.len());
        let mut ns_sum = 0.0;
        let mut tld_sum = 0.0;
        let mut cov_sum = 0.0;
        for rep in 0..reps {
            let sample = shuffled(resolver_pool, seed ^ (rep as u64) << 17 ^ take as u64);
            let mut ns_seen: HashSet<IpAddr> = HashSet::new();
            let mut tld_seen: HashSet<&str> = HashSet::new();
            for resolver in sample.into_iter().take(take) {
                if let Some(idxs) = by_resolver.get(&resolver) {
                    for &i in idxs {
                        ns_seen.insert(records[i].nameserver);
                        if let Some(tld) = &records[i].tld {
                            tld_seen.insert(tld.as_str());
                        }
                    }
                }
            }
            ns_sum += ns_seen.len() as f64;
            tld_sum += tld_seen.len() as f64;
            if !reference.is_empty() {
                let covered = reference.iter().filter(|ip| ns_seen.contains(ip)).count();
                cov_sum += covered as f64 / reference.len() as f64;
            }
        }
        let n = reps as f64;
        out.push(SamplePoint {
            fraction,
            nameservers: ns_sum / n,
            tlds: tld_sum / n,
            topk_coverage: cov_sum / n,
        });
    }
    out
}

/// Figure 5: cumulative distinct nameservers as observation time grows.
/// Returns `(time, distinct_nameservers)` at each multiple of `step`.
pub fn nameservers_over_time(records: &[ReprRecord], step: f64) -> Vec<(f64, usize)> {
    assert!(step > 0.0);
    let mut sorted: Vec<&ReprRecord> = records.iter().collect();
    sorted.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
    let mut seen: HashSet<IpAddr> = HashSet::new();
    let mut out = Vec::new();
    let mut next_tick = step;
    for r in sorted {
        while r.time >= next_tick {
            out.push((next_tick, seen.len()));
            next_tick += step;
        }
        seen.insert(r.nameserver);
    }
    out.push((next_tick, seen.len()));
    out
}

/// §3.7's /24 dispersion statistic: how many observed IPv4 /24 prefixes
/// contain exactly 1, 2, 3, … nameserver addresses. Returns
/// `(total_prefixes, histogram over address counts)`.
pub fn slash24_dispersion(nameservers: &HashSet<IpAddr>) -> (usize, HashMap<usize, usize>) {
    let mut per_prefix: HashMap<[u8; 3], usize> = HashMap::new();
    for ip in nameservers {
        if let IpAddr::V4(v4) = ip {
            let o = v4.octets();
            *per_prefix.entry([o[0], o[1], o[2]]).or_default() += 1;
        }
    }
    let total = per_prefix.len();
    let mut histogram: HashMap<usize, usize> = HashMap::new();
    for count in per_prefix.into_values() {
        *histogram.entry(count).or_default() += 1;
    }
    (total, histogram)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64, resolver: u8, ns: u16, tld: &str) -> ReprRecord {
        ReprRecord {
            time: t,
            resolver: format!("100.64.0.{resolver}").parse().unwrap(),
            nameserver: format!("60.{}.{}.1", ns / 256, ns % 256).parse().unwrap(),
            tld: Some(tld.to_string()),
        }
    }

    fn pool(n: u8) -> Vec<IpAddr> {
        (0..n)
            .map(|i| format!("100.64.0.{i}").parse().unwrap())
            .collect()
    }

    #[test]
    fn curves_grow_with_fraction() {
        // 10 resolvers, each seeing a partially-overlapping server set.
        let mut records = Vec::new();
        for r in 0..10u8 {
            for s in 0..20u16 {
                records.push(rec(r as f64, r, (r as u16) * 10 + s, "com"));
            }
        }
        let points = sample_curves(&records, &pool(10), &[0.1, 0.5, 1.0], 5, 50, 42);
        assert_eq!(points.len(), 3);
        assert!(points[0].nameservers < points[1].nameservers);
        assert!(points[1].nameservers < points[2].nameservers);
        // Full sample sees everything: 10*10+20-10 … just check the max.
        let all: HashSet<IpAddr> = records.iter().map(|r| r.nameserver).collect();
        assert!((points[2].nameservers - all.len() as f64).abs() < 1e-9);
        assert!((points[2].topk_coverage - 1.0).abs() < 1e-9);
    }

    #[test]
    fn popular_servers_visible_in_small_samples() {
        // One server seen by every resolver, the rest seen by one each.
        let mut records = Vec::new();
        for r in 0..20u8 {
            records.push(rec(0.0, r, 0, "com")); // the popular one
            records.push(rec(0.0, r, 100 + r as u16, "net"));
        }
        let points = sample_curves(&records, &pool(20), &[0.05], 10, 1, 7);
        // The top-1 list (the popular server) is covered by any sample.
        assert!((points[0].topk_coverage - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_curve_is_monotone() {
        let mut records = Vec::new();
        for i in 0..100u16 {
            records.push(rec(i as f64, 0, i / 2, "com"));
        }
        let curve = nameservers_over_time(&records, 10.0);
        assert!(curve.len() >= 10);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, 50);
    }

    #[test]
    fn dispersion_counts_prefixes() {
        let mut set: HashSet<IpAddr> = HashSet::new();
        set.insert("60.0.0.1".parse().unwrap());
        set.insert("60.0.0.2".parse().unwrap()); // same /24
        set.insert("60.0.1.1".parse().unwrap());
        set.insert("61.0.0.1".parse().unwrap());
        set.insert("2001:db8::1".parse().unwrap()); // ignored (v6)
        let (total, hist) = slash24_dispersion(&set);
        assert_eq!(total, 3);
        assert_eq!(hist.get(&1), Some(&2));
        assert_eq!(hist.get(&2), Some(&1));
    }

    #[test]
    fn deterministic_given_seed() {
        let records: Vec<ReprRecord> = (0..50)
            .map(|i| rec(i as f64, (i % 10) as u8, i as u16, "org"))
            .collect();
        let a = sample_curves(&records, &pool(10), &[0.3], 4, 10, 99);
        let b = sample_curves(&records, &pool(10), &[0.3], 4, 10, 99);
        assert_eq!(a[0].nameservers, b[0].nameservers);
    }
}
