//! Top-k object tracking (paper §2.2, step C): Space-Saving cache with a
//! Bloom-filter eviction gate and the 60-second residency rule.

use crate::features::{FeatureConfig, FeatureSet};
use crate::keys::{Dataset, Key, KeyBuf};
use crate::summarize::TxSummary;
use sketches::{BloomFilter, SpaceSaving};

/// Half-life of the per-object rate estimate, seconds.
const RATE_HALFLIFE: f64 = 60.0;

/// One dataset's tracker: key extraction + Space-Saving + features.
///
/// The hot path is allocation-free in the steady state: keys are encoded
/// into a reusable [`KeyBuf`] scratch buffer and looked up by borrowed
/// bytes; an owned [`Key`] is built only when an object actually enters
/// the cache.
#[derive(Debug)]
pub struct TopKTracker {
    dataset: Dataset,
    ss: SpaceSaving<Key, FeatureSet>,
    /// Eviction gate: a key must have been seen before (within the current
    /// Bloom generation) to displace a monitored object.
    bloom: Option<BloomFilter>,
    feature_cfg: FeatureConfig,
    /// Reusable key-encoding scratch; lives here so `observe` allocates
    /// nothing per transaction.
    keybuf: KeyBuf,
    /// Transactions dropped because their object is not monitored.
    dropped: u64,
    /// Transactions aggregated into a monitored object.
    kept: u64,
    /// Transactions skipped by the dataset's input filter.
    filtered: u64,
}

impl TopKTracker {
    /// Create a tracker for `dataset` with capacity `k`.
    pub fn new(dataset: Dataset, k: usize, feature_cfg: FeatureConfig, bloom_gate: bool) -> Self {
        TopKTracker {
            dataset,
            ss: SpaceSaving::new(k, RATE_HALFLIFE),
            bloom: bloom_gate.then(|| BloomFilter::new(4 * k.max(1_024), 0.02)),
            feature_cfg,
            keybuf: KeyBuf::new(),
            dropped: 0,
            kept: 0,
            filtered: 0,
        }
    }

    /// The dataset this tracker aggregates.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// Rebuild a tracker from serialized state captured at a window
    /// boundary — the historical store's crash-recovery path.
    ///
    /// [`TopKTracker::export_state`] resets every feature set as it
    /// exports, so the tracker this rebuilds — historical counts, error
    /// terms, insertion times, bucket order, and the admission-gate
    /// bloom, all under *fresh* feature state — is exactly the
    /// post-export tracker: feeding both the same subsequent traffic
    /// yields the same exports, saturated or not (entries arrive in the
    /// export's restore order, which reproduces eviction-victim choices;
    /// the serialized gate reproduces admission decisions).
    /// `kept`/`dropped`/`filtered` restart at zero; the exporter computes
    /// per-window deltas against its own boundary snapshot, so absolute
    /// restart does not skew any window's statistics.
    ///
    /// `state` must be whole (`chunks == 1`; reassemble with
    /// `merge_chunks` first) and must name a known dataset with
    /// renderable keys — anything else is a typed error.
    pub fn restore(
        state: &sketchwire::TopKState,
        feature_cfg: FeatureConfig,
        bloom_gate: bool,
    ) -> Result<TopKTracker, sketchwire::StateError> {
        use sketchwire::StateError;
        if state.chunks != 1 {
            return Err(StateError::ChunkMismatch("restore from unassembled chunk"));
        }
        let dataset = Dataset::from_name(&state.dataset)
            .ok_or(StateError::LayoutMismatch("unknown dataset name"))?;
        if state.capacity == 0 || state.capacity > usize::MAX as u64 {
            return Err(StateError::LayoutMismatch("restore capacity out of range"));
        }
        let mut tracker =
            TopKTracker::new(dataset, state.capacity as usize, feature_cfg, bloom_gate);
        // Reinstall the serialized admission gate bit-exact: hashing is
        // deterministic, so the restored gate answers every future probe
        // the way the original would have — which is what makes resume
        // exact even for saturated trackers.
        if bloom_gate {
            if let Some(g) = &state.gate {
                tracker.bloom = Some(
                    g.to_filter()
                        .ok_or(StateError::LayoutMismatch("inconsistent gate state"))?,
                );
            }
        }
        for e in &state.entries {
            let key = Key::from_render(dataset, &e.key)
                .ok_or(StateError::LayoutMismatch("unrenderable key"))?;
            if !tracker.ss.restore_entry(
                key,
                e.count,
                e.error,
                e.inserted_at,
                FeatureSet::new(feature_cfg),
            ) {
                return Err(StateError::LayoutMismatch(
                    "duplicate or over-capacity restore entry",
                ));
            }
        }
        tracker.ss.restore_totals(state.observed, state.evictions);
        Ok(tracker)
    }

    /// Feed one summary. Steady state (object already monitored) performs
    /// no allocation: the key is encoded into the reusable scratch buffer
    /// and looked up by borrowed bytes.
    pub fn observe(&mut self, s: &TxSummary) {
        if !self.dataset.key_into(s, &mut self.keybuf) {
            self.filtered += 1;
            return;
        }
        let keybuf = &self.keybuf;
        // The Bloom gate only applies when the key would *displace* a
        // monitored object: if the cache is full and the key is unknown,
        // require a second sighting first.
        if let Some(bloom) = &mut self.bloom {
            let full = self.ss.len() == self.ss.capacity();
            if full && self.ss.count(keybuf.as_bytes()).is_none() {
                let seen_before = bloom.check_and_insert(keybuf.as_bytes());
                if !seen_before {
                    self.dropped += 1;
                    return;
                }
                // Generation rotation keeps the filter from saturating.
                if bloom.fill_ratio() > 0.5 {
                    bloom.clear();
                }
            }
        }
        let cfg = self.feature_cfg;
        let fs = self.ss.observe_with_ref(
            keybuf.as_bytes(),
            s.time,
            || keybuf.to_key(),
            || FeatureSet::new(cfg),
        );
        fs.fold(s);
        self.kept += 1;
    }

    /// Monitored object count.
    pub fn len(&self) -> usize {
        self.ss.len()
    }

    /// True if nothing is monitored yet.
    pub fn is_empty(&self) -> bool {
        self.ss.is_empty()
    }

    /// `(kept, dropped, filtered)` transaction counts — the paper's "data
    /// collection statistics" row at the end of each TSV file.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.kept, self.dropped, self.filtered)
    }

    /// Monitored objects displaced so far (Space-Saving `replace_min`
    /// calls) — the churn number the telemetry layer exports.
    pub fn evictions(&self) -> u64 {
        self.ss.evictions()
    }

    /// Smallest monitored count — the Space-Saving error bound on any
    /// reported frequency.
    pub fn min_count(&self) -> u64 {
        self.ss.min_count()
    }

    /// Worst-case over-count bound (observed / capacity).
    pub fn error_bound(&self) -> u64 {
        self.ss.error_bound()
    }

    /// Export the tracker's full state for one window as a wire-ready
    /// [`sketchwire::TopKState`], then reset all feature state (the top-k
    /// list itself stays intact, exactly like [`TopKTracker::dump`]).
    ///
    /// *Every* monitored entry is exported, including zero-hit ones: the
    /// federated merge law needs to know which keys each collector
    /// tracked (a key absent from an input gains that input's
    /// `min_count` on both bounds). Residency and the hit filter are
    /// re-applied when the merged global window is rendered. `kept`,
    /// `dropped`, and `filtered` are this window's deltas, computed by
    /// the caller against the previous window boundary.
    pub fn export_state(
        &mut self,
        kept: u64,
        dropped: u64,
        filtered: u64,
    ) -> sketchwire::TopKState {
        let entries = self
            .ss
            // Restore order (count-descending; canonical within ties):
            // re-inserting in this order reproduces the eviction-victim
            // chains, which keeps a `--store DIR` resume exact even for
            // saturated trackers.
            .iter_restore()
            .into_iter()
            .map(|e| sketchwire::TopKEntry {
                key: e.key.render(),
                count: e.count,
                error: e.error,
                inserted_at: e.inserted_at,
                features: e.value.to_state(),
            })
            .collect();
        self.ss.for_each_value(|_, _, _, _, fs| fs.reset());
        sketchwire::TopKState {
            dataset: self.dataset.name().to_string(),
            capacity: self.ss.capacity() as u64,
            observed: self.ss.observed(),
            min_count: self.ss.min_count(),
            error_bound: self.ss.error_bound(),
            evictions: self.ss.evictions(),
            kept,
            dropped,
            filtered,
            chunk: 0,
            chunks: 1,
            entries,
            // The admission gate is live tracker state: without it a
            // resumed saturated tracker would re-admit keys the original
            // would have filtered, and the export streams would diverge.
            gate: self.bloom.as_ref().map(sketchwire::GateState::from_filter),
        }
    }

    /// Capture one window: render every object's features, reset the
    /// feature state, keep the top-k list intact.
    ///
    /// Objects inserted after `window_start` are skipped — they did not
    /// survive a full window in the cache (paper §2.4's residency rule) —
    /// but their state is still reset so the next window starts clean.
    pub fn dump(&mut self, window_start: f64) -> Vec<(String, crate::features::FeatureRow)> {
        let mut rows = Vec::with_capacity(self.ss.len());
        // One pass: residency comes straight from each entry's insertion
        // time, so only emitted rows pay a key rendering (and nothing is
        // cloned into a side set, as the old two-pass version did).
        self.ss
            .for_each_value(|key, _count, _rate, inserted_at, fs| {
                if inserted_at <= window_start && fs.hits() > 0 {
                    rows.push((key.render(), fs.row()));
                }
                fs.reset();
            });
        // Deterministic output order: by hits desc, then key.
        rows.sort_by(|a, b| b.1.hits.cmp(&a.1.hits).then_with(|| a.0.cmp(&b.0)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psl::Psl;
    use simnet::{SimConfig, Simulation};

    fn feed(tracker: &mut TopKTracker, secs: f64) {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        sim.run(secs, &mut |tx| {
            tracker.observe(&TxSummary::from_transaction(tx, &psl));
        });
    }

    #[test]
    fn tracks_top_nameservers() {
        let mut t = TopKTracker::new(Dataset::SrvIp, 100, FeatureConfig::default(), false);
        feed(&mut t, 2.0);
        assert!(!t.is_empty());
        let (kept, dropped, filtered) = t.stats();
        assert!(kept > 0);
        assert_eq!(filtered, 0, "srvip keys every tx");
        let _ = dropped;
    }

    #[test]
    fn dump_resets_but_keeps_list() {
        let mut t = TopKTracker::new(Dataset::Qtype, 32, FeatureConfig::default(), false);
        feed(&mut t, 1.0);
        let before_len = t.len();
        let rows = t.dump(2.0); // window began after every insertion
        assert!(!rows.is_empty());
        assert_eq!(t.len(), before_len, "top-k list must survive the dump");
        // After a dump with no new traffic, all feature state is empty.
        let rows2 = t.dump(2.0);
        assert!(rows2.is_empty(), "no hits since reset → no rows");
    }

    #[test]
    fn residency_rule_skips_new_objects() {
        let mut t = TopKTracker::new(Dataset::Qtype, 32, FeatureConfig::default(), false);
        feed(&mut t, 1.0);
        // Window started *after* every insertion time (sim times ≤1.0):
        // dump at window_start=2.0 keeps everything (inserted ≤ 2.0)...
        let rows = t.dump(2.0);
        assert!(!rows.is_empty());
        // ...while a dump claiming the window started at t=-1 (before any
        // insertion) must skip all objects.
        let mut t2 = TopKTracker::new(Dataset::Qtype, 32, FeatureConfig::default(), false);
        feed(&mut t2, 1.0);
        let rows2 = t2.dump(-1.0);
        assert!(rows2.is_empty());
    }

    #[test]
    fn rows_are_sorted_by_hits() {
        let mut t = TopKTracker::new(Dataset::SrvIp, 200, FeatureConfig::default(), false);
        feed(&mut t, 2.0);
        let rows = t.dump(2.0);
        for w in rows.windows(2) {
            assert!(w[0].1.hits >= w[1].1.hits);
        }
    }

    #[test]
    fn bloom_gate_reduces_churn() {
        // A tiny cache over FQNs with heavy one-shot noise: the gated
        // tracker must aggregate more traffic into its monitored objects
        // (fewer useless evictions) than the ungated one.
        let psl = Psl::embedded();
        let cfg = SimConfig {
            weight_botnet: 40.0, // unique names: pure churn
            ..SimConfig::small()
        };
        let mut gated = TopKTracker::new(Dataset::Qname, 64, FeatureConfig::default(), true);
        let mut raw = TopKTracker::new(Dataset::Qname, 64, FeatureConfig::default(), false);
        let mut sim = Simulation::from_config(cfg);
        sim.run(2.0, &mut |tx| {
            let s = TxSummary::from_transaction(tx, &psl);
            gated.observe(&s);
            raw.observe(&s);
        });
        let (_, gated_dropped, _) = gated.stats();
        assert!(gated_dropped > 0, "gate should drop one-shot names");
        // The gated tracker's monitored objects hold at least about as
        // many total hits as the ungated one (popular objects were not
        // evicted by churn). Small-sample noise allows a few per cent of
        // slack; what must not happen is the gate *costing* real traffic.
        let gated_hits: u64 = gated.dump(3.0).iter().map(|r| r.1.hits).sum();
        let raw_hits: u64 = raw.dump(3.0).iter().map(|r| r.1.hits).sum();
        assert!(
            gated_hits as f64 >= 0.9 * raw_hits as f64,
            "gated {gated_hits} far below raw {raw_hits}"
        );
    }

    #[test]
    fn restore_resumes_export_stream() {
        let psl = Psl::embedded();
        let mut summaries = Vec::new();
        let mut sim = Simulation::from_config(SimConfig::small());
        sim.run(2.0, &mut |tx| {
            summaries.push(TxSummary::from_transaction(tx, &psl));
        });
        let mid = summaries.len() / 2;

        // Live tracker sees everything, exporting (and resetting
        // features) at the midpoint boundary. Capacity above the
        // sample's distinct-key count: the unsaturated base case (the
        // saturated, gated case is covered below).
        let cfg = FeatureConfig::default();
        let mut live = TopKTracker::new(Dataset::SrvIp, 20_000, cfg, false);
        for s in &summaries[..mid] {
            live.observe(s);
        }
        let boundary = live.export_state(0, 0, 0);
        assert_eq!(boundary.evictions, 0, "test premise: unsaturated cache");
        let mut restored = TopKTracker::restore(&boundary, cfg, false).expect("restore");
        assert_eq!(restored.len(), live.len());
        assert_eq!(restored.min_count(), live.min_count());
        assert_eq!(restored.error_bound(), live.error_bound());

        for s in &summaries[mid..] {
            live.observe(s);
            restored.observe(s);
        }
        // Unsaturated caches: the next exports must agree entry-for-entry
        // (canonical key order; tie order within equal counts is the only
        // representation freedom).
        let canon = |mut st: sketchwire::TopKState| {
            st.entries.sort_by(|a, b| a.key.cmp(&b.key));
            st
        };
        let a = canon(live.export_state(0, 0, 0));
        let b = canon(restored.export_state(0, 0, 0));
        assert_eq!(a, b, "restored tracker must resume the export stream");
    }

    #[test]
    fn restore_resumes_saturated_gated_tracker() {
        // The hard case the serialized gate and restore order exist for:
        // a tiny gated cache under heavy churn, split mid-stream. The
        // restored tracker must make the same admission decisions (gate
        // bits are bit-exact) and evict the same victims (bucket chains
        // are reproduced), so the subsequent exports agree exactly.
        let psl = Psl::embedded();
        let cfg = SimConfig {
            weight_botnet: 40.0, // unique names: saturates a tiny cache
            ..SimConfig::small()
        };
        let mut summaries = Vec::new();
        let mut sim = Simulation::from_config(cfg);
        sim.run(2.0, &mut |tx| {
            summaries.push(TxSummary::from_transaction(tx, &psl));
        });
        let mid = summaries.len() / 2;

        let fcfg = FeatureConfig::default();
        let mut live = TopKTracker::new(Dataset::Qname, 64, fcfg, true);
        for s in &summaries[..mid] {
            live.observe(s);
        }
        let at_boundary = live.stats();
        let boundary = live.export_state(0, 0, 0);
        assert!(boundary.evictions > 0, "test premise: saturated cache");
        assert!(boundary.gate.is_some(), "gated export carries the gate");

        let mut restored = TopKTracker::restore(&boundary, fcfg, true).expect("restore");
        for s in &summaries[mid..] {
            live.observe(s);
            restored.observe(s);
        }
        // The restored tracker's counters restart at zero, so compare
        // the live tracker's post-boundary deltas.
        let (lk, ld, lf) = live.stats();
        let (bk, bd, bf) = at_boundary;
        assert_eq!(
            (lk - bk, ld - bd, lf - bf),
            restored.stats(),
            "admission decisions"
        );
        assert_eq!(live.evictions(), restored.evictions());
        let a = live.export_state(0, 0, 0);
        let b = restored.export_state(0, 0, 0);
        assert_eq!(a, b, "saturated gated resume must be exact");
    }

    #[test]
    fn restore_rejects_malformed_state() {
        let mut t = TopKTracker::new(Dataset::SrvIp, 16, FeatureConfig::default(), false);
        feed(&mut t, 0.5);
        let good = t.export_state(0, 0, 0);
        let cfg = FeatureConfig::default();
        let mut unknown = good.clone();
        unknown.dataset = "mystery".into();
        assert!(TopKTracker::restore(&unknown, cfg, false).is_err());
        let mut chunked = good.clone();
        chunked.chunks = 2;
        assert!(TopKTracker::restore(&chunked, cfg, false).is_err());
        let mut badkey = good.clone();
        if let Some(e) = badkey.entries.first_mut() {
            e.key = "not an ip".into();
            assert!(TopKTracker::restore(&badkey, cfg, false).is_err());
        }
    }

    #[test]
    fn filter_counts_for_aafqdn() {
        let mut t = TopKTracker::new(Dataset::AaFqdn, 100, FeatureConfig::default(), false);
        feed(&mut t, 1.0);
        let (kept, _, filtered) = t.stats();
        assert!(kept > 0);
        assert!(filtered > 0, "referrals must be filtered out");
    }
}
