//! Per-object traffic features (paper §2.3, step D).
//!
//! Each tracked object owns a [`FeatureSet`] — live sketch state folded
//! over the summaries attributed to it within the current 60-second
//! window. At window boundaries the set is rendered into a plain-number
//! [`FeatureRow`] and reset, without disturbing the top-k list itself.

use crate::summarize::{Outcome, TxSummary};
use serde::{Deserialize, Serialize};
use sketches::{HyperLogLog, LogHistogram, TopValues};
use sketchwire::StateError;
use std::collections::BTreeSet;

/// Positional layout contract of a serialized [`FeatureSet`] — the order
/// in which counters, sketches, and distributions appear inside a
/// [`sketchwire::FeatureState`]. Owned by this module: [`FeatureSet::to_state`]
/// writes it, [`FeatureSet::from_state`] refuses anything else.
///
/// `adds`: hits, unans, ok, nxd, rfs, fail, ok_ans, ok_ns, ok_add,
/// ok_nil, ok6, ok6nil, ok_sec, qdots_sum, lvl_sum, nslvl_sum, answered.
/// `maxes`: qdots_max. `hlls`: srvips, srcips, qnamesa, qnames, tlds,
/// eslds, qtypes, ip4s, ip6s. `tops`: ttl, ttl_a, nsttl, negttl, a_data,
/// ns_names. `hists`: resp_delays, network_hops, resp_size.
pub const STATE_ADDS: usize = 17;
/// Max-merged scalar count in the layout contract.
pub const STATE_MAXES: usize = 1;
/// HyperLogLog count in the layout contract.
pub const STATE_HLLS: usize = 9;
/// Top-value table count in the layout contract.
pub const STATE_TOPS: usize = 6;
/// Histogram count in the layout contract.
pub const STATE_HISTS: usize = 3;
/// Exact-contributor-set cap (matches the fold-path cap).
pub const STATE_SOURCE_CAP: u64 = 4_096;

/// Sizing knobs for per-object sketches. The defaults balance accuracy
/// against the memory of 10⁵ tracked objects.
#[derive(Debug, Clone, Copy)]
pub struct FeatureConfig {
    /// HyperLogLog precision for per-object cardinalities (2^p registers).
    pub hll_precision: u8,
    /// Distinct TTL values tracked exactly per object.
    pub ttl_slots: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            hll_precision: 7,
            ttl_slots: 8,
        }
    }
}

/// Live sketch state for one tracked object.
#[derive(Debug, Clone)]
pub struct FeatureSet {
    /// Construction config, kept so [`FeatureSet::reset`] preserves it.
    cfg: FeatureConfig,
    // --- counters ---------------------------------------------------------
    hits: u64,
    unans: u64,
    ok: u64,
    nxd: u64,
    rfs: u64,
    fail: u64,
    ok_ans: u64,
    ok_ns: u64,
    ok_add: u64,
    ok_nil: u64,
    ok6: u64,
    ok6nil: u64,
    ok_sec: u64,
    // --- averages ----------------------------------------------------------
    qdots_sum: u64,
    lvl_sum: u64,
    nslvl_sum: u64,
    answered: u64,
    // --- cardinalities ------------------------------------------------------
    srvips: HyperLogLog,
    srcips: HyperLogLog,
    qnamesa: HyperLogLog,
    qnames: HyperLogLog,
    tlds: HyperLogLog,
    eslds: HyperLogLog,
    qtypes: HyperLogLog,
    ip4s: HyperLogLog,
    ip6s: HyperLogLog,
    /// Exact contributor set (small by construction).
    sources: BTreeSet<u16>,
    // --- distributions ------------------------------------------------------
    ttl: TopValues,
    ttl_a: TopValues,
    nsttl: TopValues,
    negttl: TopValues,
    a_data: TopValues,
    ns_names: TopValues,
    resp_delays: LogHistogram,
    network_hops: LogHistogram,
    resp_size: LogHistogram,
    // --- meta ----------------------------------------------------------------
    qdots_max: u8,
}

impl FeatureSet {
    /// Fresh, empty feature state.
    pub fn new(cfg: FeatureConfig) -> FeatureSet {
        let hll = || HyperLogLog::new(cfg.hll_precision);
        FeatureSet {
            cfg,
            hits: 0,
            unans: 0,
            ok: 0,
            nxd: 0,
            rfs: 0,
            fail: 0,
            ok_ans: 0,
            ok_ns: 0,
            ok_add: 0,
            ok_nil: 0,
            ok6: 0,
            ok6nil: 0,
            ok_sec: 0,
            qdots_sum: 0,
            lvl_sum: 0,
            nslvl_sum: 0,
            answered: 0,
            srvips: hll(),
            srcips: hll(),
            qnamesa: hll(),
            qnames: hll(),
            tlds: hll(),
            eslds: hll(),
            qtypes: hll(),
            ip4s: hll(),
            ip6s: hll(),
            sources: BTreeSet::new(),
            ttl: TopValues::new(cfg.ttl_slots),
            ttl_a: TopValues::new(cfg.ttl_slots),
            nsttl: TopValues::new(cfg.ttl_slots),
            negttl: TopValues::new(cfg.ttl_slots),
            a_data: TopValues::new(cfg.ttl_slots),
            ns_names: TopValues::new(cfg.ttl_slots),
            resp_delays: LogHistogram::new(0.2, 10_000.0, 10),
            network_hops: LogHistogram::new(1.0, 64.0, 20),
            resp_size: LogHistogram::new(12.0, 9_000.0, 10),
            qdots_max: 0,
        }
    }

    /// Fold one summary into the state.
    pub fn fold(&mut self, s: &TxSummary) {
        self.hits += 1;
        match s.outcome {
            Outcome::Unanswered => self.unans += 1,
            Outcome::NoError => self.ok += 1,
            Outcome::NxDomain => self.nxd += 1,
            Outcome::Refused => self.rfs += 1,
            Outcome::ServFail => self.fail += 1,
            Outcome::OtherError => {}
        }
        if s.outcome == Outcome::NoError {
            if s.ok_ans {
                self.ok_ans += 1;
            }
            if s.ok_ns {
                self.ok_ns += 1;
            }
            if s.ok_add {
                self.ok_add += 1;
            }
            if s.is_nodata() {
                self.ok_nil += 1;
            }
            if s.qtype == dnswire::RecordType::Aaaa {
                self.ok6 += 1;
                if s.is_nodata() {
                    self.ok6nil += 1;
                }
            }
            if s.dnssec_ok {
                self.ok_sec += 1;
            }
            self.qnames.insert(s.qname.as_wire());
            if let Some(tld) = &s.tld {
                self.tlds.insert(tld.as_bytes());
            }
            if let Some(esld) = &s.esld {
                self.eslds.insert(esld.as_bytes());
            }
            for a in &s.ip4s {
                self.ip4s.insert(&a.octets());
            }
            for a in &s.ip6s {
                self.ip6s.insert(&a.octets());
            }
        }
        if s.outcome != Outcome::Unanswered {
            self.answered += 1;
            self.lvl_sum += s.answer_count as u64;
            self.nslvl_sum += s.authority_ns_count as u64;
            if let Some(d) = s.delay_ms {
                self.resp_delays.record(d);
            }
            if let Some(h) = s.hops {
                self.network_hops.record(h as f64);
            }
            if let Some(sz) = s.resp_size {
                self.resp_size.record(sz as f64);
            }
            if let Some(ttl) = s.answer_ttl {
                self.ttl.record(ttl as u64);
                if s.qtype == dnswire::RecordType::A {
                    self.ttl_a.record(ttl as u64);
                }
                if s.qtype == dnswire::RecordType::Ns {
                    self.nsttl.record(ttl as u64);
                }
            }
            if let Some(ttl) = s.ns_ttl {
                self.nsttl.record(ttl as u64);
            }
            if let Some(m) = s.soa_minimum {
                if s.is_nodata() || s.outcome == Outcome::NxDomain {
                    self.negttl.record(m as u64);
                }
            }
            for &h in &s.answer_data_hashes {
                self.a_data.record(h);
            }
            for &h in &s.ns_name_hashes {
                self.ns_names.record(h);
            }
        }
        self.qdots_sum += s.qdots as u64;
        self.qdots_max = self.qdots_max.max(s.qdots);
        self.qnamesa.insert(s.qname.as_wire());
        self.qtypes.insert(&s.qtype.code().to_be_bytes());
        match s.nameserver {
            std::net::IpAddr::V4(v4) => self.srvips.insert(&v4.octets()),
            std::net::IpAddr::V6(v6) => self.srvips.insert(&v6.octets()),
        }
        match s.resolver {
            std::net::IpAddr::V4(v4) => self.srcips.insert(&v4.octets()),
            std::net::IpAddr::V6(v6) => self.srcips.insert(&v6.octets()),
        }
        if (self.sources.len() as u64) < STATE_SOURCE_CAP {
            self.sources.insert(s.contributor);
        }
    }

    /// Render the current state as plain numbers.
    pub fn row(&self) -> FeatureRow {
        let avg = |sum: u64, n: u64| if n == 0 { 0.0 } else { sum as f64 / n as f64 };
        let quart = |h: &LogHistogram| {
            h.quartiles()
                .map(|(a, b, c)| [a, b, c])
                .unwrap_or([f64::NAN; 3])
        };
        let tv = |t: &TopValues| t.top_n_with_share(3).into_iter().collect();
        FeatureRow {
            hits: self.hits,
            unans: self.unans,
            ok: self.ok,
            nxd: self.nxd,
            rfs: self.rfs,
            fail: self.fail,
            ok_ans: self.ok_ans,
            ok_ns: self.ok_ns,
            ok_add: self.ok_add,
            ok_nil: self.ok_nil,
            ok6: self.ok6,
            ok6nil: self.ok6nil,
            ok_sec: self.ok_sec,
            srvips: self.srvips.estimate(),
            srcips: self.srcips.estimate(),
            sources: self.sources.len() as f64,
            qnamesa: self.qnamesa.estimate(),
            qnames: self.qnames.estimate(),
            tlds: self.tlds.estimate(),
            eslds: self.eslds.estimate(),
            qtypes: self.qtypes.estimate(),
            ip4s: self.ip4s.estimate(),
            ip6s: self.ip6s.estimate(),
            qdots: avg(self.qdots_sum, self.hits),
            qdots_max: self.qdots_max,
            lvl: avg(self.lvl_sum, self.answered),
            nslvl: avg(self.nslvl_sum, self.answered),
            ttl_top: tv(&self.ttl),
            ttl_a_top: tv(&self.ttl_a),
            nsttl_top: tv(&self.nsttl),
            negttl_top: tv(&self.negttl),
            a_data_top: tv(&self.a_data),
            ns_names_top: tv(&self.ns_names),
            resp_delays: quart(&self.resp_delays),
            network_hops: quart(&self.network_hops),
            resp_size: quart(&self.resp_size),
        }
    }

    /// Reset all statistics for the next window (the object itself stays
    /// in the top-k cache — paper §2.4).
    pub fn reset(&mut self) {
        *self = FeatureSet::new(self.cfg);
    }

    /// Total transactions folded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Export the live sketch state as a wire-ready [`FeatureState`],
    /// following the positional layout contract (`STATE_*` constants).
    pub fn to_state(&self) -> sketchwire::FeatureState {
        use sketchwire::{FeatureState, HistogramState, HllState, TopValuesState};
        FeatureState {
            adds: vec![
                self.hits,
                self.unans,
                self.ok,
                self.nxd,
                self.rfs,
                self.fail,
                self.ok_ans,
                self.ok_ns,
                self.ok_add,
                self.ok_nil,
                self.ok6,
                self.ok6nil,
                self.ok_sec,
                self.qdots_sum,
                self.lvl_sum,
                self.nslvl_sum,
                self.answered,
            ],
            maxes: vec![self.qdots_max as u64],
            hlls: [
                &self.srvips,
                &self.srcips,
                &self.qnamesa,
                &self.qnames,
                &self.tlds,
                &self.eslds,
                &self.qtypes,
                &self.ip4s,
                &self.ip6s,
            ]
            .into_iter()
            .map(HllState::from_sketch)
            .collect(),
            source_cap: STATE_SOURCE_CAP,
            sources: self.sources.iter().copied().collect(),
            tops: [
                &self.ttl,
                &self.ttl_a,
                &self.nsttl,
                &self.negttl,
                &self.a_data,
                &self.ns_names,
            ]
            .into_iter()
            .map(TopValuesState::from_sketch)
            .collect(),
            hists: [&self.resp_delays, &self.network_hops, &self.resp_size]
                .into_iter()
                .map(HistogramState::from_sketch)
                .collect(),
        }
    }

    /// Rebuild live sketch state from a (possibly merged) wire state.
    ///
    /// Merged states may exceed nominal capacities — top-value tables
    /// keep their most frequent entries (ties to the smaller value,
    /// matching [`TopValues::ranked`]) and contributor sets their first
    /// `source_cap` ids. A state whose shape does not match the layout
    /// contract is a [`StateError::LayoutMismatch`].
    pub fn from_state(state: &sketchwire::FeatureState) -> Result<FeatureSet, StateError> {
        if state.adds.len() != STATE_ADDS {
            return Err(StateError::LayoutMismatch("counter count"));
        }
        if state.maxes.len() != STATE_MAXES {
            return Err(StateError::LayoutMismatch("max count"));
        }
        if state.hlls.len() != STATE_HLLS {
            return Err(StateError::LayoutMismatch("hll count"));
        }
        if state.hlls.iter().any(|h| !(4..=16).contains(&h.p)) {
            return Err(StateError::LayoutMismatch("hll precision"));
        }
        if state.tops.len() != STATE_TOPS {
            return Err(StateError::LayoutMismatch("topvalues count"));
        }
        if state.tops.iter().any(|t| t.capacity == 0) {
            return Err(StateError::LayoutMismatch("topvalues capacity"));
        }
        if state.hists.len() != STATE_HISTS {
            return Err(StateError::LayoutMismatch("histogram count"));
        }
        if state.hists.iter().any(|h| {
            !(h.min.is_finite() && h.min > 0.0 && h.base.is_finite() && h.base > 1.0)
                || h.counts.is_empty()
        }) {
            return Err(StateError::LayoutMismatch("histogram layout"));
        }
        let a = &state.adds;
        let hll = |i: usize| state.hlls[i].to_sketch();
        let top = |i: usize| {
            let t = &state.tops[i];
            let cap = t.capacity as usize;
            let mut slots = t.slots.clone();
            slots.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            slots.truncate(cap);
            TopValues::from_parts(cap, t.observed, slots)
        };
        let hist = |i: usize| state.hists[i].to_sketch();
        Ok(FeatureSet {
            cfg: FeatureConfig {
                hll_precision: state.hlls[0].p,
                ttl_slots: state.tops[0].capacity as usize,
            },
            hits: a[0],
            unans: a[1],
            ok: a[2],
            nxd: a[3],
            rfs: a[4],
            fail: a[5],
            ok_ans: a[6],
            ok_ns: a[7],
            ok_add: a[8],
            ok_nil: a[9],
            ok6: a[10],
            ok6nil: a[11],
            ok_sec: a[12],
            qdots_sum: a[13],
            lvl_sum: a[14],
            nslvl_sum: a[15],
            answered: a[16],
            srvips: hll(0),
            srcips: hll(1),
            qnamesa: hll(2),
            qnames: hll(3),
            tlds: hll(4),
            eslds: hll(5),
            qtypes: hll(6),
            ip4s: hll(7),
            ip6s: hll(8),
            sources: state
                .sources
                .iter()
                .take(state.source_cap as usize)
                .copied()
                .collect(),
            ttl: top(0),
            ttl_a: top(1),
            nsttl: top(2),
            negttl: top(3),
            a_data: top(4),
            ns_names: top(5),
            resp_delays: hist(0),
            network_hops: hist(1),
            resp_size: hist(2),
            qdots_max: state.maxes[0].min(u8::MAX as u64) as u8,
        })
    }
}

/// One object's features in one time window, as plain numbers — the TSV
/// row of the paper's data files (step E).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureRow {
    /// Total transactions.
    pub hits: u64,
    /// Unanswered queries.
    pub unans: u64,
    /// NoError responses.
    pub ok: u64,
    /// NXDOMAIN responses.
    pub nxd: u64,
    /// Refused responses.
    pub rfs: u64,
    /// ServFail responses.
    pub fail: u64,
    /// NoError with non-empty ANSWER.
    pub ok_ans: u64,
    /// NoError with NS in AUTHORITY.
    pub ok_ns: u64,
    /// NoError with non-empty ADDITIONAL.
    pub ok_add: u64,
    /// NoData responses.
    pub ok_nil: u64,
    /// AAAA NoError responses.
    pub ok6: u64,
    /// AAAA NoData responses.
    pub ok6nil: u64,
    /// DNSSEC-signed responses.
    pub ok_sec: u64,
    /// Distinct nameserver IPs (estimate).
    pub srvips: f64,
    /// Distinct resolver IPs (estimate).
    pub srcips: f64,
    /// Distinct SIE contributors (exact).
    pub sources: f64,
    /// Distinct QNAMEs over all queries (estimate).
    pub qnamesa: f64,
    /// Distinct QNAMEs that got NoError (estimate).
    pub qnames: f64,
    /// Distinct TLDs in NoError traffic (estimate).
    pub tlds: f64,
    /// Distinct effective SLDs in NoError traffic (estimate).
    pub eslds: f64,
    /// Distinct QTYPEs (estimate).
    pub qtypes: f64,
    /// Distinct IPv4 addresses in answers (estimate).
    pub ip4s: f64,
    /// Distinct IPv6 addresses in answers (estimate).
    pub ip6s: f64,
    /// Mean QNAME label count.
    pub qdots: f64,
    /// Maximum QNAME label count (qmin detection).
    pub qdots_max: u8,
    /// Mean ANSWER record count.
    pub lvl: f64,
    /// Mean AUTHORITY NS record count.
    pub nslvl: f64,
    /// Top-3 ANSWER TTLs with shares.
    pub ttl_top: Vec<(u64, f64)>,
    /// Top-3 TTLs of A answers specifically (change detection, §4.2).
    pub ttl_a_top: Vec<(u64, f64)>,
    /// Top-3 AUTHORITY NS TTLs with shares.
    pub nsttl_top: Vec<(u64, f64)>,
    /// Top-3 negative-caching TTLs (SOA minimum) with shares.
    pub negttl_top: Vec<(u64, f64)>,
    /// Top-3 ANSWER rdata hashes with shares (change detection).
    pub a_data_top: Vec<(u64, f64)>,
    /// Top-3 NS-name hashes with shares (change detection).
    pub ns_names_top: Vec<(u64, f64)>,
    /// Response delay quartiles [q25, median, q75] in ms (NaN when empty).
    pub resp_delays: [f64; 3],
    /// Network hop quartiles.
    pub network_hops: [f64; 3],
    /// Response size quartiles, bytes.
    pub resp_size: [f64; 3],
}

impl FeatureRow {
    /// NoError + data share of hits (ok_ans or ok_ns).
    pub fn data_share(&self) -> f64 {
        if self.hits == 0 {
            return 0.0;
        }
        (self.ok - self.ok_nil) as f64 / self.hits as f64
    }

    /// NoData share of hits.
    pub fn nodata_share(&self) -> f64 {
        if self.hits == 0 {
            return 0.0;
        }
        self.ok_nil as f64 / self.hits as f64
    }

    /// NXDOMAIN share of hits.
    pub fn nxd_share(&self) -> f64 {
        if self.hits == 0 {
            return 0.0;
        }
        self.nxd as f64 / self.hits as f64
    }

    /// The most common ANSWER TTL, if any.
    pub fn top_ttl(&self) -> Option<u64> {
        self.ttl_top.first().map(|&(v, _)| v)
    }

    /// Median response delay (NaN when no responses).
    pub fn median_delay(&self) -> f64 {
        self.resp_delays[1]
    }

    /// Median hop count (NaN when no responses).
    pub fn median_hops(&self) -> f64 {
        self.network_hops[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psl::Psl;
    use simnet::{SimConfig, Simulation};

    fn folded(secs: f64) -> FeatureSet {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut fs = FeatureSet::new(FeatureConfig::default());
        sim.run(secs, &mut |tx| {
            fs.fold(&TxSummary::from_transaction(tx, &psl));
        });
        fs
    }

    #[test]
    fn counters_are_consistent() {
        let fs = folded(2.0);
        let row = fs.row();
        assert!(row.hits > 200);
        assert_eq!(
            row.hits,
            row.unans + row.ok + row.nxd + row.rfs + row.fail,
            "every outcome classified (no OtherError in sim)"
        );
        assert!(row.ok_nil <= row.ok);
        assert!(row.ok6nil <= row.ok6);
        assert!(row.ok_ans <= row.ok);
    }

    #[test]
    fn cardinalities_plausible() {
        let fs = folded(2.0);
        let row = fs.row();
        assert!(row.srcips >= 1.0 && row.srcips <= 50.0);
        assert!(row.srvips > 10.0);
        assert!(row.qnamesa >= row.qnames * 0.5);
        assert!(row.qtypes >= 3.0);
        assert!(row.sources >= 1.0);
        assert!(row.tlds >= 1.0);
    }

    #[test]
    fn quartiles_ordered() {
        let fs = folded(1.0);
        let row = fs.row();
        let [a, b, c] = row.resp_delays;
        assert!(
            a <= b && b <= c,
            "delay quartiles out of order: {a} {b} {c}"
        );
        assert!(row.median_delay() > 0.0);
        let [ha, hb, hc] = row.network_hops;
        assert!(ha <= hb && hb <= hc);
        assert!(row.resp_size[0] >= 12.0);
    }

    #[test]
    fn ttl_top_has_shares() {
        let fs = folded(2.0);
        let row = fs.row();
        assert!(!row.ttl_top.is_empty());
        let total: f64 = row.ttl_top.iter().map(|(_, s)| s).sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(row.top_ttl().is_some());
    }

    #[test]
    fn reset_clears_but_preserves_config() {
        let mut fs = folded(1.0);
        assert!(fs.hits() > 0);
        let m_before = {
            let row = fs.row();
            let _ = row;
            0
        };
        let _ = m_before;
        fs.reset();
        assert_eq!(fs.hits(), 0);
        let row = fs.row();
        assert_eq!(row.hits, 0);
        assert!(row.resp_delays[1].is_nan());
        assert!(row.ttl_top.is_empty());
    }

    #[test]
    fn share_helpers() {
        let fs = folded(2.0);
        let row = fs.row();
        let total = row.data_share() + row.nodata_share() + row.nxd_share();
        assert!(total <= 1.0 + 1e-9);
        assert!(row.data_share() > 0.0);
    }

    #[test]
    fn empty_row_is_all_zero() {
        let fs = FeatureSet::new(FeatureConfig::default());
        let row = fs.row();
        assert_eq!(row.hits, 0);
        assert_eq!(row.qdots, 0.0);
        assert_eq!(row.srvips, 0.0);
        assert_eq!(row.data_share(), 0.0);
        assert!(row.top_ttl().is_none());
    }
}
