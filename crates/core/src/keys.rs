//! Dataset definitions: which key identifies a DNS object (paper §2.2 and
//! §3.1), plus the compact [`Key`] representation used on the hot path.
//!
//! The tracker ingests ~200 k transactions/s across eight datasets, so
//! key extraction must not allocate per transaction. [`Dataset::key_into`]
//! writes a canonical byte encoding into a reusable [`KeyBuf`] scratch
//! buffer; the bytes serve as the Space-Saving lookup form, and an owned
//! [`Key`] is materialized only when a key actually enters the cache.
//! Low-cardinality datasets (QTYPE, RCODE) intern `&'static str` keys,
//! IP-keyed datasets store binary address octets, and everything else uses
//! inline small-string storage with a heap spill for long QNAMEs.

use crate::summarize::TxSummary;
use std::fmt::{self, Write as _};
use std::net::IpAddr;

/// The aggregations collected by the platform (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Top authoritative nameservers, keyed by nameserver IP.
    SrvIp,
    /// Top effective TLDs (NXDOMAIN traffic included).
    Etld,
    /// Top effective SLDs.
    Esld,
    /// Top FQDNs (full QNAME).
    Qname,
    /// All QTYPE aggregations.
    Qtype,
    /// All RCODE aggregations.
    Rcode,
    /// Top FQDNs in authoritative answers (AA flag set, with data).
    AaFqdn,
    /// Top (resolver, nameserver) pairs.
    SrcSrv,
}

impl Dataset {
    /// Short name used in file names and reports.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::SrvIp => "srvip",
            Dataset::Etld => "etld",
            Dataset::Esld => "esld",
            Dataset::Qname => "qname",
            Dataset::Qtype => "qtype",
            Dataset::Rcode => "rcode",
            Dataset::AaFqdn => "aafqdn",
            Dataset::SrcSrv => "srcsrv",
        }
    }

    /// Inverse of [`Dataset::name`]; `None` for unknown names. Used by
    /// the historical store's restore path, where dataset identity
    /// arrives as the serialized name string.
    pub fn from_name(name: &str) -> Option<Dataset> {
        Some(match name {
            "srvip" => Dataset::SrvIp,
            "etld" => Dataset::Etld,
            "esld" => Dataset::Esld,
            "qname" => Dataset::Qname,
            "qtype" => Dataset::Qtype,
            "rcode" => Dataset::Rcode,
            "aafqdn" => Dataset::AaFqdn,
            "srcsrv" => Dataset::SrcSrv,
            _ => return None,
        })
    }

    /// How this dataset's canonical key bytes render to presentation
    /// form (uniform within a dataset).
    fn key_kind(self) -> KeyKind {
        match self {
            Dataset::SrvIp => KeyKind::Ip,
            Dataset::SrcSrv => KeyKind::IpPair,
            _ => KeyKind::Text,
        }
    }

    /// The k used in the paper for this aggregation.
    pub fn paper_k(self) -> usize {
        match self {
            Dataset::SrvIp => 100_000,
            Dataset::Etld => 10_000,
            Dataset::Esld => 100_000,
            Dataset::Qname => 100_000,
            Dataset::Qtype => 256,
            Dataset::Rcode => 32,
            Dataset::AaFqdn => 20_000,
            Dataset::SrcSrv => 30_000,
        }
    }

    /// Extract this dataset's key from a summary; `None` drops the
    /// transaction from the aggregation (the dataset's input filter).
    ///
    /// Convenience/compat form of [`Dataset::key_into`]: allocates exactly
    /// one `String` for the rendered key (the old `Etld` path cloned even
    /// when `etld` was present and cloned twice on the TLD fallback).
    pub fn key(self, s: &TxSummary) -> Option<String> {
        let mut buf = KeyBuf::new();
        self.key_into(s, &mut buf).then(|| buf.render())
    }

    /// Write this dataset's key for `s` into the reusable scratch buffer.
    ///
    /// Returns `false` when the dataset's input filter drops the
    /// transaction (the buffer is left cleared). On `true`, the buffer
    /// holds the canonical byte encoding: the Space-Saving lookup form
    /// whose rendered presentation equals [`Dataset::key`]'s output. The
    /// steady-state path performs no allocation — the buffer's backing
    /// storage is reused across calls.
    pub fn key_into(self, s: &TxSummary, buf: &mut KeyBuf) -> bool {
        buf.clear();
        match self {
            Dataset::SrvIp => {
                buf.kind = KeyKind::Ip;
                push_ip(&mut buf.bytes, s.nameserver);
                true
            }
            Dataset::Etld => match s.etld.as_deref().or(s.tld.as_deref()) {
                Some(t) => {
                    buf.bytes.extend_from_slice(t.as_bytes());
                    true
                }
                None => false,
            },
            Dataset::Esld => match s.esld.as_deref() {
                Some(t) => {
                    buf.bytes.extend_from_slice(t.as_bytes());
                    true
                }
                None => false,
            },
            Dataset::Qname => {
                buf.push_name(s);
                true
            }
            Dataset::Qtype => {
                match s.qtype.mnemonic_static() {
                    Some(m) => buf.statik = Some(m),
                    None => {
                        write!(AsciiSink(&mut buf.bytes), "TYPE{}", s.qtype.code())
                            .expect("Vec sink never fails");
                    }
                }
                true
            }
            Dataset::Rcode => {
                buf.statik = Some(s.outcome.tag());
                true
            }
            Dataset::AaFqdn => {
                // Only authoritative responses carrying data or delegation
                // (paper §4.2.1).
                if s.aa && (s.ok_ans || s.ok_ns) {
                    buf.push_name(s);
                    true
                } else {
                    false
                }
            }
            Dataset::SrcSrv => {
                buf.kind = KeyKind::IpPair;
                let flags = (matches!(s.resolver, IpAddr::V6(_)) as u8)
                    | ((matches!(s.nameserver, IpAddr::V6(_)) as u8) << 1);
                buf.bytes.push(flags);
                push_ip(&mut buf.bytes, s.resolver);
                push_ip(&mut buf.bytes, s.nameserver);
                true
            }
        }
    }
}

/// How a key's canonical bytes are rendered back into presentation form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum KeyKind {
    /// Bytes are the presentation text itself (ASCII).
    #[default]
    Text,
    /// Bytes are raw IP octets (4 or 16).
    Ip,
    /// Bytes are a flags octet (bit 0: first address is IPv6, bit 1:
    /// second address is IPv6) followed by both addresses' octets.
    IpPair,
}

/// Keys that fit inline avoid any heap allocation; 38 bytes covers the
/// binary encoding of an IPv6 `SrcSrv` pair (1 + 16 + 16 = 33) and the
/// overwhelming majority of QNAMEs/eSLDs.
const INLINE_CAP: usize = 38;

#[derive(Debug, Clone)]
enum Repr {
    /// Interned text for low-cardinality datasets (QTYPE, RCODE).
    Static(&'static str),
    /// Small keys stored inline, no heap.
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    /// Spill for long keys (rare: deep QNAMEs only).
    Heap(Box<[u8]>),
}

/// A compact, tracker-owned dataset key.
///
/// Equality and hashing are defined over the canonical byte encoding only
/// (`Borrow<[u8]>`), so a borrowed `&[u8]` scratch buffer can be used for
/// cache lookups without constructing a `Key` — see
/// [`sketches::SpaceSaving::observe_with_ref`]. The rendering kind is
/// presentation metadata and is uniform within a dataset.
#[derive(Debug, Clone)]
pub struct Key {
    kind: KeyKind,
    repr: Repr,
}

impl Key {
    /// Canonical byte encoding (the hash/equality identity).
    pub fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s.as_bytes(),
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(b) => b,
        }
    }

    /// Render the presentation form (what the TSV files and window dumps
    /// show) — identical to what [`Dataset::key`] returns.
    pub fn render(&self) -> String {
        render_bytes(self.kind, self.as_bytes())
    }

    /// Rebuild a key from its rendered presentation form — the inverse
    /// of [`Key::render`] for `dataset`'s key kind. This is the
    /// historical store's restore path: serialized tracker state carries
    /// rendered keys, and a tracker rebuilt from it must produce byte-
    /// identical canonical encodings. `None` when the text is not a
    /// valid rendering (e.g. a non-address string for an IP dataset).
    pub fn from_render(dataset: Dataset, text: &str) -> Option<Key> {
        let kind = dataset.key_kind();
        let mut bytes = Vec::new();
        match kind {
            KeyKind::Text => bytes.extend_from_slice(text.as_bytes()),
            KeyKind::Ip => push_ip(&mut bytes, text.parse::<IpAddr>().ok()?),
            KeyKind::IpPair => {
                let (first, second) = text.split_once('|')?;
                let first = first.parse::<IpAddr>().ok()?;
                let second = second.parse::<IpAddr>().ok()?;
                let flags = (matches!(first, IpAddr::V6(_)) as u8)
                    | ((matches!(second, IpAddr::V6(_)) as u8) << 1);
                bytes.push(flags);
                push_ip(&mut bytes, first);
                push_ip(&mut bytes, second);
            }
        }
        let repr = if bytes.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..bytes.len()].copy_from_slice(&bytes);
            Repr::Inline {
                len: bytes.len() as u8,
                buf,
            }
        } else {
            Repr::Heap(bytes.into())
        };
        Some(Key { kind, repr })
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Key {}

impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must agree with `<[u8] as Hash>::hash` for Borrow-based lookups.
        self.as_bytes().hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Key {
    fn borrow(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Reusable scratch buffer for [`Dataset::key_into`].
///
/// Holds the canonical byte encoding of one key at a time; the backing
/// `Vec` is reused across transactions so the steady state allocates
/// nothing. Convert to an owned [`Key`] with [`KeyBuf::to_key`] only when
/// the key must enter the top-k cache.
#[derive(Debug, Default)]
pub struct KeyBuf {
    kind: KeyKind,
    statik: Option<&'static str>,
    bytes: Vec<u8>,
}

impl KeyBuf {
    /// Fresh, empty buffer.
    pub fn new() -> KeyBuf {
        KeyBuf::default()
    }

    fn clear(&mut self) {
        self.kind = KeyKind::Text;
        self.statik = None;
        self.bytes.clear();
    }

    fn push_name(&mut self, s: &TxSummary) {
        s.qname
            .write_ascii(&mut AsciiSink(&mut self.bytes))
            .expect("Vec sink never fails");
    }

    /// The canonical byte encoding of the current key — the borrowed
    /// lookup form used against the Space-Saving cache.
    pub fn as_bytes(&self) -> &[u8] {
        match self.statik {
            Some(s) => s.as_bytes(),
            None => &self.bytes,
        }
    }

    /// Materialize an owned [`Key`]. Interned and inline-sized keys
    /// allocate nothing; only keys longer than the inline capacity touch
    /// the heap (one boxed-slice allocation).
    pub fn to_key(&self) -> Key {
        let repr = match self.statik {
            Some(s) => Repr::Static(s),
            None if self.bytes.len() <= INLINE_CAP => {
                let mut buf = [0u8; INLINE_CAP];
                buf[..self.bytes.len()].copy_from_slice(&self.bytes);
                Repr::Inline {
                    len: self.bytes.len() as u8,
                    buf,
                }
            }
            None => Repr::Heap(self.bytes.as_slice().into()),
        };
        Key {
            kind: self.kind,
            repr,
        }
    }

    /// Render the presentation form directly from the scratch bytes
    /// (one `String` allocation, no intermediate `Key`).
    pub fn render(&self) -> String {
        render_bytes(self.kind, self.as_bytes())
    }
}

/// `fmt::Write` adapter appending UTF-8 text to a byte buffer.
struct AsciiSink<'a>(&'a mut Vec<u8>);

impl fmt::Write for AsciiSink<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

fn push_ip(bytes: &mut Vec<u8>, ip: IpAddr) {
    match ip {
        IpAddr::V4(a) => bytes.extend_from_slice(&a.octets()),
        IpAddr::V6(a) => bytes.extend_from_slice(&a.octets()),
    }
}

fn decode_ip(bytes: &[u8], v6: bool) -> (IpAddr, usize) {
    if v6 {
        let octets: [u8; 16] = bytes[..16].try_into().expect("16 v6 octets");
        (IpAddr::V6(octets.into()), 16)
    } else {
        let octets: [u8; 4] = bytes[..4].try_into().expect("4 v4 octets");
        (IpAddr::V4(octets.into()), 4)
    }
}

fn render_bytes(kind: KeyKind, bytes: &[u8]) -> String {
    match kind {
        KeyKind::Text => String::from_utf8_lossy(bytes).into_owned(),
        KeyKind::Ip => {
            let (ip, _) = decode_ip(bytes, bytes.len() == 16);
            ip.to_string()
        }
        KeyKind::IpPair => {
            let flags = bytes[0];
            let rest = &bytes[1..];
            let (first, n) = decode_ip(rest, flags & 1 != 0);
            let (second, _) = decode_ip(&rest[n..], flags & 2 != 0);
            format!("{first}|{second}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summarize::TxSummary;
    use psl::Psl;
    use simnet::{SimConfig, Simulation};

    fn sample() -> Vec<TxSummary> {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut out = Vec::new();
        sim.run(1.0, &mut |tx| {
            out.push(TxSummary::from_transaction(tx, &psl))
        });
        out
    }

    #[test]
    fn keys_extracted_for_all_datasets() {
        let sums = sample();
        for ds in [
            Dataset::SrvIp,
            Dataset::Etld,
            Dataset::Qname,
            Dataset::Qtype,
            Dataset::Rcode,
            Dataset::SrcSrv,
        ] {
            let keyed = sums.iter().filter(|s| ds.key(s).is_some()).count();
            assert_eq!(keyed, sums.len(), "{} must key every tx", ds.name());
        }
        // esld drops names without a registrable domain (e.g. bare TLDs).
        let esld_keyed = sums
            .iter()
            .filter(|s| Dataset::Esld.key(s).is_some())
            .count();
        assert!(esld_keyed as f64 > 0.7 * sums.len() as f64);
    }

    #[test]
    fn aafqdn_filters_non_authoritative() {
        let sums = sample();
        for s in &sums {
            if let Some(_key) = Dataset::AaFqdn.key(s) {
                assert!(s.aa && (s.ok_ans || s.ok_ns));
            }
        }
        let kept = sums
            .iter()
            .filter(|s| Dataset::AaFqdn.key(s).is_some())
            .count();
        assert!(kept > 0, "some AA answers expected");
        assert!(kept < sums.len(), "referrals/NXD must be filtered");
    }

    #[test]
    fn srcsrv_key_combines_both_addresses() {
        let sums = sample();
        let s = &sums[0];
        let key = Dataset::SrcSrv.key(s).unwrap();
        assert!(key.contains('|'));
        assert!(key.starts_with(&s.resolver.to_string()));
    }

    #[test]
    fn qtype_keys_are_mnemonics() {
        let sums = sample();
        let keys: std::collections::HashSet<String> =
            sums.iter().filter_map(|s| Dataset::Qtype.key(s)).collect();
        assert!(keys.contains("A"));
        assert!(keys.iter().all(|k| !k.is_empty()));
    }

    #[test]
    fn from_render_inverts_render() {
        let sums = sample();
        for ds in [
            Dataset::SrvIp,
            Dataset::Etld,
            Dataset::Esld,
            Dataset::Qname,
            Dataset::Qtype,
            Dataset::Rcode,
            Dataset::AaFqdn,
            Dataset::SrcSrv,
        ] {
            for s in &sums {
                let mut buf = KeyBuf::new();
                if ds.key_into(s, &mut buf) {
                    let key = buf.to_key();
                    let back = Key::from_render(ds, &key.render()).expect("parseable rendering");
                    assert_eq!(back.as_bytes(), key.as_bytes(), "{}", ds.name());
                    assert_eq!(back.render(), key.render());
                }
            }
        }
        assert!(Key::from_render(Dataset::SrvIp, "not-an-ip").is_none());
        assert!(Key::from_render(Dataset::SrcSrv, "1.2.3.4").is_none());
    }

    #[test]
    fn from_name_inverts_name() {
        for ds in [
            Dataset::SrvIp,
            Dataset::Etld,
            Dataset::Esld,
            Dataset::Qname,
            Dataset::Qtype,
            Dataset::Rcode,
            Dataset::AaFqdn,
            Dataset::SrcSrv,
        ] {
            assert_eq!(Dataset::from_name(ds.name()), Some(ds));
        }
        assert_eq!(Dataset::from_name("nope"), None);
    }

    #[test]
    fn names_and_paper_k() {
        assert_eq!(Dataset::SrvIp.name(), "srvip");
        assert_eq!(Dataset::SrvIp.paper_k(), 100_000);
        assert_eq!(Dataset::Etld.paper_k(), 10_000);
    }
}
