//! Dataset definitions: which textual key identifies a DNS object
//! (paper §2.2 and §3.1).

use crate::summarize::TxSummary;

/// The aggregations collected by the platform (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Top authoritative nameservers, keyed by nameserver IP.
    SrvIp,
    /// Top effective TLDs (NXDOMAIN traffic included).
    Etld,
    /// Top effective SLDs.
    Esld,
    /// Top FQDNs (full QNAME).
    Qname,
    /// All QTYPE aggregations.
    Qtype,
    /// All RCODE aggregations.
    Rcode,
    /// Top FQDNs in authoritative answers (AA flag set, with data).
    AaFqdn,
    /// Top (resolver, nameserver) pairs.
    SrcSrv,
}

impl Dataset {
    /// Short name used in file names and reports.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::SrvIp => "srvip",
            Dataset::Etld => "etld",
            Dataset::Esld => "esld",
            Dataset::Qname => "qname",
            Dataset::Qtype => "qtype",
            Dataset::Rcode => "rcode",
            Dataset::AaFqdn => "aafqdn",
            Dataset::SrcSrv => "srcsrv",
        }
    }

    /// The k used in the paper for this aggregation.
    pub fn paper_k(self) -> usize {
        match self {
            Dataset::SrvIp => 100_000,
            Dataset::Etld => 10_000,
            Dataset::Esld => 100_000,
            Dataset::Qname => 100_000,
            Dataset::Qtype => 256,
            Dataset::Rcode => 32,
            Dataset::AaFqdn => 20_000,
            Dataset::SrcSrv => 30_000,
        }
    }

    /// Extract this dataset's key from a summary; `None` drops the
    /// transaction from the aggregation (the dataset's input filter).
    pub fn key(self, s: &TxSummary) -> Option<String> {
        match self {
            Dataset::SrvIp => Some(s.nameserver.to_string()),
            Dataset::Etld => s
                .etld
                .clone()
                .or_else(|| s.tld.clone()),
            Dataset::Esld => s.esld.clone(),
            Dataset::Qname => Some(s.qname.to_ascii()),
            Dataset::Qtype => Some(s.qtype.mnemonic()),
            Dataset::Rcode => Some(s.outcome.tag().to_string()),
            Dataset::AaFqdn => {
                // Only authoritative responses carrying data or delegation
                // (paper §4.2.1).
                if s.aa && (s.ok_ans || s.ok_ns) {
                    Some(s.qname.to_ascii())
                } else {
                    None
                }
            }
            Dataset::SrcSrv => Some(format!("{}|{}", s.resolver, s.nameserver)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summarize::TxSummary;
    use psl::Psl;
    use simnet::{SimConfig, Simulation};

    fn sample() -> Vec<TxSummary> {
        let psl = Psl::embedded();
        let mut sim = Simulation::from_config(SimConfig::small());
        let mut out = Vec::new();
        sim.run(1.0, &mut |tx| out.push(TxSummary::from_transaction(tx, &psl)));
        out
    }

    #[test]
    fn keys_extracted_for_all_datasets() {
        let sums = sample();
        for ds in [
            Dataset::SrvIp,
            Dataset::Etld,
            Dataset::Qname,
            Dataset::Qtype,
            Dataset::Rcode,
            Dataset::SrcSrv,
        ] {
            let keyed = sums.iter().filter(|s| ds.key(s).is_some()).count();
            assert_eq!(keyed, sums.len(), "{} must key every tx", ds.name());
        }
        // esld drops names without a registrable domain (e.g. bare TLDs).
        let esld_keyed = sums.iter().filter(|s| Dataset::Esld.key(s).is_some()).count();
        assert!(esld_keyed as f64 > 0.7 * sums.len() as f64);
    }

    #[test]
    fn aafqdn_filters_non_authoritative() {
        let sums = sample();
        for s in &sums {
            if let Some(_key) = Dataset::AaFqdn.key(s) {
                assert!(s.aa && (s.ok_ans || s.ok_ns));
            }
        }
        let kept = sums.iter().filter(|s| Dataset::AaFqdn.key(s).is_some()).count();
        assert!(kept > 0, "some AA answers expected");
        assert!(kept < sums.len(), "referrals/NXD must be filtered");
    }

    #[test]
    fn srcsrv_key_combines_both_addresses() {
        let sums = sample();
        let s = &sums[0];
        let key = Dataset::SrcSrv.key(s).unwrap();
        assert!(key.contains('|'));
        assert!(key.starts_with(&s.resolver.to_string()));
    }

    #[test]
    fn qtype_keys_are_mnemonics() {
        let sums = sample();
        let keys: std::collections::HashSet<String> =
            sums.iter().filter_map(|s| Dataset::Qtype.key(s)).collect();
        assert!(keys.contains("A"));
        assert!(keys.iter().all(|k| !k.is_empty()));
    }

    #[test]
    fn names_and_paper_k() {
        assert_eq!(Dataset::SrvIp.name(), "srvip");
        assert_eq!(Dataset::SrvIp.paper_k(), 100_000);
        assert_eq!(Dataset::Etld.paper_k(), 10_000);
    }
}
