//! Full-stack crash-recovery round-trip through the `dnsobs` binary:
//!
//! ```text
//! sensor ──▶ collect --store DIR --kill-after-windows 2   (exits 3)
//! sensor ──▶ collect --store DIR                          (resumes)
//!                      │
//!                      └──▶ dnsobs query / store API      (== reference)
//! ```
//!
//! The interrupted collector dies hard (process exit, not a graceful
//! drain) right after its Nth window becomes durable. The restarted
//! collector must resume the watermark frontier from the store's last
//! durable window, skip the replayed traffic it already folded, and end
//! up with a store whose contents — every window, every sketch state —
//! equal an uninterrupted reference run over the same seeded traffic.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn dnsobs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnsobs"))
}

fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    format!("127.0.0.1:{}", l.local_addr().unwrap().port())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dnsobs-storecli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Proc {
    name: &'static str,
    child: Child,
}

impl Proc {
    fn spawn(name: &'static str, args: &[&str]) -> Proc {
        let child = dnsobs()
            .args(args)
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        Proc { name, child }
    }

    /// Wait up to 60 s for the expected exit code; return captured stderr.
    fn join_code(mut self, want: i32) -> String {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    let mut err = String::new();
                    if let Some(mut pipe) = self.child.stderr.take() {
                        use std::io::Read;
                        let _ = pipe.read_to_string(&mut err);
                    }
                    assert_eq!(
                        status.code(),
                        Some(want),
                        "{} exited {status:?}, want {want}: {err}",
                        self.name
                    );
                    return err;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("{} timed out", self.name);
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    fn join(self) -> String {
        self.join_code(0)
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

fn collect(name: &'static str, listen: &str, store: &Path, extra: &[&str]) -> Proc {
    let mut args = vec![
        "collect",
        "--listen",
        listen,
        "--sensors",
        "1",
        "--window",
        "1",
        // The admission gate stays on: exports serialize its bloom
        // bit-exact and list entries in restore order, so resume is
        // exact even for gated (and saturated) trackers.
        "--topk",
        "10000",
        "--store",
        store.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    Proc::spawn(name, &args)
}

fn sensor(name: &'static str, connect: &str) -> Proc {
    Proc::spawn(
        name,
        &[
            "sensor",
            "--connect",
            connect,
            "--duration",
            "4",
            "--seed",
            "11",
            "--sensors",
            "1",
            "--index",
            "0",
        ],
    )
}

/// Every durable window, chunk-reassembled and canonicalized: one state
/// per (window, dataset), entries sorted by (count desc, key). Chunk
/// boundaries and export order among equal counts are insertion-order
/// representation freedoms a resume does not pin; the reassembled,
/// sorted view is what must be identical.
fn store_contents(dir: &Path) -> (Option<u64>, Vec<(u64, String, sketchwire::TopKState)>) {
    let (s, report) = store::Store::open(dir).expect("open store");
    assert!(report.is_clean(), "unexpected recovery debris: {report:?}");
    let mut chunks: std::collections::BTreeMap<(u64, String), Vec<sketchwire::TopKState>> =
        Default::default();
    for meta in s.segments().to_vec() {
        let (_, states) = s.read_segment(&meta).expect("readable segment");
        for ws in states {
            chunks
                .entry(((ws.start * 1e6).round() as u64, ws.topk.dataset.clone()))
                .or_default()
                .push(ws.topk);
        }
    }
    let all = chunks
        .into_iter()
        .map(|((start_us, dataset), parts)| {
            let mut whole = sketchwire::merge_chunks(&parts).expect("complete chunks");
            whole
                .entries
                .sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
            (start_us, dataset, whole)
        })
        .collect();
    (s.frontier_us(), all)
}

#[test]
fn kill_restart_resume_equals_uninterrupted_run() {
    let dir = temp_dir("roundtrip");
    let ref_store = dir.join("reference");
    let kill_store = dir.join("interrupted");

    // Reference: one uninterrupted run over the seeded traffic.
    {
        let addr = free_addr();
        let c = collect("collect-ref", &addr, &ref_store, &[]);
        let s = sensor("sensor-ref", &addr);
        s.join();
        c.join();
    }
    let (ref_frontier, ref_states) = store_contents(&ref_store);
    assert!(
        ref_states.len() >= 6,
        "reference too small to interrupt meaningfully: {} states",
        ref_states.len()
    );
    let ref_windows: std::collections::BTreeSet<u64> = ref_states
        .iter()
        .map(|(start_us, _, _)| *start_us)
        .collect();
    assert!(ref_windows.len() >= 3, "need ≥3 windows to kill after 2");

    // Interrupted: same traffic, but the collector exits hard (code 3)
    // once its second window is durable. The sensor is still mid-stream
    // when the collector dies; it gets killed on drop.
    {
        let addr = free_addr();
        let c = collect(
            "collect-kill",
            &addr,
            &kill_store,
            &["--kill-after-windows", "2"],
        );
        let s = sensor("sensor-kill", &addr);
        let err = c.join_code(3);
        assert!(err.contains("kill hook"), "missing kill-hook notice: {err}");
        drop(s);
    }
    let (mid_frontier, mid_states) = store_contents(&kill_store);
    assert!(mid_frontier.is_some(), "interrupted store has no frontier");
    assert!(
        mid_states.len() < ref_states.len(),
        "kill left nothing to resume"
    );

    // Restart against the same store; the sensor replays the same seeded
    // traffic from t=0 and the collector must skip what is already
    // durable, then continue to the same final state.
    {
        let addr = free_addr();
        let c = collect("collect-resume", &addr, &kill_store, &[]);
        let s = sensor("sensor-resume", &addr);
        s.join();
        let err = c.join();
        assert!(
            err.contains("resumed watermark frontier"),
            "collector did not resume from the store: {err}"
        );
        assert!(
            err.contains("skipped") || err.contains("ingested"),
            "no resume accounting in stderr: {err}"
        );
    }

    let (got_frontier, got_states) = store_contents(&kill_store);
    assert_eq!(got_frontier, ref_frontier, "watermark frontier differs");
    assert_eq!(
        got_states.len(),
        ref_states.len(),
        "window-state count differs"
    );
    for (got, want) in got_states.iter().zip(&ref_states) {
        assert_eq!(
            got,
            want,
            "window t={}s dataset {} differs from uninterrupted run",
            want.0 as f64 / 1e6,
            want.1
        );
    }

    // And the query layer agrees: the top-k at the final window is
    // byte-identical between the two stores.
    let q = |store: &Path| {
        let out = dnsobs()
            .args([
                "query",
                "topk",
                "--store",
                store.to_str().unwrap(),
                "--dataset",
                "qtype",
                "--at",
                "2",
                "--n",
                "5",
            ])
            .output()
            .expect("spawn query");
        assert!(status_ok(&out), "query failed: {:?}", out);
        // Strip the latency line — wall-clock differs run to run.
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("answered in"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(q(&ref_store), q(&kill_store), "query answers differ");

    let _ = std::fs::remove_dir_all(&dir);
}

fn status_ok(out: &std::process::Output) -> bool {
    out.status.success()
}
