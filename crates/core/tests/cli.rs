//! Integration tests for the `dnsobs` command-line tool.

use std::process::Command;

fn dnsobs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnsobs"))
}

#[test]
fn usage_on_no_args() {
    let out = dnsobs().output().expect("spawn dnsobs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn simulate_then_show_roundtrip() {
    let dir = std::env::temp_dir().join(format!("dnsobs-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let out = dnsobs()
        .args([
            "simulate",
            "--duration",
            "6",
            "--window",
            "2",
            "--seed",
            "99",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("spawn simulate");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Files were written for every dataset, plus the rollup ladder is
    // attempted (may be absent for short runs).
    let files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(files.iter().any(|f| f.starts_with("srvip-")), "{files:?}");
    assert!(files.iter().any(|f| f.starts_with("qtype-")));
    assert!(files.iter().all(|f| f.ends_with(".tsv")));

    // `show` parses what `simulate` wrote.
    let sample = dir.join(files.iter().find(|f| f.starts_with("qtype-")).unwrap());
    let out = dnsobs()
        .args(["show", sample.to_str().unwrap()])
        .output()
        .expect("spawn show");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dataset qtype"));
    assert!(text.contains('A'));

    // `top --n 3` limits output rows.
    let out = dnsobs()
        .args(["top", sample.to_str().unwrap(), "--n", "3"])
        .output()
        .expect("spawn top");
    assert!(out.status.success());
    let lines = String::from_utf8_lossy(&out.stdout).lines().count();
    assert!(lines <= 2 + 3, "top -n 3 printed {lines} lines");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn determinism_across_cli_runs() {
    let base = std::env::temp_dir().join(format!("dnsobs-cli-det-{}", std::process::id()));
    let run = |suffix: &str| {
        let dir = base.join(suffix);
        let _ = std::fs::remove_dir_all(&dir);
        let out = dnsobs()
            .args([
                "simulate",
                "--duration",
                "4",
                "--window",
                "2",
                "--seed",
                "7",
                "--out",
                dir.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        dir
    };
    let a = run("a");
    let b = run("b");
    let read_sorted = |dir: &std::path::Path| {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
            .into_iter()
            .map(|n| std::fs::read_to_string(dir.join(n)).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(read_sorted(&a), read_sorted(&b), "same seed, same bytes");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn show_rejects_garbage() {
    let path = std::env::temp_dir().join(format!("dnsobs-garbage-{}.tsv", std::process::id()));
    std::fs::write(&path, "this is not a window dump\n").unwrap();
    let out = dnsobs()
        .args(["show", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(&path);
}
