//! Property test for the per-shard watermark frontier protocol: for
//! random worker/shard/batch/window schedules, the threaded pipeline's
//! merged per-shard window closes must render to byte-identical TSV
//! files as the single-threaded `Observatory` fed the same stream.
//!
//! This is the frontier ⇔ global-barrier equivalence law. The single-
//! threaded fold *is* the global barrier (every tracker dumps at every
//! close, in stream order); the threaded pipeline closes windows lazily
//! per shard via frontier deltas, so any ordering bug — a close applied
//! after a batch it should precede, a lost close on an idle shard, a
//! duplicated close on the final drain — shows up as a byte difference
//! in some rendered window file.
//!
//! Capacities are sized so no cache saturates (exactness premise for
//! `shards > 1`; see `sharded_pipeline_is_byte_identical_to_observatory`
//! for why), and each case pins the adaptive batch controller so the
//! schedule space — batch boundaries relative to window boundaries — is
//! actually swept rather than left to the controller.

use dns_observatory::tsv::render_store;
use dns_observatory::{Dataset, Observatory, ObservatoryConfig, ThreadedPipeline, TxSummary};
use proptest::prelude::*;
use simnet::{SimConfig, Simulation};

fn roomy_cfg(window_secs: f64) -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 16_000),
            (Dataset::Esld, 16_000),
            (Dataset::Qtype, 64),
            (Dataset::AaFqdn, 16_000),
        ],
        window_secs,
        ..ObservatoryConfig::default()
    }
}

const DATASETS: [Dataset; 4] = [
    Dataset::SrvIp,
    Dataset::Esld,
    Dataset::Qtype,
    Dataset::AaFqdn,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn frontier_closes_equal_global_barrier(
        seed in 0u64..1_000_000,
        workers in 1usize..=4,
        shards in 1usize..=4,
        batch in prop_oneof![Just(1usize), Just(3), Just(17), Just(64), Just(512)],
        window_secs in prop_oneof![Just(0.25f64), Just(0.5), Just(1.0)],
        gap in prop_oneof![Just(0.0f64), Just(3.0), Just(9.5)],
    ) {
        let mut cfg = SimConfig::tiny();
        cfg.seed = seed;
        let mut sim = Simulation::from_config(cfg);
        let mut txs = sim.collect(1.2);
        if gap > 0.0 {
            // A silence gap forces skipped windows: the frontier must
            // close the pre-gap window exactly once, not once per
            // skipped grid slot.
            sim.skip_to(gap);
            txs.extend(sim.collect(0.6));
        }

        let mut obs = Observatory::new(roomy_cfg(window_secs));
        for tx in &txs {
            obs.ingest(tx);
        }
        let single = obs.finish();
        for w in single.windows() {
            prop_assert_eq!(w.dropped, 0, "premise: no eviction in {}", &w.dataset);
        }

        let threaded = ThreadedPipeline::with_shards(roomy_cfg(window_secs), workers, shards)
            .with_batch_range(batch, batch)
            .run(txs.clone());

        let a = render_store(&single, &DATASETS);
        let b = render_store(&threaded, &DATASETS);
        prop_assert_eq!(a.len(), b.len(), "window-file count");
        for ((name_a, bytes_a), (name_b, bytes_b)) in a.iter().zip(&b) {
            prop_assert_eq!(name_a, name_b);
            prop_assert_eq!(
                bytes_a, bytes_b,
                "window file {} differs (workers={} shards={} batch={} w={}s gap={})",
                name_a, workers, shards, batch, window_secs, gap
            );
        }
    }

    /// The summary path shares the feeder and sequencer; spot-check the
    /// same law through `run_summaries`.
    #[test]
    fn frontier_equivalence_holds_on_summary_path(
        seed in 0u64..1_000_000,
        shards in 1usize..=3,
        batch in prop_oneof![Just(1usize), Just(13), Just(256)],
    ) {
        let psl = psl::Psl::embedded();
        let mut cfg = SimConfig::tiny();
        cfg.seed = seed;
        let mut sim = Simulation::from_config(cfg);
        let summaries: Vec<TxSummary> = sim
            .collect(1.0)
            .iter()
            .map(|tx| TxSummary::from_transaction(tx, &psl))
            .collect();

        let mut obs = Observatory::new(roomy_cfg(0.5));
        for s in summaries.clone() {
            obs.ingest_summary(s);
        }
        let single = obs.finish();

        let threaded = ThreadedPipeline::with_shards(roomy_cfg(0.5), 1, shards)
            .with_batch_range(batch, batch)
            .run_summaries(summaries);

        prop_assert_eq!(
            render_store(&single, &DATASETS),
            render_store(&threaded, &DATASETS),
            "summary path diverged (shards={} batch={})",
            shards,
            batch
        );
    }
}
