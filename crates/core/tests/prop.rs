//! Property-based tests for the core pipeline's data-handling laws:
//! TSV round-trips for arbitrary feature rows, merge/rollup arithmetic,
//! and distribution-analysis invariants.

use dns_observatory::aggregate::rollup;
use dns_observatory::analysis::distribution::traffic_distribution;
use dns_observatory::{tsv, FeatureConfig, FeatureRow, FeatureSet, WindowDump};
use proptest::prelude::*;

fn arb_tops() -> impl Strategy<Value = Vec<(u64, f64)>> {
    prop::collection::vec((1u64..100_000, 0.01f64..=1.0), 0..=3).prop_map(|mut v| {
        // Normalize shares to sum ≤ 1 and sort descending like the real code.
        let total: f64 = v.iter().map(|(_, s)| s).sum();
        if total > 1.0 {
            for (_, s) in &mut v {
                *s /= total;
            }
        }
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        v.dedup_by_key(|(val, _)| *val);
        v
    })
}

fn arb_quartiles() -> impl Strategy<Value = [f64; 3]> {
    prop_oneof![
        Just([f64::NAN; 3]),
        (0.5f64..100.0, 0.0f64..50.0, 0.0f64..50.0).prop_map(|(a, d1, d2)| [
            a,
            a + d1,
            a + d1 + d2
        ]),
    ]
}

prop_compose! {
    fn arb_row()(
        counters in prop::collection::vec(0u64..1_000_000, 13),
        cards in prop::collection::vec(0.0f64..100_000.0, 10),
        qdots in 0.0f64..40.0,
        qdots_max in 0u8..=40,
        lvl in 0.0f64..20.0,
        nslvl in 0.0f64..20.0,
        ttl_top in arb_tops(),
        ttl_a_top in arb_tops(),
        nsttl_top in arb_tops(),
        negttl_top in arb_tops(),
        a_data_top in arb_tops(),
        ns_names_top in arb_tops(),
        delays in arb_quartiles(),
        hops in arb_quartiles(),
        sizes in arb_quartiles(),
    ) -> FeatureRow {
        let mut row = FeatureSet::new(FeatureConfig::default()).row();
        let hits = counters[0].max(counters.iter().copied().max().unwrap_or(0));
        row.hits = hits;
        row.unans = counters[1].min(hits);
        row.ok = counters[2].min(hits);
        row.nxd = counters[3].min(hits);
        row.rfs = counters[4].min(hits);
        row.fail = counters[5].min(hits);
        row.ok_ans = counters[6].min(row.ok);
        row.ok_ns = counters[7].min(row.ok);
        row.ok_add = counters[8].min(row.ok);
        row.ok_nil = counters[9].min(row.ok);
        row.ok6 = counters[10].min(row.ok);
        row.ok6nil = counters[11].min(row.ok6);
        row.ok_sec = counters[12].min(row.ok);
        row.srvips = cards[0];
        row.srcips = cards[1];
        row.sources = cards[2];
        row.qnamesa = cards[3];
        row.qnames = cards[4];
        row.tlds = cards[5];
        row.eslds = cards[6];
        row.qtypes = cards[7];
        row.ip4s = cards[8];
        row.ip6s = cards[9];
        row.qdots = qdots;
        row.qdots_max = qdots_max;
        row.lvl = lvl;
        row.nslvl = nslvl;
        row.ttl_top = ttl_top;
        row.ttl_a_top = ttl_a_top;
        row.nsttl_top = nsttl_top;
        row.negttl_top = negttl_top;
        row.a_data_top = a_data_top;
        row.ns_names_top = ns_names_top;
        row.resp_delays = delays;
        row.network_hops = hops;
        row.resp_size = sizes;
        row
    }
}

fn dump(rows: Vec<(String, FeatureRow)>, start: f64) -> WindowDump {
    WindowDump {
        dataset: "prop".into(),
        start,
        length: 60.0,
        kept: rows.iter().map(|(_, r)| r.hits).sum(),
        dropped: 0,
        filtered: 0,
        rows,
    }
}

fn rows_close(a: &FeatureRow, b: &FeatureRow) -> bool {
    let f_eq =
        |x: f64, y: f64| (x.is_nan() && y.is_nan()) || (x - y).abs() < 2e-3 * (1.0 + x.abs());
    a.hits == b.hits
        && a.nxd == b.nxd
        && a.ok_nil == b.ok_nil
        && f_eq(a.srvips, b.srvips)
        && f_eq(a.qdots, b.qdots)
        && a.qdots_max == b.qdots_max
        && f_eq(a.resp_delays[1], b.resp_delays[1])
        && a.ttl_top.len() == b.ttl_top.len()
        && a.ttl_top
            .iter()
            .zip(&b.ttl_top)
            .all(|((v1, s1), (v2, s2))| v1 == v2 && (s1 - s2).abs() < 1e-3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every representable window dump round-trips through its TSV file.
    #[test]
    fn tsv_roundtrip_arbitrary_rows(
        rows in prop::collection::vec(("k[a-z0-9.]{1,30}", arb_row()), 0..20),
    ) {
        let d = dump(rows, 120.0);
        let mut buf = Vec::new();
        tsv::write_window(&mut buf, &d).unwrap();
        let parsed = tsv::read_window(&buf[..]).unwrap();
        prop_assert_eq!(parsed.rows.len(), d.rows.len());
        prop_assert_eq!(parsed.kept, d.kept);
        for ((ka, ra), (kb, rb)) in d.rows.iter().zip(&parsed.rows) {
            prop_assert_eq!(ka, kb);
            prop_assert!(rows_close(ra, rb), "row drift for {}", ka);
        }
    }

    /// Rolling up n copies of the same window is the identity on counter
    /// rates and on present-window means.
    #[test]
    fn rollup_identity(row in arb_row(), n in 2usize..6) {
        let windows: Vec<WindowDump> =
            (0..n).map(|i| dump(vec![("k".into(), row.clone())], i as f64 * 60.0)).collect();
        let rolled = rollup(&windows);
        prop_assert_eq!(rolled.rows.len(), 1);
        let out = &rolled.rows[0].1;
        prop_assert_eq!(out.hits, row.hits);
        prop_assert_eq!(out.nxd, row.nxd);
        prop_assert!((out.srvips - row.srvips).abs() < 1e-6 * (1.0 + row.srvips));
        if !row.resp_delays[1].is_nan() {
            prop_assert!((out.resp_delays[1] - row.resp_delays[1]).abs() < 1e-9);
        }
    }

    /// Rolling up a window with an absent partner halves counter rates
    /// (fill-zero) but leaves non-counters untouched.
    #[test]
    fn rollup_fill_zero(row in arb_row()) {
        let w1 = dump(vec![("k".into(), row.clone())], 0.0);
        let w2 = dump(vec![], 60.0);
        let rolled = rollup(&[w1, w2]);
        let out = &rolled.rows[0].1;
        let half = (row.hits as f64 / 2.0).round() as u64;
        prop_assert!(out.hits == half || out.hits == row.hits / 2);
        prop_assert!((out.srvips - row.srvips).abs() < 1e-9 * (1.0 + row.srvips));
    }

    /// Distribution curves are monotone and correctly normalized for any
    /// input rows.
    #[test]
    fn distribution_invariants(
        mut rows in prop::collection::vec(("k[a-z0-9]{1,10}", arb_row()), 1..40),
    ) {
        rows.sort_by_key(|r| std::cmp::Reverse(r.1.hits));
        let dist = traffic_distribution(&rows);
        prop_assert_eq!(
            dist.captured_hits,
            rows.iter().map(|(_, r)| r.hits).sum::<u64>()
        );
        for curve in &dist.curves {
            for w in curve.cdf.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-12);
            }
            if let Some(&last) = curve.cdf.last() {
                prop_assert!(last <= 1.0 + 1e-9);
            }
        }
    }
}
