//! Property tests for the feed codec: any representable `TxSummary` must
//! survive the sensor→collector wire byte-for-byte, under any TCP
//! segmentation, and single-byte corruption must be *detected* — a clean
//! error or a wait-for-more-bytes, never a panic and never a silently
//! different summary.

use dns_observatory::{Outcome, TxSummary};
use dnswire::{Name, RecordType};
use feed::frame::{decode_payload, encode_frame};
use feed::{ByteReader, FeedError, FeedItem, Frame, FrameReader};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            prop::char::range('a', 'z').prop_map(|c| c as u8),
            prop::char::range('0', '9').prop_map(|c| c as u8),
            Just(b'-'),
        ],
        1..=12,
    )
}

fn arb_name() -> impl Strategy<Value = Name> {
    prop::collection::vec(arb_label(), 0..=5).prop_map(|labels| {
        if labels.is_empty() {
            Name::root()
        } else {
            Name::from_labels(labels).expect("labels are valid")
        }
    })
}

fn arb_ip() -> impl Strategy<Value = IpAddr> {
    prop_oneof![
        any::<u32>().prop_map(|v| IpAddr::V4(Ipv4Addr::from(v))),
        any::<u64>().prop_map(|v| IpAddr::V6(Ipv6Addr::from((v as u128) << 64 | 0x1))),
    ]
}

fn arb_outcome() -> impl Strategy<Value = Outcome> {
    any::<u8>().prop_map(|v| match v % 6 {
        0 => Outcome::Unanswered,
        1 => Outcome::NoError,
        2 => Outcome::NxDomain,
        3 => Outcome::Refused,
        4 => Outcome::ServFail,
        _ => Outcome::OtherError,
    })
}

fn arb_opt_string() -> impl Strategy<Value = Option<String>> {
    prop::option::of(
        prop::collection::vec(prop::char::range('a', 'z'), 0..=12)
            .prop_map(|chars| chars.into_iter().collect::<String>()),
    )
}

// The stub's tuple strategies cap out well below TxSummary's field
// count, so the struct is generated in three slices and stitched.

prop_compose! {
    fn arb_question()(
        time in 0.0f64..1e9,
        resolver in arb_ip(),
        contributor in any::<u16>(),
        nameserver in arb_ip(),
        qname in arb_name(),
        qtype_code in any::<u16>(),
        qdots in any::<u8>(),
        outcome in arb_outcome(),
    ) -> (f64, IpAddr, u16, IpAddr, Name, u16, u8, Outcome) {
        (time, resolver, contributor, nameserver, qname, qtype_code, qdots, outcome)
    }
}

prop_compose! {
    fn arb_answer()(
        bools in prop::collection::vec(any::<bool>(), 6),
        answer_count in any::<u8>(),
        authority_ns_count in any::<u8>(),
        ip4s in prop::collection::vec(any::<u32>().prop_map(Ipv4Addr::from), 0..=4),
        ip6s in prop::collection::vec(
            any::<u64>().prop_map(|v| Ipv6Addr::from((v as u128) << 32)), 0..=3),
        answer_ttl in prop::option::of(any::<u32>()),
        ns_ttl in prop::option::of(any::<u32>()),
        soa_minimum in prop::option::of(any::<u32>()),
    ) -> (Vec<bool>, u8, u8, Vec<Ipv4Addr>, Vec<Ipv6Addr>, Option<u32>, Option<u32>, Option<u32>) {
        (bools, answer_count, authority_ns_count, ip4s, ip6s, answer_ttl, ns_ttl, soa_minimum)
    }
}

prop_compose! {
    fn arb_extras()(
        delay_ms in prop::option::of(0.0f64..1e6),
        hops in prop::option::of(any::<u8>()),
        resp_size in prop::option::of(any::<u32>()),
        answer_data_hashes in prop::collection::vec(any::<u64>(), 0..=6),
        ns_name_hashes in prop::collection::vec(any::<u64>(), 0..=6),
        etld in arb_opt_string(),
        esld in arb_opt_string(),
        tld in arb_opt_string(),
    ) -> (Option<f64>, Option<u8>, Option<u32>, Vec<u64>, Vec<u64>,
          Option<String>, Option<String>, Option<String>) {
        (delay_ms, hops, resp_size, answer_data_hashes, ns_name_hashes, etld, esld, tld)
    }
}

prop_compose! {
    fn arb_summary()(
        q in arb_question(),
        a in arb_answer(),
        x in arb_extras(),
    ) -> TxSummary {
        let (time, resolver, contributor, nameserver, qname, qtype_code, qdots, outcome) = q;
        let (bools, answer_count, authority_ns_count, ip4s, ip6s, answer_ttl, ns_ttl, soa_minimum) = a;
        let (delay_ms, hops, resp_size, answer_data_hashes, ns_name_hashes, etld, esld, tld) = x;
        TxSummary {
            time,
            resolver,
            contributor,
            nameserver,
            qname,
            qtype: RecordType::from_code(qtype_code),
            qdots,
            outcome,
            aa: bools[0],
            ok_ans: bools[1],
            ok_ns: bools[2],
            ok_add: bools[3],
            do_flag: bools[4],
            dnssec_ok: bools[5],
            answer_count,
            authority_ns_count,
            ip4s,
            ip6s,
            answer_ttl,
            ns_ttl,
            soa_minimum,
            delay_ms,
            hops,
            resp_size,
            answer_data_hashes,
            ns_name_hashes,
            etld,
            esld,
            tld,
        }
    }
}

/// Split `bytes` at the given fractions into successive chunks.
fn chunk_at(bytes: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
    points.sort_unstable();
    points.dedup();
    let mut chunks = Vec::new();
    let mut prev = 0;
    for p in points {
        chunks.push(bytes[prev..p].to_vec());
        prev = p;
    }
    chunks.push(bytes[prev..].to_vec());
    chunks
}

proptest! {
    /// Item codec: arbitrary summaries round-trip exactly (Debug covers
    /// every field, including NaN-stable float rendering).
    #[test]
    fn summary_roundtrips(summary in arb_summary()) {
        let mut buf = Vec::new();
        summary.encode(&mut buf);
        let mut r = ByteReader::new(&buf);
        let back = TxSummary::decode(&mut r).expect("valid encoding decodes");
        prop_assert!(r.is_empty(), "decoder must consume exactly what encode wrote");
        prop_assert_eq!(format!("{:?}", summary), format!("{:?}", back));
    }

    /// Frame + stream layer: a batch of arbitrary summaries survives any
    /// TCP segmentation of the byte stream.
    #[test]
    fn batch_roundtrips_under_any_segmentation(
        items in prop::collection::vec(arb_summary(), 0..=4),
        sensor in any::<u64>(),
        seq in any::<u64>(),
        cuts in prop::collection::vec(any::<usize>(), 0..=9),
    ) {
        let frame = Frame::Batch { sensor, seq, items };
        let mut stream = Vec::new();
        encode_frame(&frame, &mut stream);
        let mut reader = FrameReader::<TxSummary>::new();
        let mut got = Vec::new();
        for chunk in chunk_at(&stream, &cuts) {
            reader.push(&chunk);
            while let Some(f) = reader.next_frame().expect("clean stream decodes") {
                got.push(f);
            }
        }
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(format!("{:?}", &got[0]), format!("{:?}", &frame));
    }

    /// Integrity: flip any single byte anywhere in the encoded stream —
    /// the reader must either report an error, keep waiting for bytes
    /// (corrupted length prefix), or in no case hand back a frame that
    /// differs from what was sent.
    #[test]
    fn single_byte_corruption_never_silently_wrong(
        items in prop::collection::vec(arb_summary(), 1..=3),
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let frame = Frame::Batch { sensor: 1, seq: 0, items };
        let mut stream = Vec::new();
        encode_frame(&frame, &mut stream);
        let pos = pos % stream.len();
        stream[pos] ^= flip;

        let mut reader = FrameReader::<TxSummary>::new();
        reader.push(&stream);
        match reader.next_frame() {
            Err(_) => {}        // detected: CRC, framing, or decode error
            Ok(None) => {}      // length prefix grew: reader waits, no lie
            Ok(Some(got)) => {
                prop_assert_eq!(
                    format!("{:?}", got), format!("{:?}", frame),
                    "corruption at byte {} (^{:#04x}) produced a different frame",
                    pos, flip
                );
            }
        }
    }

    /// Robustness: arbitrary garbage never panics the reader and never
    /// yields a frame from thin air with a valid CRC… statistically.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..=64)) {
        let mut reader = FrameReader::<TxSummary>::new();
        reader.push(&bytes);
        // Drain until the reader wants more input or errors; either is fine.
        while let Ok(Some(_)) = reader.next_frame() {}
    }

    /// The payload decoder itself (CRC already verified) also never
    /// panics on arbitrary bytes.
    #[test]
    fn decode_payload_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..=64)) {
        let _ = decode_payload::<TxSummary>(&bytes);
    }
}

/// Deterministic spot-check of CRC detection: every single-byte flip
/// inside the payload region must fail the CRC (guaranteed for CRC-32
/// burst errors ≤ 32 bits), not just be caught incidentally.
#[test]
fn every_payload_byte_flip_fails_crc() {
    let frame: Frame<TxSummary> = Frame::Hello {
        sensor: 42,
        next_seq: 7,
        item_version: TxSummary::ITEM_VERSION,
    };
    let mut stream = Vec::new();
    encode_frame(&frame, &mut stream);
    for pos in 4..stream.len() {
        let mut bad = stream.clone();
        bad[pos] ^= 0xa5;
        let mut reader = FrameReader::<TxSummary>::new();
        reader.push(&bad);
        assert!(
            matches!(
                reader.next_frame(),
                Err(FeedError::Crc { .. })
                    | Err(FeedError::BadMagic(_))
                    | Err(FeedError::BadProtocolVersion { .. })
            ),
            "flip at {pos} went undetected"
        );
    }
}
