//! Three-process federated aggregation over loopback TCP.
//!
//! Topology under test (the federated tier of README/DESIGN):
//!
//! ```text
//! sensor 0 ──▶ collect --forward ──┐
//!                                  ├──▶ aggregate ──▶ global TSVs
//! sensor 1 ──▶ collect --forward ──┘
//! ```
//!
//! The forwarding collectors also write their window-state streams to
//! disk (`--state-out`), which gives the test an exact in-process
//! reference: aggregating those same records directly through
//! `AggregatorCore` must produce byte-identical global TSV files to what
//! the `dnsobs aggregate` process wrote from the TCP streams.

use dns_observatory::{Dataset, ObservatoryConfig, StateExporter};
use feed::{Sensor, SensorConfig};
use simnet::{SimConfig, Simulation};
use sketchwire::{AggregatorConfig, AggregatorCore, WindowState};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

fn dnsobs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnsobs"))
}

/// A loopback address that was free a moment ago. Sensors and forwarding
/// collectors reconnect with backoff, so spawn order doesn't matter.
fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    format!("127.0.0.1:{}", l.local_addr().unwrap().port())
}

/// Kills the child on drop so a failing test doesn't leak processes.
struct Proc {
    name: &'static str,
    child: Child,
}

impl Proc {
    fn spawn(name: &'static str, args: &[&str]) -> Proc {
        let child = dnsobs()
            .args(args)
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        Proc { name, child }
    }

    /// Wait up to 60 s; panic (and kill) on timeout or nonzero exit.
    fn join(mut self) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    let mut err = String::new();
                    if let Some(mut pipe) = self.child.stderr.take() {
                        use std::io::Read;
                        let _ = pipe.read_to_string(&mut err);
                    }
                    assert!(status.success(), "{} failed: {err}", self.name);
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("{} timed out", self.name);
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

fn read_dir_sorted(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dnsobs-fed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two forwarding collectors stream sketch state to one aggregator over
/// TCP; the global TSVs must be byte-identical to aggregating the same
/// state records in-process.
#[test]
fn three_process_topology_matches_in_process_reference() {
    let dir = temp_dir("topo");
    let global = dir.join("global");
    std::fs::create_dir_all(&global).unwrap();
    let (agg_addr, c0_addr, c1_addr) = (free_addr(), free_addr(), free_addr());
    let state0 = dir.join("state0.bin");
    let state1 = dir.join("state1.bin");

    let agg = Proc::spawn(
        "aggregate",
        &[
            "aggregate",
            "--listen",
            &agg_addr,
            "--upstreams",
            "2",
            "--out",
            global.to_str().unwrap(),
        ],
    );
    let collect = |name, listen: &str, upstream, state: &Path| {
        Proc::spawn(
            name,
            &[
                "collect",
                "--listen",
                listen,
                "--sensors",
                "1",
                "--window",
                "1",
                // Full default-scale caps: fine since io threads run on
                // bounded stacks and the sensor encoder seals batches
                // by bytes (chunked 10k-cap state records no longer
                // overflow MAX_FRAME or the address space).
                "--topk",
                "10000",
                "--forward",
                &agg_addr,
                "--upstream",
                upstream,
                "--state-out",
                state.to_str().unwrap(),
            ],
        )
    };
    let c0 = collect("collect-0", &c0_addr, "0", &state0);
    let c1 = collect("collect-1", &c1_addr, "1", &state1);
    let sensor = |name, connect: &str, index| {
        Proc::spawn(
            name,
            &[
                "sensor",
                "--connect",
                connect,
                "--duration",
                "3",
                "--seed",
                "7",
                "--sensors",
                "2",
                "--index",
                index,
            ],
        )
    };
    let s0 = sensor("sensor-0", &c0_addr, "0");
    let s1 = sensor("sensor-1", &c1_addr, "1");

    s0.join();
    s1.join();
    c0.join();
    c1.join();
    agg.join();

    // In-process reference over the very state records that crossed the
    // wire. Merge order across upstreams differs from TCP arrival order;
    // commutativity (pinned by sketchwire's proptests) makes that moot.
    let refdir = dir.join("reference");
    std::fs::create_dir_all(&refdir).unwrap();
    let mut core = AggregatorCore::new(&AggregatorConfig::new(2));
    let mut records = 0usize;
    for path in [&state0, &state1] {
        let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for ws in sketchwire::read_all(&bytes).expect("valid state stream") {
            core.on_state(ws).expect("reference accepts state");
            records += 1;
        }
    }
    assert!(records > 0, "collectors exported no state");
    let mut sealed = Vec::new();
    core.finish(&mut sealed);
    assert!(!sealed.is_empty(), "reference sealed no windows");
    for gw in &sealed {
        dns_observatory::write_global(&refdir, gw).expect("render reference");
    }

    let got = read_dir_sorted(&global);
    let want = read_dir_sorted(&refdir);
    assert!(!want.is_empty());
    assert_eq!(
        got.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        want.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "global file set"
    );
    for ((name, a), (_, b)) in got.iter().zip(&want) {
        assert_eq!(a, b, "{name} differs between TCP run and reference");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// `dnsobs status` renders the aggregator's health section from its live
/// `--metrics` endpoint mid-run.
///
/// The aggregator's feed merges upstream streams in time order, so it
/// only releases records once every expected upstream has connected and
/// advanced. The test pins a deterministic mid-run point by driving the
/// aggregator with two in-process state streams: upstream 0 sends
/// everything and finishes; upstream 1 sends only its first window and
/// then stalls — the aggregator has processed records but cannot exit.
#[test]
fn status_renders_aggregator_health_mid_run() {
    let dir = temp_dir("status");
    let global = dir.join("global");
    std::fs::create_dir_all(&global).unwrap();
    let (agg_addr, metrics) = (free_addr(), free_addr());

    let agg = Proc::spawn(
        "aggregate",
        &[
            "aggregate",
            "--listen",
            &agg_addr,
            "--upstreams",
            "2",
            "--metrics",
            &metrics,
            "--out",
            global.to_str().unwrap(),
        ],
    );

    // Per-upstream window-state streams from a seeded sim, split the
    // same way the sensor CLI slices traffic.
    let cfg = || ObservatoryConfig {
        datasets: vec![(Dataset::SrvIp, 200), (Dataset::Qtype, 64)],
        window_secs: 1.0,
        bloom_gate: false,
        ..ObservatoryConfig::default()
    };
    let mut e0 = StateExporter::new(cfg(), 0, 0);
    let mut e1 = StateExporter::new(cfg(), 1, 0);
    let (mut st0, mut st1) = (Vec::new(), Vec::new());
    let mut sim = Simulation::from_config(SimConfig::small());
    sim.run(3.0, &mut |tx| {
        if tx.sensor_index(2) == 0 {
            e0.ingest(tx, &mut st0);
        } else {
            e1.ingest(tx, &mut st1);
        }
    });
    e0.finish(&mut st0);
    e1.finish(&mut st1);
    assert!(st1.len() >= 2, "need a tail to withhold, got {}", st1.len());

    let s0 = Sensor::<WindowState>::connect(&agg_addr, SensorConfig::new(0));
    let s1 = Sensor::<WindowState>::connect(&agg_addr, SensorConfig::new(1));
    for ws in st0.drain(..) {
        s0.send(ws);
    }
    s0.finish();
    s1.send(st1.remove(0));
    s1.flush();
    s1.wait_drained();

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last;
    loop {
        let out = dnsobs()
            .args(["status", "--metrics", &metrics])
            .output()
            .expect("spawn status");
        last = String::from_utf8_lossy(&out.stdout).into_owned();
        if out.status.success() && last.contains("aggregator") && last.contains("upstream 0") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "status never showed aggregator health; last output:\n{last}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(last.contains("records / rejected / late"), "{last}");

    // Upstream 1 delivers its tail; the aggregator must then exit
    // cleanly with its final global windows.
    for ws in st1.drain(..) {
        s1.send(ws);
    }
    s1.finish();
    agg.join();
    assert!(
        !read_dir_sorted(&global).is_empty(),
        "aggregator wrote no global windows"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
