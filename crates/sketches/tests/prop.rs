//! Property-based tests for the sketch invariants the pipeline relies on.

use proptest::prelude::*;
use sketches::{BloomFilter, HyperLogLog, LogHistogram, SpaceSaving, TopValues};
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Space-Saving: for every monitored key,
    /// `count − error ≤ true count ≤ count`, and `error ≤ N/k`.
    #[test]
    fn space_saving_error_bounds(
        keys in prop::collection::vec(0u32..50, 1..2000),
        k in 2usize..32,
    ) {
        let mut ss: SpaceSaving<u32, ()> = SpaceSaving::new(k, 60.0);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            ss.observe(key, i as f64 * 0.001);
            *truth.entry(*key).or_default() += 1;
        }
        let n = keys.len() as u64;
        prop_assert_eq!(ss.observed(), n);
        for e in ss.iter_desc() {
            let true_count = truth[e.key];
            prop_assert!(e.count >= true_count,
                "count {} < true {}", e.count, true_count);
            prop_assert!(e.count - e.error <= true_count,
                "lower bound {} > true {}", e.count - e.error, true_count);
            prop_assert!(e.error <= n / k as u64,
                "error {} > N/k {}", e.error, n / k as u64);
        }
    }

    /// Space-Saving: any key whose true frequency exceeds N/k must be
    /// monitored (the classic frequent-elements guarantee).
    #[test]
    fn space_saving_finds_frequent_elements(
        keys in prop::collection::vec(0u32..20, 100..1500),
        k in 4usize..16,
    ) {
        let mut ss: SpaceSaving<u32, ()> = SpaceSaving::new(k, 60.0);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            ss.observe(key, i as f64);
            *truth.entry(*key).or_default() += 1;
        }
        let n = keys.len() as u64;
        let threshold = n / k as u64;
        for (key, &count) in &truth {
            if count > threshold {
                prop_assert!(ss.count(key).is_some(),
                    "frequent key {key} (count {count} > {threshold}) evicted");
            }
        }
    }

    /// HyperLogLog: estimate within 6 standard errors of the truth for
    /// arbitrary distinct-item counts.
    #[test]
    fn hll_relative_error(n in 1u64..30_000, p in 8u8..14) {
        let mut h = HyperLogLog::new(p);
        for i in 0..n {
            h.insert(&i.to_le_bytes());
        }
        let est = h.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        // Allow generous slack for small n where quantization dominates.
        let allowed = 6.0 * h.standard_error() + 3.0 / n as f64;
        prop_assert!(rel <= allowed, "n={n} p={p} est={est:.1} rel={rel:.4}");
    }

    /// HyperLogLog merge is commutative and idempotent.
    #[test]
    fn hll_merge_laws(
        xs in prop::collection::vec(any::<u64>(), 0..500),
        ys in prop::collection::vec(any::<u64>(), 0..500),
    ) {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        for x in &xs { a.insert(&x.to_le_bytes()); }
        for y in &ys { b.insert(&y.to_le_bytes()); }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.estimate().to_bits(), ba.estimate().to_bits());
        let mut abb = ab.clone();
        abb.merge(&b);
        prop_assert_eq!(abb.estimate().to_bits(), ab.estimate().to_bits());
    }

    /// Bloom filter: zero false negatives, whatever the input.
    #[test]
    fn bloom_no_false_negatives(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..500),
    ) {
        let mut bf = BloomFilter::new(items.len().max(8), 0.02);
        for item in &items {
            bf.insert(item);
        }
        for item in &items {
            prop_assert!(bf.contains(item));
        }
    }

    /// Histogram: quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn histogram_quantile_monotone(
        values in prop::collection::vec(0.5f64..5000.0, 1..300),
        qs in prop::collection::vec(0.0f64..=1.0, 2..6),
    ) {
        let mut h = LogHistogram::new(0.5, 10_000.0, 20);
        for &v in &values {
            h.record(v);
        }
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= last, "quantile not monotone at q={q}");
            prop_assert!(v >= h.min_value().unwrap() && v <= h.max_value().unwrap());
            last = v;
        }
    }

    /// Sharded Space-Saving: partitioning a stream by key hash across N
    /// independent trackers (the pipeline's shard layout) and merging by
    /// concatenation preserves the per-partition error bound. Because the
    /// partitions are disjoint, each merged entry keeps the guarantees of
    /// the shard that produced it: `count − error ≤ true ≤ count` with
    /// `error ≤ N_shard / k_shard`, and any key whose frequency within its
    /// shard exceeds that bound is present in the merged view.
    #[test]
    fn sharded_space_saving_merge_preserves_partition_bounds(
        keys in prop::collection::vec(0u32..60, 1..2500),
        k in 2usize..24,
        shards in 1usize..5,
    ) {
        let shard_of = |key: u32| -> usize {
            (sketches::hash::xxh64(&key.to_be_bytes(), 0) % shards as u64) as usize
        };
        let mut parts: Vec<SpaceSaving<u32, ()>> =
            (0..shards).map(|_| SpaceSaving::new(k, 60.0)).collect();
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            parts[shard_of(*key)].observe(key, i as f64 * 0.001);
            *truth.entry(*key).or_default() += 1;
        }
        // Disjoint partitions ⇒ merge is concatenation: no key appears in
        // two shards, and per-shard totals sum to the stream length.
        let total: u64 = parts.iter().map(|p| p.observed()).sum();
        prop_assert_eq!(total, keys.len() as u64);
        let mut seen: HashMap<u32, usize> = HashMap::new();
        for (s, part) in parts.iter().enumerate() {
            let bound = part.error_bound();
            for e in part.iter_desc() {
                prop_assert!(seen.insert(*e.key, s).is_none(),
                    "key {} reported by two shards", e.key);
                let true_count = truth[e.key];
                prop_assert!(e.count >= true_count,
                    "merged count {} < true {}", e.count, true_count);
                prop_assert!(e.count - e.error <= true_count,
                    "merged lower bound {} > true {}", e.count - e.error, true_count);
                prop_assert!(e.error <= bound,
                    "shard {s}: error {} > per-partition bound {}", e.error, bound);
            }
        }
        // Frequent-elements guarantee survives the merge, per partition.
        for (key, &count) in &truth {
            let part = &parts[shard_of(*key)];
            if count > part.error_bound() {
                prop_assert!(seen.contains_key(key),
                    "shard-frequent key {key} missing from merged view");
            }
        }
    }

    /// Histogram: median has bounded relative error vs the exact median.
    #[test]
    fn histogram_median_accuracy(
        mut values in prop::collection::vec(1.0f64..10_000.0, 11..400),
    ) {
        let mut h = LogHistogram::new(1.0, 10_000.0, 20);
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = values[(values.len() - 1) / 2];
        let approx = h.quantile(0.5).unwrap();
        // One log-bucket is a factor of 10^(1/20) ≈ 1.122; allow two
        // buckets of slack either way for rank-rounding.
        let factor = 10f64.powf(2.0 / 20.0);
        prop_assert!(approx <= exact * factor && approx >= exact / factor,
            "approx {approx} exact {exact}");
    }

    /// TopValues: the reported counts are exact for values that were never
    /// evicted, and the top value is the true mode when capacity suffices.
    #[test]
    fn topvalues_exact_within_capacity(
        values in prop::collection::vec(0u64..8, 1..500),
    ) {
        let mut t = TopValues::new(8);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &v in &values {
            t.record(v);
            *truth.entry(v).or_default() += 1;
        }
        for (v, c) in t.ranked() {
            prop_assert_eq!(truth[&v], c);
        }
        let mode = truth.iter().max_by_key(|(v, c)| (*c, std::cmp::Reverse(*v))).unwrap();
        let top = t.top().unwrap();
        prop_assert_eq!(truth[&top], *mode.1);
    }

    /// HyperLogLog merge: associative, with the empty sketch as identity,
    /// and merging per-part sketches is indistinguishable from sketching
    /// the concatenated stream — the property the collector relies on
    /// when it unions per-sensor sketches in any grouping the network
    /// happens to produce.
    #[test]
    fn hll_merge_associativity_identity_and_parts_equal_whole(
        xs in prop::collection::vec(any::<u64>(), 0..400),
        ys in prop::collection::vec(any::<u64>(), 0..400),
        zs in prop::collection::vec(any::<u64>(), 0..400),
    ) {
        let sketch = |items: &[u64]| {
            let mut h = HyperLogLog::new(10);
            for i in items {
                h.insert(&i.to_le_bytes());
            }
            h
        };
        let (a, b, c) = (sketch(&xs), sketch(&ys), sketch(&zs));

        // Associativity: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.estimate().to_bits(), right.estimate().to_bits());

        // Identity: merging an empty sketch changes nothing.
        let mut with_empty = a.clone();
        with_empty.merge(&HyperLogLog::new(10));
        prop_assert_eq!(with_empty.estimate().to_bits(), a.estimate().to_bits());

        // Parts equal whole: however the stream was split, the union is
        // the sketch of the concatenation.
        let mut whole_items = xs.clone();
        whole_items.extend_from_slice(&ys);
        whole_items.extend_from_slice(&zs);
        let whole = sketch(&whole_items);
        prop_assert_eq!(left.estimate().to_bits(), whole.estimate().to_bits());
    }

    /// Space-Saving: `error ≤ N/k` and the count bracket hold regardless
    /// of insertion order — including adversarial schedules engineered to
    /// maximize eviction churn (rare keys round-robining against the
    /// table, and frequency-sorted runs in both directions).
    #[test]
    fn space_saving_error_bound_is_order_independent(
        freqs in prop::collection::vec(1u64..40, 3..40),
        k in 2usize..16,
    ) {
        // Key i occurs freqs[i] times; three schedules over one multiset.
        let mut ascending: Vec<u32> = Vec::new();
        let mut order: Vec<usize> = (0..freqs.len()).collect();
        order.sort_by_key(|&i| freqs[i]);
        for &i in &order {
            ascending.extend(std::iter::repeat_n(i as u32, freqs[i] as usize));
        }
        let descending: Vec<u32> = ascending.iter().rev().copied().collect();
        // Churn: one copy of each still-remaining key per round, so low-
        // frequency keys keep re-entering and evicting monitored entries.
        let mut remaining = freqs.clone();
        let mut churn: Vec<u32> = Vec::new();
        loop {
            let mut any = false;
            for (i, r) in remaining.iter_mut().enumerate() {
                if *r > 0 {
                    *r -= 1;
                    churn.push(i as u32);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }

        let n: u64 = freqs.iter().sum();
        for (name, stream) in [
            ("ascending", &ascending),
            ("descending", &descending),
            ("churn", &churn),
        ] {
            let mut ss: SpaceSaving<u32, ()> = SpaceSaving::new(k, 60.0);
            for (i, key) in stream.iter().enumerate() {
                ss.observe(key, i as f64 * 0.001);
            }
            prop_assert_eq!(ss.observed(), n);
            for e in ss.iter_desc() {
                let true_count = freqs[*e.key as usize];
                prop_assert!(e.error <= n / k as u64,
                    "{name}: error {} > N/k {}", e.error, n / k as u64);
                prop_assert!(e.count >= true_count,
                    "{name}: count {} < true {}", e.count, true_count);
                prop_assert!(e.count - e.error <= true_count,
                    "{name}: lower bound {} > true {}", e.count - e.error, true_count);
            }
            // Frequent-elements guarantee must also be order-independent.
            for (i, &count) in freqs.iter().enumerate() {
                if count > n / k as u64 {
                    prop_assert!(ss.count(&(i as u32)).is_some(),
                        "{name}: frequent key {i} (count {count}) evicted");
                }
            }
        }
    }
}
