//! Exact top-N tracking of low-cardinality discrete values.
//!
//! The paper reports "the top-3 TTL values (and distributions)" per object
//! (§2.3). TTLs per object have tiny cardinality (a handful of configured
//! values plus cache-decremented noise), so an exact bounded counter map
//! with least-count eviction is appropriate: unlike Space-Saving we do not
//! inherit counts, because we want the *configured* values to dominate,
//! not to give newcomers a boost.

/// Tracks counts for up to `capacity` distinct `u64` values, evicting the
/// least frequent when full.
#[derive(Debug, Clone)]
pub struct TopValues {
    capacity: usize,
    /// (value, count) pairs; linear scan is fine for capacities ≤ ~64.
    slots: Vec<(u64, u64)>,
    observed: u64,
}

impl TopValues {
    /// Track up to `capacity` distinct values exactly.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        TopValues {
            capacity,
            slots: Vec::with_capacity(capacity),
            observed: 0,
        }
    }

    /// Record one occurrence of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.observed += n;
        if let Some(slot) = self.slots.iter_mut().find(|(v, _)| *v == value) {
            slot.1 += n;
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push((value, n));
            return;
        }
        // Evict the current minimum only if the newcomer would beat it;
        // a 1-count newcomer never displaces an established value.
        let (min_idx, &(_, min_count)) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, c))| *c)
            .expect("capacity > 0");
        if n > min_count {
            self.slots[min_idx] = (value, n);
        }
    }

    /// Total number of recorded occurrences (including evicted ones).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The raw `(value, count)` slots in insertion order — the
    /// serialization surface.
    pub fn slots(&self) -> &[(u64, u64)] {
        &self.slots
    }

    /// Rebuild a tracker from raw parts previously obtained via
    /// [`slots`](Self::slots)/[`observed`](Self::observed) — the
    /// deserialization path. Callers must validate untrusted input first:
    /// distinct values, at most `capacity` slots, slot counts summing to
    /// at most `observed`.
    pub fn from_parts(capacity: usize, observed: u64, slots: Vec<(u64, u64)>) -> TopValues {
        assert!(capacity > 0);
        assert!(slots.len() <= capacity, "slots exceed capacity");
        TopValues {
            capacity,
            slots,
            observed,
        }
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.observed == 0
    }

    /// The most frequent value, `None` when empty.
    pub fn top(&self) -> Option<u64> {
        self.ranked().first().map(|&(v, _)| v)
    }

    /// All tracked values with counts, most frequent first; ties broken by
    /// smaller value for determinism.
    pub fn ranked(&self) -> Vec<(u64, u64)> {
        let mut v = self.slots.clone();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The top `n` values with their share of all observations.
    pub fn top_n_with_share(&self, n: usize) -> Vec<(u64, f64)> {
        if self.observed == 0 {
            return Vec::new();
        }
        self.ranked()
            .into_iter()
            .take(n)
            .map(|(v, c)| (v, c as f64 / self.observed as f64))
            .collect()
    }

    /// Merge another tracker into this one.
    pub fn merge(&mut self, other: &TopValues) {
        for &(v, c) in &other.slots {
            self.observed += c;
            // record_n would double-count observed; inline the merge.
            if let Some(slot) = self.slots.iter_mut().find(|(sv, _)| *sv == v) {
                slot.1 += c;
            } else if self.slots.len() < self.capacity {
                self.slots.push((v, c));
            } else if let Some((min_idx, &(_, min_count))) =
                self.slots.iter().enumerate().min_by_key(|(_, (_, cc))| *cc)
            {
                if c > min_count {
                    self.slots[min_idx] = (v, c);
                }
            }
        }
        self.observed += other.observed - other.slots.iter().map(|(_, c)| c).sum::<u64>();
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.observed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_and_ranks() {
        let mut t = TopValues::new(3);
        for _ in 0..5 {
            t.record(300);
        }
        for _ in 0..3 {
            t.record(60);
        }
        t.record(86400);
        assert_eq!(t.top(), Some(300));
        assert_eq!(t.ranked(), vec![(300, 5), (60, 3), (86400, 1)]);
        assert_eq!(t.observed(), 9);
    }

    #[test]
    fn shares_sum_to_at_most_one() {
        let mut t = TopValues::new(3);
        for v in [1u64, 1, 2, 2, 2, 3, 4, 5, 6] {
            t.record(v);
        }
        let shares = t.top_n_with_share(3);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!(total <= 1.0 + 1e-12);
        assert_eq!(shares[0].0, 2);
    }

    #[test]
    fn weak_newcomer_does_not_displace() {
        let mut t = TopValues::new(2);
        t.record_n(100, 10);
        t.record_n(200, 5);
        t.record(300); // count 1 < min 5: dropped
        assert_eq!(t.ranked(), vec![(100, 10), (200, 5)]);
        t.record_n(400, 7); // beats 5: displaces 200
        assert_eq!(t.ranked(), vec![(100, 10), (400, 7)]);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut t = TopValues::new(4);
        t.record(9);
        t.record(3);
        assert_eq!(t.ranked(), vec![(3, 1), (9, 1)]);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = TopValues::new(3);
        let mut b = TopValues::new(3);
        a.record_n(1, 4);
        a.record_n(2, 2);
        b.record_n(2, 3);
        b.record_n(3, 1);
        a.merge(&b);
        assert_eq!(a.ranked(), vec![(2, 5), (1, 4), (3, 1)]);
        assert_eq!(a.observed(), 10);
    }

    #[test]
    fn clear_resets() {
        let mut t = TopValues::new(2);
        t.record(7);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.top(), None);
    }
}
