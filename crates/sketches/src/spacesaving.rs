//! The Space-Saving algorithm (Metwally, Agrawal, El Abbadi 2005).
//!
//! Tracks the `k` most frequent keys of a stream with bounded memory. Each
//! monitored key carries a count and a maximum-overestimation bound
//! (`error`). When a new key arrives and the cache is full, the minimum-
//! count entry is evicted and the newcomer inherits its count — this is
//! what gives the classic guarantees:
//!
//! * every key with true frequency > N/k is in the cache;
//! * for every cached key, `count − error ≤ true ≤ count`;
//! * `error ≤ N/k` where `N` is the number of observed items.
//!
//! The DNS Observatory additionally attaches a per-key *state* (`V`) used
//! for traffic features, and an exponentially-decaying rate estimate used
//! to rank objects by recent traffic (paper §2.2). On eviction the state
//! is replaced (feature statistics must not be inherited by an unrelated
//! key) but the count/rate are inherited, exactly as the algorithm demands.
//!
//! This implementation uses a `HashMap` keyed by `K` plus an intrusive
//! doubly-linked list of count buckets ("stream summary"), giving O(1)
//! amortized increments.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// Index type into the slab of monitored entries.
type Idx = usize;

const NIL: Idx = usize::MAX;

/// One monitored entry, exposed when iterating a [`SpaceSaving`].
#[derive(Debug, Clone)]
pub struct TopEntry<'a, K, V> {
    /// The tracked key.
    pub key: &'a K,
    /// Estimated hit count (upper bound on the true count).
    pub count: u64,
    /// Maximum overestimation: `count - error` lower-bounds the true count.
    pub error: u64,
    /// Decayed rate estimate in hits per second, if rate tracking is used.
    pub rate: f64,
    /// Caller-attached state.
    pub value: &'a V,
    /// Stream time (seconds) when this key last entered the cache.
    pub inserted_at: f64,
}

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    count: u64,
    error: u64,
    value: V,
    /// Exponentially decaying rate state.
    rate: f64,
    rate_updated: f64,
    inserted_at: f64,
    /// Bucket this entry belongs to.
    bucket: Idx,
    /// Neighbours within the bucket (doubly linked).
    prev: Idx,
    next: Idx,
}

#[derive(Debug)]
struct Bucket {
    count: u64,
    /// First entry in this bucket.
    head: Idx,
    /// Adjacent buckets ordered by count (asc).
    lower: Idx,
    higher: Idx,
}

/// Space-Saving top-k tracker with attached per-key state.
///
/// `V` is created on demand via a factory closure passed to
/// [`SpaceSaving::observe_with`]; the common case of `V: Default` can use
/// [`SpaceSaving::observe`].
#[derive(Debug)]
pub struct SpaceSaving<K, V> {
    capacity: usize,
    /// Half-life of the decaying rate estimate, seconds.
    rate_halflife: f64,
    entries: Vec<Entry<K, V>>,
    buckets: Vec<Bucket>,
    free_buckets: Vec<Idx>,
    index: HashMap<K, Idx>,
    /// Lowest-count bucket.
    min_bucket: Idx,
    observed: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> SpaceSaving<K, V> {
    /// Create a tracker for the top `capacity` keys. `rate_halflife` is
    /// the half-life (in stream seconds) of the per-key rate estimate.
    pub fn new(capacity: usize, rate_halflife: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(rate_halflife > 0.0, "half-life must be positive");
        SpaceSaving {
            capacity,
            rate_halflife,
            entries: Vec::with_capacity(capacity),
            buckets: Vec::new(),
            free_buckets: Vec::new(),
            index: HashMap::with_capacity(capacity),
            min_bucket: NIL,
            observed: 0,
            evictions: 0,
        }
    }

    /// Total number of observations fed into the tracker.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Keys displaced from the cache since construction (each eviction
    /// inherits the minimum count, per the Space-Saving update rule).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of currently monitored keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity `k` given at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The guaranteed error bound `N/k` of any reported count.
    pub fn error_bound(&self) -> u64 {
        self.observed / self.capacity as u64
    }

    /// Observe `key` at stream time `now` (seconds); returns a mutable
    /// reference to its state. `V: Default` convenience over
    /// [`SpaceSaving::observe_with`].
    pub fn observe(&mut self, key: &K, now: f64) -> &mut V
    where
        V: Default,
    {
        self.observe_with(key, now, V::default)
    }

    /// Observe `key` at stream time `now`, constructing fresh state with
    /// `make` when the key (re)enters the cache.
    ///
    /// Returns the state so the caller can fold transaction features into
    /// it. If the key displaced another, the state is newly created even
    /// though count/error/rate are inherited.
    pub fn observe_with(&mut self, key: &K, now: f64, make: impl FnOnce() -> V) -> &mut V {
        self.observe_with_ref(key, now, || key.clone(), make)
    }

    /// Observe a key by a borrowed lookup form `q`, deferring construction
    /// of the owned key until it actually has to enter the cache.
    ///
    /// In the steady state — the key is already monitored — this path
    /// performs no owned-key construction at all, which is what makes the
    /// tracker's hot loop allocation-free. `make_key` is called only on
    /// insertion (cache not yet full, or eviction of the minimum entry)
    /// and must produce a key whose `Borrow<Q>` view equals `q`.
    pub fn observe_with_ref<Q>(
        &mut self,
        q: &Q,
        now: f64,
        make_key: impl FnOnce() -> K,
        make: impl FnOnce() -> V,
    ) -> &mut V
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.observed += 1;
        if let Some(&idx) = self.index.get(q) {
            self.bump(idx, now);
            return &mut self.entries[idx].value;
        }
        let key = make_key();
        debug_assert!(
            key.borrow() == q,
            "make_key must agree with the lookup form"
        );
        let idx = if self.entries.len() < self.capacity {
            self.insert_new(key, make(), now)
        } else {
            self.replace_min(key, make(), now)
        };
        self.bump_rate(idx, now);
        &mut self.entries[idx].value
    }

    /// Re-insert a monitored entry captured by a previous state export,
    /// preserving its historical count, error term, and insertion time.
    ///
    /// This is the crash-recovery path of the historical store: a tracker
    /// serialized at a window boundary is rebuilt entry by entry, after
    /// which [`SpaceSaving::restore_totals`] re-establishes the cumulative
    /// `observed`/`evictions` totals. The bucket list is rebuilt by an
    /// ordered walk from the minimum, so entries may arrive in any count
    /// order. Returns `false` (and changes nothing) when the cache is
    /// already full or the key is already monitored.
    pub fn restore_entry(
        &mut self,
        key: K,
        count: u64,
        error: u64,
        inserted_at: f64,
        value: V,
    ) -> bool {
        if self.entries.len() >= self.capacity || self.index.contains_key(&key) {
            return false;
        }
        let idx = self.entries.len();
        self.entries.push(Entry {
            key: key.clone(),
            count,
            error,
            value,
            rate: 0.0,
            rate_updated: inserted_at,
            inserted_at,
            bucket: NIL,
            prev: NIL,
            next: NIL,
        });
        // Walk the ordered bucket list upward to the slot for `count`.
        let mut lower = NIL;
        let mut cur = self.min_bucket;
        while cur != NIL && self.buckets[cur].count < count {
            lower = cur;
            cur = self.buckets[cur].higher;
        }
        let target = if cur != NIL && self.buckets[cur].count == count {
            cur
        } else {
            self.alloc_bucket(count, lower, cur)
        };
        self.push_into_bucket(idx, target);
        self.index.insert(key, idx);
        true
    }

    /// Restore the cumulative observation totals exported alongside the
    /// entries re-inserted via [`SpaceSaving::restore_entry`].
    pub fn restore_totals(&mut self, observed: u64, evictions: u64) {
        self.observed = observed;
        self.evictions = evictions;
    }

    /// Estimated count for `key` if it is currently monitored. Accepts any
    /// borrowed form of the key (e.g. `&[u8]` for byte-backed keys).
    pub fn count<Q>(&self, key: &Q) -> Option<u64>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.index.get(key).map(|&i| self.entries[i].count)
    }

    /// The minimum count over all monitored entries (the next eviction
    /// inherits this); 0 while the cache is not full.
    pub fn min_count(&self) -> u64 {
        if self.entries.len() < self.capacity || self.min_bucket == NIL {
            0
        } else {
            self.buckets[self.min_bucket].count
        }
    }

    /// Iterate over all monitored entries in descending count order.
    pub fn iter_desc(&self) -> Vec<TopEntry<'_, K, V>> {
        let mut order: Vec<Idx> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| self.entries[b].count.cmp(&self.entries[a].count));
        order
            .into_iter()
            .map(|i| {
                let e = &self.entries[i];
                TopEntry {
                    key: &e.key,
                    count: e.count,
                    error: e.error,
                    rate: self.decayed_rate(e, e.rate_updated),
                    value: &e.value,
                    inserted_at: e.inserted_at,
                }
            })
            .collect()
    }

    /// Iterate over all monitored entries in *restore order*: buckets
    /// from highest count to lowest, each bucket tail→head. Re-inserting
    /// entries in this order via [`SpaceSaving::restore_entry`] (which
    /// pushes to each bucket's head) reproduces every bucket chain
    /// exactly — and with it every future eviction-victim choice, which
    /// is what makes a serialized saturated tracker resume exact. The
    /// order is also count-descending, so it doubles as a display order.
    pub fn iter_restore(&self) -> Vec<TopEntry<'_, K, V>> {
        let mut buckets_desc = Vec::new();
        let mut cur = self.min_bucket;
        while cur != NIL {
            buckets_desc.push(cur);
            cur = self.buckets[cur].higher;
        }
        buckets_desc.reverse();
        let mut out = Vec::with_capacity(self.entries.len());
        for b in buckets_desc {
            let mut chain = Vec::new();
            let mut e = self.buckets[b].head;
            while e != NIL {
                chain.push(e);
                e = self.entries[e].next;
            }
            // Tail first: head-insertion on restore rebuilds head..tail.
            for &i in chain.iter().rev() {
                let e = &self.entries[i];
                out.push(TopEntry {
                    key: &e.key,
                    count: e.count,
                    error: e.error,
                    rate: self.decayed_rate(e, e.rate_updated),
                    value: &e.value,
                    inserted_at: e.inserted_at,
                });
            }
        }
        out
    }

    /// Visit every monitored entry mutably (used by the 60 s dump step to
    /// harvest-and-reset feature state without touching the top-k list).
    /// The callback receives `(key, count, rate, inserted_at, value)` so
    /// window-residency checks need no separate key-collecting pass.
    pub fn for_each_value<F: FnMut(&K, u64, f64, f64, &mut V)>(&mut self, mut f: F) {
        for e in &mut self.entries {
            let rate = {
                // Inline decay with current knowledge; rate_updated stays.
                e.rate
            };
            f(&e.key, e.count, rate, e.inserted_at, &mut e.value);
        }
    }

    /// Age of the entry for `key` (seconds since insertion) at `now`.
    pub fn entry_age(&self, key: &K, now: f64) -> Option<f64> {
        self.index
            .get(key)
            .map(|&i| now - self.entries[i].inserted_at)
    }

    fn decayed_rate(&self, e: &Entry<K, V>, now: f64) -> f64 {
        let dt = (now - e.rate_updated).max(0.0);
        e.rate * 0.5f64.powf(dt / self.rate_halflife)
    }

    fn bump_rate(&mut self, idx: Idx, now: f64) {
        let halflife = self.rate_halflife;
        let e = &mut self.entries[idx];
        let dt = (now - e.rate_updated).max(0.0);
        // Decay the old estimate to `now`, then add this hit's
        // contribution. Normalizing a unit impulse by the half-life keeps
        // the estimate in hits/second.
        let decayed = e.rate * 0.5f64.powf(dt / halflife);
        e.rate = decayed + std::f64::consts::LN_2 / halflife;
        e.rate_updated = now;
    }

    /// Move `idx` from its bucket to the bucket for `count+1`.
    fn bump(&mut self, idx: Idx, now: f64) {
        let old_bucket = self.entries[idx].bucket;
        let new_count = self.entries[idx].count + 1;
        self.entries[idx].count = new_count;

        // Find or create the bucket holding `new_count`. It is either the
        // next-higher bucket (if its count matches) or a new bucket wedged
        // between the two.
        let higher = self.buckets[old_bucket].higher;
        let target = if higher != NIL && self.buckets[higher].count == new_count {
            higher
        } else {
            self.alloc_bucket(new_count, old_bucket, higher)
        };

        self.unlink(idx);
        self.push_into_bucket(idx, target);
        self.maybe_free_bucket(old_bucket);
        self.bump_rate(idx, now);
    }

    fn insert_new(&mut self, key: K, value: V, now: f64) -> Idx {
        let idx = self.entries.len();
        self.entries.push(Entry {
            key: key.clone(),
            count: 1,
            error: 0,
            value,
            rate: 0.0,
            rate_updated: now,
            inserted_at: now,
            bucket: NIL,
            prev: NIL,
            next: NIL,
        });
        // Bucket with count 1 is by definition the minimum if present.
        let target = if self.min_bucket != NIL && self.buckets[self.min_bucket].count == 1 {
            self.min_bucket
        } else {
            self.alloc_bucket(1, NIL, self.min_bucket)
        };
        self.push_into_bucket(idx, target);
        self.index.insert(key, idx);
        idx
    }

    fn replace_min(&mut self, key: K, value: V, now: f64) -> Idx {
        self.evictions += 1;
        let bucket = self.min_bucket;
        debug_assert_ne!(bucket, NIL);
        let victim = self.buckets[bucket].head;
        debug_assert_ne!(victim, NIL);

        let min_count = self.buckets[bucket].count;
        let old_key = self.entries[victim].key.clone();
        self.index.remove(&old_key);
        self.index.insert(key.clone(), victim);

        {
            let e = &mut self.entries[victim];
            e.key = key;
            e.error = min_count;
            e.count = min_count + 1;
            e.value = value;
            e.inserted_at = now;
            // Rate state is inherited (decaying estimate of the slot's
            // traffic), matching the paper: "keeping (and updating) the
            // frequency estimate of the evicted entry".
        }

        // Move to the count+1 bucket, same as bump but starting from min.
        let higher = self.buckets[bucket].higher;
        let target = if higher != NIL && self.buckets[higher].count == min_count + 1 {
            higher
        } else {
            self.alloc_bucket(min_count + 1, bucket, higher)
        };
        self.unlink(victim);
        self.push_into_bucket(victim, target);
        self.maybe_free_bucket(bucket);
        victim
    }

    fn alloc_bucket(&mut self, count: u64, lower: Idx, higher: Idx) -> Idx {
        let idx = if let Some(free) = self.free_buckets.pop() {
            self.buckets[free] = Bucket {
                count,
                head: NIL,
                lower,
                higher,
            };
            free
        } else {
            self.buckets.push(Bucket {
                count,
                head: NIL,
                lower,
                higher,
            });
            self.buckets.len() - 1
        };
        if lower != NIL {
            self.buckets[lower].higher = idx;
        } else {
            self.min_bucket = idx;
        }
        if higher != NIL {
            self.buckets[higher].lower = idx;
        }
        idx
    }

    fn push_into_bucket(&mut self, idx: Idx, bucket: Idx) {
        let head = self.buckets[bucket].head;
        self.entries[idx].bucket = bucket;
        self.entries[idx].prev = NIL;
        self.entries[idx].next = head;
        if head != NIL {
            self.entries[head].prev = idx;
        }
        self.buckets[bucket].head = idx;
    }

    fn unlink(&mut self, idx: Idx) {
        let (prev, next, bucket) = {
            let e = &self.entries[idx];
            (e.prev, e.next, e.bucket)
        };
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.buckets[bucket].head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
        self.entries[idx].bucket = NIL;
    }

    /// Release `bucket` if it became empty, splicing the ordered list.
    fn maybe_free_bucket(&mut self, bucket: Idx) {
        if self.buckets[bucket].head != NIL {
            return;
        }
        let (lower, higher) = (self.buckets[bucket].lower, self.buckets[bucket].higher);
        if lower != NIL {
            self.buckets[lower].higher = higher;
        } else {
            self.min_bucket = higher;
        }
        if higher != NIL {
            self.buckets[higher].lower = lower;
        }
        self.free_buckets.push(bucket);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Ss = SpaceSaving<String, u32>;

    fn observe(ss: &mut Ss, key: &str, t: f64) {
        *ss.observe(&key.to_string(), t) += 1;
    }

    #[test]
    fn tracks_exact_counts_below_capacity() {
        let mut ss = Ss::new(10, 60.0);
        for _ in 0..5 {
            observe(&mut ss, "a", 0.0);
        }
        for _ in 0..3 {
            observe(&mut ss, "b", 0.0);
        }
        assert_eq!(ss.count("a"), Some(5));
        assert_eq!(ss.count("b"), Some(3));
        assert_eq!(ss.observed(), 8);
        let top = ss.iter_desc();
        assert_eq!(top[0].key, "a");
        assert_eq!(top[0].error, 0);
    }

    #[test]
    fn eviction_inherits_min_count() {
        let mut ss = Ss::new(2, 60.0);
        observe(&mut ss, "a", 0.0);
        observe(&mut ss, "a", 0.0);
        observe(&mut ss, "b", 0.0);
        // Cache full: "c" evicts "b" (count 1) and gets count 2, error 1.
        observe(&mut ss, "c", 0.0);
        assert_eq!(ss.count("b"), None);
        assert_eq!(ss.count("c"), Some(2));
        let c = ss.iter_desc().into_iter().find(|e| e.key == "c").unwrap();
        assert_eq!(c.error, 1);
    }

    #[test]
    fn heavy_hitter_survives_noise() {
        let mut ss = Ss::new(8, 60.0);
        for i in 0..10_000 {
            observe(&mut ss, "heavy", i as f64 * 0.001);
            // A one-off key per iteration churns the low buckets.
            observe(&mut ss, &format!("noise{i}"), i as f64 * 0.001);
        }
        let top = ss.iter_desc();
        assert_eq!(top[0].key, "heavy");
        // Count is an upper bound and at least the true count.
        assert!(top[0].count >= 10_000);
    }

    #[test]
    fn error_bound_holds() {
        let mut ss = Ss::new(5, 60.0);
        for i in 0..1000u32 {
            observe(&mut ss, &format!("k{}", i % 37), 0.0);
        }
        let bound = ss.error_bound();
        for e in ss.iter_desc() {
            assert!(e.error <= bound, "error {} > bound {}", e.error, bound);
        }
    }

    #[test]
    fn new_state_on_eviction() {
        let mut ss = Ss::new(1, 60.0);
        *ss.observe(&"a".to_string(), 0.0) = 42;
        // "b" evicts "a": its state must be fresh, not 42.
        let v = ss.observe(&"b".to_string(), 0.0);
        assert_eq!(*v, 0);
    }

    #[test]
    fn rate_decays_toward_zero() {
        let mut ss = Ss::new(4, 10.0);
        for i in 0..100 {
            observe(&mut ss, "x", i as f64 * 0.01); // 100 hits in 1 s
        }
        let fresh = ss.iter_desc()[0].rate;
        assert!(fresh > 0.0);
        // Nothing for 100 s (10 half-lives): rate should be tiny but the
        // key still monitored.
        observe(&mut ss, "y", 101.0);
        let x = ss.iter_desc().into_iter().find(|e| e.key == "x").unwrap();
        // The stored (undecayed) value only updates on hits; decayed view
        // comes from iter at the entry's own timestamp. Compare via decay:
        assert!(x.rate <= fresh);
    }

    #[test]
    fn min_count_reflects_fill_state() {
        let mut ss = Ss::new(2, 60.0);
        assert_eq!(ss.min_count(), 0);
        observe(&mut ss, "a", 0.0);
        assert_eq!(ss.min_count(), 0); // not yet full
        observe(&mut ss, "b", 0.0);
        assert_eq!(ss.min_count(), 1); // full, min entry has count 1
        observe(&mut ss, "a", 0.0);
        assert_eq!(ss.min_count(), 1);
    }

    #[test]
    fn entry_age_tracks_insertion() {
        let mut ss = Ss::new(2, 60.0);
        observe(&mut ss, "a", 5.0);
        assert_eq!(ss.entry_age(&"a".into(), 10.0), Some(5.0));
        assert_eq!(ss.entry_age(&"zzz".into(), 10.0), None);
    }

    #[test]
    fn for_each_value_visits_all() {
        let mut ss = Ss::new(4, 60.0);
        for k in ["a", "b", "c"] {
            observe(&mut ss, k, 0.0);
        }
        let mut seen = Vec::new();
        ss.for_each_value(|k, _, _, _, v| {
            seen.push(k.clone());
            *v = 99;
        });
        seen.sort();
        assert_eq!(seen, vec!["a", "b", "c"]);
        assert!(ss.iter_desc().iter().all(|e| *e.value == 99));
    }

    #[test]
    fn restore_rebuilds_exported_state() {
        let mut ss = Ss::new(3, 60.0);
        for (k, n) in [("a", 5u32), ("b", 3), ("c", 1)] {
            for _ in 0..n {
                observe(&mut ss, k, 1.0);
            }
        }
        let snapshot: Vec<(String, u64, u64, f64)> = ss
            .iter_desc()
            .iter()
            .map(|e| (e.key.clone(), e.count, e.error, e.inserted_at))
            .collect();
        // Restore in ascending count order to exercise the bucket walk.
        let mut back = Ss::new(3, 60.0);
        for (k, c, err, at) in snapshot.iter().rev() {
            assert!(back.restore_entry(k.clone(), *c, *err, *at, 0u32));
        }
        back.restore_totals(ss.observed(), ss.evictions());
        assert_eq!(back.observed(), ss.observed());
        assert_eq!(back.evictions(), ss.evictions());
        assert_eq!(back.min_count(), ss.min_count());
        assert_eq!(back.error_bound(), ss.error_bound());
        // Further identical traffic keeps the two trackers in lockstep.
        for t in [&mut ss, &mut back] {
            observe(t, "b", 2.0);
            observe(t, "b", 2.0);
            observe(t, "c", 2.0);
        }
        // Tie order among equal counts is insertion-dependent, so compare
        // the canonical (count desc, key) shape — exactly what renderers
        // sort to before emitting.
        let shape = |s: &Ss| -> Vec<(String, u64, u64)> {
            let mut v: Vec<(String, u64, u64)> = s
                .iter_desc()
                .iter()
                .map(|e| (e.key.clone(), e.count, e.error))
                .collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            v
        };
        assert_eq!(shape(&ss), shape(&back));
    }

    #[test]
    fn restore_order_reproduces_eviction_choices() {
        // Build a tracker whose min bucket holds several tied entries,
        // round-trip it through iter_restore/restore_entry, and check
        // the rebuilt tracker evicts the *same* victims under identical
        // further traffic — byte-for-byte equal restore order.
        let mut ss = Ss::new(4, 60.0);
        for k in ["a", "b", "c", "d"] {
            observe(&mut ss, k, 0.0); // all tied at count 1
        }
        observe(&mut ss, "a", 0.5); // a → 2, min bucket = {b,c,d}
        let snap: Vec<(String, u64, u64, f64)> = ss
            .iter_restore()
            .iter()
            .map(|e| (e.key.clone(), e.count, e.error, e.inserted_at))
            .collect();
        let mut back = Ss::new(4, 60.0);
        for (k, c, err, at) in &snap {
            assert!(back.restore_entry(k.clone(), *c, *err, *at, 0u32));
        }
        back.restore_totals(ss.observed(), ss.evictions());
        // Identical churn: each new key must displace the same victim.
        for (i, k) in ["x", "y", "z"].iter().enumerate() {
            observe(&mut ss, k, 1.0 + i as f64);
            observe(&mut back, k, 1.0 + i as f64);
            let shape = |s: &Ss| -> Vec<(String, u64, u64, String)> {
                s.iter_restore()
                    .iter()
                    .map(|e| (e.key.clone(), e.count, e.error, e.key.clone()))
                    .collect()
            };
            assert_eq!(shape(&ss), shape(&back), "diverged after {k}");
        }
    }

    #[test]
    fn restore_rejects_full_and_duplicate() {
        let mut ss = Ss::new(2, 60.0);
        assert!(ss.restore_entry("a".into(), 4, 0, 0.0, 0));
        assert!(!ss.restore_entry("a".into(), 4, 0, 0.0, 0), "duplicate");
        assert!(ss.restore_entry("b".into(), 2, 1, 0.0, 0));
        assert!(!ss.restore_entry("c".into(), 1, 0, 0.0, 0), "full");
        assert_eq!(ss.len(), 2);
        assert_eq!(ss.min_count(), 2);
    }

    #[test]
    fn bucket_list_stays_consistent_under_churn() {
        // Exercises alloc/free of buckets aggressively, then checks that
        // counts from iter_desc are sorted and the index agrees.
        let mut ss = Ss::new(16, 60.0);
        for i in 0..5000u32 {
            let key = format!("k{}", i % 23);
            observe(&mut ss, &key, i as f64);
            if i % 7 == 0 {
                observe(&mut ss, &format!("burst{}", i), i as f64);
            }
        }
        let top = ss.iter_desc();
        for w in top.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        for e in &top {
            assert_eq!(ss.count(&e.key.clone()), Some(e.count));
        }
        assert_eq!(top.len(), 16);
    }
}
