//! `sketches` — streaming algorithms and probabilistic data structures,
//! written from scratch for the DNS Observatory pipeline.
//!
//! The paper (§2.2–2.3) relies on a small toolbox of stream algorithms:
//!
//! * **Space-Saving** (Metwally et al. 2005) to track Top-k DNS objects in
//!   bounded memory — [`SpaceSaving`].
//! * **HyperLogLog** (as improved by Heule et al. 2013) for cardinality
//!   estimates such as distinct QNAMEs — [`HyperLogLog`].
//! * A **Bloom filter** to skip incidental observations of rare keys before
//!   evicting a Space-Saving entry — [`BloomFilter`].
//! * **Log-bucketed histograms** with quantile extraction for response
//!   delays, hop counts and response sizes — [`LogHistogram`].
//! * An **exponentially decaying rate** estimator (transactions per second
//!   per tracked object) — [`DecayingRate`].
//! * A **top-N value tracker** for TTL distributions — [`TopValues`].
//! * **Reservoir sampling** for unbiased fixed-size samples — [`Reservoir`].
//!
//! Everything is deterministic given its inputs (no hidden RNG state), uses
//! no `unsafe`, and exposes memory use explicitly via constructor
//! parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bloom;
mod ewma;
pub mod hash;
mod histogram;
mod hll;
mod reservoir;
mod spacesaving;
mod topvalues;

pub use bloom::BloomFilter;
pub use ewma::DecayingRate;
pub use histogram::{LogBuckets, LogHistogram};
pub use hll::HyperLogLog;
pub use reservoir::Reservoir;
pub use spacesaving::{SpaceSaving, TopEntry};
pub use topvalues::TopValues;
