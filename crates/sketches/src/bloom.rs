//! A classic Bloom filter (Bloom 1970).
//!
//! The pipeline consults one before evicting a Space-Saving entry, so a
//! key must be seen at least twice before it may displace a monitored
//! object (paper §2.2: "skip incidental observations of rare keys").

use crate::hash::xxh64;

/// Bloom filter over byte-slice items with double hashing.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Create a filter sized for `expected_items` at the target
    /// `false_positive_rate` (0 < rate < 1), using the standard optimal
    /// sizing `m = −n·ln p / ln²2`, `k = (m/n)·ln 2`.
    pub fn new(expected_items: usize, false_positive_rate: f64) -> Self {
        assert!(expected_items > 0, "expected_items must be positive");
        assert!(
            (0.0..1.0).contains(&false_positive_rate) && false_positive_rate > 0.0,
            "false positive rate must be in (0, 1)"
        );
        let n = expected_items as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * false_positive_rate.ln() / (ln2 * ln2)).ceil() as usize;
        let m = m.max(64);
        let k = ((m as f64 / n) * ln2).round().max(1.0) as u32;
        BloomFilter {
            bits: vec![0; m.div_ceil(64)],
            num_bits: m,
            num_hashes: k,
            inserted: 0,
        }
    }

    /// Number of hash functions in use.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Size of the bit array.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Items inserted so far (an upper bound; duplicates are counted).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Insert an item.
    pub fn insert(&mut self, item: &[u8]) {
        let (h1, h2) = self.base_hashes(item);
        for i in 0..self.num_hashes {
            let bit = self.bit_index(h1, h2, i);
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Check membership: false means *definitely not present*; true means
    /// present with probability 1 − fp-rate.
    pub fn contains(&self, item: &[u8]) -> bool {
        let (h1, h2) = self.base_hashes(item);
        (0..self.num_hashes).all(|i| {
            let bit = self.bit_index(h1, h2, i);
            self.bits[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Insert and report whether the item was (probably) already present —
    /// the exact operation the eviction gate needs, in one pass.
    pub fn check_and_insert(&mut self, item: &[u8]) -> bool {
        let (h1, h2) = self.base_hashes(item);
        let mut present = true;
        for i in 0..self.num_hashes {
            let bit = self.bit_index(h1, h2, i);
            let word = &mut self.bits[bit / 64];
            let mask = 1u64 << (bit % 64);
            if *word & mask == 0 {
                present = false;
                *word |= mask;
            }
        }
        self.inserted += 1;
        present
    }

    /// Clear all bits (used when rotating eviction-gate generations).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Fraction of bits set; a loaded filter (>0.5) has degraded accuracy.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.num_bits as f64
    }

    /// The raw bit array, one little-endian word per 64 bits. Hashing is
    /// fully deterministic (fixed xxh64 seeds), so serializing the words
    /// and rebuilding with [`BloomFilter::from_parts`] yields a filter
    /// whose every future answer matches the original's.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuild a filter from serialized parts. Returns `None` when the
    /// parts are inconsistent (word count must cover exactly `num_bits`,
    /// and both sizing parameters must be nonzero) — deserializers turn
    /// that into their own typed error.
    pub fn from_parts(
        bits: Vec<u64>,
        num_bits: usize,
        num_hashes: u32,
        inserted: u64,
    ) -> Option<Self> {
        if num_bits == 0 || num_hashes == 0 || bits.len() != num_bits.div_ceil(64) {
            return None;
        }
        Some(BloomFilter {
            bits,
            num_bits,
            num_hashes,
            inserted,
        })
    }

    #[inline]
    fn base_hashes(&self, item: &[u8]) -> (u64, u64) {
        let h1 = xxh64(item, 0x9d2c_5680_5bd1_e995);
        let h2 = xxh64(item, 0xca62_c1d6_8f1b_bcdc) | 1; // odd stride
        (h1, h2)
    }

    #[inline]
    fn bit_index(&self, h1: u64, h2: u64, i: u32) -> usize {
        (h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.num_bits as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1000, 0.01);
        for i in 0..1000u32 {
            bf.insert(&i.to_le_bytes());
        }
        for i in 0..1000u32 {
            assert!(bf.contains(&i.to_le_bytes()), "lost item {i}");
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut bf = BloomFilter::new(10_000, 0.01);
        for i in 0..10_000u32 {
            bf.insert(&i.to_le_bytes());
        }
        let mut fps = 0;
        let probes = 100_000u32;
        for i in 10_000..10_000 + probes {
            if bf.contains(&i.to_le_bytes()) {
                fps += 1;
            }
        }
        let rate = fps as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate {rate} too high");
    }

    #[test]
    fn check_and_insert_semantics() {
        let mut bf = BloomFilter::new(100, 0.01);
        assert!(!bf.check_and_insert(b"key"));
        assert!(bf.check_and_insert(b"key"));
        assert!(bf.contains(b"key"));
    }

    #[test]
    fn clear_empties() {
        let mut bf = BloomFilter::new(100, 0.01);
        bf.insert(b"x");
        assert!(bf.contains(b"x"));
        bf.clear();
        assert!(!bf.contains(b"x"));
        assert_eq!(bf.inserted(), 0);
        assert_eq!(bf.fill_ratio(), 0.0);
    }

    #[test]
    fn sizing_matches_formula() {
        let bf = BloomFilter::new(1000, 0.01);
        // m ≈ 9585 bits, k ≈ 7 for 1% at n=1000.
        assert!((9000..11000).contains(&bf.num_bits()));
        assert_eq!(bf.num_hashes(), 7);
    }

    #[test]
    #[should_panic(expected = "false positive rate")]
    fn invalid_rate_panics() {
        BloomFilter::new(10, 1.5);
    }

    #[test]
    fn from_parts_roundtrips_behavior() {
        let mut bf = BloomFilter::new(1000, 0.02);
        for i in 0..500u32 {
            bf.insert(&i.to_le_bytes());
        }
        let back = BloomFilter::from_parts(
            bf.words().to_vec(),
            bf.num_bits(),
            bf.num_hashes(),
            bf.inserted(),
        )
        .expect("consistent parts");
        assert_eq!(back.inserted(), bf.inserted());
        // Deterministic hashing: every probe answers identically.
        for i in 0..2000u32 {
            let item = i.to_le_bytes();
            assert_eq!(back.contains(&item), bf.contains(&item), "probe {i}");
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_sizes() {
        assert!(BloomFilter::from_parts(vec![0; 2], 64, 3, 0).is_none());
        assert!(BloomFilter::from_parts(vec![0; 1], 0, 3, 0).is_none());
        assert!(BloomFilter::from_parts(vec![0; 1], 64, 0, 0).is_none());
        assert!(BloomFilter::from_parts(vec![0; 1], 64, 3, 9).is_some());
    }
}
