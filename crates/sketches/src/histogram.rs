//! Log-bucketed histograms with quantile extraction.
//!
//! The paper stores response delays, hop counts and response sizes as
//! quartiles (§2.3). A log-spaced histogram gives bounded relative error
//! on quantiles with a few dozen counters, and merges trivially for the
//! time-aggregation step.

/// The logarithmic bucket layout of a [`LogHistogram`], as a standalone
/// value: bucket `i` covers `[base^i·min, base^(i+1)·min)`, bucket 0
/// additionally absorbs everything below `min`, and the last bucket
/// absorbs everything at or above `max`.
///
/// Extracted so other counting structures (the `telemetry` crate's atomic
/// histograms) share the exact same bucket math — an index computed here
/// means the same value range everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogBuckets {
    min: f64,
    base: f64,
    log_base: f64,
    len: usize,
}

impl LogBuckets {
    /// Layout spanning `[min, max)` with `buckets_per_decade` buckets per
    /// factor-of-10 (relative quantile error ≈ `10^(1/bpd) − 1`, e.g.
    /// ±12 % at bpd=20).
    pub fn new(min: f64, max: f64, buckets_per_decade: usize) -> LogBuckets {
        assert!(min > 0.0 && max > min, "need 0 < min < max");
        assert!(buckets_per_decade > 0);
        let base = 10f64.powf(1.0 / buckets_per_decade as f64);
        let log_base = base.ln();
        let len = ((max / min).ln() / log_base).ceil() as usize + 1;
        LogBuckets {
            min,
            base,
            log_base,
            len,
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: a layout has at least two buckets by construction.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bucket index for `value` (values below `min` clamp to 0, at or
    /// above `max` to the last bucket). `value` must not be NaN.
    pub fn index_of(&self, value: f64) -> usize {
        if value < self.min {
            return 0;
        }
        let idx = ((value / self.min).ln() / self.log_base) as usize;
        idx.min(self.len - 1)
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn lower_bound(&self, i: usize) -> f64 {
        self.min * self.base.powi(i as i32)
    }

    /// Exclusive upper bound of bucket `i` (the last bucket is unbounded
    /// in practice: it absorbs everything at or above `max`).
    pub fn upper_bound(&self, i: usize) -> f64 {
        self.min * self.base.powi(i as i32 + 1)
    }

    /// Geometric midpoint of bucket `i` — the representative value used
    /// for quantile extraction.
    pub fn midpoint(&self, i: usize) -> f64 {
        self.lower_bound(i) * self.base.sqrt()
    }

    /// Inclusive lower edge of the layout (the `min` passed to
    /// [`new`](Self::new)).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Per-bucket growth factor (`10^(1/buckets_per_decade)`).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Rebuild a layout from raw parts previously obtained via
    /// [`min`](Self::min)/[`base`](Self::base)/[`len`](Self::len) — the
    /// deserialization path. The derived `log_base` is recomputed exactly
    /// as [`new`](Self::new) does, so a round-tripped layout compares
    /// equal to the original.
    pub fn from_parts(min: f64, base: f64, len: usize) -> LogBuckets {
        assert!(min > 0.0 && min.is_finite(), "need finite min > 0");
        assert!(base > 1.0 && base.is_finite(), "need finite base > 1");
        assert!(len >= 1, "need at least one bucket");
        LogBuckets {
            min,
            base,
            log_base: base.ln(),
            len,
        }
    }
}

/// Histogram over non-negative values with logarithmically spaced buckets.
///
/// The bucket layout is a [`LogBuckets`]; the per-bucket representative
/// value used for quantiles is the geometric midpoint of the bucket.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: LogBuckets,
    counts: Vec<u64>,
    total: u64,
    /// Exact running sum, for means.
    sum: f64,
    observed_min: f64,
    observed_max: f64,
}

impl LogHistogram {
    /// Create a histogram spanning `[min, max)` with `buckets_per_decade`
    /// buckets per factor-of-10 (relative quantile error ≈
    /// `10^(1/bpd) − 1`, e.g. ±12 % at bpd=20).
    pub fn new(min: f64, max: f64, buckets_per_decade: usize) -> Self {
        Self::with_buckets(LogBuckets::new(min, max, buckets_per_decade))
    }

    /// Create a histogram over an existing bucket layout.
    pub fn with_buckets(buckets: LogBuckets) -> Self {
        LogHistogram {
            buckets,
            counts: vec![0; buckets.len()],
            total: 0,
            sum: 0.0,
            observed_min: f64::INFINITY,
            observed_max: f64::NEG_INFINITY,
        }
    }

    /// The bucket layout.
    pub fn buckets(&self) -> LogBuckets {
        self.buckets
    }

    /// A default configuration for millisecond delays: 0.1 ms – 100 s,
    /// 20 buckets per decade.
    pub fn for_delays_ms() -> Self {
        LogHistogram::new(0.1, 100_000.0, 20)
    }

    /// A default configuration for small integers (hop counts): 1–256.
    pub fn for_hops() -> Self {
        LogHistogram::new(1.0, 256.0, 40)
    }

    /// A default configuration for packet sizes in bytes: 10–65 535.
    pub fn for_sizes() -> Self {
        LogHistogram::new(10.0, 65536.0, 30)
    }

    /// Record one value (clamped into range; NaN ignored).
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let idx = self.buckets.index_of(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        self.observed_min = self.observed_min.min(value);
        self.observed_max = self.observed_max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact arithmetic mean of recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min_value(&self) -> Option<f64> {
        (self.total > 0).then_some(self.observed_min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        (self.total > 0).then_some(self.observed_max)
    }

    /// Approximate quantile `q` in [0, 1]; `None` when empty.
    ///
    /// Returns the geometric midpoint of the bucket containing the
    /// q-th ranked value, clamped into the observed value range so results
    /// never exceed what was actually recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, ceil semantics.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = self.buckets.midpoint(i);
                return Some(mid.clamp(self.observed_min, self.observed_max));
            }
        }
        Some(self.observed_max)
    }

    /// The three quartiles `(q25, median, q75)`; `None` when empty.
    pub fn quartiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.25)?,
            self.quantile(0.50)?,
            self.quantile(0.75)?,
        ))
    }

    /// Per-bucket counts — the serialization surface, together with the
    /// layout and observed range.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuild a histogram from raw parts (the deserialization path): a
    /// layout, per-bucket counts, and the observed value range. The total
    /// is recomputed from the counts; the running sum behind [`mean`]
    /// (Self::mean) is approximated from bucket midpoints — quantiles and
    /// observed bounds are exact, the mean is not. An empty histogram
    /// (all-zero counts) ignores the supplied range.
    pub fn from_parts(
        buckets: LogBuckets,
        counts: Vec<u64>,
        observed_min: f64,
        observed_max: f64,
    ) -> LogHistogram {
        assert_eq!(counts.len(), buckets.len(), "layout mismatch");
        let total: u64 = counts.iter().sum();
        let sum = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * buckets.midpoint(i))
            .sum();
        let (observed_min, observed_max) = if total == 0 {
            (f64::INFINITY, f64::NEG_INFINITY)
        } else {
            (observed_min, observed_max)
        };
        LogHistogram {
            buckets,
            counts,
            total,
            sum,
            observed_min,
            observed_max,
        }
    }

    /// Merge another histogram with identical configuration.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.buckets, other.buckets, "config mismatch");
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.observed_min = self.observed_min.min(other.observed_min);
        self.observed_max = self.observed_max.max(other.observed_max);
    }

    /// Reset to empty, keeping the bucket configuration.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0.0;
        self.observed_min = f64::INFINITY;
        self.observed_max = f64::NEG_INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::for_delays_ms();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quartiles(), None);
    }

    #[test]
    fn single_value() {
        let mut h = LogHistogram::for_delays_ms();
        h.record(25.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(25.0)); // clamped to observed range
        assert_eq!(h.mean(), Some(25.0));
    }

    #[test]
    fn median_relative_error_bounded() {
        let mut h = LogHistogram::new(1.0, 10_000.0, 20);
        for i in 1..=999 {
            h.record(i as f64);
        }
        let med = h.quantile(0.5).unwrap();
        let rel = (med - 500.0).abs() / 500.0;
        // One bucket of slack at 20/decade is ~12%.
        assert!(rel < 0.13, "median {med}, rel err {rel}");
    }

    #[test]
    fn quartiles_are_ordered() {
        let mut h = LogHistogram::for_delays_ms();
        for i in 0..1000 {
            h.record(1.0 + (i % 311) as f64);
        }
        let (q25, q50, q75) = h.quartiles().unwrap();
        assert!(q25 <= q50 && q50 <= q75);
        assert!(q25 >= h.min_value().unwrap());
        assert!(q75 <= h.max_value().unwrap());
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = LogHistogram::new(1.0, 100.0, 10);
        h.record(0.001);
        h.record(1e9);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min_value(), Some(0.001));
        assert_eq!(h.max_value(), Some(1e9));
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = LogHistogram::new(1.0, 100.0, 10);
        h.record(f64::NAN);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LogHistogram::new(1.0, 1000.0, 15);
        let mut b = LogHistogram::new(1.0, 1000.0, 15);
        let mut c = LogHistogram::new(1.0, 1000.0, 15);
        for i in 1..=100 {
            a.record(i as f64);
            c.record(i as f64);
        }
        for i in 100..=400 {
            b.record(i as f64);
            c.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.quantile(0.5), c.quantile(0.5));
        assert_eq!(a.mean(), c.mean());
    }

    #[test]
    fn clear_resets_but_keeps_config() {
        let mut h = LogHistogram::new(1.0, 100.0, 10);
        h.record(42.0);
        h.clear();
        assert!(h.is_empty());
        h.record(42.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn bucket_layout_bounds_contain_their_values() {
        let b = LogBuckets::new(0.5, 2000.0, 10);
        for i in 0..200 {
            let v = 0.1 + i as f64 * 17.3;
            let idx = b.index_of(v);
            assert!(idx < b.len());
            if v >= 0.5 && idx < b.len() - 1 {
                assert!(
                    b.lower_bound(idx) <= v * (1.0 + 1e-12)
                        && v < b.upper_bound(idx) * (1.0 + 1e-12),
                    "v={v} idx={idx} lo={} hi={}",
                    b.lower_bound(idx),
                    b.upper_bound(idx)
                );
            }
        }
        // Below-range clamps to 0, above-range to the last bucket.
        assert_eq!(b.index_of(0.0001), 0);
        assert_eq!(b.index_of(1e12), b.len() - 1);
        // Midpoint sits inside its bucket.
        for i in 0..b.len() - 1 {
            assert!(b.lower_bound(i) <= b.midpoint(i) && b.midpoint(i) < b.upper_bound(i));
        }
    }

    #[test]
    fn quantile_extremes() {
        let mut h = LogHistogram::for_sizes();
        for v in [100.0, 200.0, 400.0, 800.0] {
            h.record(v);
        }
        assert!(h.quantile(0.0).unwrap() <= h.quantile(1.0).unwrap());
        assert!(h.quantile(1.0).unwrap() <= 800.0);
    }
}
