//! HyperLogLog cardinality estimation (Flajolet et al. 2007), with the
//! practical improvements from Heule, Nunkesser & Hall 2013 that the paper
//! cites: a 64-bit hash (removing the large-range correction entirely) and
//! linear counting for the small-cardinality regime.

use crate::hash::xxh64;

/// HyperLogLog sketch over byte-slice items.
///
/// Precision `p` (4..=16) gives `m = 2^p` one-byte registers and a relative
/// standard error of about `1.04/√m` (±1.6 % at p=12).
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    p: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Create a sketch with `2^p` registers.
    pub fn new(p: u8) -> Self {
        assert!((4..=16).contains(&p), "precision must be in 4..=16");
        HyperLogLog {
            p,
            registers: vec![0; 1 << p],
        }
    }

    /// Number of registers.
    pub fn m(&self) -> usize {
        self.registers.len()
    }

    /// Theoretical relative standard error (≈1.04/√m).
    pub fn standard_error(&self) -> f64 {
        1.04 / (self.m() as f64).sqrt()
    }

    /// Add one item.
    pub fn insert(&mut self, item: &[u8]) {
        self.insert_hash(xxh64(item, HLL_SEED));
    }

    /// Add a pre-hashed item (lets callers share one hash computation
    /// across several sketches).
    pub fn insert_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.p)) as usize;
        // Rank = position of the leftmost 1 in the remaining bits, 1-based.
        let rest = hash << self.p;
        let rank = (rest.leading_zeros() as u8).min(64 - self.p) + 1;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated cardinality.
    pub fn estimate(&self) -> f64 {
        let m = self.m() as f64;
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 1.0 / (1u64 << r) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let alpha = match self.m() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            m => 0.7213 / (1.0 + 1.079 / m as f64),
        };
        let raw = alpha * m * m / sum;

        // Heule et al.: with a 64-bit hash no large-range correction is
        // needed; below the 2.5·m threshold, linear counting on empty
        // registers is strictly more accurate.
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Estimated cardinality, rounded to u64.
    pub fn count(&self) -> u64 {
        self.estimate().round() as u64
    }

    /// Merge another sketch of the same precision (register-wise max).
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.p, other.p, "precisions must match to merge");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// Precision `p` of this sketch.
    pub fn precision(&self) -> u8 {
        self.p
    }

    /// The raw register array (length `2^p`) — the serialization surface:
    /// two sketches with equal registers are interchangeable.
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Rebuild a sketch from raw registers previously obtained via
    /// [`registers`](Self::registers) — the deserialization path. Callers
    /// must validate untrusted input first: precision in 4..=16, exactly
    /// `2^p` registers, every register within the rank range (`<= 65 - p`).
    pub fn from_registers(p: u8, registers: Vec<u8>) -> HyperLogLog {
        assert!((4..=16).contains(&p), "precision must be in 4..=16");
        assert_eq!(registers.len(), 1usize << p, "register count must be 2^p");
        assert!(
            registers.iter().all(|&r| r <= 65 - p),
            "register exceeds rank range"
        );
        HyperLogLog { p, registers }
    }

    /// Reset all registers to empty.
    pub fn clear(&mut self) {
        self.registers.fill(0);
    }

    /// True if no item was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }
}

/// Fixed seed so estimates are reproducible across runs and machines.
const HLL_SEED: u64 = 0x0b5e_7a70_12d5_4a31;

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(h: &mut HyperLogLog, n: u64) {
        for i in 0..n {
            h.insert(&i.to_le_bytes());
        }
    }

    #[test]
    fn empty_sketch() {
        let h = HyperLogLog::new(12);
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn small_range_is_nearly_exact() {
        let mut h = HyperLogLog::new(12);
        fill(&mut h, 100);
        let est = h.count();
        assert!((95..=105).contains(&est), "estimate {est}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(12);
        for _ in 0..10 {
            fill(&mut h, 500);
        }
        let est = h.count();
        assert!((470..=530).contains(&est), "estimate {est}");
    }

    #[test]
    fn large_range_within_error() {
        let mut h = HyperLogLog::new(12);
        let n = 1_000_000u64;
        fill(&mut h, n);
        let est = h.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        // 5 standard errors gives a comfortable deterministic margin.
        assert!(
            rel < 5.0 * h.standard_error(),
            "relative error {rel:.4} too high (est {est})"
        );
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        for i in 0..3000u64 {
            a.insert(&i.to_le_bytes());
        }
        for i in 1500..4500u64 {
            b.insert(&i.to_le_bytes());
        }
        let mut union = HyperLogLog::new(10);
        for i in 0..4500u64 {
            union.insert(&i.to_le_bytes());
        }
        a.merge(&b);
        let diff = (a.estimate() - union.estimate()).abs();
        assert!(diff < f64::EPSILON, "merge must equal recomputed union");
    }

    #[test]
    #[should_panic(expected = "precisions must match")]
    fn merge_mismatched_precision_panics() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(11);
        a.merge(&b);
    }

    #[test]
    fn clear_resets() {
        let mut h = HyperLogLog::new(8);
        fill(&mut h, 100);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn bad_precision_panics() {
        HyperLogLog::new(3);
    }
}
