//! Reservoir sampling (Vitter's Algorithm R) with a deterministic,
//! self-contained PRNG.
//!
//! Used by the representativeness experiments (paper §3.7) to take
//! unbiased fixed-size samples of resolvers and by tests that need a
//! sample of a stream without holding it all.

/// Fixed-size uniform sample over a stream of items.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    items: Vec<T>,
    seen: u64,
    rng: SplitMix64,
}

impl<T> Reservoir<T> {
    /// Create a reservoir holding at most `capacity` items, seeded for
    /// reproducibility.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0);
        Reservoir {
            capacity,
            items: Vec::with_capacity(capacity),
            seen: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Offer one item to the sample.
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            // Replace a random slot with probability capacity/seen.
            let j = self.rng.next_below(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Items seen so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sample contents.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// SplitMix64 — tiny, well-understood 64-bit PRNG (Steele et al. 2014).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via rejection-free multiply-shift.
    fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_samples() {
        let mut r = Reservoir::new(10, 42);
        for i in 0..5 {
            r.offer(i);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
        for i in 5..1000 {
            r.offer(i);
        }
        assert_eq!(r.items().len(), 10);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn is_roughly_uniform() {
        // Offer 0..100 to a size-10 reservoir many times; each item should
        // be selected ~10% of the time.
        let mut hits = [0u32; 100];
        for seed in 0..2000u64 {
            let mut r = Reservoir::new(10, seed);
            for i in 0..100usize {
                r.offer(i);
            }
            for &i in r.items() {
                hits[i] += 1;
            }
        }
        let expected = 200.0; // 2000 runs * 10/100
        for (i, &h) in hits.iter().enumerate() {
            let rel = (h as f64 - expected).abs() / expected;
            assert!(rel < 0.35, "item {i} selected {h} times");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = Reservoir::new(5, 7);
        let mut b = Reservoir::new(5, 7);
        for i in 0..100 {
            a.offer(i);
            b.offer(i);
        }
        assert_eq!(a.items(), b.items());
    }
}
