//! A self-contained 64-bit hash (xxHash64) used by every sketch.
//!
//! Sketch quality depends on a hash with good avalanche behaviour, and
//! reproducibility across runs requires one that is fully specified. We
//! implement xxHash64 (Yann Collet's specification) from scratch rather
//! than depending on `std`'s unspecified `DefaultHasher`.

const PRIME1: u64 = 0x9e37_79b1_85eb_ca87;
const PRIME2: u64 = 0xc2b2_ae3d_27d4_eb4f;
const PRIME3: u64 = 0x1656_67b1_9e37_79f9;
const PRIME4: u64 = 0x85eb_ca77_c2b2_ae63;
const PRIME5: u64 = 0x27d4_eb2f_1656_67c5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME2))
        .rotate_left(31)
        .wrapping_mul(PRIME1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME1)
        .wrapping_add(PRIME4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

/// Hash `data` with the given `seed` using the xxHash64 algorithm.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME1).wrapping_add(PRIME2);
        let mut v2 = seed.wrapping_add(PRIME2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest));
        h = h.rotate_left(27).wrapping_mul(PRIME1).wrapping_add(PRIME4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= (read_u32(rest) as u64).wrapping_mul(PRIME1);
        h = h.rotate_left(23).wrapping_mul(PRIME2).wrapping_add(PRIME3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= (byte as u64).wrapping_mul(PRIME5);
        h = h.rotate_left(11).wrapping_mul(PRIME1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME3);
    h ^= h >> 32;
    h
}

/// Hash anything that exposes bytes, with a fixed default seed.
pub fn hash_bytes(data: &[u8]) -> u64 {
    xxh64(data, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors computed with the canonical xxHash implementation
    // (xxhsum 0.8, `xxhsum -H1`).
    #[test]
    fn reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xef46_db37_51d8_e999);
        assert_eq!(xxh64(b"a", 0), 0xd24e_c4f1_a98c_6e5b);
        assert_eq!(xxh64(b"abc", 0), 0x44bc_2cf5_ad77_0999);
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition", 0),
            0xfbce_a83c_8a37_8bf1
        );
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abc", 1));
    }

    #[test]
    fn long_inputs_hit_the_wide_path() {
        let data: Vec<u8> = (0..=255u8).collect();
        // Regression pin: any change to the wide path shows up here.
        let h = xxh64(&data, 0);
        assert_eq!(h, xxh64(&data, 0));
        assert_ne!(h, xxh64(&data[..255], 0));
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = xxh64(b"www.example.com", 0);
        let b = xxh64(b"wwv.example.com", 0);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped} bits");
    }
}
