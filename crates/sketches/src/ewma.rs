//! Exponentially decaying rate estimation.
//!
//! Standalone version of the per-object frequency estimate used inside the
//! Space-Saving cache (paper §2.2: "an exponentially decaying moving
//! average that tracks the rate of transactions per second").

/// Estimates an event rate (events/second) with exponential decay.
///
/// Each event adds an impulse of `ln2 / half_life`; between events the
/// estimate decays by a factor of 2 every `half_life` seconds. For a
/// steady stream of `r` events/second the estimate converges to `r`.
#[derive(Debug, Clone, Copy)]
pub struct DecayingRate {
    half_life: f64,
    rate: f64,
    updated_at: f64,
}

impl DecayingRate {
    /// Create an estimator with the given half-life in seconds.
    pub fn new(half_life: f64) -> Self {
        assert!(half_life > 0.0, "half-life must be positive");
        DecayingRate {
            half_life,
            rate: 0.0,
            updated_at: 0.0,
        }
    }

    /// Record one event at time `now` (seconds, monotonically nondecreasing).
    pub fn tick(&mut self, now: f64) {
        self.tick_n(now, 1);
    }

    /// Record `n` simultaneous events at time `now`.
    pub fn tick_n(&mut self, now: f64, n: u64) {
        let decayed = self.value_at(now);
        self.rate = decayed + n as f64 * std::f64::consts::LN_2 / self.half_life;
        self.updated_at = now;
    }

    /// The decayed estimate as of `now`, in events per second.
    pub fn value_at(&self, now: f64) -> f64 {
        let dt = (now - self.updated_at).max(0.0);
        self.rate * 0.5f64.powf(dt / self.half_life)
    }

    /// Half-life configured at construction.
    pub fn half_life(&self) -> f64 {
        self.half_life
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_steady_rate() {
        let mut r = DecayingRate::new(10.0);
        // 50 events/second for 100 seconds (10 half-lives).
        let rate = 50.0;
        let mut t = 0.0;
        while t < 100.0 {
            r.tick(t);
            t += 1.0 / rate;
        }
        let est = r.value_at(100.0);
        assert!(
            (est - rate).abs() / rate < 0.1,
            "estimate {est} vs true {rate}"
        );
    }

    #[test]
    fn halves_per_half_life() {
        let mut r = DecayingRate::new(5.0);
        r.tick_n(0.0, 1000);
        let v0 = r.value_at(0.0);
        let v1 = r.value_at(5.0);
        let v2 = r.value_at(10.0);
        assert!((v1 / v0 - 0.5).abs() < 1e-9);
        assert!((v2 / v0 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn decays_toward_zero() {
        let mut r = DecayingRate::new(1.0);
        r.tick(0.0);
        assert!(r.value_at(100.0) < 1e-12);
    }

    #[test]
    fn time_going_backwards_is_tolerated() {
        let mut r = DecayingRate::new(1.0);
        r.tick(10.0);
        // Asking about the past returns the undecayed value rather than
        // amplifying it.
        assert!(r.value_at(5.0) <= r.rate + 1e-12);
    }

    #[test]
    fn tick_n_equals_n_ticks_at_same_instant() {
        let mut a = DecayingRate::new(2.0);
        let mut b = DecayingRate::new(2.0);
        a.tick_n(1.0, 5);
        for _ in 0..5 {
            b.tick(1.0);
        }
        assert!((a.value_at(2.0) - b.value_at(2.0)).abs() < 1e-12);
    }
}
