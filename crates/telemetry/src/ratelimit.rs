//! A minimal token-for-time rate limiter for operator warnings: at most
//! one `allow` per interval, with a suppressed-count so the next allowed
//! line can say how much it swallowed.

/// Allows one event per fixed interval; counts what it suppressed.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    interval_us: u64,
    last_allowed_us: Option<u64>,
    suppressed: u64,
}

impl RateLimiter {
    /// A limiter allowing one event per `interval_us` microseconds.
    pub fn new(interval_us: u64) -> RateLimiter {
        RateLimiter {
            interval_us,
            last_allowed_us: None,
            suppressed: 0,
        }
    }

    /// Should an event at `now_us` be emitted? On `true`, returns the
    /// number of events suppressed since the last allowed one (and
    /// resets that count); on `false`, the event joins the suppressed
    /// tally.
    pub fn allow(&mut self, now_us: u64) -> Option<u64> {
        let due = match self.last_allowed_us {
            None => true,
            Some(last) => now_us.saturating_sub(last) >= self.interval_us,
        };
        if due {
            self.last_allowed_us = Some(now_us);
            let suppressed = self.suppressed;
            self.suppressed = 0;
            Some(suppressed)
        } else {
            self.suppressed += 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_event_passes_then_throttles() {
        let mut rl = RateLimiter::new(1_000);
        assert_eq!(rl.allow(0), Some(0));
        assert_eq!(rl.allow(10), None);
        assert_eq!(rl.allow(999), None);
        assert_eq!(rl.allow(1_000), Some(2));
        assert_eq!(rl.allow(1_500), None);
        assert_eq!(rl.allow(2_000), Some(1));
    }
}
