//! Process self-gauges: thread count and memory from `/proc/self/status`.
//!
//! Motivated by a real incident: `dnsobs aggregate` hit thread-spawn
//! ENOMEM at full 10k Top-k caps on a small container, and nothing in
//! the registry could say how many threads or how much address space the
//! process was using at the time. These gauges close that hole — the
//! sans-io parse is [`parse_proc_status`]; the one-line io edge
//! ([`update`]) reads `/proc/self/status` and is a no-op on platforms
//! without procfs.

use crate::registry::Registry;

/// Values lifted from `/proc/self/status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelfStat {
    /// Number of threads in the process (`Threads:`).
    pub threads: u64,
    /// Resident set size in kB (`VmRSS:`).
    pub vm_rss_kb: u64,
    /// Stack segment size in kB (`VmStk:`) — main thread only; spawned
    /// threads' stacks live in `VmSize`.
    pub vm_stk_kb: u64,
    /// Virtual address space in kB (`VmSize:`) — where per-thread stack
    /// reservations show up, hence the ENOMEM signal.
    pub vm_size_kb: u64,
}

/// Parse the `Threads:` / `Vm*:` lines out of a `/proc/self/status`
/// body. Unknown lines are ignored; missing fields stay zero.
pub fn parse_proc_status(text: &str) -> SelfStat {
    let mut stat = SelfStat::default();
    for line in text.lines() {
        let Some((key, rest)) = line.split_once(':') else {
            continue;
        };
        let value = rest
            .split_whitespace()
            .next()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        match key {
            "Threads" => stat.threads = value,
            "VmRSS" => stat.vm_rss_kb = value,
            "VmStk" => stat.vm_stk_kb = value,
            "VmSize" => stat.vm_size_kb = value,
            _ => {}
        }
    }
    stat
}

/// Set the `process_*` gauges in `registry` from `stat`.
pub fn record(registry: &Registry, stat: SelfStat) {
    registry.gauge("process_threads").set(stat.threads as f64);
    registry
        .gauge("process_rss_kbytes")
        .set(stat.vm_rss_kb as f64);
    registry
        .gauge("process_stack_kbytes")
        .set(stat.vm_stk_kb as f64);
    registry
        .gauge("process_vsize_kbytes")
        .set(stat.vm_size_kb as f64);
}

/// Read `/proc/self/status` and update the gauges. Returns the parsed
/// stat, or `None` where procfs is unavailable (non-Linux), in which
/// case the registry is untouched.
pub fn update(registry: &Registry) -> Option<SelfStat> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let stat = parse_proc_status(&text);
    record(registry, stat);
    Some(stat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_fields_it_cares_about() {
        let text = "Name:\tdnsobs\nVmSize:\t  123456 kB\nVmRSS:\t   7890 kB\nVmStk:\t    132 kB\nThreads:\t17\nnonsense\n";
        let stat = parse_proc_status(text);
        assert_eq!(
            stat,
            SelfStat {
                threads: 17,
                vm_rss_kb: 7890,
                vm_stk_kb: 132,
                vm_size_kb: 123456,
            }
        );
    }

    #[test]
    fn missing_fields_stay_zero() {
        assert_eq!(parse_proc_status("Name: x\n"), SelfStat::default());
    }

    #[test]
    fn record_sets_gauges() {
        let r = Registry::new();
        record(
            &r,
            SelfStat {
                threads: 5,
                vm_rss_kb: 100,
                vm_stk_kb: 8,
                vm_size_kb: 2048,
            },
        );
        let s = r.snapshot(0);
        assert_eq!(s.gauge("process_threads"), 5.0);
        assert_eq!(s.gauge("process_rss_kbytes"), 100.0);
        assert_eq!(s.gauge("process_stack_kbytes"), 8.0);
        assert_eq!(s.gauge("process_vsize_kbytes"), 2048.0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn update_reads_procfs_on_linux() {
        let r = Registry::new();
        let stat = update(&r).expect("procfs available on linux");
        assert!(stat.threads >= 1);
        assert!(r.snapshot(0).gauge("process_threads") >= 1.0);
    }
}
