//! Sharded monotone counters: lock-free, allocation-free recording from
//! any number of threads.
//!
//! A [`Counter`] spreads its value over a fixed set of cache-line-padded
//! atomic cells; each thread picks one shard (round-robin at first use)
//! and increments only that cell with a relaxed add, so concurrent
//! writers on different cores never contend on the same line. Reading
//! sums the shards — reads are rare (snapshots, exporters), writes are
//! the hot path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shards per counter. Enough to keep a dozen recording threads on
/// distinct cache lines without bloating every metric.
const SHARDS: usize = 16;

/// One cache line's worth of counter, padded so neighbouring shards never
/// share a line (the whole point of sharding).
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

#[derive(Debug)]
pub(crate) struct CounterCell {
    shards: [PaddedCell; SHARDS],
}

impl CounterCell {
    fn new() -> CounterCell {
        CounterCell {
            shards: Default::default(),
        }
    }

    fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home shard, assigned round-robin on first use.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// A monotone counter handle. Cloning is cheap (an `Arc` bump); all
/// clones share the same value. `inc` is lock-free and allocation-free.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<CounterCell>,
}

impl Counter {
    /// A standalone counter (registry-less, for tests and composition).
    pub fn new() -> Counter {
        Counter {
            cell: Arc::new(CounterCell::new()),
        }
    }

    /// Add `n` to the counter (relaxed; hot-path safe).
    #[inline]
    pub fn inc(&self, n: u64) {
        MY_SHARD.with(|&s| {
            self.cell.shards[s].0.fetch_add(n, Ordering::Relaxed);
        });
    }

    /// Current value: the sum over all shards.
    pub fn value(&self) -> u64 {
        self.cell.sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_accumulate() {
        let c = Counter::new();
        c.inc(1);
        c.inc(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn clones_share_the_value() {
        let a = Counter::new();
        let b = a.clone();
        a.inc(3);
        b.inc(4);
        assert_eq!(a.value(), 7);
        assert_eq!(b.value(), 7);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let c = Counter::new();
        let threads = 8;
        let per = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..per {
                        c.inc(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), threads * per);
    }
}
