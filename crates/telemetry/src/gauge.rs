//! Gauges: last-value-wins f64 cells, stored as bit patterns in an
//! `AtomicU64` so `set` is a plain store and `add` a CAS loop — no locks
//! anywhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A settable f64 gauge handle. Cloning is cheap; all clones share the
/// same cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A standalone gauge at 0.0.
    pub fn new() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) with a CAS loop — safe from any
    /// number of threads, e.g. queue-depth inc/dec pairs.
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_read() {
        let g = Gauge::new();
        assert_eq!(g.value(), 0.0);
        g.set(2.5);
        assert_eq!(g.value(), 2.5);
        g.set(-1.0);
        assert_eq!(g.value(), -1.0);
    }

    #[test]
    fn concurrent_add_balances_out() {
        let g = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let g = g.clone();
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        g.add(1.0);
                        g.add(-1.0);
                    }
                });
            }
        });
        assert_eq!(g.value(), 0.0);
    }
}
