//! Prometheus text exposition (version 0.0.4): render a [`Snapshot`] to
//! the text format, and parse it back for `dnsobs status` and tests.
//!
//! Counters and gauges render one sample each (labels, if any, are
//! already encoded in the metric name). Histograms render the standard
//! cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.

use std::collections::BTreeMap;

use crate::snapshot::{Snapshot, Value};

/// Base metric name: the part before any `{`.
fn base_name(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// Split `name{k="v",...}` into the base name and the label body (the
/// text between the braces), if any.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        None => (name, None),
    }
}

/// Format an f64 the way Prometheus clients expect (shortest round-trip
/// form; integral values without a trailing `.0` is fine for the format).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render a snapshot in the Prometheus text exposition format. Metrics
/// come out sorted by name; `# TYPE` lines are emitted once per base
/// name.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(64 * snapshot.values.len());
    let mut last_typed = String::new();
    for (name, value) in &snapshot.values {
        let base = base_name(name);
        match value {
            Value::Counter(v) => {
                if last_typed != base {
                    out.push_str(&format!("# TYPE {base} counter\n"));
                    last_typed = base.to_string();
                }
                out.push_str(&format!("{name} {v}\n"));
            }
            Value::Gauge(v) => {
                if last_typed != base {
                    out.push_str(&format!("# TYPE {base} gauge\n"));
                    last_typed = base.to_string();
                }
                out.push_str(&format!("{name} {}\n", fmt_f64(*v)));
            }
            Value::Histogram(h) => {
                if last_typed != base {
                    out.push_str(&format!("# TYPE {base} histogram\n"));
                    last_typed = base.to_string();
                }
                // A labeled histogram (`h{stage="x"}`) must fold `le`
                // into the existing label set, and hang `_sum`/`_count`
                // off the base name — suffixes after a `}` are invalid
                // exposition syntax.
                let (hbase, labels) = split_labels(name);
                let bucket_series = |le: &str| match labels {
                    Some(body) => format!("{hbase}_bucket{{{body},le=\"{le}\"}}"),
                    None => format!("{hbase}_bucket{{le=\"{le}\"}}"),
                };
                let plain_series = |suffix: &str| match labels {
                    Some(body) => format!("{hbase}_{suffix}{{{body}}}"),
                    None => format!("{hbase}_{suffix}"),
                };
                let mut cumulative = 0u64;
                for (i, bucket) in h.buckets.iter().enumerate() {
                    cumulative += bucket;
                    let le = fmt_f64(h.layout.upper_bound(i));
                    out.push_str(&format!("{} {cumulative}\n", bucket_series(&le)));
                }
                out.push_str(&format!("{} {}\n", bucket_series("+Inf"), h.count));
                out.push_str(&format!("{} {}\n", plain_series("sum"), fmt_f64(h.sum)));
                out.push_str(&format!("{} {}\n", plain_series("count"), h.count));
            }
        }
    }
    out
}

/// One parsed sample: full series name (labels included) → value.
pub type Samples = BTreeMap<String, f64>;

/// Parse Prometheus text exposition into a flat sample map. Comment and
/// blank lines are skipped; malformed lines are ignored rather than
/// fatal, because `status` parses whatever the endpoint serves.
pub fn parse(text: &str) -> Samples {
    let mut samples = Samples::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The value is the text after the last space *outside* braces —
        // label values may themselves contain spaces.
        let split_at = match line.rfind('}') {
            Some(brace) => line[brace..].find(' ').map(|i| brace + i),
            None => line.find(' '),
        };
        let Some(split_at) = split_at else { continue };
        let (name, rest) = line.split_at(split_at);
        let value_text = rest.trim().split(' ').next().unwrap_or("");
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            other => match other.parse::<f64>() {
                Ok(v) => v,
                Err(_) => continue,
            },
        };
        samples.insert(name.to_string(), value);
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::registry::Registry;

    #[test]
    fn renders_counters_and_gauges() {
        let r = Registry::new();
        r.counter_with("kept_total", &[("shard", "0")]).inc(7);
        r.gauge("queue_depth").set(3.0);
        let text = render(&r.snapshot(0));
        assert!(text.contains("# TYPE kept_total counter\n"));
        assert!(text.contains("kept_total{shard=\"0\"} 7\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth 3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", Histogram::seconds_layout());
        h.record(1e-6);
        h.record(1e-6);
        h.record(50.0);
        let text = render(&r.snapshot(0));
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_seconds_count 3\n"));
        // Every non-Inf bucket count is ≤ the total.
        for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v <= 3.0);
        }
    }

    #[test]
    fn labeled_histogram_folds_le_into_the_label_set() {
        let r = Registry::new();
        let h = r.histogram_with(
            "stage_seconds",
            &[("stage", "seal")],
            Histogram::seconds_layout(),
        );
        h.record(0.25);
        let text = render(&r.snapshot(0));
        assert!(text.contains("# TYPE stage_seconds histogram\n"));
        assert!(text.contains("stage_seconds_bucket{stage=\"seal\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("stage_seconds_sum{stage=\"seal\"} 0.25\n"));
        assert!(text.contains("stage_seconds_count{stage=\"seal\"} 1\n"));
        // Nothing may render a suffix after a closing brace.
        assert!(!text.contains("}_bucket"), "{text}");
        assert!(!text.contains("}_sum"), "{text}");
        assert!(!text.contains("}_count"), "{text}");
        let samples = parse(&text);
        assert_eq!(samples["stage_seconds_count{stage=\"seal\"}"], 1.0);
        assert_eq!(samples["stage_seconds_sum{stage=\"seal\"}"], 0.25);
    }

    #[test]
    fn nasty_label_values_survive_render_and_parse() {
        let r = Registry::new();
        r.counter_with("odd_total", &[("k", "a\\b\"c\nd e}f")])
            .inc(3);
        let text = render(&r.snapshot(0));
        // One sample line plus its TYPE line: the newline was escaped.
        assert_eq!(text.lines().count(), 2, "{text}");
        let samples = parse(&text);
        assert_eq!(samples[r#"odd_total{k="a\\b\"c\nd e}f"}"#], 3.0, "{text}");
    }

    #[test]
    fn parse_round_trips_flat_samples() {
        let r = Registry::new();
        r.counter_with("kept_total", &[("dataset", "qname")])
            .inc(11);
        r.gauge("lag").set(-2.5);
        let samples = parse(&render(&r.snapshot(0)));
        assert_eq!(samples["kept_total{dataset=\"qname\"}"], 11.0);
        assert_eq!(samples["lag"], -2.5);
    }

    #[test]
    fn parse_skips_garbage() {
        let samples = parse("# HELP x\n\nnot-a-sample\nok 5\nbad val\n");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples["ok"], 5.0);
    }
}
