//! Consistent point-in-time snapshots of a registry, with exact delta
//! arithmetic.
//!
//! A [`Snapshot`] is a plain sorted map of metric name → [`Value`].
//! Deltas are defined metric-wise: counters and histogram buckets
//! subtract as `u64`, gauges keep the *newer* value (a gauge is a level,
//! not a flow). For any snapshots `a ≤ b ≤ c` of the same registry the
//! merge law `delta(a, c) == delta(a, b) + delta(b, c)` holds exactly for
//! counters and buckets; for f64 sums it holds exactly whenever the
//! recorded values are exactly representable (e.g. integers below 2^52),
//! which the property tests exploit.

use std::collections::BTreeMap;

use sketches::LogBuckets;

/// A frozen histogram: layout plus cumulative state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket layout the counts are indexed by.
    pub layout: LogBuckets,
    /// Per-bucket counts (length == `layout.len()`).
    pub buckets: Vec<u64>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Monotone counter.
    Counter(u64),
    /// Last-set level.
    Gauge(f64),
    /// Distribution.
    Histogram(HistogramSnapshot),
}

/// A consistent-enough point-in-time view of every registered metric.
///
/// "Consistent" here means each metric is read atomically; metrics are
/// read one after another, so cross-metric invariants can be off by
/// whatever was recorded during the sweep — the same contract every
/// sampling exporter has.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Clock reading when the snapshot was taken (µs).
    pub at_us: u64,
    /// Metric name (with encoded labels) → value, sorted by name.
    pub values: BTreeMap<String, Value>,
}

impl Snapshot {
    /// An empty snapshot at time zero.
    pub fn empty() -> Snapshot {
        Snapshot {
            at_us: 0,
            values: BTreeMap::new(),
        }
    }

    /// Look up a counter's value; 0 if absent or a different kind.
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(Value::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Look up a gauge's value; 0.0 if absent or a different kind.
    pub fn gauge(&self, name: &str) -> f64 {
        match self.values.get(name) {
            Some(Value::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// Look up a histogram; `None` if absent or a different kind.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(Value::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum all counters whose name starts with `prefix` (labels
    /// included), e.g. `counter_sum("pipeline_kept_total{")` across
    /// every shard label.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.values
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, v)| match v {
                Value::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// `newer - self`, metric-wise. Counters and histogram buckets
    /// subtract (saturating, so a restarted registry yields zeros rather
    /// than wrap-around); gauges take the newer level. Metrics present
    /// only in `newer` appear as-is; metrics that vanished are dropped.
    pub fn delta(&self, newer: &Snapshot) -> Snapshot {
        let mut values = BTreeMap::new();
        for (name, new_v) in &newer.values {
            let v = match (self.values.get(name), new_v) {
                (Some(Value::Counter(old)), Value::Counter(new)) => {
                    Value::Counter(new.saturating_sub(*old))
                }
                (Some(Value::Histogram(old)), Value::Histogram(new))
                    if old.layout == new.layout =>
                {
                    Value::Histogram(HistogramSnapshot {
                        layout: new.layout,
                        buckets: new
                            .buckets
                            .iter()
                            .zip(&old.buckets)
                            .map(|(n, o)| n.saturating_sub(*o))
                            .collect(),
                        count: new.count.saturating_sub(old.count),
                        sum: new.sum - old.sum,
                    })
                }
                // Gauge, kind mismatch, or newly appeared: take the new
                // value verbatim.
                _ => new_v.clone(),
            };
            values.insert(name.clone(), v);
        }
        Snapshot {
            at_us: newer.at_us,
            values,
        }
    }

    /// Add two deltas: counters and buckets add, gauges keep `other`'s
    /// (newer) level. `delta(a, b).plus(&delta(b, c)) == delta(a, c)`.
    pub fn plus(&self, other: &Snapshot) -> Snapshot {
        let mut values = self.values.clone();
        for (name, other_v) in &other.values {
            let merged = match (values.get(name), other_v) {
                (Some(Value::Counter(a)), Value::Counter(b)) => Value::Counter(a + b),
                (Some(Value::Histogram(a)), Value::Histogram(b)) if a.layout == b.layout => {
                    Value::Histogram(HistogramSnapshot {
                        layout: b.layout,
                        buckets: a
                            .buckets
                            .iter()
                            .zip(&b.buckets)
                            .map(|(x, y)| x + y)
                            .collect(),
                        count: a.count + b.count,
                        sum: a.sum + b.sum,
                    })
                }
                _ => other_v.clone(),
            };
            values.insert(name.clone(), merged);
        }
        Snapshot {
            at_us: self.at_us.max(other.at_us),
            values,
        }
    }

    /// Flatten into `(metric, value)` rows for the meta TSV self-report.
    /// Counters and gauges become one row each; histograms become
    /// `name_count` and `name_sum` rows (the buckets stay on the
    /// Prometheus side, where cumulative `le` semantics live).
    pub fn meta_rows(&self) -> Vec<(String, f64)> {
        let mut rows = Vec::with_capacity(self.values.len());
        for (name, v) in &self.values {
            match v {
                Value::Counter(c) => rows.push((name.clone(), *c as f64)),
                Value::Gauge(g) => rows.push((name.clone(), *g)),
                Value::Histogram(h) => {
                    rows.push((format!("{name}_count"), h.count as f64));
                    rows.push((format!("{name}_sum"), h.sum));
                }
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, Value)], at_us: u64) -> Snapshot {
        Snapshot {
            at_us,
            values: pairs
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        }
    }

    #[test]
    fn counter_delta_subtracts() {
        let a = snap(&[("x", Value::Counter(10))], 1);
        let b = snap(&[("x", Value::Counter(25))], 2);
        let d = a.delta(&b);
        assert_eq!(d.counter("x"), 15);
        assert_eq!(d.at_us, 2);
    }

    #[test]
    fn gauge_delta_keeps_newer_level() {
        let a = snap(&[("g", Value::Gauge(5.0))], 1);
        let b = snap(&[("g", Value::Gauge(2.0))], 2);
        assert_eq!(a.delta(&b).gauge("g"), 2.0);
    }

    #[test]
    fn merge_law_on_counters() {
        let a = snap(&[("x", Value::Counter(3))], 1);
        let b = snap(&[("x", Value::Counter(10))], 2);
        let c = snap(&[("x", Value::Counter(40))], 3);
        assert_eq!(a.delta(&b).plus(&b.delta(&c)), a.delta(&c));
    }

    #[test]
    fn counter_sum_matches_prefix() {
        let s = snap(
            &[
                ("kept_total{shard=\"0\"}", Value::Counter(3)),
                ("kept_total{shard=\"1\"}", Value::Counter(4)),
                ("other_total", Value::Counter(100)),
            ],
            0,
        );
        assert_eq!(s.counter_sum("kept_total{"), 7);
    }

    #[test]
    fn meta_rows_flatten_histograms() {
        let h = HistogramSnapshot {
            layout: LogBuckets::new(0.001, 1.0, 3),
            buckets: vec![0; LogBuckets::new(0.001, 1.0, 3).len()],
            count: 5,
            sum: 1.25,
        };
        let s = snap(&[("lat_seconds", Value::Histogram(h))], 0);
        let rows = s.meta_rows();
        assert_eq!(
            rows,
            vec![
                ("lat_seconds_count".to_string(), 5.0),
                ("lat_seconds_sum".to_string(), 1.25),
            ]
        );
    }
}
