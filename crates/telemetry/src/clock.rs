//! The clock dependency, inverted: everything in this crate that needs
//! "now" asks a [`Clock`] for microseconds, so the watchdog and the meta
//! reporter run deterministically under the chaos kernel's virtual time
//! and against the wall clock in production.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone microsecond clock.
pub trait Clock: Send + Sync {
    /// Current time, microseconds since an arbitrary epoch.
    fn now_us(&self) -> u64;
}

/// Wall clock: microseconds since this process's first use of it.
#[derive(Debug, Clone)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock anchored at construction time.
    pub fn new() -> SystemClock {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A hand-driven clock for tests: time moves only when told to.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Set the current time (µs). Monotonicity is the caller's problem,
    /// as it is for any test clock.
    pub fn set(&self, us: u64) {
        self.now.store(us, Ordering::SeqCst);
    }

    /// Advance the clock by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_us(), 12);
        c.set(100);
        assert_eq!(c.now_us(), 100);
    }
}
