//! Atomic log-linear histograms over the exact bucket math of
//! [`sketches::LogBuckets`] — an index computed by the analytics
//! histograms and by these live-metrics histograms means the same value
//! range, by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sketches::LogBuckets;

#[derive(Debug)]
struct HistogramCell {
    layout: LogBuckets,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Running sum as f64 bits (CAS-add), for Prometheus `_sum`.
    sum_bits: AtomicU64,
}

/// A concurrent histogram handle: `record` is lock-free (one relaxed add
/// per bucket plus a CAS for the sum). Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// A standalone histogram over `layout`.
    pub fn new(layout: LogBuckets) -> Histogram {
        let counts = (0..layout.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            cell: Arc::new(HistogramCell {
                layout,
                counts,
                total: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// The layout commonly used for stage latencies: 1 µs – 100 s,
    /// 10 buckets per decade.
    pub fn seconds_layout() -> LogBuckets {
        LogBuckets::new(1e-6, 100.0, 10)
    }

    /// Record one value (NaN ignored; out-of-range clamps into the edge
    /// buckets, exactly like [`sketches::LogHistogram`]).
    #[inline]
    pub fn record(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let idx = self.cell.layout.index_of(value);
        self.cell.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.cell.total.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.cell.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.cell.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The bucket layout.
    pub fn layout(&self) -> LogBuckets {
        self.cell.layout
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.cell.total.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.cell.sum_bits.load(Ordering::Relaxed))
    }

    /// Point-in-time copy of the per-bucket counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.cell
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches::LogHistogram;

    #[test]
    fn matches_loghistogram_bucketing() {
        let layout = LogBuckets::new(0.001, 10.0, 15);
        let atomic = Histogram::new(layout);
        let mut reference = LogHistogram::with_buckets(layout);
        for i in 0..500 {
            let v = 0.0001 + i as f64 * 0.037;
            atomic.record(v);
            reference.record(v);
        }
        assert_eq!(atomic.count(), reference.count());
        // Same layout + same index function => identical bucket counts.
        // LogHistogram has no bucket accessor, so compare through the
        // quantiles its buckets produce (clamping is shared too).
        let counts = atomic.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), 500);
        assert_eq!(counts.len(), layout.len());
    }

    #[test]
    fn nan_is_ignored() {
        let h = Histogram::new(Histogram::seconds_layout());
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        h.record(0.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0.5);
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let h = Histogram::new(Histogram::seconds_layout());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..2_000 {
                        h.record(1e-6 * (1 + t * 2_000 + i) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 8_000);
    }
}
