//! The metric registry: a cold-path name → handle map behind a mutex.
//!
//! Registration takes the lock once and hands back a cheap clone of the
//! metric's handle ([`Counter`], [`Gauge`], [`Histogram`]); all recording
//! then goes straight to the shared atomic cells without ever touching
//! the registry again. Exporters take the lock briefly to walk the map
//! and read each handle.
//!
//! Labels are encoded into the metric name with Prometheus syntax
//! (`name{key="value"}`) by [`Registry::counter_with`] /
//! [`Registry::gauge_with`] / [`Registry::histogram_with`]; the
//! exposition renderer passes counter and gauge names through verbatim
//! and folds a labeled histogram's label set into its cumulative `le`
//! series.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use sketches::LogBuckets;

use crate::counter::Counter;
use crate::gauge::Gauge;
use crate::histogram::Histogram;
use crate::snapshot::{HistogramSnapshot, Snapshot, Value};

/// A registered metric handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A set of named metrics. Cloning shares the set; the process-wide
/// default lives behind [`Registry::global`], and tests inject fresh
/// instances to stay isolated.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Render one label set as `{k1="v1",k2="v2"}` in the given order.
pub fn encode_labels(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        // Prometheus escaping for label values.
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide default registry.
    pub fn global() -> Registry {
        GLOBAL.get_or_init(Registry::new).clone()
    }

    /// Get-or-register a counter under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted counter"),
        }
    }

    /// Get-or-register a counter with labels: `name{k="v",...}`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&encode_labels(name, labels))
    }

    /// Get-or-register a gauge under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted gauge"),
        }
    }

    /// Get-or-register a gauge with labels: `name{k="v",...}`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge(&encode_labels(name, labels))
    }

    /// Get-or-register a histogram under `name` with `layout`.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind, or as a
    /// histogram with a different layout.
    pub fn histogram(&self, name: &str, layout: LogBuckets) -> Histogram {
        let mut map = self.metrics.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(layout)))
        {
            Metric::Histogram(h) => {
                assert!(
                    h.layout() == layout,
                    "metric {name:?} already registered with a different bucket layout"
                );
                h.clone()
            }
            other => panic!("metric {name:?} already registered as {other:?}, wanted histogram"),
        }
    }

    /// Get-or-register a histogram with labels: `name{k="v",...}`. The
    /// Prometheus renderer merges the `le` bucket label into the set.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        layout: LogBuckets,
    ) -> Histogram {
        self.histogram(&encode_labels(name, labels), layout)
    }

    /// Point-in-time snapshot of every registered metric, stamped with
    /// the caller's clock reading.
    pub fn snapshot(&self, at_us: u64) -> Snapshot {
        let map = self.metrics.lock().expect("registry poisoned");
        let values = map
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => Value::Counter(c.value()),
                    Metric::Gauge(g) => Value::Gauge(g.value()),
                    Metric::Histogram(h) => Value::Histogram(HistogramSnapshot {
                        layout: h.layout(),
                        buckets: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    }),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { at_us, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_cell() {
        let r = Registry::new();
        let a = r.counter("hits_total");
        let b = r.counter("hits_total");
        a.inc(2);
        b.inc(3);
        assert_eq!(r.snapshot(0).counter("hits_total"), 5);
    }

    #[test]
    fn labels_encode_into_the_name() {
        assert_eq!(
            encode_labels("kept_total", &[("dataset", "qname"), ("shard", "3")]),
            "kept_total{dataset=\"qname\",shard=\"3\"}"
        );
        assert_eq!(encode_labels("plain", &[]), "plain");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            encode_labels("x", &[("k", "a\"b\\c")]),
            "x{k=\"a\\\"b\\\\c\"}"
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("thing");
        r.gauge("thing");
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let r = Registry::new();
        r.counter("c_total").inc(1);
        r.gauge("g").set(2.5);
        r.histogram("h_seconds", Histogram::seconds_layout())
            .record(0.1);
        let s = r.snapshot(42);
        assert_eq!(s.at_us, 42);
        assert_eq!(s.counter("c_total"), 1);
        assert_eq!(s.gauge("g"), 2.5);
        assert_eq!(s.histogram("h_seconds").unwrap().count, 1);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = Registry::global();
        let b = Registry::global();
        a.counter("global_test_total").inc(1);
        assert_eq!(b.snapshot(0).counter("global_test_total"), 1);
    }
}
