//! The stall watchdog: notices when a stage stops making progress.
//!
//! A stage proves liveness by the counters it already increments — no
//! extra heartbeat plumbing. [`WatchdogCore`] is sans-io: it holds one
//! watch per counter, and `tick(now_us)` compares each counter against
//! its last observed value; a counter frozen for longer than its
//! threshold raises a [`StallEvent`], and movement after a stall raises
//! a recovery. The chaos tests drive `tick` with virtual time; the
//! threaded [`Watchdog`] drives it with a [`Clock`] and prints events to
//! stderr.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::clock::Clock;
use crate::counter::Counter;

/// What happened to a watched stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StallEvent {
    /// The counter has not moved for at least its threshold.
    Stalled {
        /// Watch name (e.g. `"collector_events"`).
        name: String,
        /// How long the counter has been frozen, µs.
        stalled_for_us: u64,
        /// The frozen counter value.
        at_value: u64,
    },
    /// A previously stalled counter moved again.
    Recovered {
        /// Watch name.
        name: String,
        /// How long the stall lasted, µs.
        stalled_for_us: u64,
    },
}

#[derive(Debug)]
struct Watch {
    name: String,
    counter: Counter,
    threshold_us: u64,
    last_value: u64,
    last_progress_us: u64,
    stalled: bool,
}

/// Sans-io stall detection over a set of progress counters.
#[derive(Debug)]
pub struct WatchdogCore {
    watches: Vec<Watch>,
}

impl WatchdogCore {
    /// An empty watchdog.
    pub fn new() -> WatchdogCore {
        WatchdogCore {
            watches: Vec::new(),
        }
    }

    /// Watch `counter` under `name`: if it fails to move for
    /// `threshold_us`, `tick` reports a stall. `now_us` seeds the
    /// baseline so a stage that is legitimately idle at startup gets a
    /// full threshold before its first alarm.
    pub fn watch_counter(&mut self, name: &str, counter: Counter, threshold_us: u64, now_us: u64) {
        self.watches.push(Watch {
            name: name.to_string(),
            counter: counter.clone(),
            threshold_us,
            last_value: counter.value(),
            last_progress_us: now_us,
            stalled: false,
        });
    }

    /// Number of watches installed.
    pub fn len(&self) -> usize {
        self.watches.len()
    }

    /// True when nothing is being watched.
    pub fn is_empty(&self) -> bool {
        self.watches.is_empty()
    }

    /// Evaluate every watch at `now_us`; returns the state transitions
    /// (stall raised / stall cleared) since the previous tick. A watch
    /// already reported as stalled stays silent until it recovers.
    pub fn tick(&mut self, now_us: u64) -> Vec<StallEvent> {
        let mut events = Vec::new();
        for watch in &mut self.watches {
            let value = watch.counter.value();
            if value != watch.last_value {
                if watch.stalled {
                    events.push(StallEvent::Recovered {
                        name: watch.name.clone(),
                        stalled_for_us: now_us.saturating_sub(watch.last_progress_us),
                    });
                    watch.stalled = false;
                }
                watch.last_value = value;
                watch.last_progress_us = now_us;
            } else {
                let frozen_for = now_us.saturating_sub(watch.last_progress_us);
                if !watch.stalled && frozen_for >= watch.threshold_us {
                    watch.stalled = true;
                    events.push(StallEvent::Stalled {
                        name: watch.name.clone(),
                        stalled_for_us: frozen_for,
                        at_value: value,
                    });
                }
            }
        }
        events
    }

    /// Names of watches currently in the stalled state.
    pub fn stalled(&self) -> Vec<String> {
        self.watches
            .iter()
            .filter(|w| w.stalled)
            .map(|w| w.name.clone())
            .collect()
    }
}

impl Default for WatchdogCore {
    fn default() -> Self {
        WatchdogCore::new()
    }
}

/// A background thread that ticks a [`WatchdogCore`] against a [`Clock`]
/// and hands each event to a callback (default: one line on stderr).
#[derive(Debug)]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Spawn the watchdog thread, ticking `core` every `interval`.
    pub fn spawn(
        core: WatchdogCore,
        clock: Arc<dyn Clock>,
        interval: Duration,
        on_event: impl Fn(&StallEvent) + Send + 'static,
    ) -> std::io::Result<Watchdog> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let core = Mutex::new(core);
        let handle = std::thread::Builder::new()
            .name("stall-watchdog".to_string())
            .stack_size(crate::IO_THREAD_STACK_BYTES)
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    let events = core.lock().expect("watchdog poisoned").tick(clock.now_us());
                    for event in &events {
                        on_event(event);
                    }
                }
            })?;
        Ok(Watchdog {
            stop,
            handle: Some(handle),
        })
    }

    /// Spawn with the default stderr reporter.
    pub fn spawn_logging(
        core: WatchdogCore,
        clock: Arc<dyn Clock>,
        interval: Duration,
    ) -> std::io::Result<Watchdog> {
        Watchdog::spawn(core, clock, interval, |event| match event {
            StallEvent::Stalled {
                name,
                stalled_for_us,
                at_value,
            } => eprintln!(
                "watchdog: {name} stalled for {:.1}s at {at_value}",
                *stalled_for_us as f64 / 1e6
            ),
            StallEvent::Recovered {
                name,
                stalled_for_us,
            } => eprintln!(
                "watchdog: {name} recovered after {:.1}s",
                *stalled_for_us as f64 / 1e6
            ),
        })
    }

    /// Ask the thread to stop and wait for it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_counter_stalls_once_then_recovers() {
        let counter = Counter::new();
        let mut core = WatchdogCore::new();
        core.watch_counter("stage", counter.clone(), 1_000, 0);

        assert!(core.tick(500).is_empty());
        let events = core.tick(1_000);
        assert_eq!(events.len(), 1);
        assert!(
            matches!(&events[0], StallEvent::Stalled { name, at_value: 0, .. } if name == "stage")
        );
        // Still frozen: no repeat alarm.
        assert!(core.tick(5_000).is_empty());
        assert_eq!(core.stalled(), vec!["stage".to_string()]);

        counter.inc(1);
        let events = core.tick(6_000);
        assert_eq!(events.len(), 1);
        assert!(
            matches!(&events[0], StallEvent::Recovered { name, stalled_for_us: 6_000 } if name == "stage")
        );
        assert!(core.stalled().is_empty());
    }

    #[test]
    fn moving_counter_never_stalls() {
        let counter = Counter::new();
        let mut core = WatchdogCore::new();
        core.watch_counter("busy", counter.clone(), 100, 0);
        for t in 1..50 {
            counter.inc(1);
            assert!(core.tick(t * 90).is_empty());
        }
    }

    #[test]
    fn threaded_watchdog_fires_and_stops() {
        use crate::clock::ManualClock;

        let counter = Counter::new();
        let clock = ManualClock::new();
        let mut core = WatchdogCore::new();
        core.watch_counter("t", counter, 10, 0);
        let fired = Arc::new(AtomicBool::new(false));
        let fired_flag = fired.clone();
        clock.set(1_000);
        let dog = Watchdog::spawn(core, Arc::new(clock), Duration::from_millis(1), move |_| {
            fired_flag.store(true, Ordering::Relaxed)
        })
        .expect("spawn");
        for _ in 0..500 {
            if fired.load(Ordering::Relaxed) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(fired.load(Ordering::Relaxed));
        dog.stop();
    }
}
