//! Production observability for the DNS Observatory.
//!
//! The design follows the rest of the workspace: a sans-io core with io
//! pushed to the edges. Recording is lock-free and allocation-free —
//! sharded atomic [`Counter`]s, f64-bits [`Gauge`]s, and atomic
//! [`Histogram`]s over the exact [`sketches::LogBuckets`] layout the
//! analytics histograms use. A [`Registry`] maps names (with Prometheus
//! label syntax baked into the key) to handles; handles are cheap clones
//! that never touch the registry lock on the hot path.
//!
//! Two exporters read consistent [`Snapshot`]s: the Prometheus text
//! endpoint ([`MetricsServer`]) and the `meta` TSV self-report that rides
//! the ordinary timeseries path. [`Snapshot::delta`] gives exact
//! interval arithmetic (`delta(a,c) == delta(a,b) + delta(b,c)`), which
//! the chaos reconciliation tests lean on.
//!
//! Liveness comes from the [`WatchdogCore`]: any stage that increments a
//! counter is thereby heartbeating, and a counter frozen past its
//! threshold raises a [`StallEvent`]. The core is pure state + `tick`,
//! so the chaos kernel drives it with virtual time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod counter;
mod gauge;
mod histogram;
pub mod prometheus;
mod ratelimit;
mod registry;
pub mod selfstat;
mod server;
mod snapshot;
pub mod trace;
mod watchdog;

pub use clock::{Clock, ManualClock, SystemClock};
pub use counter::Counter;
pub use gauge::Gauge;
pub use histogram::Histogram;
pub use ratelimit::RateLimiter;
pub use registry::{encode_labels, Registry};
pub use server::{fetch, MetricsServer};
pub use snapshot::{HistogramSnapshot, Snapshot, Value};
pub use trace::{FlightRecorder, TraceEvent, TraceKind, TraceRing};
pub use watchdog::{StallEvent, Watchdog, WatchdogCore};

/// Stack size for the platform's io-edge helper threads (metrics server,
/// watchdog, feed readers/writers). The platform default — typically
/// 8 MiB of reserved address space per thread — exhausts a small
/// container once a collector fans out one reader per sensor next to
/// full-capacity tracker shards: the thread-spawn ENOMEM seen at 10k
/// top-k caps. These threads hold fixed buffers and small state
/// machines; 256 KiB is generous. The [`selfstat`] gauges
/// (`process_threads`, `process_stack_kbytes`) make the budget
/// observable on the scrape path.
pub const IO_THREAD_STACK_BYTES: usize = 256 * 1024;
