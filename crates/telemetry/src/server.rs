//! A deliberately tiny HTTP/1.0 listener for the Prometheus endpoint.
//!
//! One thread, one connection at a time, every request answered with the
//! full exposition — scrape traffic is one request every N seconds, so
//! anything fancier is dead weight. The io stays here at the edge; the
//! rendering is the pure [`crate::prometheus::render`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::clock::Clock;
use crate::prometheus;
use crate::registry::Registry;

/// A running metrics endpoint.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`, or port 0 for an ephemeral
    /// port) and serve `registry` snapshots until the process exits.
    pub fn serve(
        addr: &str,
        registry: Registry,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("metrics-http".to_string())
            .stack_size(crate::IO_THREAD_STACK_BYTES)
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    // Serving is best-effort: a scraper that hangs up
                    // mid-response must not take the exporter down.
                    let _ = answer(stream, &registry, clock.as_ref());
                }
            })?;
        Ok(MetricsServer {
            addr,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        // The accept loop blocks in `incoming()`; detach rather than
        // join so dropping the server never hangs the caller.
        if let Some(handle) = self.handle.take() {
            drop(handle);
        }
    }
}

fn answer(stream: TcpStream, registry: &Registry, clock: &dyn Clock) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream);
    // Drain the request head; the path is irrelevant — every GET gets
    // the metrics page.
    let mut line = String::new();
    reader.read_line(&mut line)?;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        if header.trim().is_empty() {
            break;
        }
    }
    // Refresh the process self-gauges (threads, RSS, stack, vsize) on
    // every scrape, so the thread/memory budget behind the ENOMEM class
    // of failures is current at observation time. No-op without procfs.
    let _ = crate::selfstat::update(registry);
    let body = prometheus::render(&registry.snapshot(clock.now_us()));
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )?;
    stream.flush()
}

/// Fetch the metrics page from `addr` (e.g. `127.0.0.1:9464`) — the
/// client half of the endpoint, used by `dnsobs status` and the tests.
pub fn fetch(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET /metrics HTTP/1.0\r\nHost: {addr}\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.find("\r\n\r\n") {
        Some(i) => Ok(raw[i + 4..].to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SystemClock;

    #[test]
    fn serves_and_fetches_metrics() {
        let registry = Registry::new();
        registry.counter("served_total").inc(9);
        let server = MetricsServer::serve(
            "127.0.0.1:0",
            registry.clone(),
            Arc::new(SystemClock::new()),
        )
        .expect("bind");
        let body = fetch(&server.addr().to_string()).expect("fetch");
        let samples = prometheus::parse(&body);
        assert_eq!(samples["served_total"], 9.0);

        // A second scrape sees updated values.
        registry.counter("served_total").inc(1);
        let body = fetch(&server.addr().to_string()).expect("fetch");
        assert_eq!(prometheus::parse(&body)["served_total"], 10.0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn scrape_refreshes_process_self_gauges() {
        let server =
            MetricsServer::serve("127.0.0.1:0", Registry::new(), Arc::new(SystemClock::new()))
                .expect("bind");
        let body = fetch(&server.addr().to_string()).expect("fetch");
        let samples = prometheus::parse(&body);
        assert!(samples["process_threads"] >= 1.0);
        assert!(samples["process_vsize_kbytes"] > 0.0);
    }
}
