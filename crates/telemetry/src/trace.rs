//! Window provenance tracing: structured span events in bounded rings,
//! collected by a black-box **flight recorder**.
//!
//! The metrics layer counts aggregates; it cannot answer "where did
//! window W come from and where did its time go". This module can. Each
//! subsystem (a pipeline stage, a collector reader, the aggregator)
//! records [`TraceEvent`]s into its own [`TraceRing`] — a preallocated
//! circular buffer, so the hot path never allocates and an unbounded
//! run never grows memory. The [`FlightRecorder`] owns one ring per
//! subsystem and dumps them all as a deterministic TSV on demand, on
//! panic ([`FlightRecorder::install_panic_hook`]), or when the watchdog
//! reports a stall — the black-box you read *after* the crash.
//!
//! Events are keyed by the window ids already on the wire (a window's
//! start time in µs), so traces from different processes line up without
//! any id-distribution protocol. Timestamps come from whatever clock the
//! caller injects — wall time in production, virtual time under the
//! chaos kernel — which keeps every consumer deterministic in tests.
//!
//! The conservation law the chaos suite pins: every window that appears
//! in an `Ingest` event terminates in **exactly one** of `Seal`, `Drop`,
//! or `Conflict`, and the event counts agree byte-for-byte with the
//! aggregator's ledger.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Sentinel for "no window id on this event".
pub const NO_WINDOW: u64 = u64::MAX;

/// Sentinel for "no source (sensor / upstream / shard) id".
pub const NO_SOURCE: u64 = u64::MAX;

/// What a trace event marks in a window's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceKind {
    /// A window (or batch) first seen / opened at this stage.
    Open,
    /// A record for this window was accepted at this stage.
    Ingest,
    /// This stage closed the window (watermark passed / dumped).
    Close,
    /// Terminal: the window was sealed into final output.
    Seal,
    /// Terminal: the record/window was dropped (e.g. arrived late).
    Drop,
    /// Terminal: the window sealed, but with a merge conflict.
    Conflict,
    /// Free-form annotation (connects, retransmits, stalls...).
    Mark,
}

impl TraceKind {
    /// Stable lowercase name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Open => "open",
            TraceKind::Ingest => "ingest",
            TraceKind::Close => "close",
            TraceKind::Seal => "seal",
            TraceKind::Drop => "drop",
            TraceKind::Conflict => "conflict",
            TraceKind::Mark => "mark",
        }
    }

    /// Parse a dump token back into a kind.
    pub fn from_token(s: &str) -> Option<TraceKind> {
        Some(match s {
            "open" => TraceKind::Open,
            "ingest" => TraceKind::Ingest,
            "close" => TraceKind::Close,
            "seal" => TraceKind::Seal,
            "drop" => TraceKind::Drop,
            "conflict" => TraceKind::Conflict,
            "mark" => TraceKind::Mark,
            _ => return None,
        })
    }

    /// True for the kinds that end a window's trace.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TraceKind::Seal | TraceKind::Drop | TraceKind::Conflict
        )
    }
}

/// One structured span event. `Copy` and free of owned data, so
/// recording is a couple of word moves — no allocation, ever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Clock reading when the event was recorded, µs (virtual or wall —
    /// whatever clock the recording stage was given).
    pub at_us: u64,
    /// Window id: the window's start time in µs, or [`NO_WINDOW`].
    pub window_us: u64,
    /// Stage name, e.g. `"sequencer"`, `"aggregator"`.
    pub stage: &'static str,
    /// What happened.
    pub kind: TraceKind,
    /// Dataset name, or `""` when the event spans all datasets.
    pub dataset: &'static str,
    /// Sensor / upstream / shard id, or [`NO_SOURCE`].
    pub source: u64,
    /// Event-specific payload (record count, bytes, latency µs...).
    pub value: u64,
}

impl TraceEvent {
    /// An event with every optional field blank.
    pub fn new(at_us: u64, stage: &'static str, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at_us,
            window_us: NO_WINDOW,
            stage,
            kind,
            dataset: "",
            source: NO_SOURCE,
            value: 0,
        }
    }

    /// Set the window id.
    pub fn window(mut self, window_us: u64) -> TraceEvent {
        self.window_us = window_us;
        self
    }

    /// Set the dataset.
    pub fn dataset(mut self, dataset: &'static str) -> TraceEvent {
        self.dataset = dataset;
        self
    }

    /// Set the source id.
    pub fn source(mut self, source: u64) -> TraceEvent {
        self.source = source;
        self
    }

    /// Set the payload value.
    pub fn value(mut self, value: u64) -> TraceEvent {
        self.value = value;
        self
    }
}

#[derive(Debug)]
struct RingInner {
    /// Circular storage, preallocated to capacity at construction.
    events: Vec<TraceEvent>,
    /// Total events ever recorded; `events[seq % cap]` is the slot the
    /// next event overwrites. Doubles as the per-event sequence number.
    seq: u64,
}

/// A bounded ring of trace events for one subsystem. Cloning shares the
/// ring; recording takes a short uncontended lock (each subsystem owns
/// its ring, so in the threaded topology a ring has one writer).
#[derive(Debug, Clone)]
pub struct TraceRing {
    inner: Arc<Mutex<RingInner>>,
    cap: usize,
}

impl TraceRing {
    /// A ring keeping the last `cap` events. `cap == 0` gives a ring
    /// that drops everything (a cheap "tracing off" sink).
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            inner: Arc::new(Mutex::new(RingInner {
                events: Vec::with_capacity(cap),
                seq: 0,
            })),
            cap,
        }
    }

    /// A ring that records nothing.
    pub fn disabled() -> TraceRing {
        TraceRing::new(0)
    }

    /// True when this ring retains events (capacity > 0). Hot paths use
    /// this to skip clock reads when tracing is off.
    pub fn is_enabled(&self) -> bool {
        self.cap > 0
    }

    /// Record one event, overwriting the oldest when full. Never
    /// allocates once the ring has filled.
    pub fn record(&self, event: TraceEvent) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        let slot = (inner.seq % self.cap as u64) as usize;
        if inner.events.len() < self.cap {
            inner.events.push(event);
        } else {
            inner.events[slot] = event;
        }
        inner.seq += 1;
    }

    /// Total events ever recorded (recorded, not retained).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").seq
    }

    /// The retained events, oldest first, each with its global sequence
    /// number (so a dump shows exactly how much history was lost).
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        let inner = self.inner.lock().expect("trace ring poisoned");
        let len = inner.events.len() as u64;
        let first_seq = inner.seq - len;
        let mut out = Vec::with_capacity(inner.events.len());
        for i in 0..len {
            let seq = first_seq + i;
            out.push((seq, inner.events[(seq % self.cap as u64) as usize]));
        }
        out
    }
}

/// The black box: one named [`TraceRing`] per subsystem, dumped as a
/// deterministic TSV. Cloning shares the recorder.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    rings: Arc<Mutex<BTreeMap<String, TraceRing>>>,
    default_cap: usize,
}

/// Default per-subsystem ring capacity: enough for hours of per-window
/// events at production windows, small enough to never matter.
pub const DEFAULT_RING_CAP: usize = 4096;

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

impl FlightRecorder {
    /// A recorder whose rings keep the last [`DEFAULT_RING_CAP`] events.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_RING_CAP)
    }

    /// A recorder with a custom per-subsystem ring capacity.
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        FlightRecorder {
            rings: Arc::new(Mutex::new(BTreeMap::new())),
            default_cap: cap,
        }
    }

    /// The process-wide recorder (what the panic hook dumps).
    pub fn global() -> FlightRecorder {
        GLOBAL.get_or_init(FlightRecorder::new).clone()
    }

    /// Get-or-create the ring for `subsystem`.
    pub fn ring(&self, subsystem: &str) -> TraceRing {
        let mut rings = self.rings.lock().expect("flight recorder poisoned");
        rings
            .entry(subsystem.to_string())
            .or_insert_with(|| TraceRing::new(self.default_cap))
            .clone()
    }

    /// Dump every ring as TSV, deterministic: subsystems in name order,
    /// events in sequence order within each. Columns:
    /// `subsystem seq at_us stage kind window_us dataset source value`
    /// with `-` for absent window/source/dataset.
    pub fn dump(&self) -> String {
        let rings: Vec<(String, TraceRing)> = {
            let map = self.rings.lock().expect("flight recorder poisoned");
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out = String::new();
        out.push_str("subsystem\tseq\tat_us\tstage\tkind\twindow_us\tdataset\tsource\tvalue\n");
        for (name, ring) in rings {
            for (seq, ev) in ring.events() {
                let window = if ev.window_us == NO_WINDOW {
                    "-".to_string()
                } else {
                    ev.window_us.to_string()
                };
                let source = if ev.source == NO_SOURCE {
                    "-".to_string()
                } else {
                    ev.source.to_string()
                };
                let dataset = if ev.dataset.is_empty() {
                    "-"
                } else {
                    ev.dataset
                };
                out.push_str(&format!(
                    "{name}\t{seq}\t{}\t{}\t{}\t{window}\t{dataset}\t{source}\t{}\n",
                    ev.at_us,
                    ev.stage,
                    ev.kind.as_str(),
                    ev.value
                ));
            }
        }
        out
    }

    /// Write [`FlightRecorder::dump`] to `path`.
    pub fn dump_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.dump())
    }

    /// Install a panic hook that dumps the **global** recorder to stderr
    /// (after the default hook), so a crashing process leaves its black
    /// box in the logs. Safe to call more than once per test binary —
    /// only the first call installs.
    pub fn install_panic_hook() {
        static INSTALLED: OnceLock<()> = OnceLock::new();
        INSTALLED.get_or_init(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                previous(info);
                let dump = FlightRecorder::global().dump();
                // Header-only means nothing was recorded; stay quiet.
                if dump.lines().count() > 1 {
                    eprintln!("--- flight recorder dump (panic) ---");
                    eprint!("{dump}");
                    eprintln!("--- end flight recorder dump ---");
                }
            }));
        });
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

/// One parsed dump row — the owned mirror of [`TraceEvent`], plus its
/// subsystem and sequence number. What `dnsobs trace` works from.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Ring name the event came from.
    pub subsystem: String,
    /// Sequence number within the ring.
    pub seq: u64,
    /// Event timestamp, µs.
    pub at_us: u64,
    /// Stage name.
    pub stage: String,
    /// Event kind.
    pub kind: TraceKind,
    /// Window id (µs), or [`NO_WINDOW`].
    pub window_us: u64,
    /// Dataset, or `""`.
    pub dataset: String,
    /// Source id, or [`NO_SOURCE`].
    pub source: u64,
    /// Payload value.
    pub value: u64,
}

/// Parse a [`FlightRecorder::dump`] back into rows. Malformed lines are
/// skipped (the dump may be truncated by the very crash it documents).
pub fn parse_dump(text: &str) -> Vec<TraceRow> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 9 || fields[0] == "subsystem" {
            continue;
        }
        let (Ok(seq), Ok(at_us), Ok(value)) = (
            fields[1].parse::<u64>(),
            fields[2].parse::<u64>(),
            fields[8].parse::<u64>(),
        ) else {
            continue;
        };
        let Some(kind) = TraceKind::from_token(fields[4]) else {
            continue;
        };
        let window_us = match fields[5] {
            "-" => NO_WINDOW,
            w => match w.parse() {
                Ok(v) => v,
                Err(_) => continue,
            },
        };
        let source = match fields[7] {
            "-" => NO_SOURCE,
            s => match s.parse() {
                Ok(v) => v,
                Err(_) => continue,
            },
        };
        rows.push(TraceRow {
            subsystem: fields[0].to_string(),
            seq,
            at_us,
            stage: fields[3].to_string(),
            kind,
            window_us,
            dataset: if fields[6] == "-" {
                String::new()
            } else {
                fields[6].to_string()
            },
            source,
            value,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_n_with_global_seq() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.record(TraceEvent::new(i, "s", TraceKind::Mark).value(i));
        }
        assert_eq!(ring.recorded(), 5);
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(
            events.iter().map(|(_, e)| e.value).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let ring = TraceRing::disabled();
        ring.record(TraceEvent::new(0, "s", TraceKind::Mark));
        assert_eq!(ring.recorded(), 0);
        assert!(ring.events().is_empty());
    }

    #[test]
    fn ring_never_allocates_once_full() {
        let ring = TraceRing::new(8);
        for i in 0..8u64 {
            ring.record(TraceEvent::new(i, "s", TraceKind::Mark));
        }
        let cap_before = ring.inner.lock().unwrap().events.capacity();
        for i in 8..1000u64 {
            ring.record(TraceEvent::new(i, "s", TraceKind::Mark));
        }
        assert_eq!(ring.inner.lock().unwrap().events.capacity(), cap_before);
    }

    #[test]
    fn dump_is_deterministic_and_parses_back() {
        let fr = FlightRecorder::with_capacity(16);
        fr.ring("b-sub").record(
            TraceEvent::new(10, "shard", TraceKind::Close)
                .window(1_000_000)
                .source(2)
                .value(7),
        );
        fr.ring("a-sub").record(
            TraceEvent::new(5, "sequencer", TraceKind::Open)
                .window(1_000_000)
                .dataset("qname"),
        );
        let dump = fr.dump();
        assert_eq!(dump, fr.dump(), "dump must be deterministic");
        let rows = parse_dump(&dump);
        assert_eq!(rows.len(), 2);
        // Subsystems come out in name order.
        assert_eq!(rows[0].subsystem, "a-sub");
        assert_eq!(rows[0].kind, TraceKind::Open);
        assert_eq!(rows[0].dataset, "qname");
        assert_eq!(rows[0].source, NO_SOURCE);
        assert_eq!(rows[1].subsystem, "b-sub");
        assert_eq!(rows[1].window_us, 1_000_000);
        assert_eq!(rows[1].source, 2);
        assert_eq!(rows[1].value, 7);
    }

    #[test]
    fn parse_skips_garbage_and_header() {
        let rows = parse_dump("subsystem\tseq\tat_us\tstage\tkind\twindow_us\tdataset\tsource\tvalue\nnot a row\nx\t1\t2\ts\tnot-a-kind\t-\t-\t-\t0\n");
        assert!(rows.is_empty());
    }

    #[test]
    fn recorder_ring_is_get_or_create() {
        let fr = FlightRecorder::with_capacity(4);
        let a = fr.ring("agg");
        let b = fr.ring("agg");
        a.record(TraceEvent::new(0, "s", TraceKind::Mark));
        assert_eq!(b.recorded(), 1);
    }

    #[test]
    fn terminal_kinds_are_exactly_seal_drop_conflict() {
        for kind in [
            TraceKind::Open,
            TraceKind::Ingest,
            TraceKind::Close,
            TraceKind::Mark,
        ] {
            assert!(!kind.is_terminal());
        }
        for kind in [TraceKind::Seal, TraceKind::Drop, TraceKind::Conflict] {
            assert!(kind.is_terminal());
        }
    }
}
