//! Property tests for the metric primitives: bucket boundary laws,
//! sharded-counter conservation under concurrency, and the snapshot
//! delta merge law.

use proptest::prelude::*;
use sketches::LogBuckets;
use telemetry::{Histogram, Registry};

proptest! {
    /// Every in-range value lands in a bucket whose bounds contain it,
    /// and bucket edges tile the range without gaps.
    #[test]
    fn bucket_bounds_contain_their_values(
        value in 1e-6f64..100.0,
        buckets_per_decade in 1usize..20,
    ) {
        let layout = LogBuckets::new(1e-6, 100.0, buckets_per_decade);
        let i = layout.index_of(value);
        prop_assert!(i < layout.len());
        // Containment, with a one-bucket tolerance at the exact edge
        // where floating-point log can round either way.
        let lo = layout.lower_bound(i);
        let hi = layout.upper_bound(i);
        prop_assert!(
            value >= lo * (1.0 - 1e-12) && value <= hi * (1.0 + 1e-12),
            "value {} escaped bucket {} [{}, {})", value, i, lo, hi
        );
    }

    /// Bucket index is monotone in the value.
    #[test]
    fn bucket_index_is_monotone(
        a in 1e-9f64..1e3,
        b in 1e-9f64..1e3,
    ) {
        let layout = LogBuckets::new(1e-6, 100.0, 10);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(layout.index_of(lo) <= layout.index_of(hi));
    }

    /// Out-of-range values clamp to the edge buckets.
    #[test]
    fn bucket_index_clamps(value in 1e-12f64..1e12) {
        let layout = LogBuckets::new(1e-3, 10.0, 5);
        let i = layout.index_of(value);
        prop_assert!(i < layout.len());
        if value < 1e-3 {
            prop_assert_eq!(i, 0);
        }
        if value >= 10.0 {
            prop_assert_eq!(i, layout.len() - 1);
        }
    }

    /// delta(a,c) == delta(a,b) + delta(b,c) for counters, gauges, and
    /// histograms, exactly — the increments are integers, so even the
    /// f64 histogram sums are exact.
    #[test]
    fn snapshot_delta_merge_law(
        inc1 in prop::collection::vec(0u64..1000, 3),
        inc2 in prop::collection::vec(0u64..1000, 3),
        gauge1 in -1e6f64..1e6,
        gauge2 in -1e6f64..1e6,
        hist1 in prop::collection::vec(1u32..100_000, 0..20),
        hist2 in prop::collection::vec(1u32..100_000, 0..20),
    ) {
        let registry = Registry::new();
        let counters: Vec<_> = (0..3)
            .map(|i| registry.counter(&format!("c{i}_total")))
            .collect();
        let gauge = registry.gauge("level");
        let hist = registry.histogram("h_seconds", Histogram::seconds_layout());

        let a = registry.snapshot(1);
        for (c, n) in counters.iter().zip(&inc1) {
            c.inc(*n);
        }
        gauge.set(gauge1);
        for v in &hist1 {
            hist.record(f64::from(*v)); // integer-valued: f64 sums stay exact
        }
        let b = registry.snapshot(2);
        for (c, n) in counters.iter().zip(&inc2) {
            c.inc(*n);
        }
        gauge.set(gauge2);
        for v in &hist2 {
            hist.record(f64::from(*v));
        }
        let c_snap = registry.snapshot(3);

        let direct = a.delta(&c_snap);
        let stitched = a.delta(&b).plus(&b.delta(&c_snap));
        prop_assert_eq!(&stitched, &direct);

        // And the delta actually reflects the increments.
        for (i, (n1, n2)) in inc1.iter().zip(&inc2).enumerate() {
            prop_assert_eq!(direct.counter(&format!("c{i}_total")), n1 + n2);
        }
        let h = direct.histogram("h_seconds").unwrap();
        prop_assert_eq!(h.count, (hist1.len() + hist2.len()) as u64);
        let expected_sum: f64 = hist1.iter().chain(&hist2).map(|v| f64::from(*v)).sum();
        prop_assert_eq!(h.sum, expected_sum);
    }
}

proptest! {
    /// Render → parse round-trips every counter sample regardless of how
    /// hostile the label values are (backslashes, quotes, newlines,
    /// braces, spaces): the sample count and every value survive.
    #[test]
    fn prometheus_round_trip_with_arbitrary_label_values(
        values in prop::collection::vec(("[ -~\\n\"\\\\]{0,12}", 0u64..1000), 1..6),
    ) {
        let registry = Registry::new();
        let mut expect = std::collections::BTreeMap::new();
        for (i, (label, count)) in values.iter().enumerate() {
            let name = format!("p{i}_total");
            registry.counter_with(&name, &[("k", label)]).inc(*count);
            expect.insert(
                telemetry::encode_labels(&name, &[("k", label)]),
                *count as f64,
            );
        }
        let text = telemetry::prometheus::render(&registry.snapshot(0));
        // Escaping must keep every sample on one line: lines are either
        // comments or parseable samples.
        let samples = telemetry::prometheus::parse(&text);
        prop_assert_eq!(samples.len(), expect.len(), "render:\n{}", text);
        for (name, want) in &expect {
            prop_assert_eq!(samples.get(name), Some(want), "render:\n{}", text);
        }
    }

    /// Labeled histograms render valid exposition: `le` folds into the
    /// label set and `_sum`/`_count` never dangle after a brace.
    #[test]
    fn labeled_histogram_exposition_is_well_formed(
        label in "[a-z}{\" ]{0,10}",
        samples in prop::collection::vec(1u32..10_000, 1..10),
    ) {
        let registry = Registry::new();
        let h = registry.histogram_with(
            "stage_seconds",
            &[("stage", &label)],
            Histogram::seconds_layout(),
        );
        for v in &samples {
            h.record(f64::from(*v));
        }
        let text = telemetry::prometheus::render(&registry.snapshot(0));
        prop_assert!(!text.contains("}_"), "dangling suffix:\n{}", text);
        let parsed = telemetry::prometheus::parse(&text);
        let count_name =
            telemetry::encode_labels("stage_seconds_count", &[("stage", &label)]);
        prop_assert_eq!(
            parsed.get(&count_name).copied(),
            Some(samples.len() as f64),
            "render:\n{}",
            text
        );
    }
}

/// Not a proptest (threads), but the core conservation law: N writers ×
/// M increments over shared handles lose nothing.
#[test]
fn sharded_counter_sum_under_concurrent_writers() {
    let registry = Registry::new();
    let counter = registry.counter("spray_total");
    let threads = 8u64;
    let per = 25_000u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let counter = counter.clone();
            scope.spawn(move || {
                for _ in 0..per {
                    counter.inc(1);
                }
            });
        }
    });
    assert_eq!(registry.snapshot(0).counter("spray_total"), threads * per);
}

/// Prometheus render/parse round-trips every counter and gauge sample.
#[test]
fn prometheus_round_trip() {
    let registry = Registry::new();
    registry
        .counter_with("kept_total", &[("dataset", "qname"), ("shard", "2")])
        .inc(123);
    registry.gauge("watermark_lag_seconds").set(0.75);
    registry
        .histogram("batch_seconds", Histogram::seconds_layout())
        .record(0.01);
    let text = telemetry::prometheus::render(&registry.snapshot(0));
    let samples = telemetry::prometheus::parse(&text);
    assert_eq!(samples["kept_total{dataset=\"qname\",shard=\"2\"}"], 123.0);
    assert_eq!(samples["watermark_lag_seconds"], 0.75);
    assert_eq!(samples["batch_seconds_count"], 1.0);
    assert_eq!(samples["batch_seconds_bucket{le=\"+Inf\"}"], 1.0);
}
