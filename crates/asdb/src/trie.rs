//! A unibit trie with longest-prefix matching.
//!
//! One trie per address family; nodes live in a slab (`Vec`) and refer to
//! children by index, avoiding both `Box` chasing and unsafe code. Lookup
//! walks at most 32/128 nodes.

use crate::prefix::{addr_bits, Prefix};
use std::net::IpAddr;

type Idx = u32;

const NIL: Idx = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    children: [Idx; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            children: [NIL, NIL],
            value: None,
        }
    }
}

#[derive(Debug, Clone)]
struct FamilyTrie<T> {
    nodes: Vec<Node<T>>,
    bits: u8,
    len: usize,
}

impl<T> FamilyTrie<T> {
    fn new(bits: u8) -> Self {
        FamilyTrie {
            nodes: vec![Node::new()],
            bits,
            len: 0,
        }
    }

    /// Bit `i` (0 = most significant of the prefix) of `key`.
    #[inline]
    fn bit(&self, key: u128, i: u8) -> usize {
        ((key >> (self.bits - 1 - i)) & 1) as usize
    }

    fn insert(&mut self, key: u128, plen: u8, value: T) -> Option<T> {
        let mut node = 0usize;
        for i in 0..plen {
            let b = self.bit(key, i);
            let next = self.nodes[node].children[b];
            let next = if next == NIL {
                self.nodes.push(Node::new());
                let idx = (self.nodes.len() - 1) as Idx;
                self.nodes[node].children[b] = idx;
                idx
            } else {
                next
            };
            node = next as usize;
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn lookup(&self, key: u128) -> Option<&T> {
        let mut node = 0usize;
        let mut best = self.nodes[0].value.as_ref();
        for i in 0..self.bits {
            let b = self.bit(key, i);
            let next = self.nodes[node].children[b];
            if next == NIL {
                break;
            }
            node = next as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                best = Some(v);
            }
        }
        best
    }

    fn get_exact(&self, key: u128, plen: u8) -> Option<&T> {
        let mut node = 0usize;
        for i in 0..plen {
            let b = self.bit(key, i);
            let next = self.nodes[node].children[b];
            if next == NIL {
                return None;
            }
            node = next as usize;
        }
        self.nodes[node].value.as_ref()
    }
}

/// Longest-prefix-match table over both IPv4 and IPv6 prefixes.
#[derive(Debug, Clone)]
pub struct PrefixTable<T> {
    v4: FamilyTrie<T>,
    v6: FamilyTrie<T>,
}

impl<T> Default for PrefixTable<T> {
    fn default() -> Self {
        PrefixTable::new()
    }
}

impl<T> PrefixTable<T> {
    /// Empty table.
    pub fn new() -> Self {
        PrefixTable {
            v4: FamilyTrie::new(32),
            v6: FamilyTrie::new(128),
        }
    }

    /// Insert `prefix → value`; returns the previous value for an exact
    /// duplicate prefix.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let key = prefix.bits();
        if prefix.is_ipv4() {
            self.v4.insert(key, prefix.len(), value)
        } else {
            self.v6.insert(key, prefix.len(), value)
        }
    }

    /// Longest-prefix match for `addr`.
    pub fn lookup(&self, addr: IpAddr) -> Option<&T> {
        let key = addr_bits(addr);
        match addr {
            IpAddr::V4(_) => self.v4.lookup(key),
            IpAddr::V6(_) => self.v6.lookup(key),
        }
    }

    /// Exact-prefix fetch (no LPM).
    pub fn get(&self, prefix: &Prefix) -> Option<&T> {
        let key = prefix.bits();
        if prefix.is_ipv4() {
            self.v4.get_exact(key, prefix.len())
        } else {
            self.v6.get_exact(key, prefix.len())
        }
    }

    /// Number of stored prefixes (both families).
    pub fn len(&self) -> usize {
        self.v4.len + self.v6.len
    }

    /// True when no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");
        assert_eq!(t.lookup("10.1.2.3".parse().unwrap()), Some(&"twentyfour"));
        assert_eq!(t.lookup("10.1.9.9".parse().unwrap()), Some(&"sixteen"));
        assert_eq!(t.lookup("10.9.9.9".parse().unwrap()), Some(&"eight"));
        assert_eq!(t.lookup("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTable::new();
        t.insert(p("0.0.0.0/0"), 1);
        t.insert(p("192.0.2.0/24"), 2);
        assert_eq!(t.lookup("8.8.8.8".parse().unwrap()), Some(&1));
        assert_eq!(t.lookup("192.0.2.9".parse().unwrap()), Some(&2));
        // v6 default is separate.
        assert_eq!(t.lookup("::1".parse().unwrap()), None);
    }

    #[test]
    fn duplicate_insert_replaces() {
        let mut t = PrefixTable::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("10.0.0.1".parse().unwrap()), Some(&2));
    }

    #[test]
    fn exact_get() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&1));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.get(&p("10.0.0.0/7")), None);
    }

    #[test]
    fn v6_lpm() {
        let mut t = PrefixTable::new();
        t.insert(p("2001:db8::/32"), "doc");
        t.insert(p("2001:db8:1::/48"), "sub");
        assert_eq!(t.lookup("2001:db8:1::5".parse().unwrap()), Some(&"sub"));
        assert_eq!(t.lookup("2001:db8:2::5".parse().unwrap()), Some(&"doc"));
        assert_eq!(t.lookup("2001:db9::1".parse().unwrap()), None);
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTable::new();
        t.insert(p("192.0.2.53/32"), "host");
        t.insert(p("192.0.2.0/24"), "net");
        assert_eq!(t.lookup("192.0.2.53".parse().unwrap()), Some(&"host"));
        assert_eq!(t.lookup("192.0.2.54".parse().unwrap()), Some(&"net"));
    }

    #[test]
    fn matches_naive_scan() {
        // Cross-check LPM against a brute-force scan over random data.
        use std::net::Ipv4Addr;
        let mut t = PrefixTable::new();
        let mut list: Vec<(Prefix, u32)> = Vec::new();
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for i in 0..500u32 {
            let addr = Ipv4Addr::from(next());
            let len = (next() % 25 + 8) as u8;
            let pre = Prefix::new(IpAddr::V4(addr), len);
            t.insert(pre, i);
            list.retain(|(q, _)| *q != pre);
            list.push((pre, i));
        }
        for _ in 0..2000 {
            let addr = IpAddr::V4(Ipv4Addr::from(next()));
            let expected = list
                .iter()
                .filter(|(q, _)| q.contains(addr))
                .max_by_key(|(q, _)| q.len())
                .map(|(_, v)| *v);
            assert_eq!(t.lookup(addr).copied(), expected, "addr {addr}");
        }
    }
}
