//! CIDR prefixes over IPv4 and IPv6.

use std::fmt;
use std::net::IpAddr;
use std::str::FromStr;

/// A CIDR prefix: base address + mask length.
///
/// The base address is canonicalized (host bits zeroed) at construction,
/// so `10.1.2.3/8` and `10.0.0.0/8` compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    addr: IpAddr,
    len: u8,
}

/// Error parsing a prefix from `addr/len` notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// Missing `/` separator.
    MissingSlash,
    /// The address part did not parse.
    BadAddress,
    /// The length part did not parse or exceeded the family maximum.
    BadLength,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::MissingSlash => f.write_str("missing '/' in prefix"),
            PrefixParseError::BadAddress => f.write_str("invalid address in prefix"),
            PrefixParseError::BadLength => f.write_str("invalid prefix length"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl Prefix {
    /// Build a prefix, canonicalizing the base address. Panics if `len`
    /// exceeds the address family's bit width.
    pub fn new(addr: IpAddr, len: u8) -> Prefix {
        let max = Self::family_bits(addr);
        assert!(len <= max, "prefix length {len} > {max}");
        Prefix {
            addr: mask_addr(addr, len),
            len,
        }
    }

    /// The canonical base address.
    pub fn addr(&self) -> IpAddr {
        self.addr
    }

    /// The mask length.
    #[allow(clippy::len_without_is_empty)] // mask length, not a container
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Bit width of the prefix's address family (32 or 128).
    pub fn family_bits(addr: IpAddr) -> u8 {
        match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        }
    }

    /// True if `addr` (same family) falls inside this prefix.
    pub fn contains(&self, addr: IpAddr) -> bool {
        match (self.addr, addr) {
            (IpAddr::V4(_), IpAddr::V4(_)) | (IpAddr::V6(_), IpAddr::V6(_)) => {
                mask_addr(addr, self.len) == self.addr
            }
            _ => false,
        }
    }

    /// The address as a big-endian u128 (IPv4 in the low 32 bits).
    pub(crate) fn bits(&self) -> u128 {
        addr_bits(self.addr)
    }

    /// True for IPv4 prefixes.
    pub fn is_ipv4(&self) -> bool {
        self.addr.is_ipv4()
    }
}

/// Address as a big-endian u128 (IPv4 occupies the low 32 bits).
pub(crate) fn addr_bits(addr: IpAddr) -> u128 {
    match addr {
        IpAddr::V4(v4) => u32::from(v4) as u128,
        IpAddr::V6(v6) => u128::from(v6),
    }
}

/// Zero the host bits of `addr` beyond `len`.
fn mask_addr(addr: IpAddr, len: u8) -> IpAddr {
    match addr {
        IpAddr::V4(v4) => {
            let bits = u32::from(v4);
            let masked = if len == 0 {
                0
            } else {
                bits & (u32::MAX << (32 - len as u32))
            };
            IpAddr::V4(masked.into())
        }
        IpAddr::V6(v6) => {
            let bits = u128::from(v6);
            let masked = if len == 0 {
                0
            } else {
                bits & (u128::MAX << (128 - len as u32))
            };
            IpAddr::V6(masked.into())
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Prefix, PrefixParseError> {
        let (addr, len) = s.split_once('/').ok_or(PrefixParseError::MissingSlash)?;
        let addr: IpAddr = addr.parse().map_err(|_| PrefixParseError::BadAddress)?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError::BadLength)?;
        if len > Prefix::family_bits(addr) {
            return Err(PrefixParseError::BadLength);
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn parse_and_display() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
        let p6: Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(p6.to_string(), "2001:db8::/32");
    }

    #[test]
    fn canonicalization() {
        let a: Prefix = "10.1.2.3/8".parse().unwrap();
        let b: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn containment() {
        let p: Prefix = "192.168.0.0/16".parse().unwrap();
        assert!(p.contains("192.168.5.5".parse().unwrap()));
        assert!(!p.contains("192.169.0.1".parse().unwrap()));
        assert!(!p.contains("2001:db8::1".parse().unwrap()));
        let all: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains(IpAddr::V4(Ipv4Addr::new(255, 255, 255, 255))));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "10.0.0.0".parse::<Prefix>(),
            Err(PrefixParseError::MissingSlash)
        );
        assert_eq!(
            "bogus/8".parse::<Prefix>(),
            Err(PrefixParseError::BadAddress)
        );
        assert_eq!(
            "10.0.0.0/33".parse::<Prefix>(),
            Err(PrefixParseError::BadLength)
        );
        assert_eq!("::/129".parse::<Prefix>(), Err(PrefixParseError::BadLength));
        assert_eq!(
            "10.0.0.0/x".parse::<Prefix>(),
            Err(PrefixParseError::BadLength)
        );
    }

    #[test]
    fn zero_length_prefix() {
        let p: Prefix = "0.0.0.0/0".parse().unwrap();
        assert_eq!(p.len(), 0);
        assert!(p.contains("1.2.3.4".parse().unwrap()));
    }
}
