//! `asdb` — IP-to-AS mapping and AS-name handling.
//!
//! The paper's Table 1 (§3.3) associates each nameserver IP with its
//! origin AS using Route Views BGP data, looks up the AS name, extracts
//! the organization from the name string, and aggregates per organization.
//! This crate provides those three building blocks:
//!
//! * [`Prefix`] / [`PrefixTable`] — a binary (unibit) trie with
//!   longest-prefix matching over IPv4 and IPv6;
//! * [`AsDb`] — routes + AS registry with [`AsDb::lookup`];
//! * [`extract_org`] — organization extraction from AS-name strings such
//!   as `"AMAZON-02 - Amazon.com, Inc., US"` → `"AMAZON"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod prefix;
mod trie;

pub use prefix::{Prefix, PrefixParseError};
pub use trie::PrefixTable;

use std::collections::HashMap;
use std::net::IpAddr;

/// An Autonomous System number.
pub type Asn = u32;

/// Registry information about one AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsInfo {
    /// AS number.
    pub asn: Asn,
    /// The registered AS name string, e.g. `"AMAZON-02 - Amazon.com, Inc., US"`.
    pub name: String,
    /// Organization extracted from the name, e.g. `"AMAZON"`.
    pub org: String,
}

/// Routes plus AS registry: the data needed to go from an IP address to an
/// organization name.
#[derive(Debug, Default)]
pub struct AsDb {
    routes: PrefixTable<Asn>,
    registry: HashMap<Asn, AsInfo>,
}

impl AsDb {
    /// Empty database.
    pub fn new() -> Self {
        AsDb::default()
    }

    /// Announce `prefix` as originated by `asn`. More-specific prefixes
    /// win on lookup, mirroring BGP best-path semantics.
    pub fn announce(&mut self, prefix: Prefix, asn: Asn) {
        self.routes.insert(prefix, asn);
    }

    /// Register an AS with its name; the organization is derived with
    /// [`extract_org`].
    pub fn register_as(&mut self, asn: Asn, name: &str) {
        let org = extract_org(name);
        self.registry.insert(
            asn,
            AsInfo {
                asn,
                name: name.to_string(),
                org,
            },
        );
    }

    /// Longest-prefix match: the originating AS for `addr`, if covered.
    pub fn lookup_asn(&self, addr: IpAddr) -> Option<Asn> {
        self.routes.lookup(addr).copied()
    }

    /// Full lookup: origin AS and its registry info.
    ///
    /// An announced-but-unregistered AS yields a synthesized
    /// `AS<number>` record rather than `None`, matching how analysis
    /// pipelines handle gaps in the AS-names dataset.
    pub fn lookup(&self, addr: IpAddr) -> Option<AsInfo> {
        let asn = self.lookup_asn(addr)?;
        Some(self.registry.get(&asn).cloned().unwrap_or_else(|| AsInfo {
            asn,
            name: format!("AS{asn}"),
            org: format!("AS{asn}"),
        }))
    }

    /// Number of announced prefixes.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// Number of registered ASes.
    pub fn as_count(&self) -> usize {
        self.registry.len()
    }

    /// Iterate over the registered ASes.
    pub fn ases(&self) -> impl Iterator<Item = &AsInfo> {
        self.registry.values()
    }
}

/// Extract an organization name from an AS-name string.
///
/// Heuristics modeled on how Table 1 groups ASes:
/// * take the part before the first `" - "` separator (or the whole
///   string);
/// * take the first comma-free token;
/// * strip a trailing `-<digits>` ordinal (`AMAZON-02` → `AMAZON`);
/// * uppercase the result.
///
/// Examples: `"AMAZON-02 - Amazon.com, Inc., US"` → `"AMAZON"`,
/// `"CLOUDFLARENET - Cloudflare, Inc., US"` → `"CLOUDFLARENET"`,
/// `"GOOGLE"` → `"GOOGLE"`.
pub fn extract_org(as_name: &str) -> String {
    let head = as_name.split(" - ").next().unwrap_or(as_name).trim();
    let token = head
        .split([',', ' '])
        .find(|t| !t.is_empty())
        .unwrap_or(head);
    // Strip one trailing -NN ordinal.
    let stripped = match token.rsplit_once('-') {
        Some((left, right))
            if !left.is_empty()
                && !right.is_empty()
                && right.chars().all(|c| c.is_ascii_digit()) =>
        {
            left
        }
        _ => token,
    };
    stripped.to_ascii_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn org_extraction() {
        assert_eq!(extract_org("AMAZON-02 - Amazon.com, Inc., US"), "AMAZON");
        assert_eq!(
            extract_org("AMAZON-AES - Amazon.com, Inc., US"),
            "AMAZON-AES"
        );
        assert_eq!(
            extract_org("CLOUDFLARENET - Cloudflare, Inc., US"),
            "CLOUDFLARENET"
        );
        assert_eq!(extract_org("GOOGLE"), "GOOGLE");
        assert_eq!(
            extract_org("MICROSOFT-CORP-MSN-AS-BLOCK"),
            "MICROSOFT-CORP-MSN-AS-BLOCK"
        );
        assert_eq!(
            extract_org("VGRS-AC19 - VeriSign Global Registry"),
            "VGRS-AC19"
        );
        assert_eq!(extract_org("akamai-asn1"), "AKAMAI-ASN1");
        assert_eq!(extract_org(""), "");
        assert_eq!(extract_org("ULTRADNS-4"), "ULTRADNS");
    }

    #[test]
    fn lookup_longest_prefix_wins() {
        let mut db = AsDb::new();
        db.announce("10.0.0.0/8".parse().unwrap(), 100);
        db.announce("10.1.0.0/16".parse().unwrap(), 200);
        db.register_as(100, "BIG-NET");
        db.register_as(200, "SMALL-NET");
        let a = db.lookup(IpAddr::V4(Ipv4Addr::new(10, 1, 2, 3))).unwrap();
        assert_eq!(a.asn, 200);
        assert_eq!(a.org, "SMALL-NET");
        let b = db.lookup(IpAddr::V4(Ipv4Addr::new(10, 200, 0, 1))).unwrap();
        assert_eq!(b.asn, 100);
        assert!(db.lookup(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1))).is_none());
    }

    #[test]
    fn unregistered_as_is_synthesized() {
        let mut db = AsDb::new();
        db.announce("203.0.113.0/24".parse().unwrap(), 64500);
        let info = db
            .lookup(IpAddr::V4(Ipv4Addr::new(203, 0, 113, 7)))
            .unwrap();
        assert_eq!(info.org, "AS64500");
    }

    #[test]
    fn v6_lookup() {
        let mut db = AsDb::new();
        db.announce("2001:db8::/32".parse().unwrap(), 64501);
        db.register_as(64501, "SIXNET - v6 networks");
        let info = db.lookup("2001:db8::1".parse().unwrap()).unwrap();
        assert_eq!(info.org, "SIXNET");
        assert!(db.lookup("2600::1".parse().unwrap()).is_none());
    }

    #[test]
    fn counts() {
        let mut db = AsDb::new();
        assert_eq!(db.route_count(), 0);
        db.announce("192.0.2.0/24".parse().unwrap(), 1);
        db.announce("198.51.100.0/24".parse().unwrap(), 2);
        db.register_as(1, "ONE");
        assert_eq!(db.route_count(), 2);
        assert_eq!(db.as_count(), 1);
        assert_eq!(db.ases().count(), 1);
    }
}
