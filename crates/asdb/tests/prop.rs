//! Property-based tests: the LPM trie must agree with a naive
//! longest-prefix scan on arbitrary route tables, for both families.

use asdb::{AsDb, Prefix, PrefixTable};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(addr, len)| Prefix::new(IpAddr::V4(Ipv4Addr::from(addr)), len))
}

fn arb_v6_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=64)
        .prop_map(|(addr, len)| Prefix::new(IpAddr::V6(Ipv6Addr::from(addr)), len))
}

fn naive_lookup(routes: &[(Prefix, u32)], addr: IpAddr) -> Option<u32> {
    routes
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|&(_, v)| v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn trie_matches_naive_scan_v4(
        prefixes in prop::collection::vec(arb_v4_prefix(), 1..60),
        probes in prop::collection::vec(any::<u32>(), 1..100),
    ) {
        let mut table = PrefixTable::new();
        let mut routes: Vec<(Prefix, u32)> = Vec::new();
        for (i, p) in prefixes.into_iter().enumerate() {
            table.insert(p, i as u32);
            routes.retain(|(q, _)| *q != p); // duplicates replace
            routes.push((p, i as u32));
        }
        for probe in probes {
            let addr = IpAddr::V4(Ipv4Addr::from(probe));
            prop_assert_eq!(table.lookup(addr).copied(), naive_lookup(&routes, addr));
        }
    }

    #[test]
    fn trie_matches_naive_scan_v6(
        prefixes in prop::collection::vec(arb_v6_prefix(), 1..40),
        probes in prop::collection::vec(any::<u128>(), 1..60),
    ) {
        let mut table = PrefixTable::new();
        let mut routes: Vec<(Prefix, u32)> = Vec::new();
        for (i, p) in prefixes.into_iter().enumerate() {
            table.insert(p, i as u32);
            routes.retain(|(q, _)| *q != p);
            routes.push((p, i as u32));
        }
        for probe in probes {
            let addr = IpAddr::V6(Ipv6Addr::from(probe));
            prop_assert_eq!(table.lookup(addr).copied(), naive_lookup(&routes, addr));
        }
    }

    /// A covered address always resolves to an announced AS, and every
    /// /32 host route wins over any broader covering prefix.
    #[test]
    fn host_routes_always_win(base in any::<u32>(), wide_len in 8u8..=24) {
        let host = Ipv4Addr::from(base);
        let mut db = AsDb::new();
        db.announce(Prefix::new(IpAddr::V4(host), wide_len), 100);
        db.announce(Prefix::new(IpAddr::V4(host), 32), 200);
        db.register_as(100, "WIDE");
        db.register_as(200, "HOST");
        let hit = db.lookup(IpAddr::V4(host)).unwrap();
        prop_assert_eq!(hit.asn, 200);
    }

    /// Prefix parse/display round-trips.
    #[test]
    fn prefix_roundtrip(p in arb_v4_prefix()) {
        let text = p.to_string();
        let back: Prefix = text.parse().unwrap();
        prop_assert_eq!(back, p);
    }

    /// Organization extraction never panics and produces uppercase ASCII.
    #[test]
    fn extract_org_total(s in "\\PC{0,40}") {
        let org = asdb::extract_org(&s);
        prop_assert!(org.chars().all(|c| !c.is_ascii_lowercase()));
    }
}
