//! The differential accounting oracle: every pushed item must be
//! delivered or *explicitly accounted for* — silence is a bug.
//!
//! A chaos run ends with two independent stories: the sensors' ground
//! truth (what was pushed, sealed, dropped at the buffer, written) and
//! the collector's final [`CollectorReport`] (what was accepted, merged,
//! late-dropped, gapped, deduplicated). The oracle cross-examines them:
//!
//! 1. **Frame classification** — every sealed frame that was never
//!    accepted must fall in a collector-visible loss category: inside a
//!    recorded sequence gap, beyond the final expected sequence of a
//!    stream whose BYE never arrived (tail loss), or before the first
//!    baseline of a stream with hard evidence of a poisoned connection
//!    (head loss). Anything else is a **silent divergence**.
//! 2. **Item conservation** — per sensor,
//!    `delivered + late = accepted items`, and the sealed frames
//!    partition the pushed stream exactly.
//! 3. **Value replay** — from the ground truth alone the oracle predicts
//!    the exact merged output (survivor items of accepted frames, merged
//!    by `(time, sensor)`), and requires the collector's delivered stream
//!    to match it element for element.
//! 4. **Ledger self-consistency** — gaps are sorted, disjoint, and sum
//!    to `gap_frames`; duplicate/hello/bye counters match the observed
//!    frame outcomes; the merged total matches `items_merged`.
//!
//! [`check`] returns a [`Divergence`] naming the first violated clause —
//! with the sensor, the sequence number, and both sides' numbers — so a
//! failing seed is debuggable before it is even minimized.

use std::collections::BTreeMap;
use std::fmt;

use feed::{FeedItem, SensorStats};

use crate::harness::{ChaosOutcome, SensorRun};

/// Aggregate numbers for a passing run (smoke-runner display).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleSummary {
    /// Items pushed across all sensors.
    pub pushed: u64,
    /// Items delivered by the merge.
    pub delivered: u64,
    /// Items dropped at sensor send buffers.
    pub sensor_dropped: u64,
    /// Items lost on the wire but visible as ledger gaps / tail / head.
    pub wire_lost: u64,
    /// Items discarded behind the merge watermark.
    pub late: u64,
    /// Duplicate frames discarded.
    pub duplicate_frames: u64,
    /// CRC failures observed.
    pub crc_errors: u64,
    /// Reconnections across all sensors.
    pub connects: u64,
}

/// A violated accounting clause — the oracle's counterexample.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// A sealed, never-accepted frame is in no loss category the
    /// collector can see: the items vanished silently.
    SilentLoss {
        /// Offending sensor.
        sensor: u64,
        /// Frame sequence number.
        seq: u64,
        /// Items the frame carried.
        items: u64,
        /// Why the frame was invisible.
        detail: String,
    },
    /// The collector accepted a frame the sensor never sealed (or with a
    /// different item count) — corruption slipped past the CRC.
    PhantomFrame {
        /// Claimed sensor.
        sensor: u64,
        /// Claimed sequence.
        seq: u64,
        /// What the two sides recorded.
        detail: String,
    },
    /// An accepted frame also appears inside a recorded gap, or before
    /// the ledger baseline — the ledger contradicts itself.
    LedgerInconsistent {
        /// Offending sensor (`u64::MAX` for collector-global clauses).
        sensor: u64,
        /// Violated clause.
        detail: String,
    },
    /// Per-sensor or global item counts do not add up.
    CountMismatch {
        /// Offending sensor (`u64::MAX` for global counts).
        sensor: u64,
        /// The two sides of the failed equation.
        detail: String,
    },
    /// The delivered stream differs from the predicted merge (wrong
    /// item, wrong order, or wrong length).
    ValueMismatch {
        /// First differing position in the merged stream.
        position: usize,
        /// Expected vs actual.
        detail: String,
    },
    /// The run itself wedged (virtual-time backstop fired).
    Truncated,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::SilentLoss {
                sensor,
                seq,
                items,
                detail,
            } => write!(
                f,
                "silent loss: sensor {sensor} frame seq={seq} ({items} items) \
                 was never accepted and is in no visible loss category ({detail})"
            ),
            Divergence::PhantomFrame {
                sensor,
                seq,
                detail,
            } => write!(
                f,
                "phantom frame: collector accepted sensor {sensor} seq={seq} \
                 which the sensor never sealed ({detail})"
            ),
            Divergence::LedgerInconsistent { sensor, detail } => {
                write!(f, "ledger inconsistent (sensor {sensor}): {detail}")
            }
            Divergence::CountMismatch { sensor, detail } => {
                write!(f, "count mismatch (sensor {sensor}): {detail}")
            }
            Divergence::ValueMismatch { position, detail } => {
                write!(f, "value mismatch at merged position {position}: {detail}")
            }
            Divergence::Truncated => write!(f, "run truncated by the virtual-time backstop"),
        }
    }
}

fn stats_for(outcome: &ChaosOutcome<impl FeedItem + Clone>, sensor: u64) -> Option<&SensorStats> {
    outcome.report.sensors.get(&sensor)
}

/// Evidence that a sensor's early frames could have been eaten by a
/// poisoned (never-heralded or corrupted) connection. An *anonymous
/// disconnect* — a connection that died before completing a HELLO —
/// counts too: the sensor may have written frames into it that never
/// surfaced, and after it reconnects with an advanced `next_seq` the
/// collector's only record of that possibility is the disconnect itself.
fn poisoning_evidence(outcome: &ChaosOutcome<impl FeedItem + Clone>, stats: &SensorStats) -> bool {
    outcome.report.unheralded_frames > 0
        || outcome.report.unattributed_errors > 0
        || outcome.report.anonymous_disconnects > 0
        || stats.crc_errors > 0
        || stats.decode_errors > 0
}

fn in_gaps(gaps: &[(u64, u64)], seq: u64) -> bool {
    gaps.iter().any(|&(a, b)| a <= seq && seq <= b)
}

/// Audit one sensor's frame story against the collector's ledger.
fn check_sensor<T: FeedItem + Clone>(
    outcome: &ChaosOutcome<T>,
    run: &SensorRun<T>,
) -> Result<(), Divergence> {
    let sensor = run.sensor_id;
    let empty = SensorStats::default();
    let stats = stats_for(outcome, sensor).unwrap_or(&empty);

    // Ledger self-consistency: gaps sorted, disjoint, summing to
    // gap_frames.
    let mut prev_end: Option<u64> = None;
    let mut gap_total = 0u64;
    for &(a, b) in &stats.gaps {
        if a > b || prev_end.map(|p| a <= p).unwrap_or(false) {
            return Err(Divergence::LedgerInconsistent {
                sensor,
                detail: format!("gap list not sorted/disjoint: {:?}", stats.gaps),
            });
        }
        prev_end = Some(b);
        gap_total += b - a + 1;
    }
    if gap_total != stats.gap_frames {
        return Err(Divergence::LedgerInconsistent {
            sensor,
            detail: format!(
                "gap_frames={} but gap ranges sum to {gap_total}",
                stats.gap_frames
            ),
        });
    }

    // The sealed frames must partition the pushed items exactly.
    let sealed_items: u64 = run.sealed.iter().map(|s| s.items).sum();
    if sealed_items != run.pushed.len() as u64 {
        return Err(Divergence::CountMismatch {
            sensor,
            detail: format!(
                "sealed frames hold {sealed_items} items but {} were pushed",
                run.pushed.len()
            ),
        });
    }

    let sealed_by_seq: BTreeMap<u64, &feed::SealEvent> =
        run.sealed.iter().map(|s| (s.seq, s)).collect();
    if sealed_by_seq.len() != run.sealed.len() {
        return Err(Divergence::CountMismatch {
            sensor,
            detail: "sensor sealed the same sequence twice".into(),
        });
    }

    // Every accepted frame must be one the sensor sealed (same item
    // count), must not sit inside a recorded gap, and must respect the
    // ledger baseline.
    let mut accepted_by_seq: BTreeMap<u64, &crate::harness::AcceptedFrame> = BTreeMap::new();
    for frame in &run.accepted {
        match sealed_by_seq.get(&frame.seq) {
            None => {
                return Err(Divergence::PhantomFrame {
                    sensor,
                    seq: frame.seq,
                    detail: format!("accepted {} items; no such sealed frame", frame.items),
                })
            }
            Some(seal) if seal.items != frame.items => {
                return Err(Divergence::PhantomFrame {
                    sensor,
                    seq: frame.seq,
                    detail: format!("accepted {} items, sealed {}", frame.items, seal.items),
                })
            }
            Some(seal) if seal.dropped => {
                return Err(Divergence::PhantomFrame {
                    sensor,
                    seq: frame.seq,
                    detail: "accepted a frame the sensor dropped at its buffer".into(),
                })
            }
            Some(_) => {}
        }
        if accepted_by_seq.insert(frame.seq, frame).is_some() {
            return Err(Divergence::LedgerInconsistent {
                sensor,
                detail: format!("frame seq={} accepted twice", frame.seq),
            });
        }
        if in_gaps(&stats.gaps, frame.seq) {
            return Err(Divergence::LedgerInconsistent {
                sensor,
                detail: format!(
                    "accepted frame seq={} sits inside a recorded gap",
                    frame.seq
                ),
            });
        }
    }

    // Frame classification: every sealed frame is accepted, or visibly
    // lost, or was never written at all.
    let sent_seqs: std::collections::BTreeSet<u64> =
        run.sent_batches.iter().map(|&(seq, _)| seq).collect();
    for seal in &run.sealed {
        if accepted_by_seq.contains_key(&seal.seq) {
            continue;
        }
        // Dropped at the sensor buffer: the sensor's own tally covers it,
        // and the consumed sequence number keeps it gap-visible.
        let visible = in_gaps(&stats.gaps, seal.seq)
            || match stats.final_expected_seq {
                // Tail loss is only invisible-but-accounted while no BYE
                // arrived; once a BYE lands the ledger must have advanced
                // past every lost frame.
                Some(fin) => seal.seq >= fin && stats.byes == 0,
                None => stats.byes == 0,
            }
            || match stats.first_expected_seq {
                Some(first) => seal.seq < first && poisoning_evidence(outcome, stats),
                None => poisoning_evidence(outcome, stats) || run.sent_batches.is_empty(),
            };
        if !visible {
            let detail = format!(
                "sent={} dropped_at_buffer={} gaps={:?} first_expected={:?} \
                 final_expected={:?} byes={} crc={} unheralded={} unattributed={}",
                sent_seqs.contains(&seal.seq),
                seal.dropped,
                stats.gaps,
                stats.first_expected_seq,
                stats.final_expected_seq,
                stats.byes,
                stats.crc_errors,
                outcome.report.unheralded_frames,
                outcome.report.unattributed_errors,
            );
            return Err(Divergence::SilentLoss {
                sensor,
                seq: seal.seq,
                items: seal.items,
                detail,
            });
        }
    }

    // Counter cross-checks between the observed outcomes and the ledger.
    let accepted_items: u64 = run.accepted.iter().map(|f| f.items).sum();
    let late_items: u64 = run.accepted.iter().map(|f| f.late).sum();
    let checks: [(&str, u64, u64); 6] = [
        ("accepted frames", stats.frames, run.accepted.len() as u64),
        ("accepted items", stats.items, accepted_items),
        ("late items", stats.late_items, late_items),
        ("duplicate frames", stats.duplicate_frames, run.duplicates),
        ("hellos", stats.connects, run.hellos),
        ("byes", stats.byes, run.byes),
    ];
    for (what, ledger, observed) in checks {
        if ledger != observed {
            return Err(Divergence::CountMismatch {
                sensor,
                detail: format!("{what}: ledger says {ledger}, harness observed {observed}"),
            });
        }
    }

    // The sensor's own drop tally must match its sealed-frame fates:
    // everything sealed but neither written nor still-queued was dropped
    // (at the buffer, or discarded by an abort).
    let sent_frames = run.sent_batches.len() as u64;
    let seal_dropped = run.sealed.iter().filter(|s| s.dropped).count() as u64;
    let unsent = run.sealed.len() as u64 - seal_dropped - sent_frames;
    if run.report.dropped_frames < seal_dropped || run.report.dropped_frames > seal_dropped + unsent
    {
        return Err(Divergence::CountMismatch {
            sensor,
            detail: format!(
                "sensor reports {} dropped frames; seal log implies between {seal_dropped} \
                 and {} ({} sealed, {sent_frames} written)",
                run.report.dropped_frames,
                seal_dropped + unsent,
                run.sealed.len(),
            ),
        });
    }

    Ok(())
}

/// Predict the exact merged output from ground truth: survivor items of
/// accepted frames (each frame loses its `late` leading items), merged
/// by `(time, sensor, per-sensor order)`.
///
/// Per-sensor order follows the collector's *arrival* order, not the
/// sensor's sequence order: when a gap is backfilled by retransmission,
/// the later-seq frame that jumped the gap was merged first, and items
/// sharing a timestamp (e.g. chunks of one window) keep that order.
pub fn predicted_delivery<T: FeedItem + Clone>(outcome: &ChaosOutcome<T>) -> Vec<T> {
    let mut keyed: Vec<(f64, u64, u64, T)> = Vec::new();
    for run in &outcome.sensors {
        // Walk sealed frames in sequence order to slice the pushed
        // stream, then replay the slices in arrival order.
        let mut sealed: Vec<&feed::SealEvent> = run.sealed.iter().collect();
        sealed.sort_by_key(|s| s.seq);
        let mut slices: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
        let mut cursor = 0usize;
        for seal in sealed {
            let end = cursor + seal.items as usize;
            slices.insert(seal.seq, (cursor, end));
            cursor = end;
        }
        let mut order = 0u64;
        for frame in &run.accepted {
            let (start, end) = slices[&frame.seq];
            for item in &run.pushed[start + frame.late as usize..end] {
                keyed.push((item.order_time(), run.sensor_id, order, item.clone()));
                order += 1;
            }
        }
    }
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    keyed.into_iter().map(|(_, _, _, item)| item).collect()
}

/// Full audit of a chaos run. `Ok` carries the aggregate numbers; `Err`
/// names the first violated clause.
pub fn check<T: FeedItem + Clone + PartialEq + fmt::Debug>(
    outcome: &ChaosOutcome<T>,
) -> Result<OracleSummary, Divergence> {
    if outcome.truncated {
        return Err(Divergence::Truncated);
    }

    for run in &outcome.sensors {
        check_sensor(outcome, run)?;
    }

    // Global item conservation.
    let merged: u64 = outcome
        .report
        .sensors
        .values()
        .map(|s| s.items - s.late_items)
        .sum();
    if merged != outcome.report.items_merged {
        return Err(Divergence::CountMismatch {
            sensor: u64::MAX,
            detail: format!(
                "per-sensor accepted-minus-late sums to {merged}, items_merged={}",
                outcome.report.items_merged
            ),
        });
    }
    if outcome.delivered.len() as u64 != outcome.report.items_merged {
        return Err(Divergence::CountMismatch {
            sensor: u64::MAX,
            detail: format!(
                "{} items delivered, report claims {}",
                outcome.delivered.len(),
                outcome.report.items_merged
            ),
        });
    }

    // Value replay: the delivered stream must equal the prediction.
    let predicted = predicted_delivery(outcome);
    if predicted.len() != outcome.delivered.len() {
        return Err(Divergence::ValueMismatch {
            position: predicted.len().min(outcome.delivered.len()),
            detail: format!(
                "predicted {} items, delivered {}",
                predicted.len(),
                outcome.delivered.len()
            ),
        });
    }
    for (i, (want, got)) in predicted.iter().zip(&outcome.delivered).enumerate() {
        if want != got {
            return Err(Divergence::ValueMismatch {
                position: i,
                detail: format!("expected {want:?}, delivered {got:?}"),
            });
        }
    }

    // Monotone merge order by (time, then stable within equal times).
    for (i, w) in outcome.delivered.windows(2).enumerate() {
        if w[1].order_time() < w[0].order_time() {
            return Err(Divergence::ValueMismatch {
                position: i + 1,
                detail: format!(
                    "merged stream goes back in time: {} after {}",
                    w[1].order_time(),
                    w[0].order_time()
                ),
            });
        }
    }

    Ok(OracleSummary {
        pushed: outcome.sensors.iter().map(|s| s.pushed.len() as u64).sum(),
        delivered: outcome.delivered.len() as u64,
        sensor_dropped: outcome.sensors.iter().map(|s| s.report.dropped_items).sum(),
        wire_lost: outcome
            .sensors
            .iter()
            .map(|s| {
                let accepted: std::collections::BTreeSet<u64> =
                    s.accepted.iter().map(|f| f.seq).collect();
                s.sealed
                    .iter()
                    .filter(|f| !f.dropped && !accepted.contains(&f.seq))
                    .map(|f| f.items)
                    .sum::<u64>()
            })
            .sum(),
        late: outcome.report.sensors.values().map(|s| s.late_items).sum(),
        duplicate_frames: outcome
            .report
            .sensors
            .values()
            .map(|s| s.duplicate_frames)
            .sum(),
        crc_errors: outcome.report.sensors.values().map(|s| s.crc_errors).sum(),
        connects: outcome.sensors.iter().map(|s| s.report.connects).sum(),
    })
}
