//! Fault-schedule minimization: shrink a failing seed to a
//! human-readable repro.
//!
//! The vendored `proptest` stub has no shrinking, so the kernel carries
//! its own delta-debugger over concrete [`SensorPlan`]s: first clear
//! whole chunks of injected ops (halving passes), then single ops, then
//! connect failures — keeping a change only when the run still fails.
//! The result is a locally minimal schedule plus a repro string naming
//! the seed, every surviving fault, and the divergence.

use crate::fault::{FaultOp, SensorPlan};

/// Indices of active injections, as `(sensor, kind, position)` where
/// kind 0 = write op, 1 = connect failure.
fn injection_sites(plans: &[SensorPlan]) -> Vec<(usize, u8, usize)> {
    let mut sites = Vec::new();
    for (s, plan) in plans.iter().enumerate() {
        for (i, op) in plan.write_ops.iter().enumerate() {
            if !matches!(op, FaultOp::Deliver) {
                sites.push((s, 0, i));
            }
        }
        for (i, fail) in plan.connect_fails.iter().enumerate() {
            if *fail {
                sites.push((s, 1, i));
            }
        }
    }
    sites
}

fn clear_sites(plans: &[SensorPlan], sites: &[(usize, u8, usize)]) -> Vec<SensorPlan> {
    let mut out = plans.to_vec();
    for &(s, kind, i) in sites {
        match kind {
            0 => out[s].write_ops[i] = FaultOp::Deliver,
            _ => out[s].connect_fails[i] = false,
        }
    }
    out
}

/// Shrink `plans` while `still_fails` keeps returning true, by clearing
/// injections in halving chunks and then one by one. Returns a locally
/// minimal failing schedule (every remaining injection is necessary).
pub fn minimize_plans(
    plans: &[SensorPlan],
    mut still_fails: impl FnMut(&[SensorPlan]) -> bool,
) -> Vec<SensorPlan> {
    debug_assert!(still_fails(plans), "minimizer needs a failing input");
    let mut current = plans.to_vec();

    // Halving passes: try clearing large chunks of injections at once.
    loop {
        let sites = injection_sites(&current);
        if sites.is_empty() {
            break;
        }
        let mut chunk = sites.len().div_ceil(2);
        let mut shrunk = false;
        while chunk >= 1 {
            let sites = injection_sites(&current);
            let mut start = 0;
            while start < sites.len() {
                let end = (start + chunk).min(sites.len());
                let candidate = clear_sites(&current, &sites[start..end]);
                if still_fails(&candidate) {
                    current = candidate;
                    shrunk = true;
                    break;
                }
                start = end;
            }
            if shrunk {
                break;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if !shrunk {
            break;
        }
    }

    // Final greedy pass: every surviving injection must be necessary.
    loop {
        let sites = injection_sites(&current);
        let mut shrunk = false;
        for site in sites {
            let candidate = clear_sites(&current, &[site]);
            if still_fails(&candidate) {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }

    // Trim trailing no-ops so the repro prints tight.
    for plan in &mut current {
        while matches!(plan.write_ops.last(), Some(FaultOp::Deliver)) {
            plan.write_ops.pop();
        }
        while plan.connect_fails.last() == Some(&false) {
            plan.connect_fails.pop();
        }
    }
    current
}

/// Human-readable repro line for a (possibly minimized) schedule.
pub fn describe_plans(plans: &[SensorPlan]) -> String {
    let mut out = String::new();
    for (s, plan) in plans.iter().enumerate() {
        for (i, op) in plan.write_ops.iter().enumerate() {
            if matches!(op, FaultOp::Deliver) {
                continue;
            }
            out.push_str(&format!("  sensor {s}: write #{i} -> {op:?}\n"));
        }
        for (i, fail) in plan.connect_fails.iter().enumerate() {
            if *fail {
                out.push_str(&format!("  sensor {s}: connect #{i} -> refused\n"));
            }
        }
    }
    if out.is_empty() {
        out.push_str("  (no injected faults)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failure iff sensor 0 has a Dup at write 3 — everything else is
    /// noise the minimizer must clear.
    #[test]
    fn minimizer_isolates_the_one_necessary_fault() {
        let mut plan = SensorPlan::clean();
        plan.write_ops = vec![
            FaultOp::Stall { us: 10 },
            FaultOp::Chop { at_permille: 500 },
            FaultOp::Corrupt { offset: 9 },
            FaultOp::Dup,
            FaultOp::Stall { us: 5 },
        ];
        plan.connect_fails = vec![true, true];
        let plans = vec![plan, SensorPlan::clean()];

        let trials = std::cell::Cell::new(0usize);
        let minimal = minimize_plans(&plans, |p| {
            trials.set(trials.get() + 1);
            p[0].write_op(3) == FaultOp::Dup
        });
        assert_eq!(minimal[0].fault_count(), 1, "one necessary fault survives");
        assert_eq!(minimal[0].write_op(3), FaultOp::Dup);
        assert!(minimal[1].is_clean());
        assert!(trials.get() > 0);
        let repro = describe_plans(&minimal);
        assert!(repro.contains("write #3 -> Dup"), "repro: {repro}");
    }

    #[test]
    fn clean_schedule_describes_as_faultless() {
        assert!(describe_plans(&[SensorPlan::clean()]).contains("no injected faults"));
    }
}
