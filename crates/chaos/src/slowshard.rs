//! Slow-shard fault axis: stall one tracker shard's consumer on a
//! deterministic schedule.
//!
//! The threaded pipeline's per-shard watermark frontiers let fast shards
//! run ahead while a slow shard catches up on its own clock. The safety
//! property is a conservation law: however long one shard lags, every
//! window is closed exactly once on every shard — none lost, none
//! double-counted — and the merged output is byte-identical to an
//! unstalled run. This module provides the deterministic stall schedule;
//! `crates/chaos/tests/slow_shard.rs` drives it through
//! `ThreadedPipeline::with_stall_injector` and checks the law against
//! the telemetry oracle.
//!
//! Stalls burn scheduler yields rather than wall-clock sleeps: on a
//! loaded CI box a `yield_now` loop deterministically hands the core to
//! the other pipeline stages (which is exactly the interleaving the
//! fault axis wants to provoke) without slowing the suite down.

use crate::fault::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The hook shape `ThreadedPipeline::with_stall_injector` accepts:
/// `(shard index, message index)` called before each message a shard
/// consumes.
pub type StallInjector = Arc<dyn Fn(usize, u64) + Send + Sync>;

/// A deterministic stall schedule for one shard.
///
/// The plan is plain data, like [`crate::fault::SensorPlan`]: which shard
/// is slow, how often it stalls (every `period`-th message it consumes),
/// and how hard (scheduler yields per stall). Expand a seed through
/// [`StallPlan::from_seed`] for matrix runs, or build one literally for
/// a targeted repro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallPlan {
    /// Index of the stalled shard.
    pub shard: usize,
    /// Stall on every `period`-th message (1 = every message).
    pub period: u64,
    /// `thread::yield_now` iterations burned per stall.
    pub yields: u32,
}

impl StallPlan {
    /// Expand `seed` into a plan targeting one of `shards` shards. The
    /// same `(seed, shards)` pair always yields the same plan.
    pub fn from_seed(seed: u64, shards: usize) -> StallPlan {
        // Mixing constant keeps stall plans decorrelated from the
        // transport fault plans derived from the same seed.
        let mut rng = Rng::new(seed ^ 0x51_0b5e_5108_47d5);
        StallPlan {
            shard: rng.below(shards.max(1) as u64) as usize,
            period: 1 + rng.below(8),
            yields: 16 + rng.below(497) as u32,
        }
    }

    /// Whether the `msg_idx`-th message on `shard` stalls under this plan.
    pub fn stalls(&self, shard: usize, msg_idx: u64) -> bool {
        shard == self.shard && msg_idx.is_multiple_of(self.period)
    }

    /// Build the injector closure for
    /// `ThreadedPipeline::with_stall_injector`, plus a counter of stalls
    /// actually executed (tests assert the fault really fired — a fault
    /// axis that silently injects nothing proves nothing).
    pub fn injector(self) -> (StallInjector, Arc<AtomicU64>) {
        let fired = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&fired);
        let hook = Arc::new(move |shard: usize, msg_idx: u64| {
            if self.stalls(shard, msg_idx) {
                counter.fetch_add(1, Ordering::Relaxed);
                for _ in 0..self.yields {
                    std::thread::yield_now();
                }
            }
        });
        (hook, fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_in_range() {
        for seed in 0..64 {
            let a = StallPlan::from_seed(seed, 4);
            let b = StallPlan::from_seed(seed, 4);
            assert_eq!(a, b);
            assert!(a.shard < 4);
            assert!(a.period >= 1);
            assert!(a.yields >= 16);
        }
    }

    #[test]
    fn only_the_planned_shard_stalls() {
        let plan = StallPlan {
            shard: 2,
            period: 3,
            yields: 10,
        };
        assert!(plan.stalls(2, 0));
        assert!(!plan.stalls(2, 1));
        assert!(plan.stalls(2, 3));
        assert!(!plan.stalls(1, 0));
        assert!(!plan.stalls(0, 3));
    }

    #[test]
    fn injector_counts_fired_stalls() {
        let plan = StallPlan {
            shard: 0,
            period: 2,
            yields: 1,
        };
        let (hook, fired) = plan.injector();
        for idx in 0..10 {
            hook(0, idx);
            hook(1, idx);
        }
        assert_eq!(fired.load(Ordering::Relaxed), 5);
    }
}
