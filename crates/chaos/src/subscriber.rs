//! Subscriber-backpressure chaos axis: seeded fleets of live
//! subscribers — healthy, slow, stalled, disconnecting, reconnecting —
//! driven against the pub/sub broker on virtual time.
//!
//! The broker's contract is that one slow client can never stall the
//! seal path and that every departure is ledgered with exact frame
//! conservation (`pushed == delivered + undelivered`). This axis turns
//! that into a differential check: the harness replays the same
//! deterministic workload the store-crash axis uses
//! ([`crate::storecrash::workload`]) through a [`pubsub::BrokerCore`]
//! with a deliberately tiny egress window, drives each subscriber per
//! its seeded profile, and verifies
//!
//! * frame conservation on every departure ledger record,
//! * exactly one typed record per connection (stalled clients end in
//!   `TooSlow` evictions, voluntary departures in `Gone`, the rest in
//!   `Shutdown`) with the exact undelivered count,
//! * the harness's per-client delivery queue always agrees with the
//!   broker's egress depth accounting, and
//! * every subscriber that kept draining holds byte-for-byte the
//!   canonical last window per dataset — the snapshot-then-delta stream
//!   loses nothing, including across a mid-stream reconnect.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use pubsub::{
    canonicalize, strip_features, window_id_us, Action, BrokerConfig, BrokerCore, EvictReason,
    FrameReader, SubEvent, SubscriberCore, Topic,
};

use crate::fault::Rng;
use crate::storecrash::{workload, WINDOW_SECS};

/// Microseconds per workload window.
const WINDOW_US: u64 = WINDOW_SECS as u64 * 1_000_000;

/// How a simulated subscriber behaves, seeded per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientProfile {
    /// Drains its whole queue every window; must track the broker
    /// exactly.
    Healthy,
    /// Drains one frame per window — falls behind, degrades, and is
    /// periodically rescued by snapshot resyncs, but never evicted.
    Slow,
    /// Stops draining entirely after the given window; must end in a
    /// ledgered `TooSlow` eviction.
    Stalled {
        /// First window at which the client no longer drains.
        after_window: usize,
    },
    /// Drains slowly, then disconnects (clean `Bye`) before the given
    /// window's seal; its queued frames become ledgered `undelivered`.
    Disconnecting {
        /// Window before whose seal the client departs.
        at_window: usize,
    },
    /// Disconnects like [`ClientProfile::Disconnecting`], then rejoins
    /// as a fresh connection mid-stream and must converge via the
    /// connect-time snapshot.
    Reconnecting {
        /// Window before whose seal the first leg departs.
        leave_at: usize,
        /// Window before whose seal the second leg connects.
        rejoin_at: usize,
    },
}

/// A divergence from the broker/subscriber contract found by one seed.
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriberDivergence {
    /// The broker rejected a sealed workload window.
    Broker(String),
    /// A frame failed to decode on a subscriber's wire.
    Codec {
        /// Client id.
        client: u64,
        /// Decode failure.
        error: String,
    },
    /// A subscriber's fold rejected a frame (desync, bad delta, ...).
    Subscriber {
        /// Client id.
        client: u64,
        /// The typed subscriber error.
        error: String,
    },
    /// The harness's queue depth disagrees with the broker's egress
    /// accounting for a live client.
    DepthMismatch {
        /// Client id.
        client: u64,
        /// Frames queued by the harness.
        queued: usize,
        /// Depth the broker reports.
        depth: usize,
    },
    /// A ledger record violates `pushed == delivered + undelivered`.
    Conservation {
        /// Client id.
        client: u64,
        /// Frames accepted into the egress window.
        pushed: u64,
        /// Frames reported drained.
        delivered: u64,
        /// Frames pending at departure.
        undelivered: u64,
    },
    /// A departure record's reason or undelivered count does not match
    /// what the harness observed, or a record is missing/duplicated.
    Ledger {
        /// Client id.
        client: u64,
        /// What went wrong.
        detail: String,
    },
    /// A fully-draining subscriber's final held state differs from the
    /// canonical last window.
    StateMismatch {
        /// Client id.
        client: u64,
        /// Dataset that diverged.
        dataset: String,
        /// What differed.
        detail: String,
    },
    /// The always-connected baseline client missed meta payloads.
    MetaLoss {
        /// Meta payloads published while it was connected.
        published: u64,
        /// Meta events it observed.
        seen: u64,
    },
}

impl fmt::Display for SubscriberDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscriberDivergence::Broker(e) => write!(f, "broker rejected seal: {e}"),
            SubscriberDivergence::Codec { client, error } => {
                write!(f, "client {client}: frame decode failed: {error}")
            }
            SubscriberDivergence::Subscriber { client, error } => {
                write!(f, "client {client}: subscriber fold failed: {error}")
            }
            SubscriberDivergence::DepthMismatch {
                client,
                queued,
                depth,
            } => write!(
                f,
                "client {client}: harness queue {queued} != broker depth {depth}"
            ),
            SubscriberDivergence::Conservation {
                client,
                pushed,
                delivered,
                undelivered,
            } => write!(
                f,
                "client {client}: pushed {pushed} != delivered {delivered} + undelivered {undelivered}"
            ),
            SubscriberDivergence::Ledger { client, detail } => {
                write!(f, "client {client}: ledger mismatch: {detail}")
            }
            SubscriberDivergence::StateMismatch {
                client,
                dataset,
                detail,
            } => write!(f, "client {client}: {dataset} diverged: {detail}"),
            SubscriberDivergence::MetaLoss { published, seen } => {
                write!(f, "baseline client saw {seen} of {published} meta payloads")
            }
        }
    }
}

/// One seed's end-of-run accounting; byte-equal across repeated runs of
/// the same seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriberOutcome {
    /// The seed that was run.
    pub seed: u64,
    /// Workload windows sealed.
    pub windows: usize,
    /// Connections that ever completed a handshake (reconnect legs
    /// count separately).
    pub connections: u64,
    /// Departures ledgered as `TooSlow` evictions.
    pub evicted_too_slow: usize,
    /// Departures ledgered as voluntary `Gone`.
    pub departures_gone: usize,
    /// Departures ledgered at shutdown.
    pub departures_shutdown: usize,
    /// Second-leg reconnections that converged.
    pub reconnects: usize,
    /// Sum of frames accepted into egress windows.
    pub frames_pushed: u64,
    /// Sum of frames drained to subscribers.
    pub frames_delivered: u64,
    /// Sum of frames skipped while clients were saturated or degraded.
    pub frames_dropped: u64,
    /// Sum of frames pending at departure.
    pub undelivered: u64,
    /// Snapshot installs across all subscribers.
    pub snapshots_applied: u64,
    /// Delta applications across all subscribers.
    pub deltas_applied: u64,
}

/// The seeded roster: `(profile, stripped)` per connection, where
/// `stripped` subscribes the top-k topic only (no features, no meta).
/// Client 1 is always a full-fidelity, fully-draining baseline so every
/// seed checks exact end-to-end state convergence.
pub fn roster_for(seed: u64, clients: usize, windows: usize) -> Vec<(ClientProfile, bool)> {
    let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5b5c);
    let mut roster = vec![(ClientProfile::Healthy, false)];
    for _ in 1..clients {
        let profile = match rng.below(5) {
            0 => ClientProfile::Healthy,
            1 => ClientProfile::Slow,
            2 => ClientProfile::Stalled {
                after_window: 1 + rng.below(3) as usize,
            },
            3 => ClientProfile::Disconnecting {
                at_window: windows / 2 + rng.below((windows as u64 / 4).max(1)) as usize,
            },
            _ => {
                let leave_at = 2 + rng.below(3) as usize;
                ClientProfile::Reconnecting {
                    leave_at,
                    rejoin_at: leave_at + 2 + rng.below(2) as usize,
                }
            }
        };
        roster.push((profile, rng.chance(0.4)));
    }
    roster
}

/// How the profile is ledgered when the run ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Live,
    Evicted { undelivered: u64 },
    Gone { undelivered: u64 },
    Shutdown { undelivered: u64 },
}

struct Conn {
    id: u64,
    profile: ClientProfile,
    stripped: bool,
    sub: SubscriberCore,
    queue: VecDeque<Arc<Vec<u8>>>,
    state: ConnState,
    meta_seen: u64,
    rejoined: bool,
}

impl Conn {
    fn topics(stripped: bool) -> Vec<Topic> {
        if stripped {
            vec![Topic::Topk]
        } else {
            Vec::new() // everything, full fidelity, meta included
        }
    }

    fn drain_quota(&self, window: usize) -> usize {
        match self.profile {
            ClientProfile::Healthy => self.queue.len(),
            ClientProfile::Slow | ClientProfile::Disconnecting { .. } => self.queue.len().min(1),
            ClientProfile::Stalled { after_window } => {
                if window >= after_window {
                    0
                } else {
                    self.queue.len()
                }
            }
            // Fully drains while connected, on both legs.
            ClientProfile::Reconnecting { .. } => self.queue.len(),
        }
    }

    /// Decode one wire frame and fold it into the subscriber.
    fn feed(&mut self, bytes: &[u8]) -> Result<Option<SubEvent>, SubscriberDivergence> {
        let mut rd = FrameReader::new();
        rd.push(bytes);
        let frame = match rd.next_frame() {
            Ok(Some(f)) => f,
            Ok(None) => {
                return Err(SubscriberDivergence::Codec {
                    client: self.id,
                    error: "incomplete frame".to_string(),
                })
            }
            Err(e) => {
                return Err(SubscriberDivergence::Codec {
                    client: self.id,
                    error: format!("{e}"),
                })
            }
        };
        match self.sub.on_frame(frame) {
            Ok(ev) => {
                if matches!(ev, Some(SubEvent::Meta { .. })) {
                    self.meta_seen += 1;
                }
                Ok(ev)
            }
            Err(e) => Err(SubscriberDivergence::Subscriber {
                client: self.id,
                error: format!("{e}"),
            }),
        }
    }
}

/// Route one batch of broker actions into the per-client queues;
/// `Evict` actions deliver their terminal frame immediately and retire
/// the connection.
fn route(actions: &[Action], conns: &mut [Conn]) -> Result<(), SubscriberDivergence> {
    for action in actions {
        match action {
            Action::Send { client, frame } => {
                if let Some(conn) = conns
                    .iter_mut()
                    .find(|c| c.id == *client && c.state == ConnState::Live)
                {
                    conn.queue.push_back(frame.clone());
                }
            }
            Action::Evict {
                client,
                reason: _,
                frame,
            } => {
                let Some(conn) = conns
                    .iter_mut()
                    .find(|c| c.id == *client && c.state == ConnState::Live)
                else {
                    continue;
                };
                let undelivered = conn.queue.len() as u64;
                conn.queue.clear();
                match conn.feed(frame)? {
                    Some(SubEvent::Evicted {
                        undelivered: in_frame,
                        ..
                    }) if in_frame == undelivered => {}
                    other => {
                        return Err(SubscriberDivergence::Ledger {
                            client: conn.id,
                            detail: format!(
                                "evict frame said {other:?}, harness had {undelivered} queued"
                            ),
                        })
                    }
                }
                conn.state = ConnState::Evicted { undelivered };
            }
        }
    }
    Ok(())
}

/// Run one seeded fleet for `windows` workload windows and check every
/// oracle. `Err` is a contract violation; `Ok` carries deterministic
/// end-of-run accounting.
pub fn run_seed(seed: u64) -> Result<SubscriberOutcome, SubscriberDivergence> {
    run_with(seed, &roster_for(seed, 6, 12), 12)
}

/// [`run_seed`] with an explicit roster, for targeted scenarios.
pub fn run_with(
    seed: u64,
    roster: &[(ClientProfile, bool)],
    windows: usize,
) -> Result<SubscriberOutcome, SubscriberDivergence> {
    // Tiny egress window so saturation dynamics (degrade, resync,
    // evict) all trigger within a dozen windows.
    let mut broker = BrokerCore::new(BrokerConfig {
        egress_frames: 4,
        snapshot_every: 2,
        evict_after: 2,
    });
    broker.set_now_us(0);

    let work = workload(windows, 8, &["esld", "qtype"]);
    let mut conns: Vec<Conn> = Vec::new();
    let mut actions: Vec<Action> = Vec::new();
    let mut next_id: u64 = 1;
    for (profile, stripped) in roster {
        conns.push(Conn {
            id: next_id,
            profile: *profile,
            stripped: *stripped,
            sub: SubscriberCore::new(),
            queue: VecDeque::new(),
            state: ConnState::Live,
            meta_seen: 0,
            rejoined: false,
        });
        broker.on_client_connect(next_id, &Conn::topics(*stripped), &mut actions);
        next_id += 1;
    }
    route(&actions, &mut conns)?;

    let mut metas_published: u64 = 0;
    for (w, states) in work.iter().enumerate() {
        broker.set_now_us(w as u64 * WINDOW_US);

        // Departures and rejoins happen in the gap before this seal.
        let mut rejoin: Vec<(bool, u64)> = Vec::new();
        for conn in conns.iter_mut().filter(|c| c.state == ConnState::Live) {
            let (leaves, rejoins) = match conn.profile {
                ClientProfile::Disconnecting { at_window } => (at_window == w, false),
                ClientProfile::Reconnecting { leave_at, .. } => {
                    (leave_at == w && !conn.rejoined, false)
                }
                _ => (false, false),
            };
            let _ = rejoins;
            if leaves {
                let undelivered = conn.queue.len() as u64;
                conn.queue.clear();
                broker.on_client_gone(conn.id, EvictReason::Gone);
                conn.state = ConnState::Gone { undelivered };
            }
        }
        for conn in &conns {
            if let ClientProfile::Reconnecting { rejoin_at, .. } = conn.profile {
                if rejoin_at == w && matches!(conn.state, ConnState::Gone { .. }) && !conn.rejoined
                {
                    rejoin.push((conn.stripped, next_id));
                    next_id += 1;
                }
            }
        }
        for (stripped, id) in rejoin {
            actions.clear();
            broker.on_client_connect(id, &Conn::topics(stripped), &mut actions);
            conns.push(Conn {
                id,
                profile: ClientProfile::Healthy,
                stripped,
                sub: SubscriberCore::new(),
                queue: VecDeque::new(),
                state: ConnState::Live,
                meta_seen: 0,
                rejoined: true,
            });
            route(&actions, &mut conns)?;
        }

        // Seal the window; fan out deltas/snapshots/evictions.
        actions.clear();
        broker
            .on_sealed(states.clone(), &mut actions)
            .map_err(|e| SubscriberDivergence::Broker(format!("{e}")))?;
        route(&actions, &mut conns)?;

        // Periodic meta payload on the same path the aggregator uses.
        if w % 3 == 0 {
            actions.clear();
            let bytes = format!("window\t{w}\nqueries\t{}\n", 100 + w).into_bytes();
            broker.on_meta(w as u64 * WINDOW_US, bytes, &mut actions);
            route(&actions, &mut conns)?;
            metas_published += 1;
        }

        // Drain phase: each live client consumes per its profile, then
        // acks; harness queue depth must agree with broker accounting.
        for conn in conns.iter_mut().filter(|c| c.state == ConnState::Live) {
            let quota = conn.drain_quota(w);
            for _ in 0..quota {
                let frame = conn.queue.pop_front().expect("quota bounded by queue");
                conn.feed(&frame)?;
            }
            broker.on_drained(conn.id, quota as u64);
            if conn.state == ConnState::Live {
                let depth = broker.client_depth(conn.id).unwrap_or(usize::MAX);
                if depth != conn.queue.len() {
                    return Err(SubscriberDivergence::DepthMismatch {
                        client: conn.id,
                        queued: conn.queue.len(),
                        depth,
                    });
                }
            }
        }
    }

    // Shutdown: remaining clients get a best-effort Bye; their queued
    // frames are exactly the ledgered undelivered.
    broker.set_now_us(windows as u64 * WINDOW_US);
    actions.clear();
    let report = broker.finish(&mut actions);
    for conn in conns.iter_mut() {
        if conn.state == ConnState::Live {
            conn.state = ConnState::Shutdown {
                undelivered: conn.queue.len() as u64,
            };
        }
    }
    for action in &actions {
        if let Action::Send { client, frame } = action {
            if let Some(conn) = conns.iter_mut().find(|c| c.id == *client) {
                match conn.feed(frame)? {
                    Some(SubEvent::End) => {}
                    other => {
                        return Err(SubscriberDivergence::Subscriber {
                            client: conn.id,
                            error: format!("expected End at shutdown, got {other:?}"),
                        })
                    }
                }
            }
        }
    }

    // Oracle 1: exactly one typed ledger record per connection, with
    // the exact undelivered count the harness observed.
    let mut expected: BTreeMap<u64, (EvictReason, u64)> = BTreeMap::new();
    for conn in &conns {
        let entry = match conn.state {
            ConnState::Live => unreachable!("all live conns retired above"),
            ConnState::Evicted { undelivered } => (EvictReason::TooSlow, undelivered),
            ConnState::Gone { undelivered } => (EvictReason::Gone, undelivered),
            ConnState::Shutdown { undelivered } => (EvictReason::Shutdown, undelivered),
        };
        expected.insert(conn.id, entry);
    }
    for rec in &report.departures {
        let Some((reason, undelivered)) = expected.remove(&rec.client) else {
            return Err(SubscriberDivergence::Ledger {
                client: rec.client,
                detail: "duplicate or unknown departure record".to_string(),
            });
        };
        if rec.reason != reason || rec.undelivered != undelivered {
            return Err(SubscriberDivergence::Ledger {
                client: rec.client,
                detail: format!(
                    "record {:?}/{} undelivered, harness saw {reason:?}/{undelivered}",
                    rec.reason, rec.undelivered
                ),
            });
        }
        // Oracle 2: conservation on every record.
        if rec.totals.pushed != rec.totals.delivered + rec.undelivered {
            return Err(SubscriberDivergence::Conservation {
                client: rec.client,
                pushed: rec.totals.pushed,
                delivered: rec.totals.delivered,
                undelivered: rec.undelivered,
            });
        }
    }
    if let Some((&client, _)) = expected.iter().next() {
        return Err(SubscriberDivergence::Ledger {
            client,
            detail: "connection has no departure record".to_string(),
        });
    }

    // Oracle 3: every fully-draining subscriber that survived to
    // shutdown holds exactly the canonical last window per dataset.
    let last = &work[windows - 1];
    for conn in &conns {
        let fully_draining = matches!(conn.profile, ClientProfile::Healthy) || conn.rejoined;
        if !fully_draining || !matches!(conn.state, ConnState::Shutdown { .. }) {
            continue;
        }
        for ws in last {
            let ds = &ws.topk.dataset;
            let full = canonicalize(ws.topk.clone());
            let expect = if conn.stripped {
                strip_features(&full)
            } else {
                full
            };
            match conn.sub.held(ds) {
                Some(h) if h.state == expect && h.window_us == window_id_us(ws.start) => {}
                Some(h) => {
                    return Err(SubscriberDivergence::StateMismatch {
                        client: conn.id,
                        dataset: ds.clone(),
                        detail: format!(
                            "held window {} with {} entries, want window {} with {}",
                            h.window_us,
                            h.state.entries.len(),
                            window_id_us(ws.start),
                            expect.entries.len()
                        ),
                    })
                }
                None => {
                    return Err(SubscriberDivergence::StateMismatch {
                        client: conn.id,
                        dataset: ds.clone(),
                        detail: "no held window".to_string(),
                    })
                }
            }
        }
    }

    // Oracle 4: the baseline client (id 1, full fidelity, connected
    // throughout) saw every meta payload.
    let baseline = &conns[0];
    if baseline.meta_seen != metas_published {
        return Err(SubscriberDivergence::MetaLoss {
            published: metas_published,
            seen: baseline.meta_seen,
        });
    }

    Ok(SubscriberOutcome {
        seed,
        windows,
        connections: report.clients_seen,
        evicted_too_slow: report
            .departures
            .iter()
            .filter(|r| r.reason == EvictReason::TooSlow)
            .count(),
        departures_gone: report
            .departures
            .iter()
            .filter(|r| r.reason == EvictReason::Gone)
            .count(),
        departures_shutdown: report
            .departures
            .iter()
            .filter(|r| r.reason == EvictReason::Shutdown)
            .count(),
        reconnects: conns.iter().filter(|c| c.rejoined).count(),
        frames_pushed: report.frames_pushed,
        frames_delivered: report.frames_delivered,
        frames_dropped: report.frames_dropped,
        undelivered: report.undelivered,
        snapshots_applied: conns.iter().map(|c| c.sub.snapshots_applied()).sum(),
        deltas_applied: conns.iter().map(|c| c.sub.deltas_applied()).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_deterministic() {
        assert_eq!(roster_for(7, 6, 12), roster_for(7, 6, 12));
        assert_ne!(roster_for(7, 6, 12), roster_for(8, 6, 12));
    }

    #[test]
    fn rosters_cover_every_profile() {
        let mut healthy = 0;
        let mut slow = 0;
        let mut stalled = 0;
        let mut gone = 0;
        let mut reconnect = 0;
        for seed in 0..32 {
            for (profile, _) in roster_for(seed, 6, 12) {
                match profile {
                    ClientProfile::Healthy => healthy += 1,
                    ClientProfile::Slow => slow += 1,
                    ClientProfile::Stalled { .. } => stalled += 1,
                    ClientProfile::Disconnecting { .. } => gone += 1,
                    ClientProfile::Reconnecting { .. } => reconnect += 1,
                }
            }
        }
        assert!(healthy > 0 && slow > 0 && stalled > 0 && gone > 0 && reconnect > 0);
    }

    #[test]
    fn stalled_client_is_evicted_with_exact_ledger() {
        let out = run_with(
            0,
            &[
                (ClientProfile::Healthy, false),
                (ClientProfile::Stalled { after_window: 1 }, false),
            ],
            12,
        )
        .expect("contract holds");
        assert_eq!(out.evicted_too_slow, 1);
        assert_eq!(out.departures_shutdown, 1);
        assert!(out.undelivered > 0);
    }

    #[test]
    fn reconnect_leg_converges_via_snapshot() {
        let out = run_with(
            0,
            &[
                (ClientProfile::Healthy, false),
                (
                    ClientProfile::Reconnecting {
                        leave_at: 3,
                        rejoin_at: 6,
                    },
                    true,
                ),
            ],
            12,
        )
        .expect("contract holds");
        assert_eq!(out.reconnects, 1);
        assert_eq!(out.departures_gone, 1);
        assert_eq!(out.departures_shutdown, 2);
        // The rejoined leg installed a snapshot and then rode deltas.
        assert!(out.snapshots_applied >= 2);
        assert!(out.deltas_applied > 0);
    }
}
