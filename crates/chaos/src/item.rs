//! The chaos kernel's native feed item: a self-describing probe.
//!
//! [`ChaosItem`] carries its originating sensor, its per-sensor index,
//! and its stream time in its own encoding, so the oracle can attribute
//! every delivered item back to the exact `push` that produced it — the
//! property the differential accounting check is built on. (Pipeline
//! differential tests ride real `TxSummary` items instead; this type is
//! for the transport-level oracle.)

use feed::{ByteReader, FeedError, FeedItem};

/// A traceable probe item for chaos runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosItem {
    /// Sensor that pushed the item.
    pub sensor: u64,
    /// Zero-based index within that sensor's pushed stream.
    pub index: u64,
    /// Stream time, seconds — the merge key.
    pub time: f64,
}

impl ChaosItem {
    /// Probe `index` from `sensor` at stream time `time`.
    pub fn new(sensor: u64, index: u64, time: f64) -> ChaosItem {
        ChaosItem {
            sensor,
            index,
            time,
        }
    }
}

impl FeedItem for ChaosItem {
    const ITEM_VERSION: u8 = 201;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.sensor.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.time.to_bits().to_le_bytes());
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, FeedError> {
        let sensor = r.u64("chaos sensor")?;
        let index = r.u64("chaos index")?;
        let time = r.f64("chaos time")?;
        if !time.is_finite() {
            return Err(FeedError::Invalid("chaos time not finite"));
        }
        Ok(ChaosItem {
            sensor,
            index,
            time,
        })
    }

    fn order_time(&self) -> f64 {
        self.time
    }
}

/// Deterministic item stream for `sensor` in a deployment of `sensors`
/// peers: times interleave strictly across sensors (item `i` of sensor
/// `s` happens at `(i·sensors + s)` milliseconds), so the expected merge
/// order is globally unique and any reordering is observable.
pub fn probe_stream(sensor: u64, sensors: u64, items: u64) -> Vec<ChaosItem> {
    (0..items)
        .map(|i| ChaosItem::new(sensor, i, (i * sensors + sensor) as f64 * 1e-3))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let item = ChaosItem::new(3, 17, 0.042);
        let mut buf = Vec::new();
        item.encode(&mut buf);
        let mut r = ByteReader::new(&buf);
        assert_eq!(ChaosItem::decode(&mut r).unwrap(), item);
        assert!(r.is_empty());
    }

    #[test]
    fn probe_times_interleave_across_sensors() {
        let a = probe_stream(0, 2, 3);
        let b = probe_stream(1, 2, 3);
        let mut times: Vec<f64> = a.iter().chain(b.iter()).map(|i| i.time).collect();
        times.sort_by(f64::total_cmp);
        times.dedup();
        assert_eq!(times.len(), 6, "probe times must be globally distinct");
    }

    #[test]
    fn non_finite_time_rejected() {
        let mut buf = Vec::new();
        ChaosItem::new(0, 0, f64::NAN).encode(&mut buf);
        let mut r = ByteReader::new(&buf);
        assert!(ChaosItem::decode(&mut r).is_err());
    }
}
