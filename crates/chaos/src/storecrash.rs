//! Store-crash fault axis: kill the compactor at a seeded filesystem
//! operation and check the recovery differential.
//!
//! The historical store's crash-safety argument is an ordering argument:
//! every compaction writes the rolled segment to a tmp file, renames it
//! into place, swaps the manifest (the commit point), and only then
//! unlinks its inputs. A crash at *any* op therefore leaves the store in
//! either the pre-compaction or the post-compaction view — and both fold
//! to the same sketch state. This module turns that argument into a
//! machine-checked differential, in the same spirit as [`crate::oracle`]:
//!
//! 1. run the workload against a durable [`store::CrashFs`] once to learn
//!    the total op count ([`learn_ops`]);
//! 2. for each seed, expand a [`store::CrashPlan`] over that op range —
//!    covering "after segment write", "before manifest swap", and
//!    "mid-footer" torn writes — crash the compactor there, re-open the
//!    store, and compare the recovered fold against the fold of the raw
//!    appended states ([`run_seed`]).
//!
//! Any divergence is typed ([`StoreDivergence`]), never a panic, and the
//! recovery sweep must *ledger* what it deletes: tmp files and orphans
//! show up in the [`store::RecoveryReport`], silent drops show up as a
//! fold divergence.

use sketchwire::{FeatureState, TopKEntry, TopKState, TopValuesState, WindowState};
use std::collections::BTreeMap;
use std::path::Path;
use store::{
    compact, compact_with, fold_states, CompactionPolicy, CrashFs, CrashPlan, Store, StoreError,
};

/// Window length of the synthetic workload, seconds.
pub const WINDOW_SECS: f64 = 600.0;

/// What one seeded crash-and-recover run did. Every count in here is a
/// test obligation: `fired` proves the fault actually triggered,
/// `swept_tmp`/`swept_orphans` prove deletions were ledgered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreCrashOutcome {
    /// The expanded crash point.
    pub plan: CrashPlan,
    /// Whether the planned crash fired (it must — the plan is drawn from
    /// the learned op range).
    pub fired: bool,
    /// Tmp files the recovery sweep removed (ledgered, at most the one
    /// in-flight write).
    pub swept_tmp: usize,
    /// Unreferenced segments the sweep removed (ledgered; a crash while
    /// unlinking a rolled bucket's inputs can leave several).
    pub swept_orphans: usize,
    /// Segments rolled by the post-recovery resume compaction.
    pub resumed_inputs: usize,
}

/// A conservation violation found by the store-crash differential.
#[derive(Debug)]
pub enum StoreDivergence {
    /// The store failed outside the planned crash point.
    Store(StoreError),
    /// The faulted compaction finished without crashing — the plan was
    /// drawn from the learned op range, so the axis injected nothing.
    NeverFired,
    /// The watermark frontier moved across crash + recovery.
    FrontierMoved {
        /// Frontier before the crash, µs.
        before: Option<u64>,
        /// Frontier after recovery, µs.
        after: Option<u64>,
    },
    /// The recovered store's fold differs from the fold of the raw
    /// appended states — data was lost or invented.
    FoldDiverged {
        /// When the divergence was observed.
        when: &'static str,
        /// Dataset that diverged (or "<datasets>" for a key-set mismatch).
        dataset: String,
    },
}

impl std::fmt::Display for StoreDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreDivergence::Store(e) => write!(f, "store error: {e}"),
            StoreDivergence::NeverFired => write!(f, "planned crash never fired"),
            StoreDivergence::FrontierMoved { before, after } => {
                write!(f, "frontier moved across recovery: {before:?} -> {after:?}")
            }
            StoreDivergence::FoldDiverged { when, dataset } => {
                write!(f, "fold diverged {when} for dataset {dataset}")
            }
        }
    }
}

impl From<StoreError> for StoreDivergence {
    fn from(e: StoreError) -> StoreDivergence {
        StoreDivergence::Store(e)
    }
}

fn feature_state(seed: u64, hits: u64) -> FeatureState {
    FeatureState {
        adds: vec![hits, seed % 3],
        maxes: vec![seed % 5],
        hlls: vec![],
        source_cap: 8,
        sources: vec![(seed % 100) as u16],
        tops: vec![TopValuesState {
            capacity: 4,
            observed: hits,
            slots: vec![(60 * (1 + seed % 4), hits)],
        }],
        hists: vec![],
    }
}

/// Deterministic workload: `windows` consecutive 10-minute windows of
/// cumulative Space-Saving exports over `keys` keys in `datasets`,
/// batched one append per window — the same shape `dnsobs collect
/// --store` persists. Counts are cumulative across windows (like live
/// tracker exports); the exact per-window delta rides in
/// `features.adds[0]`.
pub fn workload(windows: usize, keys: usize, datasets: &[&str]) -> Vec<Vec<WindowState>> {
    let mut counts = vec![0u64; keys];
    (0..windows)
        .map(|w| {
            let mut window_hits = 0;
            for (k, c) in counts.iter_mut().enumerate() {
                let delta = 5 + ((k + w) % 7) as u64;
                *c += delta;
                window_hits += delta;
            }
            let observed: u64 = counts.iter().sum();
            datasets
                .iter()
                .map(|dataset| WindowState {
                    upstream: 1,
                    start: w as f64 * WINDOW_SECS,
                    length: WINDOW_SECS,
                    topk: TopKState {
                        dataset: dataset.to_string(),
                        capacity: 16,
                        observed,
                        min_count: 0,
                        error_bound: observed / 16,
                        evictions: 0,
                        kept: window_hits,
                        dropped: 0,
                        filtered: 0,
                        chunk: 0,
                        chunks: 1,
                        entries: (0..keys)
                            .map(|k| TopKEntry {
                                key: format!("k{k:02}"),
                                count: counts[k],
                                error: 0,
                                inserted_at: 0.0,
                                features: feature_state(
                                    ((k as u64) << 8) | (w as u64 & 0xff),
                                    5 + ((k + w) % 7) as u64,
                                ),
                            })
                            .collect(),
                        gate: None,
                    },
                })
                .collect()
        })
        .collect()
}

/// Fold everything durable in `s` into one state per dataset — the
/// canonical fold compaction must preserve.
pub fn store_fold(s: &Store) -> Result<BTreeMap<String, TopKState>, StoreError> {
    let mut all = Vec::new();
    for meta in s.segments().to_vec() {
        let (_, states) = s.read_segment(&meta)?;
        all.extend(states);
    }
    fold_states(&all).map_err(|e| StoreError::Merge {
        context: "chaos store fold".to_string(),
        source: e,
    })
}

fn fresh_store(dir: &Path, batches: &[Vec<WindowState>]) -> Result<Store, StoreError> {
    let _ = std::fs::remove_dir_all(dir);
    let (mut s, _) = Store::open(dir)?;
    for batch in batches {
        s.append(batch)?;
    }
    Ok(s)
}

/// Run the workload once against a durable filesystem and return the
/// total filesystem op count of a full compaction — the op range crash
/// plans are drawn from.
pub fn learn_ops(
    batches: &[Vec<WindowState>],
    policy: &CompactionPolicy,
    scratch: &Path,
) -> Result<u64, StoreError> {
    let mut s = fresh_store(scratch, batches)?;
    let mut fs = CrashFs::durable();
    compact_with(&mut s, policy, &mut fs)?;
    Ok(fs.ops())
}

/// One seeded crash-and-recover differential:
///
/// append the workload, crash the compactor at the seed's op, re-open
/// the store (process death discards the in-memory handle), and check
/// that the watermark frontier is preserved and the recovered fold —
/// and the fold after a clean resume compaction — equal the fold of the
/// raw appended states.
pub fn run_seed(
    seed: u64,
    batches: &[Vec<WindowState>],
    policy: &CompactionPolicy,
    max_ops: u64,
    scratch: &Path,
) -> Result<StoreCrashOutcome, StoreDivergence> {
    let flat: Vec<WindowState> = batches.iter().flatten().cloned().collect();
    let reference = fold_states(&flat).map_err(|e| StoreError::Merge {
        context: "chaos reference fold".to_string(),
        source: e,
    })?;

    let mut s = fresh_store(scratch, batches)?;
    let frontier_before = s.frontier_us();
    let plan = CrashPlan::from_seed(seed, max_ops);
    let mut fs = CrashFs::with_plan(plan);
    match compact_with(&mut s, policy, &mut fs) {
        Ok(_) => return Err(StoreDivergence::NeverFired),
        Err(StoreError::Crashed) => {}
        Err(e) => return Err(e.into()),
    }
    if !fs.fired() {
        return Err(StoreDivergence::NeverFired);
    }
    // The process died: the poisoned in-memory handle is gone. Everything
    // from here on works off what the filesystem retained.
    drop(s);

    let (mut recovered, report) = Store::open(scratch)?;
    if recovered.frontier_us() != frontier_before {
        return Err(StoreDivergence::FrontierMoved {
            before: frontier_before,
            after: recovered.frontier_us(),
        });
    }
    check_fold("after recovery", &store_fold(&recovered)?, &reference)?;

    // The restarted compactor must be able to pick up where the dead one
    // left off — and still preserve the fold.
    let resumed = compact(&mut recovered, policy)?;
    check_fold(
        "after resumed compaction",
        &store_fold(&recovered)?,
        &reference,
    )?;

    Ok(StoreCrashOutcome {
        plan,
        fired: true,
        swept_tmp: report.removed_tmp.len(),
        swept_orphans: report.removed_orphans.len(),
        resumed_inputs: resumed.inputs(),
    })
}

fn check_fold(
    when: &'static str,
    got: &BTreeMap<String, TopKState>,
    want: &BTreeMap<String, TopKState>,
) -> Result<(), StoreDivergence> {
    if got.keys().ne(want.keys()) {
        return Err(StoreDivergence::FoldDiverged {
            when,
            dataset: "<datasets>".to_string(),
        });
    }
    for (dataset, state) in want {
        if got.get(dataset) != Some(state) {
            return Err(StoreDivergence::FoldDiverged {
                when,
                dataset: dataset.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = workload(5, 3, &["esld"]);
        let b = workload(5, 3, &["esld"]);
        assert_eq!(a.len(), 5);
        assert_eq!(a, b);
        // Cumulative counts never decrease window to window.
        for w in 1..a.len() {
            for k in 0..3 {
                assert!(a[w][0].topk.entries[k].count > a[w - 1][0].topk.entries[k].count);
            }
        }
    }

    #[test]
    fn plans_cover_distinct_ops() {
        let max_ops = 40;
        let ops: std::collections::BTreeSet<u64> = (0..64)
            .map(|seed| CrashPlan::from_seed(seed, max_ops).crash_at_op)
            .collect();
        // 64 seeds over 40 ops must hit a broad spread of crash points,
        // or the axis is not actually sweeping the op space.
        assert!(ops.len() > 20, "only {} distinct crash ops", ops.len());
    }
}
