//! The chaos run itself: sensor machines and the collector core wired
//! through a scripted, faulty, virtual-time transport.
//!
//! Every run is a closed deterministic system. Item pushes, frame
//! deliveries, stalls, and connection teardowns are events on one
//! [`EventQueue`](crate::clock::EventQueue); the [`SensorMachine`]s are
//! polled to quiescence at each instant and the clock jumps straight to
//! the next due event — reconnect storms that would take wall-clock
//! seconds replay in microseconds. The transport between the two state
//! machines is a [`SensorPlan`] script: each write can be delivered,
//! corrupted, segmented, duplicated, stalled, or cut by a reset, and each
//! connect attempt can be refused.
//!
//! The run records everything both sides did — every sealed batch, every
//! successful write, every accepted/duplicate/rejected frame — so the
//! [`oracle`](crate::oracle) can audit the collector's final accounting
//! against ground truth, frame by frame.

use std::collections::BTreeMap;

use feed::{
    CollectorConfig, CollectorCore, CollectorReport, FeedError, FeedItem, FrameOutcome,
    FrameReader, SealEvent, SensorConfig, SensorMachine, SensorOp, SensorReport, Wrote,
};

use crate::clock::{EventQueue, VirtualClock};
use crate::fault::{plans_for, FaultOp, FaultProfile, SensorPlan};
use crate::item::{probe_stream, ChaosItem};
use telemetry::Registry;

/// One-way link latency of the virtual network, µs.
pub const LINK_LATENCY_US: u64 = 200;

/// Virtual-time backstop: a run that has not wound down after ten
/// virtual minutes is aborted and flagged (`ChaosOutcome::truncated`).
const VIRTUAL_CAP_US: u64 = 600_000_000;

/// Poll-op backstop against harness bugs (never near in healthy runs).
const MAX_POLL_OPS: u64 = 10_000_000;

/// One sensor's contribution to a run.
#[derive(Debug, Clone)]
pub struct SensorInput<T> {
    /// Sensor configuration (identity, batching, buffering, backoff).
    pub config: SensorConfig,
    /// Items the sensor will push, in stream-time order.
    pub items: Vec<T>,
    /// Fault script for this sensor's link.
    pub plan: SensorPlan,
}

/// A batch frame the collector accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceptedFrame {
    /// Frame sequence number.
    pub seq: u64,
    /// Items the frame carried.
    pub items: u64,
    /// Leading items dropped as behind the merge watermark.
    pub late: u64,
}

/// Everything one sensor did and had done to it during a run.
#[derive(Debug, Clone)]
pub struct SensorRun<T> {
    /// Sensor identity.
    pub sensor_id: u64,
    /// Items actually pushed (in order) before the run ended.
    pub pushed: Vec<T>,
    /// Every sealed batch with its fate at the send buffer, in sequence
    /// order.
    pub sealed: Vec<SealEvent>,
    /// Batches written successfully, `(seq, items)`, in write order
    /// (retransmissions of a frame appear once: a write that failed
    /// mid-flight is not in this list).
    pub sent_batches: Vec<(u64, u64)>,
    /// True when the BYE frame was written successfully.
    pub bye_sent: bool,
    /// Frames the collector accepted for this sensor, in arrival order.
    pub accepted: Vec<AcceptedFrame>,
    /// Retransmitted frames the collector discarded as duplicates.
    pub duplicates: u64,
    /// HELLO frames the collector accepted.
    pub hellos: u64,
    /// BYE frames the collector accepted.
    pub byes: u64,
    /// The sensor machine's own final accounting.
    pub report: SensorReport,
}

/// The complete, oracle-auditable result of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOutcome<T> {
    /// Items the collector released, in merged order.
    pub delivered: Vec<T>,
    /// The collector's final accounting.
    pub report: CollectorReport,
    /// Per-sensor ground truth, indexed like the inputs.
    pub sensors: Vec<SensorRun<T>>,
    /// Virtual time when the run wound down, µs.
    pub end_us: u64,
    /// True when the virtual-time backstop fired (a wedged run — always a
    /// bug).
    pub truncated: bool,
    /// True when the collector reached its BYE quota and stopped
    /// consuming while traffic was still in flight (mirrors the real
    /// merge loop's early exit).
    pub stopped_early: bool,
}

/// Standard run shape for seed-matrix tests and the smoke runner.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Number of sensors.
    pub sensors: u64,
    /// Items each sensor pushes.
    pub items_per_sensor: u64,
    /// Items per batch frame.
    pub batch_items: usize,
    /// Send-buffer capacity, frames (small enough that long outages drop
    /// frames and exercise the gap accounting).
    pub buffer_frames: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            sensors: 3,
            items_per_sensor: 60,
            batch_items: 4,
            buffer_frames: 8,
        }
    }
}

/// Run the standard probe-item deployment for `(seed, profile)`:
/// `config.sensors` machines, interleaved item times, plans expanded
/// from the seed. Fully deterministic in all arguments.
pub fn run_seed(
    seed: u64,
    profile: &FaultProfile,
    config: &ChaosConfig,
) -> ChaosOutcome<ChaosItem> {
    run_seed_in(&Registry::new(), seed, profile, config)
}

/// [`run_seed`] reporting telemetry into `registry` — the entry point of
/// the metric-reconciliation tests, which need one isolated registry per
/// run to compare against the run's own report.
pub fn run_seed_in(
    registry: &Registry,
    seed: u64,
    profile: &FaultProfile,
    config: &ChaosConfig,
) -> ChaosOutcome<ChaosItem> {
    let plans = plans_for(seed, config.sensors, profile);
    run_planned_in(registry, seed, config, plans)
}

/// [`run_seed`] with explicit plans (the minimizer's entry point: same
/// deployment, shrunk scripts).
pub fn run_planned(
    seed: u64,
    config: &ChaosConfig,
    plans: Vec<SensorPlan>,
) -> ChaosOutcome<ChaosItem> {
    run_planned_in(&Registry::new(), seed, config, plans)
}

/// [`run_planned`] reporting telemetry into `registry`.
pub fn run_planned_in(
    registry: &Registry,
    seed: u64,
    config: &ChaosConfig,
    plans: Vec<SensorPlan>,
) -> ChaosOutcome<ChaosItem> {
    assert_eq!(plans.len(), config.sensors as usize);
    let inputs = plans
        .into_iter()
        .enumerate()
        .map(|(s, plan)| {
            let mut sc = SensorConfig::new(s as u64);
            sc.batch_items = config.batch_items;
            sc.buffer_frames = config.buffer_frames;
            // Distinct jitter per (seed, sensor) so reconnect schedules
            // differ between runs but never between replays.
            sc.backoff.seed = seed.wrapping_mul(31).wrapping_add(s as u64);
            sc.backoff.base_ms = 2;
            sc.backoff.max_ms = 40;
            SensorInput {
                config: sc,
                items: probe_stream(s as u64, config.sensors, config.items_per_sensor),
                plan,
            }
        })
        .collect();
    run_in(registry, inputs)
}

enum Ev {
    Push { sensor: usize },
    Finish { sensor: usize },
    Deliver { conn: u64, bytes: Vec<u8> },
    Hangup { conn: u64 },
}

struct Conn<T> {
    up_sensor: bool,
    up_collector: bool,
    reader: FrameReader<T>,
    last_due: u64,
}

struct SensorState<T> {
    machine: SensorMachine<T>,
    plan: SensorPlan,
    items: std::vec::IntoIter<T>,
    write_idx: usize,
    connect_idx: usize,
    conn: Option<u64>,
    wait_until: Option<u64>,
    done: bool,
    // logs
    pushed: Vec<T>,
    sealed: Vec<SealEvent>,
    sent_batches: Vec<(u64, u64)>,
    bye_sent: bool,
    accepted: Vec<AcceptedFrame>,
    duplicates: u64,
    hellos: u64,
    byes: u64,
}

/// Drive arbitrary sensor inputs through the faulty virtual transport to
/// completion. The only public entry point generic over the item type.
pub fn run<T: FeedItem + Clone>(inputs: Vec<SensorInput<T>>) -> ChaosOutcome<T> {
    run_in(&Registry::new(), inputs)
}

/// [`run`] reporting telemetry into `registry` instead of a throwaway
/// one, so tests can reconcile metric totals against the run's reports.
pub fn run_in<T: FeedItem + Clone>(
    registry: &Registry,
    inputs: Vec<SensorInput<T>>,
) -> ChaosOutcome<T> {
    let n = inputs.len();
    let collector_cfg = CollectorConfig::new(n as u64);
    let mut core = CollectorCore::<T>::with_registry(&collector_cfg, registry);
    let mut core_open = true;
    let mut delivered: Vec<T> = Vec::new();

    let mut clock = VirtualClock::new();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut conns: BTreeMap<u64, Conn<T>> = BTreeMap::new();
    let mut next_conn: u64 = 0;

    // Sensor-id → input index, for attributing collector outcomes.
    let index_of: BTreeMap<u64, usize> = inputs
        .iter()
        .enumerate()
        .map(|(i, inp)| (inp.config.sensor_id, i))
        .collect();
    assert_eq!(index_of.len(), n, "sensor ids must be distinct");

    let mut states: Vec<SensorState<T>> = Vec::with_capacity(n);
    for (i, input) in inputs.into_iter().enumerate() {
        // Schedule the pushes at their stream times (µs), monotone per
        // sensor; the finish (flush + BYE) lands right after the last
        // push at the same instant.
        let mut prev = 0u64;
        let mut last = 0u64;
        for item in &input.items {
            let t = (item.order_time().max(0.0) * 1e6) as u64;
            let t = t.max(prev);
            prev = t;
            last = t;
            queue.push(t, Ev::Push { sensor: i });
        }
        queue.push(last, Ev::Finish { sensor: i });
        states.push(SensorState {
            machine: SensorMachine::with_registry(input.config, registry),
            plan: input.plan,
            items: input.items.into_iter(),
            write_idx: 0,
            connect_idx: 0,
            conn: None,
            wait_until: None,
            done: false,
            pushed: Vec::new(),
            sealed: Vec::new(),
            sent_batches: Vec::new(),
            bye_sent: false,
            accepted: Vec::new(),
            duplicates: 0,
            hellos: 0,
            byes: 0,
        });
    }

    let mut truncated = false;
    let mut poll_ops = 0u64;

    // Deliver `bytes` on a connection, preserving per-connection FIFO
    // order through the monotone `last_due`.
    fn deliver(
        queue: &mut EventQueue<Ev>,
        last_due: &mut u64,
        conn_id: u64,
        now: u64,
        bytes: Vec<u8>,
    ) {
        let due = (*last_due).max(now + LINK_LATENCY_US);
        *last_due = due;
        queue.push(
            due,
            Ev::Deliver {
                conn: conn_id,
                bytes,
            },
        );
    }

    'run: loop {
        // 1. Apply every event due at this instant.
        while let Some((_, ev)) = queue.pop_due(clock.now()) {
            match ev {
                Ev::Push { sensor } => {
                    let s = &mut states[sensor];
                    let item = s.items.next().expect("push event without item");
                    s.pushed.push(item.clone());
                    if let Some(seal) = s.machine.push(item) {
                        s.sealed.push(seal);
                    }
                }
                Ev::Finish { sensor } => {
                    let s = &mut states[sensor];
                    if let Some(seal) = s.machine.flush() {
                        s.sealed.push(seal);
                    }
                    s.machine.finish();
                }
                Ev::Deliver { conn, bytes } => {
                    let c = match conns.get_mut(&conn) {
                        Some(c) => c,
                        None => continue,
                    };
                    if !c.up_collector {
                        continue;
                    }
                    if !core_open {
                        // The real merge loop has exited; readers die.
                        c.up_collector = false;
                        continue;
                    }
                    c.reader.push(&bytes);
                    loop {
                        match c.reader.next_frame() {
                            Ok(Some(frame)) => {
                                let outcome = core.on_frame(conn, frame, &mut delivered);
                                match outcome {
                                    FrameOutcome::Hello { sensor } => {
                                        states[index_of[&sensor]].hellos += 1;
                                    }
                                    FrameOutcome::Accepted {
                                        sensor,
                                        seq,
                                        items,
                                        late,
                                    } => {
                                        states[index_of[&sensor]].accepted.push(AcceptedFrame {
                                            seq,
                                            items,
                                            late,
                                        });
                                    }
                                    FrameOutcome::Duplicate { sensor, .. } => {
                                        states[index_of[&sensor]].duplicates += 1;
                                    }
                                    FrameOutcome::Bye { sensor } => {
                                        states[index_of[&sensor]].byes += 1;
                                    }
                                    FrameOutcome::Unheralded => {}
                                }
                                if outcome.is_fatal() {
                                    // Poisoned connection: both sides tear
                                    // down; the sensor notices on its next
                                    // write.
                                    c.up_collector = false;
                                    c.up_sensor = false;
                                    core.on_disconnect(conn, &mut delivered);
                                    break;
                                }
                                if core.done() {
                                    core_open = false;
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                core.on_bad_frame(conn, &e);
                                if matches!(e, FeedError::Framing(_)) {
                                    // Unrecoverable stream desync.
                                    c.up_collector = false;
                                    c.up_sensor = false;
                                    core.on_disconnect(conn, &mut delivered);
                                    break;
                                }
                            }
                        }
                    }
                }
                Ev::Hangup { conn } => {
                    if let Some(c) = conns.get_mut(&conn) {
                        if c.up_collector {
                            c.up_collector = false;
                            if core_open {
                                core.on_disconnect(conn, &mut delivered);
                            }
                        }
                    }
                }
            }
        }

        // 2. Poll every machine to quiescence at this instant.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for state in states.iter_mut() {
                loop {
                    poll_ops += 1;
                    assert!(poll_ops < MAX_POLL_OPS, "chaos harness runaway poll loop");
                    let now = clock.now();
                    match state.machine.poll(now) {
                        SensorOp::Connect => {
                            progressed = true;
                            let idx = state.connect_idx;
                            state.connect_idx += 1;
                            if state.plan.connect_fail(idx) {
                                state.machine.on_connect_failed(now);
                            } else {
                                let cid = next_conn;
                                next_conn += 1;
                                conns.insert(
                                    cid,
                                    Conn {
                                        up_sensor: true,
                                        up_collector: true,
                                        reader: FrameReader::new(),
                                        last_due: now,
                                    },
                                );
                                state.conn = Some(cid);
                                state.machine.on_connected(now);
                            }
                        }
                        SensorOp::Write(bytes) => {
                            progressed = true;
                            let cid = state.conn.expect("write while disconnected");
                            if !conns[&cid].up_sensor {
                                // The connection died under the machine.
                                state.machine.on_write_failed(now);
                                state.conn = None;
                                continue;
                            }
                            let idx = state.write_idx;
                            state.write_idx += 1;
                            let op = state.plan.write_op(idx);
                            let mut write_ok = true;
                            {
                                let c = conns.get_mut(&cid).expect("conn exists");
                                match op {
                                    FaultOp::Deliver => {
                                        deliver(&mut queue, &mut c.last_due, cid, now, bytes);
                                    }
                                    FaultOp::Corrupt { offset } => {
                                        let mut b = bytes;
                                        let at = offset as usize % b.len();
                                        b[at] ^= 0xff;
                                        deliver(&mut queue, &mut c.last_due, cid, now, b);
                                    }
                                    FaultOp::Chop { at_permille } => {
                                        if bytes.len() < 2 {
                                            deliver(&mut queue, &mut c.last_due, cid, now, bytes);
                                        } else {
                                            let cut = (bytes.len() * at_permille as usize / 1000)
                                                .clamp(1, bytes.len() - 1);
                                            let tail = bytes[cut..].to_vec();
                                            let head = bytes[..cut].to_vec();
                                            deliver(&mut queue, &mut c.last_due, cid, now, head);
                                            deliver(&mut queue, &mut c.last_due, cid, now, tail);
                                        }
                                    }
                                    FaultOp::Dup => {
                                        deliver(
                                            &mut queue,
                                            &mut c.last_due,
                                            cid,
                                            now,
                                            bytes.clone(),
                                        );
                                        deliver(&mut queue, &mut c.last_due, cid, now, bytes);
                                    }
                                    FaultOp::Stall { us } => {
                                        c.last_due = c.last_due.max(now) + us as u64;
                                        deliver(&mut queue, &mut c.last_due, cid, now, bytes);
                                    }
                                    FaultOp::Reset { keep_permille } => {
                                        let keep = bytes.len() * keep_permille as usize / 1000;
                                        if keep > 0 {
                                            deliver(
                                                &mut queue,
                                                &mut c.last_due,
                                                cid,
                                                now,
                                                bytes[..keep].to_vec(),
                                            );
                                        }
                                        // EOF follows whatever was delivered.
                                        let due = c.last_due.max(now + LINK_LATENCY_US);
                                        queue.push(due, Ev::Hangup { conn: cid });
                                        c.up_sensor = false;
                                        write_ok = false;
                                    }
                                }
                            }
                            if write_ok {
                                match state.machine.on_write_ok() {
                                    Wrote::Hello => {}
                                    Wrote::Batch { seq, items } => {
                                        state.sent_batches.push((seq, items));
                                    }
                                    Wrote::Bye => state.bye_sent = true,
                                }
                            } else {
                                state.machine.on_write_failed(now);
                                state.conn = None;
                            }
                        }
                        SensorOp::WaitUntil(t) => {
                            state.wait_until = Some(t);
                            break;
                        }
                        SensorOp::Idle => {
                            state.wait_until = None;
                            break;
                        }
                        SensorOp::Done => {
                            state.wait_until = None;
                            if !state.done {
                                state.done = true;
                                // Sensor closes its side; EOF reaches the
                                // collector after everything in flight.
                                if let Some(cid) = state.conn.take() {
                                    if let Some(c) = conns.get_mut(&cid) {
                                        c.up_sensor = false;
                                        let due = c.last_due.max(now + LINK_LATENCY_US);
                                        queue.push(due, Ev::Hangup { conn: cid });
                                    }
                                }
                            }
                            break;
                        }
                    }
                }
            }
        }

        // 3. Advance to the next instant, or wind down.
        if queue.is_empty() && states.iter().all(|s| s.done) {
            break;
        }
        let mut next = queue.next_time();
        for s in &states {
            if s.done {
                continue;
            }
            if let Some(t) = s.wait_until {
                next = Some(next.map_or(t, |n: u64| n.min(t)));
            }
        }
        let next = next.unwrap_or_else(|| panic!("chaos harness stuck at t={}", clock.now()));
        if next > VIRTUAL_CAP_US {
            truncated = true;
            for s in &mut states {
                if !s.done {
                    if let Some(seal) = s.machine.flush() {
                        s.sealed.push(seal);
                    }
                    s.machine.abort();
                    s.done = true;
                }
            }
            break 'run;
        }
        clock.advance_to(next.max(clock.now()));
    }

    let report = core.finish(&mut delivered);
    let stopped_early = !core_open && !queue.is_empty();
    ChaosOutcome {
        delivered,
        report,
        end_us: clock.now(),
        truncated,
        stopped_early,
        sensors: states
            .into_iter()
            .map(|s| SensorRun {
                sensor_id: s.machine.sensor(),
                report: s.machine.report(),
                pushed: s.pushed,
                sealed: s.sealed,
                sent_batches: s.sent_batches,
                bye_sent: s.bye_sent,
                accepted: s.accepted,
                duplicates: s.duplicates,
                hellos: s.hellos,
                byes: s.byes,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_delivers_everything_in_merge_order() {
        let cfg = ChaosConfig::default();
        let out = run_seed(0, &FaultProfile::lossless(), &cfg);
        assert!(!out.truncated);
        let pushed: u64 = out.sensors.iter().map(|s| s.pushed.len() as u64).sum();
        assert_eq!(out.delivered.len() as u64, pushed);
        assert!(out
            .delivered
            .windows(2)
            .all(|w| (w[0].time, w[0].sensor) <= (w[1].time, w[1].sensor)));
        assert_eq!(out.report.items_merged, pushed);
        assert_eq!(out.report.total_gap_frames(), 0);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let cfg = ChaosConfig::default();
        let a = run_seed(7, &FaultProfile::heavy(), &cfg);
        let b = run_seed(7, &FaultProfile::heavy(), &cfg);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.report, b.report);
        assert_eq!(a.end_us, b.end_us);
    }

    #[test]
    fn reset_forces_reconnect_and_retransmission() {
        let cfg = ChaosConfig::default();
        let mut plans = vec![SensorPlan::clean(); cfg.sensors as usize];
        // Kill sensor 0's very first data write (HELLO is write 0).
        plans[0].write_ops = vec![FaultOp::Deliver, FaultOp::Reset { keep_permille: 0 }];
        let out = run_planned(1, &cfg, plans);
        assert!(!out.truncated);
        assert!(out.sensors[0].report.connects >= 2, "reset must reconnect");
        // Nothing may be lost: the frame is retransmitted.
        let pushed: u64 = out.sensors.iter().map(|s| s.pushed.len() as u64).sum();
        assert_eq!(out.delivered.len() as u64, pushed);
    }
}
