//! Fault schedules: what the virtual network does to each write.
//!
//! A [`SensorPlan`] is a *concrete* script — one [`FaultOp`] per write
//! the sensor attempts, plus a verdict per connect attempt. Plans are
//! generated from a seed through a [`FaultProfile`] (splitmix64, fully
//! deterministic), but they stay plain data: the minimizer shrinks a
//! failing schedule by replacing ops with [`FaultOp::Deliver`] and
//! re-running, no generator state involved.

/// One write's fate on the virtual link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Deliver the bytes untouched.
    Deliver,
    /// Flip one byte (at `offset % len`) before delivery — the CRC layer
    /// must catch it.
    Corrupt {
        /// Byte position selector.
        offset: u16,
    },
    /// Split the write into two segments at `at_permille/1000` of its
    /// length — exercises the reassembler; must be invisible end-to-end.
    Chop {
        /// Split point, permille of the write length.
        at_permille: u16,
    },
    /// Deliver the bytes twice — the sequence ledger must deduplicate.
    Dup,
    /// Connection reset mid-write: only `keep_permille/1000` of the bytes
    /// arrive, the sensor sees a failed write and reconnects.
    Reset {
        /// Delivered prefix, permille of the write length.
        keep_permille: u16,
    },
    /// Delay this write (and everything after it on the connection) by
    /// `us` microseconds of virtual time.
    Stall {
        /// Added latency, µs.
        us: u32,
    },
}

/// A sensor's complete fault script for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SensorPlan {
    /// Op applied to the i-th write this sensor attempts; writes beyond
    /// the end deliver cleanly.
    pub write_ops: Vec<FaultOp>,
    /// Verdict for the i-th connect attempt (`true` = refused); attempts
    /// beyond the end succeed.
    pub connect_fails: Vec<bool>,
}

impl SensorPlan {
    /// A plan that never interferes.
    pub fn clean() -> SensorPlan {
        SensorPlan::default()
    }

    /// Op for the `idx`-th write.
    pub fn write_op(&self, idx: usize) -> FaultOp {
        self.write_ops.get(idx).copied().unwrap_or(FaultOp::Deliver)
    }

    /// Verdict for the `idx`-th connect attempt.
    pub fn connect_fail(&self, idx: usize) -> bool {
        self.connect_fails.get(idx).copied().unwrap_or(false)
    }

    /// True when the plan injects nothing.
    pub fn is_clean(&self) -> bool {
        self.fault_count() == 0
    }

    /// Number of active injections (non-`Deliver` ops + connect
    /// failures) — the quantity the minimizer drives to a local minimum.
    pub fn fault_count(&self) -> usize {
        self.write_ops
            .iter()
            .filter(|op| !matches!(op, FaultOp::Deliver))
            .count()
            + self.connect_fails.iter().filter(|f| **f).count()
    }
}

/// splitmix64 — tiny, seedable, and stable across platforms; the same
/// generator the feed's backoff jitter uses.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (`n` > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Per-op injection probabilities a seed is expanded through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Profile name (for repro lines and the smoke matrix).
    pub name: &'static str,
    /// Probability a write is corrupted.
    pub p_corrupt: f64,
    /// Probability a write is split in two.
    pub p_chop: f64,
    /// Probability a write is duplicated.
    pub p_dup: f64,
    /// Probability a write resets the connection.
    pub p_reset: f64,
    /// Probability a write stalls the connection.
    pub p_stall: f64,
    /// Upper bound on injected stall, µs.
    pub max_stall_us: u32,
    /// Probability a connect attempt is refused.
    pub p_connect_fail: f64,
    /// Write ops generated per sensor (writes beyond deliver cleanly).
    pub horizon_writes: usize,
    /// Connect verdicts generated per sensor.
    pub horizon_connects: usize,
}

impl FaultProfile {
    /// Segmentation and stalls only: nothing is lost, so the output must
    /// be byte-identical to a faultless run.
    pub fn lossless() -> FaultProfile {
        FaultProfile {
            name: "lossless",
            p_corrupt: 0.0,
            p_chop: 0.45,
            p_dup: 0.0,
            p_reset: 0.0,
            p_stall: 0.15,
            max_stall_us: 40_000,
            p_connect_fail: 0.0,
            horizon_writes: 96,
            horizon_connects: 0,
        }
    }

    /// Occasional faults of every kind.
    pub fn light() -> FaultProfile {
        FaultProfile {
            name: "light",
            p_corrupt: 0.03,
            p_chop: 0.25,
            p_dup: 0.04,
            p_reset: 0.03,
            p_stall: 0.10,
            max_stall_us: 60_000,
            p_connect_fail: 0.10,
            horizon_writes: 96,
            horizon_connects: 8,
        }
    }

    /// Hostile link: frequent corruption, duplication, and resets.
    pub fn heavy() -> FaultProfile {
        FaultProfile {
            name: "heavy",
            p_corrupt: 0.12,
            p_chop: 0.30,
            p_dup: 0.10,
            p_reset: 0.12,
            p_stall: 0.15,
            max_stall_us: 120_000,
            p_connect_fail: 0.25,
            horizon_writes: 128,
            horizon_connects: 16,
        }
    }

    /// Connections that barely stay up: heavy connect refusal plus
    /// resets, driving the full backoff/retransmit machinery.
    pub fn flaky() -> FaultProfile {
        FaultProfile {
            name: "flaky",
            p_corrupt: 0.02,
            p_chop: 0.15,
            p_dup: 0.03,
            p_reset: 0.20,
            p_stall: 0.10,
            max_stall_us: 80_000,
            p_connect_fail: 0.55,
            horizon_writes: 128,
            horizon_connects: 48,
        }
    }

    /// The standard smoke/test matrix.
    pub fn all() -> [FaultProfile; 4] {
        [
            FaultProfile::lossless(),
            FaultProfile::light(),
            FaultProfile::heavy(),
            FaultProfile::flaky(),
        ]
    }

    /// Profile by name (smoke-runner CLI).
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        FaultProfile::all().into_iter().find(|p| p.name == name)
    }
}

/// Expand `(seed, sensor)` through `profile` into a concrete plan. The
/// same triple always yields the same plan.
pub fn plan_for(seed: u64, sensor: u64, profile: &FaultProfile) -> SensorPlan {
    let mut rng = Rng::new(seed ^ sensor.wrapping_mul(0xa076_1d64_78bd_642f));
    let mut write_ops = Vec::with_capacity(profile.horizon_writes);
    for _ in 0..profile.horizon_writes {
        let op = if rng.chance(profile.p_reset) {
            FaultOp::Reset {
                keep_permille: rng.below(1001) as u16,
            }
        } else if rng.chance(profile.p_corrupt) {
            FaultOp::Corrupt {
                offset: rng.below(4096) as u16,
            }
        } else if rng.chance(profile.p_dup) {
            FaultOp::Dup
        } else if rng.chance(profile.p_chop) {
            FaultOp::Chop {
                at_permille: 1 + rng.below(999) as u16,
            }
        } else if rng.chance(profile.p_stall) {
            FaultOp::Stall {
                us: 1 + rng.below(profile.max_stall_us.max(1) as u64) as u32,
            }
        } else {
            FaultOp::Deliver
        };
        write_ops.push(op);
    }
    let connect_fails = (0..profile.horizon_connects)
        .map(|_| rng.chance(profile.p_connect_fail))
        .collect();
    SensorPlan {
        write_ops,
        connect_fails,
    }
}

/// Plans for a whole deployment of `sensors` peers.
pub fn plans_for(seed: u64, sensors: u64, profile: &FaultProfile) -> Vec<SensorPlan> {
    (0..sensors).map(|s| plan_for(seed, s, profile)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let p = FaultProfile::heavy();
        assert_eq!(plan_for(42, 1, &p), plan_for(42, 1, &p));
        assert_ne!(plan_for(42, 1, &p), plan_for(43, 1, &p));
        assert_ne!(plan_for(42, 1, &p), plan_for(42, 2, &p));
    }

    #[test]
    fn lossless_profile_never_loses_bytes() {
        for seed in 0..50 {
            let plan = plan_for(seed, 0, &FaultProfile::lossless());
            assert!(plan.write_ops.iter().all(|op| matches!(
                op,
                FaultOp::Deliver | FaultOp::Chop { .. } | FaultOp::Stall { .. }
            )));
            assert!(plan.connect_fails.is_empty());
        }
    }

    #[test]
    fn fault_count_counts_only_injections() {
        let plan = SensorPlan {
            write_ops: vec![FaultOp::Deliver, FaultOp::Dup, FaultOp::Deliver],
            connect_fails: vec![false, true],
        };
        assert_eq!(plan.fault_count(), 2);
        assert!(!plan.is_clean());
        assert!(SensorPlan::clean().is_clean());
    }
}
