//! Virtual time: a monotone microsecond clock plus a deterministic
//! timed event queue — the scheduler every chaos run executes on.
//!
//! Nothing in the kernel ever sleeps: backoff delays, link latency, and
//! stalls all become timestamps in the [`EventQueue`], and the harness
//! advances the [`VirtualClock`] straight to the next due event. A full
//! reconnect schedule that takes seconds of wall time in the TCP tests
//! replays here in microseconds of real time.

use std::collections::BinaryHeap;

/// Monotone virtual clock, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time (µs).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Jump forward to `t`. Panics on time travel: the harness must only
    /// ever advance to a future (or current) instant.
    pub fn advance_to(&mut self, t: u64) {
        assert!(
            t >= self.now,
            "virtual clock moved backwards: {} -> {t}",
            self.now
        );
        self.now = t;
    }
}

#[derive(Debug)]
struct Entry<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq)
        // pops first. The insertion sequence number makes ordering total
        // and FIFO within an instant — determinism does not depend on
        // the payload type at all.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic timed event queue: events pop in `(time, insertion)`
/// order, so two runs with the same inputs replay identically.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    counter: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            counter: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Schedule `event` at virtual time `time` (µs).
    pub fn push(&mut self, time: u64, event: E) {
        let seq = self.counter;
        self.counter += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Earliest scheduled time, if any.
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, E)> {
        if self.heap.peek().map(|e| e.time <= now).unwrap_or(false) {
            self.heap.pop().map(|e| (e.time, e.event))
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        let mut clock = VirtualClock::new();
        assert_eq!(q.pop_due(clock.now()), None, "nothing due at t=0");
        clock.advance_to(q.next_time().unwrap());
        assert_eq!(q.pop_due(clock.now()), Some((10, "a1")));
        assert_eq!(q.pop_due(clock.now()), Some((10, "a2")));
        assert_eq!(q.pop_due(clock.now()), None);
        clock.advance_to(25);
        assert_eq!(q.pop_due(clock.now()), Some((20, "b")));
        clock.advance_to(30);
        assert_eq!(q.pop_due(clock.now()), Some((30, "c")));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn clock_rejects_time_travel() {
        let mut c = VirtualClock::new();
        c.advance_to(5);
        c.advance_to(4);
    }
}
