//! Release-mode chaos sweep: a fixed matrix of seeds × fault profiles,
//! each run audited by the differential oracle.
//!
//! ```text
//! chaos_smoke [seeds-per-profile] [profile ...]
//! ```
//!
//! Exit code 0 when every run passes; 1 with a minimized repro on the
//! first divergence. Driven by `scripts/chaos-smoke.sh`.

use chaos::{
    check, describe_plans, minimize_plans, plans_for, run_planned, ChaosConfig, FaultProfile,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let seeds: u64 = args
        .next()
        .map(|s| s.parse().expect("seeds-per-profile must be a number"))
        .unwrap_or(50);
    let profiles: Vec<FaultProfile> = {
        let named: Vec<FaultProfile> = args
            .map(|name| {
                FaultProfile::by_name(&name).unwrap_or_else(|| {
                    panic!("unknown profile {name:?} (lossless|light|heavy|flaky)")
                })
            })
            .collect();
        if named.is_empty() {
            FaultProfile::all().to_vec()
        } else {
            named
        }
    };

    let config = ChaosConfig::default();
    let mut runs = 0u64;
    for profile in &profiles {
        let mut agg_delivered = 0u64;
        let mut agg_lost = 0u64;
        let mut agg_late = 0u64;
        let mut agg_connects = 0u64;
        for seed in 0..seeds {
            let plans = plans_for(seed, config.sensors, profile);
            let outcome = run_planned(seed, &config, plans.clone());
            match check(&outcome) {
                Ok(summary) => {
                    runs += 1;
                    agg_delivered += summary.delivered;
                    agg_lost += summary.wire_lost + summary.sensor_dropped;
                    agg_late += summary.late;
                    agg_connects += summary.connects;
                }
                Err(divergence) => {
                    eprintln!("chaos-smoke FAIL: profile={} seed={seed}", profile.name);
                    eprintln!("  divergence: {divergence}");
                    let minimal = minimize_plans(&plans, |candidate| {
                        check(&run_planned(seed, &config, candidate.to_vec())).is_err()
                    });
                    eprintln!("minimized repro (seed={seed}, profile={}):", profile.name);
                    eprint!("{}", describe_plans(&minimal));
                    eprintln!("replay: chaos::run_planned({seed}, &ChaosConfig::default(), plans)");
                    std::process::exit(1);
                }
            }
        }
        println!(
            "chaos-smoke profile={:<9} seeds={seeds} delivered={agg_delivered} \
             accounted_lost={agg_lost} late={agg_late} connects={agg_connects}",
            profile.name
        );
    }
    println!("chaos-smoke PASS: {runs} runs, zero unaccounted divergences");
}
