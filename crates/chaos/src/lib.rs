//! `chaos` — deterministic fault-injection kernel for the feed/pipeline
//! path.
//!
//! The Observatory's ingest path (paper Figure 1: sensors → collector →
//! stream jobs) must not lose data *silently*: the feed protocol promises
//! that every item is either delivered or explicitly accounted for
//! (sensor drop tallies, collector sequence gaps, late-item counts).
//! This crate turns that promise into a machine-checked property.
//!
//! Four pieces, all sans-io and fully deterministic:
//!
//! * **Virtual time** ([`clock`]) — a microsecond clock plus an event
//!   queue; reconnect/backoff schedules that take wall-clock seconds in
//!   the TCP tests replay in microseconds, with zero `sleep()` calls.
//! * **Scripted faults** ([`fault`], [`harness`]) — the sensor state
//!   machines ([`feed::SensorMachine`]) and the collector core
//!   ([`feed::CollectorCore`]) talk through a virtual link that executes
//!   a seed-derived [`fault::SensorPlan`]: byte corruption, arbitrary
//!   segmentation, duplication, stalls, connection resets, and refused
//!   connects.
//! * **Differential oracle** ([`oracle`]) — replays the ground truth
//!   (every push, seal, write) against the collector's final report and
//!   rejects any divergence that is not covered by an explicit loss
//!   ledger entry. A failing seed is shrunk by the built-in
//!   delta-debugger ([`minimize`]) into a one-screen repro.
//! * **Slow-shard axis** ([`slowshard`]) — seeded stall schedules for
//!   one tracker shard of the threaded pipeline, used to check that the
//!   per-shard watermark frontier protocol neither loses nor
//!   double-counts a window when a shard lags.
//! * **Store-crash axis** ([`storecrash`]) — seeded kill points for the
//!   historical store's compactor (after segment write, before manifest
//!   swap, mid-footer torn writes); a recovery differential checks the
//!   re-opened store folds identically to the raw appended windows and
//!   that every swept file is ledgered, never silently dropped.
//! * **Subscriber axis** ([`subscriber`]) — seeded fleets of live
//!   pub/sub subscribers (healthy, slow, stalled, disconnecting,
//!   reconnecting) against the serving broker; checks per-client frame
//!   conservation, typed departure ledgering, and exact snapshot+delta
//!   state convergence on virtual time.
//!
//! Run the full seed × profile matrix with `cargo test -p chaos`, or the
//! release-mode smoke sweep with `scripts/chaos-smoke.sh`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fault;
pub mod harness;
pub mod item;
pub mod minimize;
pub mod oracle;
pub mod slowshard;
pub mod storecrash;
pub mod subscriber;

pub use clock::{EventQueue, VirtualClock};
pub use fault::{plan_for, plans_for, FaultOp, FaultProfile, Rng, SensorPlan};
pub use harness::{
    run, run_in, run_planned, run_planned_in, run_seed, run_seed_in, AcceptedFrame, ChaosConfig,
    ChaosOutcome, SensorInput, SensorRun, LINK_LATENCY_US,
};
pub use item::{probe_stream, ChaosItem};
pub use minimize::{describe_plans, minimize_plans};
pub use oracle::{check, predicted_delivery, Divergence, OracleSummary};
pub use slowshard::{StallInjector, StallPlan};
pub use storecrash::{StoreCrashOutcome, StoreDivergence};
pub use subscriber::{ClientProfile, SubscriberDivergence, SubscriberOutcome};
