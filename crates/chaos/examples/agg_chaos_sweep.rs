//! Release-mode chaos sweep over the federated aggregation tier.
//!
//! Each run ships three virtual collectors' serialized window state
//! through the seeded faulty transport, feeds the survivors to the real
//! `AggregatorCore`, and checks the sealed global view against an
//! independent reference fold of the predicted survivor set:
//!
//! * transport delivery equals the oracle's prediction;
//! * sealed windows equal the reference merge (contributors, datasets,
//!   merged state);
//! * every sealed dataset states its error bound as the sum of the
//!   contributing upstreams' bounds, and no entry's error exceeds it;
//! * chunk loss is accounted as merge conflicts, never silently merged.
//!
//! ```text
//! cargo run --release -p chaos --example agg_chaos_sweep -- [seeds] [profile ...]
//! ```
//!
//! Exit code 0 when every run passes; 1 with the failing seed/profile on
//! the first divergence. Driven by `scripts/agg-chaos-smoke.sh`.

use chaos::{check, plans_for, predicted_delivery, run as chaos_run, FaultProfile, SensorInput};
use dns_observatory::{Dataset, ObservatoryConfig, StateExporter};
use feed::SensorConfig;
use simnet::{SimConfig, Simulation};
use sketchwire::{
    merge_chunks, merge_topk, AggregatorConfig, AggregatorCore, TopKState, WindowState,
};
use std::collections::BTreeMap;

const UPSTREAMS: usize = 3;
const WINDOW: f64 = 0.5;
const DURATION: f64 = 1.8;
const CHUNK_ENTRIES: usize = 8;

fn cfg() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![(Dataset::SrvIp, 120), (Dataset::Qtype, 64)],
        window_secs: WINDOW,
        bloom_gate: false,
        ..ObservatoryConfig::default()
    }
}

fn upstream_states(seed: u64) -> Vec<Vec<WindowState>> {
    let mut exporters: Vec<StateExporter> = (0..UPSTREAMS)
        .map(|u| StateExporter::new(cfg(), u as u64, CHUNK_ENTRIES))
        .collect();
    let mut outs: Vec<Vec<WindowState>> = vec![Vec::new(); UPSTREAMS];
    let mut sim = Simulation::from_config(SimConfig {
        seed,
        ..SimConfig::tiny()
    });
    sim.run(DURATION, &mut |tx| {
        let u = tx.sensor_index(UPSTREAMS);
        exporters[u].ingest(tx, &mut outs[u]);
    });
    for (e, out) in exporters.into_iter().zip(&mut outs) {
        e.finish(out);
    }
    outs
}

/// Per-window expectation from the independent reference fold.
struct RefWindow {
    start: f64,
    upstreams: Vec<u64>,
    datasets: Vec<TopKState>,
    bound_sums: BTreeMap<String, u64>,
}

/// Independent reference fold of the survivor records; returns the
/// per-window expectations plus the predicted merge-conflict count.
fn reference_merge(survivors: &[WindowState]) -> (Vec<RefWindow>, u64) {
    type Sources = BTreeMap<u64, BTreeMap<String, Vec<TopKState>>>;
    let mut windows: BTreeMap<u64, (f64, Sources)> = BTreeMap::new();
    for ws in survivors {
        let us = (ws.start * 1e6).round() as u64;
        let entry = windows.entry(us).or_insert((ws.start, BTreeMap::new()));
        entry
            .1
            .entry(ws.upstream)
            .or_default()
            .entry(ws.topk.dataset.clone())
            .or_default()
            .push(ws.topk.clone());
    }
    let mut conflicts = 0u64;
    let out = windows
        .into_values()
        .map(|(start, sources)| {
            let mut by_dataset: BTreeMap<String, TopKState> = BTreeMap::new();
            let mut bound_sums: BTreeMap<String, u64> = BTreeMap::new();
            let mut upstreams = Vec::new();
            for (upstream, datasets) in sources {
                let mut contributed = false;
                for (name, parts) in datasets {
                    let Ok(assembled) = merge_chunks(&parts) else {
                        conflicts += 1;
                        continue;
                    };
                    *bound_sums.entry(name.clone()).or_default() += assembled.error_bound;
                    let merged = match by_dataset.remove(&name) {
                        None => assembled,
                        Some(current) => {
                            merge_topk(&current, &assembled).expect("identical layouts merge")
                        }
                    };
                    by_dataset.insert(name, merged);
                    contributed = true;
                }
                if contributed {
                    upstreams.push(upstream);
                }
            }
            RefWindow {
                start,
                upstreams,
                datasets: by_dataset.into_values().collect(),
                bound_sums,
            }
        })
        .collect();
    (out, conflicts)
}

/// One seeded run under one profile; returns an error string naming the
/// first violated clause.
fn run_once(seed: u64, profile: &FaultProfile) -> Result<(u64, u64, u64), String> {
    let states = upstream_states(seed);
    let total: u64 = states.iter().map(|s| s.len() as u64).sum();
    let plans = plans_for(seed, UPSTREAMS as u64, profile);
    let inputs = states
        .iter()
        .enumerate()
        .map(|(u, items)| {
            let mut config = SensorConfig::new(u as u64);
            config.batch_items = 1;
            config.buffer_frames = 256;
            config.backoff.seed = seed.wrapping_mul(31).wrapping_add(u as u64);
            config.backoff.base_ms = 2;
            config.backoff.max_ms = 40;
            SensorInput {
                config,
                items: items.clone(),
                plan: plans[u].clone(),
            }
        })
        .collect();
    let outcome = chaos_run(inputs);
    check(&outcome).map_err(|d| format!("transport diverged: {d}"))?;

    let predicted = predicted_delivery(&outcome);
    if outcome.delivered != predicted {
        return Err("delivery diverged from oracle prediction".into());
    }

    let mut core = AggregatorCore::new(&AggregatorConfig::new(UPSTREAMS));
    for ws in outcome.delivered.iter().cloned() {
        core.on_state(ws)
            .map_err(|e| format!("aggregator rejected a survivor record: {e}"))?;
    }
    let mut sealed = Vec::new();
    let report = core.finish(&mut sealed);

    let (want, want_conflicts) = reference_merge(&predicted);
    if sealed.len() != want.len() {
        return Err(format!(
            "sealed {} windows, reference has {}",
            sealed.len(),
            want.len()
        ));
    }
    for (gw, rw) in sealed.iter().zip(&want) {
        let start = rw.start;
        if gw.start != rw.start || gw.upstreams != rw.upstreams {
            return Err(format!("window @{start}: contributors diverged"));
        }
        if gw.datasets != rw.datasets {
            return Err(format!("window @{start}: merged state diverged"));
        }
        for state in &gw.datasets {
            if state.error_bound != rw.bound_sums[&state.dataset] {
                return Err(format!(
                    "window @{start} {}: stated bound {} != sum of contributing bounds {}",
                    state.dataset, state.error_bound, rw.bound_sums[&state.dataset]
                ));
            }
            if state.max_entry_error() > state.error_bound {
                return Err(format!(
                    "window @{start} {}: entry error exceeds the stated bound",
                    state.dataset
                ));
            }
        }
    }
    if report.merge_conflicts != want_conflicts {
        return Err(format!(
            "aggregator counted {} merge conflicts, reference predicts {want_conflicts}",
            report.merge_conflicts
        ));
    }
    if profile.name == "lossless"
        && (outcome.delivered.len() as u64 != total || want_conflicts != 0)
    {
        return Err("lossless schedule lost records or conflicted".into());
    }
    Ok((outcome.delivered.len() as u64, total, want_conflicts))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seeds: u64 = args
        .next()
        .map(|s| s.parse().expect("seeds-per-profile must be a number"))
        .unwrap_or(20);
    let profiles: Vec<FaultProfile> = {
        let named: Vec<FaultProfile> = args
            .map(|name| {
                FaultProfile::by_name(&name).unwrap_or_else(|| {
                    panic!("unknown profile {name:?} (lossless|light|heavy|flaky)")
                })
            })
            .collect();
        if named.is_empty() {
            FaultProfile::all().to_vec()
        } else {
            named
        }
    };

    let mut runs = 0u64;
    for profile in &profiles {
        let mut delivered = 0u64;
        let mut total = 0u64;
        let mut conflicts = 0u64;
        for seed in 0..seeds {
            match run_once(seed, profile) {
                Ok((d, t, c)) => {
                    runs += 1;
                    delivered += d;
                    total += t;
                    conflicts += c;
                }
                Err(why) => {
                    eprintln!("agg-chaos-sweep FAIL: profile={} seed={seed}", profile.name);
                    eprintln!("  {why}");
                    eprintln!(
                        "replay: cargo run --release -p chaos --example agg_chaos_sweep -- {} {}",
                        seed + 1,
                        profile.name
                    );
                    std::process::exit(1);
                }
            }
        }
        println!(
            "agg-chaos-sweep profile={:<9} seeds={seeds} delivered={delivered}/{total} \
             chunk_conflicts={conflicts}",
            profile.name
        );
    }
    println!("agg-chaos-sweep PASS: {runs} runs, aggregator equals reference merge on every one");
}
