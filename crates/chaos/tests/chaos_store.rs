//! Store-crash fault axis: kill the compactor at every seeded point and
//! check the recovery differential (`chaos::storecrash`).
//!
//! The sweep covers ≥ 50 seeds over the learned filesystem-op range of a
//! multi-level compaction — so the kill points land after segment
//! writes, before manifest swaps, and inside torn footer writes — and
//! for each one asserts:
//!
//! * the planned crash actually fired (an axis that injects nothing
//!   proves nothing);
//! * the re-opened store's fold equals the fold of the raw appended
//!   windows, before *and* after the restarted compactor resumes;
//! * the watermark frontier is preserved across the crash;
//! * everything the recovery sweep deletes is ledgered in the
//!   `RecoveryReport` — bounded by the one in-flight tmp file and one
//!   rolled bucket's worth of input orphans.

use chaos::storecrash::{learn_ops, run_seed, store_fold, workload};
use std::path::PathBuf;
use store::{CompactionPolicy, CrashPlan, Store};

const SEEDS: u64 = 64;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dnsobs-chaos-store-{tag}-{}", std::process::id()))
}

/// Hour + day rollups over 26h of windows: the compactor rolls two hour
/// buckets *and* a day bucket, so op indices span every phase at every
/// level.
fn policy() -> CompactionPolicy {
    CompactionPolicy {
        spans_us: vec![3_600_000_000, 86_400_000_000],
    }
}

#[test]
fn crash_sweep_recovers_every_seed() {
    // 26 hours of 10-minute windows over two datasets.
    let batches = workload(156, 5, &["aafqdn", "esld"]);
    let policy = policy();
    let learn_dir = scratch("learn");
    let max_ops = learn_ops(&batches, &policy, &learn_dir).expect("reference run");
    assert!(
        max_ops > SEEDS / 2,
        "op range {max_ops} too small for a meaningful sweep"
    );

    let dir = scratch("sweep");
    let mut fired = 0u64;
    let mut swept_tmp = 0usize;
    let mut swept_orphans = 0usize;
    for seed in 0..SEEDS {
        let outcome = run_seed(seed, &batches, &policy, max_ops, &dir)
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        assert!(outcome.fired, "seed {seed}: crash never fired");
        fired += 1;
        // Ledger bounds: at most the one in-flight tmp write, and at
        // most one rolled bucket's inputs caught mid-unlink (6 ten-min
        // segments per hour bucket at most in this workload's shape,
        // plus the hour inputs of a day bucket).
        assert!(
            outcome.swept_tmp <= 1,
            "seed {seed}: swept {} tmp files",
            outcome.swept_tmp
        );
        assert!(
            outcome.swept_orphans <= 24,
            "seed {seed}: swept {} orphans",
            outcome.swept_orphans
        );
        swept_tmp += outcome.swept_tmp;
        swept_orphans += outcome.swept_orphans;
    }
    assert_eq!(fired, SEEDS);
    // Across the sweep the crash points must actually produce both kinds
    // of debris at least once, or the sweep is not exercising recovery.
    assert!(swept_tmp > 0, "no seed ever left a torn tmp file");
    assert!(swept_orphans > 0, "no seed ever left an orphan segment");

    let _ = std::fs::remove_dir_all(&learn_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_plans_are_deterministic() {
    for seed in 0..SEEDS {
        assert_eq!(
            CrashPlan::from_seed(seed, 1000),
            CrashPlan::from_seed(seed, 1000)
        );
    }
}

/// A crash so early that nothing was compacted must leave the store
/// exactly as appended: same segments, same generation after recovery
/// sweep, clean resume.
#[test]
fn crash_at_first_op_is_a_clean_no_op() {
    let batches = workload(12, 3, &["esld"]);
    let policy = CompactionPolicy {
        spans_us: vec![3_600_000_000],
    };
    let dir = scratch("first-op");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let (mut s, _) = Store::open(&dir).expect("open");
        for b in &batches {
            s.append(b).expect("append");
        }
        let mut fs = store::CrashFs::with_plan(CrashPlan {
            crash_at_op: 0,
            partial_millis: 0,
        });
        let err = store::compact_with(&mut s, &policy, &mut fs).expect_err("must crash");
        assert!(matches!(err, store::StoreError::Crashed));
    }
    let (mut s, report) = Store::open(&dir).expect("reopen");
    // Op 0 is the tmp write of the first rolled bucket, flushed at 0‰ —
    // the sweep may remove that empty tmp file, nothing else.
    assert!(report.removed_orphans.is_empty());
    assert_eq!(s.segments().len(), 12, "no inputs may be lost");
    let reference =
        store::fold_states(&batches.iter().flatten().cloned().collect::<Vec<_>>()).expect("fold");
    assert_eq!(store_fold(&s).expect("fold"), reference);
    store::compact(&mut s, &policy).expect("clean resume");
    assert_eq!(store_fold(&s).expect("fold"), reference);
    let _ = std::fs::remove_dir_all(&dir);
}
