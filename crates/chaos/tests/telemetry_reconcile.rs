//! The telemetry reconciliation axis of the chaos suite: under every
//! fault profile, the metric totals exported through a run's registry
//! must be *byte-exact* mirrors of the run's own accounting — the
//! sensor reports, the collector report, and the differential oracle's
//! loss ledger. No sampled, approximate, or racy telemetry: if the
//! ledger says 17 items died in a send buffer, the counter says 17.

use chaos::{check, run_seed_in, ChaosConfig, ChaosItem, ChaosOutcome, FaultProfile};
use feed::SensorStats;
use telemetry::{Registry, Snapshot};

/// Every clause tying the registry snapshot to the run's ground truth.
fn reconcile(seed: u64, profile: &FaultProfile, snap: &Snapshot, out: &ChaosOutcome<ChaosItem>) {
    let ctx = format!("profile={}, seed={seed}", profile.name);
    let summary = check(out).unwrap_or_else(|d| panic!("oracle divergence ({ctx}): {d}"));

    // --- Sensor side: per-sensor labelled series == the machine's own
    // final report, field by field.
    for s in &out.sensors {
        let sel = format!("{{sensor=\"{}\"}}", s.sensor_id);
        let counter = |name: &str| snap.counter(&format!("{name}{sel}"));
        assert_eq!(
            counter("feed_sensor_pushed_items_total"),
            s.pushed.len() as u64,
            "pushed items ({ctx}, sensor {})",
            s.sensor_id
        );
        assert_eq!(
            counter("feed_sensor_sent_frames_total"),
            s.report.sent_frames,
            "sent frames ({ctx}, sensor {})",
            s.sensor_id
        );
        assert_eq!(
            counter("feed_sensor_sent_items_total"),
            s.report.sent_items,
            "sent items ({ctx}, sensor {})",
            s.sensor_id
        );
        assert_eq!(
            counter("feed_sensor_buffer_dropped_frames_total"),
            s.report.dropped_frames,
            "dropped frames ({ctx}, sensor {})",
            s.sensor_id
        );
        assert_eq!(
            counter("feed_sensor_buffer_dropped_items_total"),
            s.report.dropped_items,
            "dropped items ({ctx}, sensor {})",
            s.sensor_id
        );
        assert_eq!(
            counter("feed_sensor_connects_total"),
            s.report.connects,
            "connects ({ctx}, sensor {})",
            s.sensor_id
        );
    }

    // --- Collector side: aggregate counters == sums over the report's
    // per-sensor ledgers.
    let r = &out.report;
    let total = |f: fn(&SensorStats) -> u64| r.sensors.values().map(f).sum::<u64>();
    let clauses: &[(&str, u64)] = &[
        ("feed_collector_frames_total", total(|s| s.frames)),
        ("feed_collector_items_total", total(|s| s.items)),
        (
            "feed_collector_duplicate_frames_total",
            total(|s| s.duplicate_frames),
        ),
        (
            "feed_collector_gap_recorded_frames_total",
            total(|s| s.gap_frames + s.gap_filled),
        ),
        (
            "feed_collector_gap_filled_frames_total",
            total(|s| s.gap_filled),
        ),
        ("feed_collector_crc_errors_total", total(|s| s.crc_errors)),
        (
            "feed_collector_decode_errors_total",
            total(|s| s.decode_errors),
        ),
        ("feed_collector_late_items_total", total(|s| s.late_items)),
        ("feed_collector_connects_total", total(|s| s.connects)),
        ("feed_collector_byes_total", total(|s| s.byes)),
        ("feed_collector_items_merged_total", r.items_merged),
        (
            "feed_collector_unattributed_errors_total",
            r.unattributed_errors,
        ),
        (
            "feed_collector_unheralded_frames_total",
            r.unheralded_frames,
        ),
        (
            "feed_collector_anonymous_disconnects_total",
            r.anonymous_disconnects,
        ),
    ];
    for (name, expected) in clauses {
        assert_eq!(snap.counter(name), *expected, "{name} ({ctx})");
    }
    assert_eq!(
        r.items_merged,
        out.delivered.len() as u64,
        "merged total vs delivered stream ({ctx})"
    );
    assert_eq!(
        snap.gauge("feed_collector_open_gap_frames"),
        r.total_gap_frames() as f64,
        "open gap gauge ({ctx})"
    );

    // --- Oracle axis: the predicted loss ledger reconciles with the
    // exported totals. Conservation first, then each category against
    // the counter that claims to track it.
    assert_eq!(
        summary.pushed,
        summary.delivered + summary.late + summary.sensor_dropped + summary.wire_lost,
        "oracle conservation law ({ctx})"
    );
    assert_eq!(
        summary.sensor_dropped,
        snap.counter_sum("feed_sensor_buffer_dropped_items_total{"),
        "oracle sensor drops vs sensor counters ({ctx})"
    );
    assert_eq!(
        summary.crc_errors,
        snap.counter("feed_collector_crc_errors_total"),
        "oracle crc vs collector counter ({ctx})"
    );
    assert_eq!(
        summary.duplicate_frames,
        snap.counter("feed_collector_duplicate_frames_total"),
        "oracle duplicates vs collector counter ({ctx})"
    );
    assert_eq!(
        summary.late,
        snap.counter("feed_collector_late_items_total"),
        "oracle late items vs collector counter ({ctx})"
    );
    assert_eq!(
        summary.delivered,
        snap.counter("feed_collector_items_merged_total"),
        "oracle delivered vs merge counter ({ctx})"
    );
    assert_eq!(
        summary.pushed,
        snap.counter_sum("feed_sensor_pushed_items_total{"),
        "oracle pushed vs sensor counters ({ctx})"
    );
}

/// One reconciled run: fresh registry, standard deployment.
fn run_reconciled(
    seed: u64,
    profile: &FaultProfile,
    config: &ChaosConfig,
) -> ChaosOutcome<ChaosItem> {
    let registry = Registry::new();
    let out = run_seed_in(&registry, seed, profile, config);
    assert!(
        !out.truncated,
        "profile={}, seed={seed} wedged",
        profile.name
    );
    reconcile(seed, profile, &registry.snapshot(0), &out);
    out
}

/// Acceptance criterion: metric totals reconcile exactly with the
/// drop/gap ledger on ≥ 50 seeds per fault class (20 seeds × 3 lossy
/// profiles = 60 runs, plus lossless as a control).
#[test]
fn telemetry_reconciles_on_60_lossy_schedules() {
    let config = ChaosConfig::default();
    let mut dropped = 0u64;
    let mut gaps = 0u64;
    for profile in [
        FaultProfile::light(),
        FaultProfile::heavy(),
        FaultProfile::flaky(),
    ] {
        for seed in 0..20 {
            let out = run_reconciled(seed, &profile, &config);
            dropped += out
                .sensors
                .iter()
                .map(|s| s.report.dropped_items)
                .sum::<u64>();
            gaps += out.report.total_gap_frames();
        }
    }
    // The matrix must exercise the loss ledger, not coast on clean runs.
    assert!(dropped > 0, "no sensor-side drops across the matrix");
    assert!(gaps > 0, "no collector gaps across the matrix");
}

#[test]
fn telemetry_reconciles_on_lossless_control() {
    let config = ChaosConfig::default();
    for seed in 0..5 {
        let out = run_reconciled(seed, &FaultProfile::lossless(), &config);
        assert_eq!(
            out.report.total_gap_frames(),
            0,
            "lossless control must not gap (seed {seed})"
        );
    }
}

/// Stressed shapes: tiny buffers force heavy sensor-side drops; the
/// counters must track the ledger through the abort/flush paths too.
#[test]
fn telemetry_reconciles_under_stressed_configs() {
    let config = ChaosConfig {
        sensors: 4,
        items_per_sensor: 50,
        batch_items: 3,
        buffer_frames: 2,
    };
    for seed in 0..10 {
        run_reconciled(seed, &FaultProfile::flaky(), &config);
    }
}
