//! The stall watchdog under virtual time: the sans-io
//! [`telemetry::WatchdogCore`] is ticked with [`chaos::VirtualClock`]
//! instants around a real chaos run, proving the liveness story end to
//! end without a single wall-clock sleep — a wedged collector raises
//! exactly one stall, and the next processed event clears it. The same
//! virtual time drives the [`telemetry::RateLimiter`] behind the
//! operator warning paths (sensor drop lines, collector decode lines).

use chaos::{run_seed_in, ChaosConfig, FaultProfile, VirtualClock};
use telemetry::{RateLimiter, Registry, StallEvent, WatchdogCore};

const THRESHOLD_US: u64 = 5_000_000;

#[test]
fn collector_heartbeat_stalls_once_and_recovers_after_a_run() {
    let registry = Registry::new();
    // The collector's liveness heartbeat: every processed event bumps it.
    let heartbeat = registry.counter("feed_collector_events_total");

    let mut clock = VirtualClock::new();
    let mut dog = WatchdogCore::new();
    dog.watch_counter("collector_events", heartbeat, THRESHOLD_US, clock.now());

    // Idle but under threshold: silent.
    clock.advance_to(THRESHOLD_US - 1);
    assert!(dog.tick(clock.now()).is_empty());

    // Threshold reached with no traffic: exactly one stall, then quiet
    // no matter how long the freeze lasts.
    clock.advance_to(THRESHOLD_US);
    let events = dog.tick(clock.now());
    assert_eq!(
        events,
        vec![StallEvent::Stalled {
            name: "collector_events".to_string(),
            stalled_for_us: THRESHOLD_US,
            at_value: 0,
        }]
    );
    clock.advance_to(10 * THRESHOLD_US);
    assert!(dog.tick(clock.now()).is_empty());
    assert_eq!(dog.stalled(), vec!["collector_events".to_string()]);

    // A real run feeds the registry; the heartbeat moves and the stall
    // clears on the next tick.
    let out = run_seed_in(
        &registry,
        3,
        &FaultProfile::heavy(),
        &ChaosConfig::default(),
    );
    assert!(!out.truncated);
    clock.advance_to(10 * THRESHOLD_US + out.end_us);
    let events = dog.tick(clock.now());
    assert_eq!(events.len(), 1);
    assert!(
        matches!(&events[0], StallEvent::Recovered { name, stalled_for_us } if name == "collector_events" && *stalled_for_us == 10 * THRESHOLD_US + out.end_us),
        "expected recovery, got {events:?}"
    );
    assert!(dog.stalled().is_empty());
}

/// A stage that wedges, recovers, and wedges again must raise one alarm
/// *per freeze*: strictly alternating Stalled/Recovered transitions with
/// exact durations and frozen values, never a duplicate mid-stall.
#[test]
fn watchdog_reports_each_stall_and_recovery_across_cycles() {
    let registry = Registry::new();
    let heartbeat = registry.counter("pipeline_records_total");
    let mut clock = VirtualClock::new();
    let mut dog = WatchdogCore::new();
    dog.watch_counter(
        "pipeline_records",
        heartbeat.clone(),
        THRESHOLD_US,
        clock.now(),
    );

    let mut transitions = Vec::new();
    let mut expected = Vec::new();
    let mut value = 0u64;
    let mut last_progress = clock.now();
    for cycle in 1..=3u64 {
        // Freeze past the threshold (a little longer each cycle).
        let extra = cycle * 1_000;
        clock.advance_to(last_progress + THRESHOLD_US + extra);
        transitions.extend(dog.tick(clock.now()));
        expected.push(StallEvent::Stalled {
            name: "pipeline_records".to_string(),
            stalled_for_us: THRESHOLD_US + extra,
            at_value: value,
        });
        // Still frozen: the alarm already fired, further ticks are quiet.
        clock.advance_to(clock.now() + THRESHOLD_US);
        assert!(
            dog.tick(clock.now()).is_empty(),
            "cycle {cycle}: duplicate stall"
        );
        assert_eq!(dog.stalled(), vec!["pipeline_records".to_string()]);
        // Progress clears the stall on the very next tick.
        heartbeat.inc(cycle);
        value += cycle;
        clock.advance_to(clock.now() + 1);
        transitions.extend(dog.tick(clock.now()));
        expected.push(StallEvent::Recovered {
            name: "pipeline_records".to_string(),
            stalled_for_us: clock.now() - last_progress,
        });
        assert!(
            dog.stalled().is_empty(),
            "cycle {cycle}: stall did not clear"
        );
        last_progress = clock.now();
    }
    assert_eq!(transitions, expected);
}

/// Two watches with different thresholds trip and clear independently —
/// including a recovery and a fresh stall surfacing in the same tick.
#[test]
fn watches_stall_and_recover_independently() {
    let registry = Registry::new();
    let collector = registry.counter("feed_collector_events_total");
    let aggregator = registry.counter("agg_records_total");
    let mut clock = VirtualClock::new();
    let mut dog = WatchdogCore::new();
    dog.watch_counter("collector", collector.clone(), THRESHOLD_US, clock.now());
    dog.watch_counter(
        "aggregator",
        aggregator.clone(),
        2 * THRESHOLD_US,
        clock.now(),
    );

    // Only the collector's heartbeat moves: the aggregator alone trips,
    // at its longer threshold, exactly once.
    for i in 1..=4u64 {
        collector.inc(1);
        clock.advance_to(i * THRESHOLD_US);
        let events = dog.tick(clock.now());
        if i == 2 {
            assert_eq!(
                events,
                vec![StallEvent::Stalled {
                    name: "aggregator".to_string(),
                    stalled_for_us: 2 * THRESHOLD_US,
                    at_value: 0,
                }]
            );
        } else {
            assert!(events.is_empty(), "tick {i}: {events:?}");
        }
    }
    assert_eq!(dog.stalled(), vec!["aggregator".to_string()]);

    // The aggregator catches up while the collector freezes: one tick
    // carries both the new stall and the recovery.
    aggregator.inc(7);
    clock.advance_to(5 * THRESHOLD_US);
    assert_eq!(
        dog.tick(clock.now()),
        vec![
            StallEvent::Stalled {
                name: "collector".to_string(),
                stalled_for_us: THRESHOLD_US,
                at_value: 4,
            },
            StallEvent::Recovered {
                name: "aggregator".to_string(),
                stalled_for_us: 5 * THRESHOLD_US,
            },
        ]
    );
    assert_eq!(dog.stalled(), vec!["collector".to_string()]);
}

/// The warning paths (sensor drop lines, collector decode lines) emit at
/// most one line per interval and report the swallowed tally on the next
/// allowed line — a drop storm must not become a stderr storm.
#[test]
fn warning_ratelimit_carries_suppressed_counts_across_bursts() {
    const INTERVAL_US: u64 = 5_000_000; // the warn paths' interval
    let mut clock = VirtualClock::new();
    let mut warn = RateLimiter::new(INTERVAL_US);

    // First warning always passes, with nothing suppressed behind it.
    assert_eq!(warn.allow(clock.now()), Some(0));
    // A 100-drop burst inside the interval: every one suppressed.
    for i in 1..=100u64 {
        clock.advance_to(i * 1_000);
        assert_eq!(warn.allow(clock.now()), None, "drop {i} leaked");
    }
    // The next allowed line reports the whole swallowed burst.
    clock.advance_to(INTERVAL_US);
    assert_eq!(warn.allow(clock.now()), Some(100));
    // After a quiet stretch a lone drop warns immediately, tally reset.
    clock.advance_to(10 * INTERVAL_US);
    assert_eq!(warn.allow(clock.now()), Some(0));
}

/// The warn-path clocks are wall clocks; a step backwards (NTP, VM
/// migration) must neither panic nor re-arm the limiter early.
#[test]
fn warning_ratelimit_tolerates_clock_regression() {
    let mut warn = RateLimiter::new(1_000);
    assert_eq!(warn.allow(5_000), Some(0));
    assert_eq!(warn.allow(4_000), None, "regressed clock re-armed early");
    assert_eq!(warn.allow(5_999), None);
    assert_eq!(warn.allow(6_000), Some(2));
}

#[test]
fn steady_traffic_never_trips_the_watchdog() {
    let registry = Registry::new();
    let heartbeat = registry.counter("feed_collector_events_total");
    let mut clock = VirtualClock::new();
    let mut dog = WatchdogCore::new();
    dog.watch_counter("collector_events", heartbeat, THRESHOLD_US, clock.now());

    // One run per virtual "interval": the heartbeat moves every tick, so
    // the watchdog stays silent across an arbitrarily long horizon.
    for seed in 0..5u64 {
        run_seed_in(
            &registry,
            seed,
            &FaultProfile::light(),
            &ChaosConfig::default(),
        );
        clock.advance_to(clock.now() + THRESHOLD_US - 1);
        assert!(dog.tick(clock.now()).is_empty(), "seed {seed} tripped");
    }
}
