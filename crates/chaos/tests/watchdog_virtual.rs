//! The stall watchdog under virtual time: the sans-io
//! [`telemetry::WatchdogCore`] is ticked with [`chaos::VirtualClock`]
//! instants around a real chaos run, proving the liveness story end to
//! end without a single wall-clock sleep — a wedged collector raises
//! exactly one stall, and the next processed event clears it.

use chaos::{run_seed_in, ChaosConfig, FaultProfile, VirtualClock};
use telemetry::{Registry, StallEvent, WatchdogCore};

const THRESHOLD_US: u64 = 5_000_000;

#[test]
fn collector_heartbeat_stalls_once_and_recovers_after_a_run() {
    let registry = Registry::new();
    // The collector's liveness heartbeat: every processed event bumps it.
    let heartbeat = registry.counter("feed_collector_events_total");

    let mut clock = VirtualClock::new();
    let mut dog = WatchdogCore::new();
    dog.watch_counter("collector_events", heartbeat, THRESHOLD_US, clock.now());

    // Idle but under threshold: silent.
    clock.advance_to(THRESHOLD_US - 1);
    assert!(dog.tick(clock.now()).is_empty());

    // Threshold reached with no traffic: exactly one stall, then quiet
    // no matter how long the freeze lasts.
    clock.advance_to(THRESHOLD_US);
    let events = dog.tick(clock.now());
    assert_eq!(
        events,
        vec![StallEvent::Stalled {
            name: "collector_events".to_string(),
            stalled_for_us: THRESHOLD_US,
            at_value: 0,
        }]
    );
    clock.advance_to(10 * THRESHOLD_US);
    assert!(dog.tick(clock.now()).is_empty());
    assert_eq!(dog.stalled(), vec!["collector_events".to_string()]);

    // A real run feeds the registry; the heartbeat moves and the stall
    // clears on the next tick.
    let out = run_seed_in(
        &registry,
        3,
        &FaultProfile::heavy(),
        &ChaosConfig::default(),
    );
    assert!(!out.truncated);
    clock.advance_to(10 * THRESHOLD_US + out.end_us);
    let events = dog.tick(clock.now());
    assert_eq!(events.len(), 1);
    assert!(
        matches!(&events[0], StallEvent::Recovered { name, stalled_for_us } if name == "collector_events" && *stalled_for_us == 10 * THRESHOLD_US + out.end_us),
        "expected recovery, got {events:?}"
    );
    assert!(dog.stalled().is_empty());
}

#[test]
fn steady_traffic_never_trips_the_watchdog() {
    let registry = Registry::new();
    let heartbeat = registry.counter("feed_collector_events_total");
    let mut clock = VirtualClock::new();
    let mut dog = WatchdogCore::new();
    dog.watch_counter("collector_events", heartbeat, THRESHOLD_US, clock.now());

    // One run per virtual "interval": the heartbeat moves every tick, so
    // the watchdog stays silent across an arbitrarily long horizon.
    for seed in 0..5u64 {
        run_seed_in(
            &registry,
            seed,
            &FaultProfile::light(),
            &ChaosConfig::default(),
        );
        clock.advance_to(clock.now() + THRESHOLD_US - 1);
        assert!(dog.tick(clock.now()).is_empty(), "seed {seed} tripped");
    }
}
