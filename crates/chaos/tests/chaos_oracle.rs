//! The chaos acceptance suite: the differential oracle must pass on a
//! broad matrix of seeded fault schedules, catch deliberately injected
//! accounting bugs (mutation checks), and replay identically per seed.
//!
//! A failing schedule is minimized before panicking, so the assertion
//! message is a ready-to-paste repro: the seed, the profile, and the
//! smallest set of injections that still diverges.

use chaos::{
    check, describe_plans, minimize_plans, plans_for, run_planned, run_seed, ChaosConfig,
    ChaosItem, ChaosOutcome, Divergence, FaultOp, FaultProfile, SensorPlan,
};
use proptest::prelude::*;

/// Run one seeded schedule; on divergence, minimize and panic with a
/// human-readable repro.
fn audit_or_die(seed: u64, profile: &FaultProfile, config: &ChaosConfig) -> chaos::OracleSummary {
    let plans = plans_for(seed, config.sensors, profile);
    let outcome = run_planned(seed, config, plans.clone());
    match check(&outcome) {
        Ok(summary) => summary,
        Err(divergence) => {
            let minimal = minimize_plans(&plans, |candidate| {
                check(&run_planned(seed, config, candidate.to_vec())).is_err()
            });
            panic!(
                "oracle divergence (profile={}, seed={seed}): {divergence}\n\
                 minimized repro:\n{}replay: chaos::run_planned({seed}, \
                 &ChaosConfig::default(), plans)",
                profile.name,
                describe_plans(&minimal),
            );
        }
    }
}

/// Acceptance criterion: ≥ 200 distinct seeded fault schedules audited
/// with zero unaccounted divergences (4 profiles × 55 seeds = 220).
#[test]
fn oracle_passes_on_220_seeded_fault_schedules() {
    let config = ChaosConfig::default();
    let mut runs = 0u64;
    let mut delivered = 0u64;
    let mut accounted_lost = 0u64;
    for profile in FaultProfile::all() {
        for seed in 0..55 {
            let summary = audit_or_die(seed, &profile, &config);
            runs += 1;
            delivered += summary.delivered;
            accounted_lost += summary.wire_lost + summary.sensor_dropped;
        }
    }
    assert_eq!(runs, 220);
    // The matrix must actually exercise loss, not coast on clean runs.
    assert!(delivered > 0, "no items delivered across the whole matrix");
    assert!(
        accounted_lost > 0,
        "no loss injected anywhere — the fault profiles are not biting"
    );
}

/// Schedules must also hold up under non-default shapes: more sensors,
/// odd batch sizes, tiny buffers (more sensor-side drops).
#[test]
fn oracle_passes_on_stressed_configs() {
    let configs = [
        ChaosConfig {
            sensors: 5,
            items_per_sensor: 37,
            batch_items: 3,
            buffer_frames: 2,
        },
        ChaosConfig {
            sensors: 1,
            items_per_sensor: 80,
            batch_items: 7,
            buffer_frames: 4,
        },
        ChaosConfig {
            sensors: 4,
            items_per_sensor: 24,
            batch_items: 1,
            buffer_frames: 1,
        },
    ];
    for config in &configs {
        for profile in FaultProfile::all() {
            for seed in 100..106 {
                audit_or_die(seed, &profile, config);
            }
        }
    }
}

/// The same seed must produce byte-identical outcomes every time — the
/// whole point of virtual time.
#[test]
fn seeded_runs_replay_identically() {
    let config = ChaosConfig::default();
    for profile in FaultProfile::all() {
        let a = run_seed(17, &profile, &config);
        let b = run_seed(17, &profile, &config);
        assert_eq!(a.delivered, b.delivered, "profile {}", profile.name);
        assert_eq!(a.end_us, b.end_us, "profile {}", profile.name);
        assert_eq!(
            format!("{:?}", a.report),
            format!("{:?}", b.report),
            "profile {}",
            profile.name
        );
    }
}

/// A lossless schedule (stalls and segmentation only — nothing is ever
/// corrupted, reset, or refused) must deliver every pushed item.
#[test]
fn lossless_profile_delivers_everything() {
    let config = ChaosConfig::default();
    let profile = FaultProfile::lossless();
    for seed in 0..25 {
        let summary = audit_or_die(seed, &profile, &config);
        assert_eq!(
            summary.delivered,
            config.sensors * config.items_per_sensor,
            "lossless seed {seed} lost items"
        );
        assert_eq!(summary.late, 0, "lossless seed {seed} dropped late items");
    }
}

// ---------------------------------------------------------------------
// Mutation checks: tamper with a passing run's books and the oracle must
// refuse them. Each mutation models a real accounting-bug shape.
// ---------------------------------------------------------------------

/// A heavy-profile run that actually recorded a gap (so gap mutations
/// have something to erase).
fn run_with_gaps() -> ChaosOutcome<ChaosItem> {
    let config = ChaosConfig::default();
    for seed in 0..500 {
        let outcome = run_seed(seed, &FaultProfile::heavy(), &config);
        if check(&outcome).is_err() {
            continue; // truncated runs etc. are useless as a base
        }
        let has_gap = outcome.report.sensors.values().any(|s| s.gap_frames > 0);
        if has_gap {
            return outcome;
        }
    }
    panic!("no heavy-profile seed in 0..500 produced a gap — profiles miscalibrated");
}

/// Ledger "forgets" a loss: a recorded gap disappears along with its
/// frame count, exactly as if `advance_to` never ran. The lost frames
/// are now invisible → the oracle must report silent loss.
#[test]
fn mutation_forgotten_gap_is_caught() {
    let mut outcome = run_with_gaps();
    let sensor = *outcome
        .report
        .sensors
        .iter()
        .find(|(_, s)| s.gap_frames > 0)
        .map(|(id, _)| id)
        .unwrap();
    {
        let stats = outcome.report.sensors.get_mut(&sensor).unwrap();
        stats.gap_frames = 0;
        stats.gaps.clear();
    }
    match check(&outcome) {
        Err(Divergence::SilentLoss { sensor: s, .. }) => assert_eq!(s, sensor),
        other => panic!("forgotten gap not caught as silent loss: {other:?}"),
    }
}

/// Ledger keeps the gap ranges but zeroes the counter — internal
/// inconsistency, caught before any frame classification runs.
#[test]
fn mutation_gap_counter_drift_is_caught() {
    let mut outcome = run_with_gaps();
    let stats = outcome
        .report
        .sensors
        .values_mut()
        .find(|s| s.gap_frames > 0)
        .unwrap();
    stats.gap_frames -= 1;
    assert!(
        matches!(check(&outcome), Err(Divergence::LedgerInconsistent { .. })),
        "gap_frames drift not caught"
    );
}

/// The collector inflates its merge total (double-counting bug shape).
#[test]
fn mutation_inflated_merge_total_is_caught() {
    let mut outcome = run_seed(3, &FaultProfile::light(), &ChaosConfig::default());
    check(&outcome).expect("base run must pass");
    outcome.report.items_merged += 1;
    assert!(
        matches!(check(&outcome), Err(Divergence::CountMismatch { .. })),
        "inflated items_merged not caught"
    );
}

/// An item silently vanishes from the delivered stream (the classic
/// merge-drops-without-accounting bug shape).
#[test]
fn mutation_vanished_delivery_is_caught() {
    let mut outcome = run_seed(3, &FaultProfile::light(), &ChaosConfig::default());
    check(&outcome).expect("base run must pass");
    assert!(!outcome.delivered.is_empty());
    let mid = outcome.delivered.len() / 2;
    outcome.delivered.remove(mid);
    assert!(
        check(&outcome).is_err(),
        "removing a delivered item went unnoticed"
    );
}

/// Two delivered items swap places: same multiset, wrong order. The
/// value-replay clause must still refuse it.
#[test]
fn mutation_reordered_delivery_is_caught() {
    let mut outcome = run_seed(3, &FaultProfile::light(), &ChaosConfig::default());
    check(&outcome).expect("base run must pass");
    assert!(outcome.delivered.len() >= 2);
    outcome.delivered.swap(0, 1);
    assert!(
        matches!(check(&outcome), Err(Divergence::ValueMismatch { .. })),
        "reordered delivery not caught"
    );
}

/// The exact bug shape the oracle originally surfaced in the collector:
/// an accepted frame is re-booked as a retransmit duplicate, so its
/// items exist in the output with no accepted frame to justify them.
#[test]
fn mutation_misbooked_duplicate_is_caught() {
    let mut outcome = run_seed(3, &FaultProfile::light(), &ChaosConfig::default());
    check(&outcome).expect("base run must pass");
    let run = outcome
        .sensors
        .iter_mut()
        .find(|r| !r.accepted.is_empty())
        .expect("some sensor accepted a frame");
    let frame = run.accepted.pop().unwrap();
    run.duplicates += 1;
    let sensor = run.sensor_id;
    {
        let stats = outcome.report.sensors.get_mut(&sensor).unwrap();
        stats.frames -= 1;
        stats.items -= frame.items;
        stats.duplicate_frames += 1;
    }
    assert!(
        check(&outcome).is_err(),
        "re-booking an accepted frame as a duplicate went unnoticed"
    );
}

// ---------------------------------------------------------------------
// Regression: the overtaken-connection bug (flaky seed 9). A stalled
// connection's in-flight HELLO+frames surface *after* the replacement
// connection's HELLO baselined the ledger above them; before the fix the
// ledger booked the late frames as duplicates and their items vanished.
// ---------------------------------------------------------------------

/// The minimized repro the oracle produced, pinned exactly: sensor 2's
/// first write stalls 65.22 ms, its fourth write is cut short by a
/// reset. The fixed ledger must lower its baseline, record the gap, and
/// fill it when the stalled bytes surface.
#[test]
fn regression_overtaken_connection_is_gap_filled() {
    let config = ChaosConfig::default();
    let mut plans = vec![
        SensorPlan::clean(),
        SensorPlan::clean(),
        SensorPlan::clean(),
    ];
    plans[2].write_ops = vec![
        FaultOp::Stall { us: 65_220 },
        FaultOp::Deliver,
        FaultOp::Deliver,
        FaultOp::Reset { keep_permille: 394 },
    ];
    let outcome = run_planned(9, &config, plans);
    check(&outcome).expect("overtaken-connection repro must be fully accounted");
    let stats = &outcome.report.sensors[&2];
    assert!(
        stats.gap_filled > 0,
        "the overtaken connection's frames never gap-filled: {stats:?}"
    );
}

/// Second oracle-surfaced bug (flaky seed 296105, found by the property
/// below, minimized): a connection whose stalled HELLO never surfaces is
/// reset; the sensor — whose local writes all "succeeded" — evicts the
/// written frames from its retransmit buffer and reconnects announcing
/// an advanced `next_seq`. The collector baselines above frames it
/// never saw, and before the fix had *no record at all* that they might
/// have existed. Now every never-heralded connection's disconnect is
/// counted, which is the only evidence of such loss a receiver can have.
#[test]
fn regression_vanished_connection_loss_is_evidenced() {
    let config = ChaosConfig {
        sensors: 1,
        items_per_sensor: 30,
        batch_items: 5,
        buffer_frames: 4,
    };
    let mut plan = SensorPlan::clean();
    plan.write_ops = vec![
        FaultOp::Reset { keep_permille: 51 },
        FaultOp::Stall { us: 70_605 },
        FaultOp::Deliver,
        FaultOp::Deliver,
        FaultOp::Deliver,
        FaultOp::Reset { keep_permille: 359 },
    ];
    let outcome = run_planned(296_105, &config, vec![plan]);
    check(&outcome).expect("vanished-connection repro must be fully accounted");
    assert!(
        outcome.report.anonymous_disconnects > 0,
        "the swallowed connections left no trace: {:?}",
        outcome.report
    );
}

/// The original unminimized failing schedule, pinned too.
#[test]
fn regression_flaky_seed_9_is_accounted() {
    let config = ChaosConfig::default();
    let summary = audit_or_die(9, &FaultProfile::flaky(), &config);
    assert!(summary.connects > config.sensors, "seed 9 must reconnect");
}

// ---------------------------------------------------------------------
// Property: any seed under any profile stays accounted, including
// profiles sampled outside the fixed smoke matrix's seed range.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_random_schedules_stay_accounted(
        seed in 1_000u64..1_000_000,
        profile_idx in 0usize..4,
        sensors in 1u64..5,
        batch_items in 1usize..6,
    ) {
        let profile = &FaultProfile::all()[profile_idx];
        let config = ChaosConfig {
            sensors,
            items_per_sensor: 30,
            batch_items,
            buffer_frames: 4,
        };
        let plans = plans_for(seed, config.sensors, profile);
        let outcome = run_planned(seed, &config, plans.clone());
        if let Err(divergence) = check(&outcome) {
            let minimal = minimize_plans(&plans, |candidate| {
                check(&run_planned(seed, &config, candidate.to_vec())).is_err()
            });
            prop_assert!(
                false,
                "oracle divergence (profile={}, seed={seed}, sensors={sensors}, \
                 batch_items={batch_items}): {divergence}\nminimized repro:\n{}",
                profile.name,
                describe_plans(&minimal),
            );
        }
    }
}
