//! The trace-conservation law, pinned differentially under faults.
//!
//! Three virtual forwarding collectors ship window state through the
//! seeded faulty transport into a *traced* `AggregatorCore` driven on
//! virtual time. The flight-recorder events must then balance against
//! the aggregator's own ledger, byte for byte:
//!
//! * every `ingest` event is one accepted record — counts equal;
//! * every window with at least one `ingest` terminates in **exactly
//!   one** terminal event (`conflict` when chunks went missing, `seal`
//!   otherwise), whose payload is that window's record count;
//! * `drop` events equal the late-record count, `mark` events the
//!   rejected count;
//! * summed per-window lineage conflicts equal the ledger's
//!   `merge_conflicts`;
//! * and tracing is a pure observer: the sealed output equals an
//!   untraced run over the same survivor stream.

use chaos::{check, plans_for, run as chaos_run, FaultProfile, SensorInput};
use dns_observatory::{Dataset, ObservatoryConfig, StateExporter};
use feed::SensorConfig;
use simnet::{SimConfig, Simulation};
use sketchwire::{AggregatorConfig, AggregatorCore, GlobalWindow, WindowState};
use std::collections::BTreeMap;
use telemetry::trace::{TraceEvent, TraceKind, TraceRing};

const UPSTREAMS: usize = 3;
const WINDOW: f64 = 0.5;
const DURATION: f64 = 1.8;
const CHUNK_ENTRIES: usize = 8;

fn cfg() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![(Dataset::SrvIp, 120), (Dataset::Qtype, 64)],
        window_secs: WINDOW,
        bloom_gate: false,
        ..ObservatoryConfig::default()
    }
}

fn upstream_states(seed: u64) -> Vec<Vec<WindowState>> {
    let mut exporters: Vec<StateExporter> = (0..UPSTREAMS)
        .map(|u| StateExporter::new(cfg(), u as u64, CHUNK_ENTRIES))
        .collect();
    let mut outs: Vec<Vec<WindowState>> = vec![Vec::new(); UPSTREAMS];
    let mut sim = Simulation::from_config(SimConfig {
        seed,
        ..SimConfig::tiny()
    });
    sim.run(DURATION, &mut |tx| {
        let u = tx.sensor_index(UPSTREAMS);
        exporters[u].ingest(tx, &mut outs[u]);
    });
    for (e, out) in exporters.into_iter().zip(&mut outs) {
        e.finish(out);
    }
    outs
}

fn survivors(seed: u64, profile: &FaultProfile) -> Vec<WindowState> {
    let states = upstream_states(seed);
    let plans = plans_for(seed, UPSTREAMS as u64, profile);
    let inputs = states
        .iter()
        .enumerate()
        .map(|(u, items)| {
            let mut config = SensorConfig::new(u as u64);
            config.batch_items = 1;
            config.buffer_frames = 256;
            config.backoff.seed = seed.wrapping_mul(31).wrapping_add(u as u64);
            config.backoff.base_ms = 2;
            config.backoff.max_ms = 40;
            SensorInput {
                config,
                items: items.clone(),
                plan: plans[u].clone(),
            }
        })
        .collect();
    let outcome = chaos_run(inputs);
    check(&outcome).unwrap_or_else(|d| {
        panic!(
            "chaos run diverged (seed={seed}, profile={}): {d}",
            profile.name
        )
    });
    outcome.delivered
}

/// Drive `records` through a core (traced when `ring` is given) on a
/// deterministic virtual clock — one tick per record.
fn aggregate(
    records: &[WindowState],
    ring: Option<TraceRing>,
) -> (Vec<GlobalWindow>, sketchwire::AggregatorReport) {
    let mut core = AggregatorCore::new(&AggregatorConfig::new(UPSTREAMS));
    if let Some(ring) = ring {
        core = core.with_trace(ring);
    }
    let mut sealed = Vec::new();
    for (i, ws) in records.iter().enumerate() {
        core.set_now_us(i as u64 + 1);
        let _ = core.on_state(ws.clone());
        core.poll(&mut sealed);
    }
    let report = core.finish(&mut sealed);
    (sealed, report)
}

/// Assert the conservation law between the recorded events, the
/// aggregator's ledger, and its sealed output.
fn assert_conserved(
    events: &[TraceEvent],
    report: &sketchwire::AggregatorReport,
    sealed: &[GlobalWindow],
    context: &str,
) {
    let count = |kind: TraceKind| events.iter().filter(|e| e.kind == kind).count() as u64;
    assert_eq!(
        count(TraceKind::Ingest),
        report.records,
        "{context}: ingests"
    );
    assert_eq!(
        count(TraceKind::Drop),
        report.late_records,
        "{context}: drops"
    );
    assert_eq!(count(TraceKind::Mark), report.rejected, "{context}: marks");
    let terminals = count(TraceKind::Seal) + count(TraceKind::Conflict);
    assert_eq!(terminals, report.windows_sealed, "{context}: terminals");

    // Per window: ≥1 ingest ⇒ exactly one terminal whose payload is the
    // window's accepted-record count.
    let mut ingests: BTreeMap<u64, u64> = BTreeMap::new();
    let mut window_terminals: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        match e.kind {
            TraceKind::Ingest => *ingests.entry(e.window_us).or_default() += 1,
            TraceKind::Seal | TraceKind::Conflict => {
                window_terminals.entry(e.window_us).or_default().push(e)
            }
            _ => {}
        }
    }
    for (window_us, n) in &ingests {
        let t = window_terminals
            .get(window_us)
            .unwrap_or_else(|| panic!("{context}: window {window_us} ingested but never ended"));
        assert_eq!(t.len(), 1, "{context}: window {window_us} ended twice");
        assert_eq!(
            t[0].value, *n,
            "{context}: window {window_us} terminal payload"
        );
    }
    for window_us in window_terminals.keys() {
        assert!(
            ingests.contains_key(window_us),
            "{context}: window {window_us} ended without an ingest"
        );
    }

    // Lineage rides every sealed window and balances the conflict ledger.
    let conflict_sum: u64 = sealed.iter().map(|gw| gw.lineage.conflicts).sum();
    assert_eq!(
        conflict_sum, report.merge_conflicts,
        "{context}: lineage conflicts"
    );
    for gw in sealed {
        let window_us = (gw.start * 1e6).round() as u64;
        let terminal = window_terminals[&window_us][0];
        let want = if gw.lineage.conflicts > 0 {
            TraceKind::Conflict
        } else {
            TraceKind::Seal
        };
        assert_eq!(terminal.kind, want, "{context}: terminal kind @{window_us}");
        assert_eq!(
            gw.lineage.records, terminal.value,
            "{context}: lineage records"
        );
        assert_eq!(
            gw.lineage.sealed_us, terminal.at_us,
            "{context}: lineage seal time"
        );
    }
}

/// Seeded schedules over all fault profiles: the trace balances the
/// ledger exactly, and tracing never perturbs the sealed output.
#[test]
fn trace_conservation_holds_under_faults() {
    let mut saw_conflict_terminal = false;
    for profile in FaultProfile::all() {
        for seed in [5u64, 17] {
            let delivered = survivors(seed, &profile);
            assert!(!delivered.is_empty(), "schedule delivered nothing");
            let context = format!("seed {seed} {}", profile.name);

            let ring = TraceRing::new(1 << 16);
            let (sealed, report) = aggregate(&delivered, Some(ring.clone()));
            let (plain, plain_report) = aggregate(&delivered, None);
            assert_eq!(sealed, plain, "{context}: tracing perturbed output");
            assert_eq!(report, plain_report, "{context}: tracing perturbed ledger");

            assert!(
                ring.recorded() <= 1 << 16,
                "{context}: ring wrapped — conservation unverifiable"
            );
            let events: Vec<TraceEvent> = ring.events().into_iter().map(|(_, e)| e).collect();
            assert_conserved(&events, &report, &sealed, &context);
            saw_conflict_terminal |= events.iter().any(|e| e.kind == TraceKind::Conflict);
        }
    }
    assert!(
        saw_conflict_terminal,
        "no schedule produced a conflict terminal — recalibrate"
    );
}

/// Rejected records surface as `mark` events: same window, same count,
/// and the ledger's rejected counter agrees.
#[test]
fn rejected_records_mark_the_trace() {
    let delivered = survivors(5, &FaultProfile::lossless());
    let mut records = delivered.clone();
    // A record whose window length disagrees with an earlier one for
    // the same window is rejected at validation. It must land while the
    // window is still open — inserted right behind the record that
    // opened it, before any seal can demote it to a late drop.
    let mut bad = records[0].clone();
    bad.length *= 2.0;
    records.insert(1, bad);

    let ring = TraceRing::new(1 << 16);
    let (sealed, report) = aggregate(&records, Some(ring.clone()));
    assert_eq!(report.rejected, 1);
    let events: Vec<TraceEvent> = ring.events().into_iter().map(|(_, e)| e).collect();
    assert_conserved(&events, &report, &sealed, "rejected-record run");
    let mark = events
        .iter()
        .find(|e| e.kind == TraceKind::Mark)
        .expect("mark event");
    assert_eq!(mark.window_us, (records[0].start * 1e6).round() as u64);
}
