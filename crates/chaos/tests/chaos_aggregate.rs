//! Differential oracle for the federated aggregation tier.
//!
//! Three virtual forwarding collectors export per-window sketch state
//! (`sketchwire::WindowState`) and ship it through the seeded faulty
//! transport. Whatever survives feeds the real `AggregatorCore`; the
//! reference is an independent fold of the *predicted* survivor records
//! with `merge_chunks`/`merge_topk` directly. The fault schedule plus
//! ground truth fully determine the global view:
//!
//! * the aggregator's sealed windows equal the reference fold exactly;
//! * every sealed dataset states its error bound as the sum of the
//!   contributing upstreams' bounds, and no entry's error exceeds it;
//! * chunk loss is accounted: each (upstream, window, dataset) group
//!   with missing chunks is one merge conflict, never a silent merge.

use chaos::{check, plans_for, predicted_delivery, run as chaos_run, FaultProfile, SensorInput};
use dns_observatory::{Dataset, ObservatoryConfig, StateExporter};
use feed::SensorConfig;
use simnet::{SimConfig, Simulation};
use sketchwire::{
    merge_chunks, merge_topk, AggregatorConfig, AggregatorCore, TopKState, WindowState,
};
use std::collections::BTreeMap;

const UPSTREAMS: usize = 3;
const WINDOW: f64 = 0.5;
const DURATION: f64 = 1.8;
/// Small enough that real trackers split into several chunks, so lossy
/// schedules can drop *part* of a window's state.
const CHUNK_ENTRIES: usize = 8;

fn cfg() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![(Dataset::SrvIp, 120), (Dataset::Qtype, 64)],
        window_secs: WINDOW,
        bloom_gate: false,
        ..ObservatoryConfig::default()
    }
}

/// Each upstream's exported window-state stream for a seeded world,
/// sliced by sensor vantage like a real federated deployment.
fn upstream_states(seed: u64) -> Vec<Vec<WindowState>> {
    let mut exporters: Vec<StateExporter> = (0..UPSTREAMS)
        .map(|u| StateExporter::new(cfg(), u as u64, CHUNK_ENTRIES))
        .collect();
    let mut outs: Vec<Vec<WindowState>> = vec![Vec::new(); UPSTREAMS];
    let mut sim = Simulation::from_config(SimConfig {
        seed,
        ..SimConfig::tiny()
    });
    sim.run(DURATION, &mut |tx| {
        let u = tx.sensor_index(UPSTREAMS);
        exporters[u].ingest(tx, &mut outs[u]);
    });
    for (e, out) in exporters.into_iter().zip(&mut outs) {
        e.finish(out);
    }
    outs
}

fn run_chaos(
    seed: u64,
    profile: &FaultProfile,
    states: &[Vec<WindowState>],
) -> chaos::ChaosOutcome<WindowState> {
    let plans = plans_for(seed, UPSTREAMS as u64, profile);
    let inputs = states
        .iter()
        .enumerate()
        .map(|(u, items)| {
            let mut config = SensorConfig::new(u as u64);
            // One state record per frame: faults land on record
            // boundaries, which is how the real feed ships them too.
            // The buffer must ride out injected stalls (records burst at
            // window boundaries), so loss comes from the *wire* faults —
            // resets and corruption — not from a starved send queue.
            config.batch_items = 1;
            config.buffer_frames = 256;
            config.backoff.seed = seed.wrapping_mul(31).wrapping_add(u as u64);
            config.backoff.base_ms = 2;
            config.backoff.max_ms = 40;
            SensorInput {
                config,
                items: items.clone(),
                plan: plans[u].clone(),
            }
        })
        .collect();
    let outcome = chaos_run(inputs);
    check(&outcome).unwrap_or_else(|d| {
        panic!(
            "aggregate chaos run diverged (seed={seed}, profile={}): {d}",
            profile.name
        )
    });
    outcome
}

/// Reference global view: fold the survivor records with the sketchwire
/// merge primitives directly, mirroring the aggregator's documented
/// policy (chunks reassembled per upstream; a group with missing chunks
/// is skipped and counted; upstreams merged in ascending id order).
struct RefWindow {
    start: f64,
    upstreams: Vec<u64>,
    datasets: Vec<TopKState>,
    /// Per dataset, the sum of the contributing upstreams' error bounds
    /// — what the sealed state must *state* as its bound.
    bound_sums: BTreeMap<String, u64>,
}

fn reference_merge(survivors: &[WindowState]) -> (Vec<RefWindow>, u64) {
    type Sources = BTreeMap<u64, BTreeMap<String, Vec<TopKState>>>;
    let mut windows: BTreeMap<u64, (f64, Sources)> = BTreeMap::new();
    for ws in survivors {
        let us = (ws.start * 1e6).round() as u64;
        let entry = windows.entry(us).or_insert((ws.start, BTreeMap::new()));
        entry
            .1
            .entry(ws.upstream)
            .or_default()
            .entry(ws.topk.dataset.clone())
            .or_default()
            .push(ws.topk.clone());
    }
    let mut conflicts = 0u64;
    let out = windows
        .into_values()
        .map(|(start, sources)| {
            let mut by_dataset: BTreeMap<String, TopKState> = BTreeMap::new();
            let mut bound_sums: BTreeMap<String, u64> = BTreeMap::new();
            let mut upstreams = Vec::new();
            for (upstream, datasets) in sources {
                let mut contributed = false;
                for (name, parts) in datasets {
                    let Ok(assembled) = merge_chunks(&parts) else {
                        conflicts += 1;
                        continue;
                    };
                    *bound_sums.entry(name.clone()).or_default() += assembled.error_bound;
                    let merged = match by_dataset.remove(&name) {
                        None => assembled,
                        Some(current) => {
                            merge_topk(&current, &assembled).expect("identical layouts merge")
                        }
                    };
                    by_dataset.insert(name, merged);
                    contributed = true;
                }
                if contributed {
                    upstreams.push(upstream);
                }
            }
            RefWindow {
                start,
                upstreams,
                datasets: by_dataset.into_values().collect(),
                bound_sums,
            }
        })
        .collect();
    (out, conflicts)
}

/// Seeded schedules over three virtual upstreams, all four fault
/// profiles: the aggregator's output equals the predicted survivor
/// merge, with the stated global error bound equal to the sum of the
/// contributing per-upstream bounds (and covering every entry).
#[test]
fn aggregator_equals_predicted_survivor_merge() {
    let mut saw_loss = false;
    let mut saw_chunk_conflict = false;
    for profile in FaultProfile::all() {
        for seed in [5u64, 17] {
            let states = upstream_states(seed);
            let total: usize = states.iter().map(Vec::len).sum();
            assert!(
                total >= UPSTREAMS * 2 * 2,
                "world too small: {total} records"
            );
            let outcome = run_chaos(seed, &profile, &states);

            // The transport oracle's survivor prediction is the ground
            // truth everything below is judged against.
            let predicted = predicted_delivery(&outcome);
            assert_eq!(
                outcome.delivered, predicted,
                "seed {seed} {}: delivery diverged from prediction",
                profile.name
            );

            let mut core = AggregatorCore::new(&AggregatorConfig::new(UPSTREAMS));
            for ws in outcome.delivered.iter().cloned() {
                core.on_state(ws).expect("survivor record accepted");
            }
            let mut sealed = Vec::new();
            let report = core.finish(&mut sealed);

            let (want, want_conflicts) = reference_merge(&predicted);
            assert_eq!(
                sealed.len(),
                want.len(),
                "seed {seed} {}: window count",
                profile.name
            );
            for (gw, rw) in sealed.iter().zip(&want) {
                assert_eq!(gw.start, rw.start, "window start");
                assert_eq!(
                    gw.upstreams, rw.upstreams,
                    "seed {seed} {}: contributors @{}",
                    profile.name, rw.start
                );
                assert_eq!(
                    gw.datasets, rw.datasets,
                    "seed {seed} {}: merged state @{}",
                    profile.name, rw.start
                );
                for state in &gw.datasets {
                    assert_eq!(
                        state.error_bound, rw.bound_sums[&state.dataset],
                        "stated bound must be the sum of contributing bounds"
                    );
                    assert!(
                        state.max_entry_error() <= state.error_bound,
                        "entry error exceeds the stated bound"
                    );
                }
            }
            assert_eq!(
                report.merge_conflicts, want_conflicts,
                "seed {seed} {}: chunk-loss accounting",
                profile.name
            );

            if profile.name == "lossless" {
                assert_eq!(
                    outcome.delivered.len(),
                    total,
                    "lossless schedule lost records"
                );
                assert_eq!(report.merge_conflicts, 0);
            } else {
                saw_loss |= outcome.delivered.len() < total;
                saw_chunk_conflict |= want_conflicts > 0;
            }
        }
    }
    assert!(saw_loss, "no lossy schedule lost a record — recalibrate");
    assert!(
        saw_chunk_conflict,
        "no schedule dropped part of a chunked window — recalibrate"
    );
}

/// Under a lossless schedule the transport is fully transparent: the
/// aggregator over the chaos delivery equals the aggregator over the
/// pristine inputs fed directly, upstream by upstream.
#[test]
fn lossless_transport_is_transparent_to_aggregation() {
    for seed in [3u64, 11] {
        let states = upstream_states(seed);
        let outcome = run_chaos(seed, &FaultProfile::lossless(), &states);

        let aggregate = |records: Vec<WindowState>| {
            let mut core = AggregatorCore::new(&AggregatorConfig::new(UPSTREAMS));
            for ws in records {
                core.on_state(ws).expect("record accepted");
            }
            let mut sealed = Vec::new();
            core.finish(&mut sealed);
            sealed
        };
        let via_chaos = aggregate(outcome.delivered);
        let direct = aggregate(states.into_iter().flatten().collect());
        assert_eq!(via_chaos, direct, "seed {seed}: transport left a mark");
    }
}
