//! Slow-shard fault axis: one tracker shard's consumer stalls on a
//! seeded schedule while the rest of the pipeline runs at full speed.
//!
//! The frontier protocol's conservation law, checked two ways:
//!
//! * **Byte identity** — in the unsaturated regime the stalled run's
//!   rendered TSV windows equal both an unstalled threaded run and the
//!   single-threaded `Observatory`: a lagging shard delays dumps but
//!   cannot change them.
//! * **Telemetry oracle** — window and transaction accounting balances
//!   exactly: one frontier close per produced window (none lost, none
//!   double-counted), every transaction in exactly one window's
//!   kept/dropped/filtered tally, and all queue-depth gauges drained to
//!   zero. These hold even under eviction pressure, where row-level
//!   identity legitimately does not.

use chaos::StallPlan;
use dns_observatory::tsv::render_store;
use dns_observatory::{Dataset, Observatory, ObservatoryConfig, ThreadedPipeline};
use simnet::{SimConfig, Simulation};
use std::sync::atomic::Ordering;
use telemetry::Registry;

const DATASETS: [Dataset; 3] = [Dataset::SrvIp, Dataset::Esld, Dataset::Qtype];

fn roomy_cfg() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![
            (Dataset::SrvIp, 16_000),
            (Dataset::Esld, 16_000),
            (Dataset::Qtype, 64),
        ],
        window_secs: 0.5,
        ..ObservatoryConfig::default()
    }
}

fn tight_cfg() -> ObservatoryConfig {
    ObservatoryConfig {
        datasets: vec![(Dataset::SrvIp, 200), (Dataset::Qtype, 16)],
        window_secs: 0.5,
        ..ObservatoryConfig::default()
    }
}

#[test]
fn stalled_shard_output_is_byte_identical() {
    let mut sim = Simulation::from_config(SimConfig::tiny());
    let txs = sim.collect(2.0);

    let mut obs = Observatory::new(roomy_cfg());
    for tx in &txs {
        obs.ingest(tx);
    }
    let single = obs.finish();
    for w in single.windows() {
        assert_eq!(w.dropped, 0, "test premise: no eviction in {}", w.dataset);
    }
    let reference = render_store(&single, &DATASETS);

    for seed in 0..8u64 {
        let plan = StallPlan::from_seed(seed, 3);
        let (hook, fired) = plan.injector();
        let stalled = ThreadedPipeline::with_shards(roomy_cfg(), 2, 3)
            .with_batch_range(32, 32)
            .with_stall_injector(hook)
            .run(txs.clone());
        assert!(
            fired.load(Ordering::Relaxed) > 0,
            "seed {seed}: the fault axis must actually fire ({plan:?})"
        );
        assert_eq!(
            reference,
            render_store(&stalled, &DATASETS),
            "seed {seed}: stalled run diverged from Observatory ({plan:?})"
        );
    }
}

/// Under eviction pressure rows may differ from single-threaded, but the
/// window/transaction conservation law must survive any stall schedule.
#[test]
fn stalled_shard_conserves_windows_and_transactions() {
    let mut sim = Simulation::from_config(SimConfig::tiny());
    let txs = sim.collect(2.5);
    let total = txs.len() as u64;

    // Unstalled reference run fixes the expected window grid.
    let clean = ThreadedPipeline::with_shards(tight_cfg(), 2, 3).run(txs.clone());
    let clean_starts: Vec<f64> = clean
        .dataset(Dataset::SrvIp)
        .iter()
        .map(|w| w.start)
        .collect();
    assert!(clean_starts.len() >= 4, "workload too small to mean much");

    for seed in 0..8u64 {
        let plan = StallPlan::from_seed(seed, 3);
        let (hook, fired) = plan.injector();
        let registry = Registry::new();
        let store = ThreadedPipeline::with_shards(tight_cfg(), 2, 3)
            .with_registry(registry.clone())
            .with_stall_injector(hook)
            .run(txs.clone());
        assert!(fired.load(Ordering::Relaxed) > 0, "seed {seed}: no stalls");

        // No window lost, none double-counted: the stalled run produces
        // exactly the reference window grid, in order.
        let starts: Vec<f64> = store
            .dataset(Dataset::SrvIp)
            .iter()
            .map(|w| w.start)
            .collect();
        assert_eq!(starts, clean_starts, "seed {seed}: window grid changed");

        let snap = registry.snapshot(0);
        assert_eq!(
            snap.counter("pipeline_ingested_total"),
            total,
            "seed {seed}"
        );
        assert_eq!(
            snap.counter("pipeline_windows_total") as usize,
            starts.len(),
            "seed {seed}: one frontier close per produced window"
        );
        // Every transaction lands in exactly one window's tally, for
        // every dataset — the conservation law from the telemetry
        // oracle.
        for ds in [Dataset::SrvIp, Dataset::Qtype] {
            let sum: u64 = store
                .dataset(ds)
                .iter()
                .map(|w| w.kept + w.dropped + w.filtered)
                .sum();
            assert_eq!(sum, total, "seed {seed}: {} leaked transactions", ds.name());
        }
        // All shard queues fully drained.
        for sh in 0..3 {
            assert_eq!(
                snap.gauge(&format!("pipeline_queue_depth{{shard=\"{sh}\"}}")),
                0.0,
                "seed {seed}: shard {sh} queue not drained"
            );
        }
    }
}
